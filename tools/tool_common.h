// Flag-handling helpers shared by the command-line tools (cne_cli,
// cne_serve): graph resolution from --graph/--dataset and strict layer
// parsing. Header-only; tools are single translation units.

#ifndef CNE_TOOLS_TOOL_COMMON_H_
#define CNE_TOOLS_TOOL_COMMON_H_

#include <stdexcept>
#include <string>

#include "eval/datasets.h"
#include "graph/graph_io.h"
#include "util/cli.h"

namespace cne {
namespace tools {

/// Loads the graph named by --dataset (a registry code) or --graph (a
/// KONECT text file, or the binary format for `.bin`). Throws
/// std::runtime_error when neither flag is given or the name is unknown.
inline BipartiteGraph LoadGraph(const CommandLine& cl) {
  const std::string dataset = cl.GetString("dataset");
  if (!dataset.empty()) {
    auto spec = FindDataset(dataset);
    if (!spec) throw std::runtime_error("unknown dataset " + dataset);
    return MakeDataset(*spec);
  }
  const std::string path = cl.GetString("graph");
  if (path.empty()) throw std::runtime_error("need --graph or --dataset");
  return ReadGraphFile(path);
}

/// Parses a --layer value strictly: exactly "upper" or "lower"; anything
/// else throws rather than silently defaulting.
inline Layer ParseLayerFlag(const CommandLine& cl,
                            const std::string& default_value) {
  const std::string name = cl.GetString("layer", default_value);
  if (name == "upper") return Layer::kUpper;
  if (name == "lower") return Layer::kLower;
  throw std::runtime_error("--layer must be 'upper' or 'lower', got '" +
                           name + "'");
}

}  // namespace tools
}  // namespace cne

#endif  // CNE_TOOLS_TOOL_COMMON_H_
