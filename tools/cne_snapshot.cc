// cne_snapshot — snapshot and WAL inspector for the persistence
// subsystem (store/).
//
// Dumps a snapshot's header, section sizes, service configuration, graph
// block layout, view-representation mix, and residual-budget histogram;
// with --dir, also summarizes the companion write-ahead log. Everything
// is validated the same way recovery validates it (magic, version,
// section CRCs, CSR block CRCs), so a zero exit code means the snapshot
// would restore.
//
// Usage:
//   cne_snapshot --snapshot=path/to/snapshot.cne [--json] [--bins=8]
//   cne_snapshot --dir=snapshot-dir              [--json] [--bins=8]
//
// --dir expects the service's snapshot directory (snapshot.cne +
// budget.wal as written by `cne_serve --snapshot-dir`). --bins sets the
// residual-budget histogram resolution.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "core/protocol_pipeline.h"
#include "store/budget_wal.h"
#include "store/snapshot_format.h"
#include "util/cli.h"

using namespace cne;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_snapshot --snapshot=snapshot.cne | --dir=DIR "
               "[--json] [--bins=8]\n"
               "see the header of tools/cne_snapshot.cc for details\n");
  return 2;
}

struct ViewsSummary {
  uint64_t entries = 0;
  uint64_t pending = 0;
  uint64_t materialized = 0;
  uint64_t bitmap = 0;
  uint64_t sorted = 0;
  uint64_t noisy_edges = 0;   ///< sum of view sizes
  uint64_t payload_words = 0; ///< bitmap words stored
  uint64_t payload_ids = 0;   ///< sorted ids stored
  double epsilon = 0.0;
};

ViewsSummary SummarizeViews(const ViewsSection& views) {
  ViewsSummary s;
  s.epsilon = views.epsilon;
  s.entries = views.entries.size();
  for (const ViewRecord& entry : views.entries) {
    if (entry.state == ViewRecord::kStateAuthorizedPending) {
      ++s.pending;
      continue;
    }
    ++s.materialized;
    s.noisy_edges += entry.size;
    if (entry.bitmap) {
      ++s.bitmap;
      s.payload_words += entry.words.size();
    } else {
      ++s.sorted;
      s.payload_ids += entry.members.size();
    }
  }
  return s;
}

// The ledger section layout is owned by BudgetLedger::Serialize
// (ldp/budget_ledger.cc): lifetime budget f64, row count u64, then
// (packed vertex u64, spent f64) rows sorted by (layer, id).
struct LedgerSummary {
  double lifetime_budget = 0.0;
  uint64_t entries = 0;
  uint64_t exhausted = 0;  ///< residual <= 1e-9 (BudgetLedger's tolerance)
  double total_spent = 0.0;
  double min_remaining = 0.0;
  double sum_remaining = 0.0;  ///< unspent budget across charged vertices
  std::vector<uint64_t> histogram;  ///< residual-budget counts
};

LedgerSummary SummarizeLedger(ByteReader in, size_t bins) {
  LedgerSummary s;
  s.lifetime_budget = in.F64();
  s.entries = in.U64();
  s.min_remaining = s.lifetime_budget;
  s.histogram.assign(bins, 0);
  for (uint64_t i = 0; i < s.entries; ++i) {
    in.U64();  // packed vertex
    const double spent = in.F64();
    const double remaining = s.lifetime_budget - spent;
    s.total_spent += spent;
    s.sum_remaining += remaining;
    if (remaining <= 1e-9) ++s.exhausted;
    if (remaining < s.min_remaining) s.min_remaining = remaining;
    size_t bin = s.lifetime_budget > 0.0
                     ? static_cast<size_t>(remaining / s.lifetime_budget *
                                           static_cast<double>(bins))
                     : 0;
    if (bin >= bins) bin = bins - 1;
    ++s.histogram[bin];
  }
  return s;
}

const char* WalTypeName(WalRecordType type) {
  switch (type) {
    case WalRecordType::kCharge:
      return "charge";
    case WalRecordType::kViewAuthorized:
      return "view_authorized";
    case WalRecordType::kRaiseBudget:
      return "raise_budget";
    case WalRecordType::kSubmitSealed:
      return "submit_sealed";
  }
  return "unknown";
}

void PrintHistogram(const LedgerSummary& ledger, bool json) {
  const size_t bins = ledger.histogram.size();
  for (size_t b = 0; b < bins; ++b) {
    const double lo =
        ledger.lifetime_budget * static_cast<double>(b) / bins;
    const double hi =
        ledger.lifetime_budget * static_cast<double>(b + 1) / bins;
    if (json) {
      std::printf("%s{\"residual_min\": %g, \"residual_max\": %g, "
                  "\"vertices\": %" PRIu64 "}",
                  b == 0 ? "" : ", ", lo, hi, ledger.histogram[b]);
    } else {
      std::printf("    residual [%6.3f, %6.3f)  %" PRIu64 " vertices\n", lo,
                  hi, ledger.histogram[b]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  try {
    std::string snapshot_path = cl.GetString("snapshot");
    std::string wal_path;
    const std::string dir = cl.GetString("dir");
    if (!dir.empty()) {
      snapshot_path = dir + "/" + kSnapshotFileName;
      wal_path = dir + "/" + kWalFileName;
    }
    if (snapshot_path.empty()) return Usage();
    const bool json = cl.GetBool("json");
    const size_t bins =
        static_cast<size_t>(std::max<long long>(1, cl.GetInt("bins", 8)));

    const SnapshotReader reader(snapshot_path);
    ByteReader config_section = reader.Section(SectionId::kConfig);
    const SnapshotConfig config = ReadConfigSection(config_section);
    ByteReader graph_section = reader.Section(SectionId::kGraph);
    const GraphSectionSummary graph = SummarizeGraphSection(graph_section);
    ByteReader views_section = reader.Section(SectionId::kViews);
    const ViewsSummary views = SummarizeViews(ReadViewsSection(views_section));
    const LedgerSummary ledger =
        SummarizeLedger(reader.Section(SectionId::kLedger), bins);
    const char* algorithm =
        ToString(static_cast<ProtocolKind>(config.protocol_kind));

    if (json) {
      std::printf(
          "{\"file\": \"%s\", \"bytes\": %" PRIu64 ", \"version\": %u, "
          "\"epoch\": %" PRIu64 ",\n \"sections\": [",
          snapshot_path.c_str(), reader.file_bytes(), reader.version(),
          reader.epoch());
      for (size_t i = 0; i < reader.sections().size(); ++i) {
        const SectionInfo& info = reader.sections()[i];
        std::printf("%s{\"name\": \"%s\", \"bytes\": %" PRIu64 "}",
                    i == 0 ? "" : ", ", SectionName(info.id), info.size);
      }
      std::printf(
          "],\n \"config\": {\"algorithm\": \"%s\", \"epsilon\": %g, "
          "\"epsilon1_fraction\": %g, \"seed\": %" PRIu64
          ", \"initial_lifetime_budget\": %g, "
          "\"current_lifetime_budget\": %g, \"next_noise_stream\": %" PRIu64
          "},\n",
          algorithm, config.epsilon, config.epsilon1_fraction, config.seed,
          config.initial_lifetime_budget, config.current_lifetime_budget,
          config.next_noise_stream);
      std::printf(
          " \"graph\": {\"upper\": %u, \"lower\": %u, \"edges\": %" PRIu64
          ", \"block_edges\": %u, \"blocks\": %" PRIu64 "},\n",
          graph.num_upper, graph.num_lower, graph.num_edges,
          graph.block_edges, graph.num_blocks);
      std::printf(
          " \"views\": {\"epsilon\": %g, \"entries\": %" PRIu64
          ", \"pending\": %" PRIu64 ", \"materialized\": %" PRIu64
          ", \"bitmap\": %" PRIu64 ", \"sorted\": %" PRIu64
          ", \"noisy_edges\": %" PRIu64 "},\n",
          views.epsilon, views.entries, views.pending, views.materialized,
          views.bitmap, views.sorted, views.noisy_edges);
      std::printf(
          " \"ledger\": {\"lifetime_budget\": %g, \"vertices\": %" PRIu64
          ", \"exhausted\": %" PRIu64
          ", \"total_spent\": %g, \"min_remaining\": %g, "
          "\"sum_remaining\": %g,\n"
          "  \"residual_histogram\": [",
          ledger.lifetime_budget, ledger.entries, ledger.exhausted,
          ledger.total_spent, ledger.min_remaining, ledger.sum_remaining);
      PrintHistogram(ledger, true);
      std::printf("]}");
    } else {
      std::printf("snapshot   %s (%" PRIu64 " bytes, version %u, epoch %"
                  PRIu64 ")\n",
                  snapshot_path.c_str(), reader.file_bytes(),
                  reader.version(), reader.epoch());
      std::printf("sections  ");
      for (const SectionInfo& info : reader.sections()) {
        std::printf(" %s=%" PRIu64 "B", SectionName(info.id), info.size);
      }
      std::printf("\nconfig     %s eps=%g (eps1 frac %g) seed=%" PRIu64
                  " budget %g->%g noise-streams=%" PRIu64 "\n",
                  algorithm, config.epsilon, config.epsilon1_fraction,
                  config.seed, config.initial_lifetime_budget,
                  config.current_lifetime_budget, config.next_noise_stream);
      std::printf("graph      |U|=%u |L|=%u m=%" PRIu64 " in %" PRIu64
                  " blocks of %u edges\n",
                  graph.num_upper, graph.num_lower, graph.num_edges,
                  graph.num_blocks, graph.block_edges);
      std::printf("views      eps=%g, %" PRIu64 " entries (%" PRIu64
                  " materialized: %" PRIu64 " bitmap / %" PRIu64
                  " sorted; %" PRIu64 " pending), %" PRIu64
                  " noisy edges\n",
                  views.epsilon, views.entries, views.materialized,
                  views.bitmap, views.sorted, views.pending,
                  views.noisy_edges);
      std::printf("ledger     budget %g, %" PRIu64
                  " vertices charged (%" PRIu64
                  " exhausted), %.3f eps total, min residual %.6f, "
                  "%.3f eps unspent\n",
                  ledger.lifetime_budget, ledger.entries, ledger.exhausted,
                  ledger.total_spent, ledger.min_remaining,
                  ledger.sum_remaining);
      PrintHistogram(ledger, false);
    }

    if (!wal_path.empty() && FileExists(wal_path)) {
      const WalReplay replay = BudgetWal::Read(wal_path);
      uint64_t by_type[5] = {0, 0, 0, 0, 0};
      for (const WalRecord& record : replay.records) {
        ++by_type[static_cast<size_t>(record.type)];
      }
      if (json) {
        std::printf(
            ",\n \"wal\": {\"epoch\": %" PRIu64 ", \"records\": %zu, "
            "\"committed\": %zu, \"torn_tail\": %s, \"dropped_bytes\": %"
            PRIu64 ",\n  \"by_type\": {",
            replay.epoch, replay.records.size(), replay.committed,
            replay.torn_tail ? "true" : "false", replay.dropped_bytes);
        for (int t = 1; t <= 4; ++t) {
          std::printf("%s\"%s\": %" PRIu64, t == 1 ? "" : ", ",
                      WalTypeName(static_cast<WalRecordType>(t)),
                      by_type[t]);
        }
        std::printf("}}");
      } else {
        std::printf("wal        epoch %" PRIu64 ", %zu records (%zu "
                    "committed%s)",
                    replay.epoch, replay.records.size(), replay.committed,
                    replay.torn_tail ? ", TORN TAIL" : "");
        for (int t = 1; t <= 4; ++t) {
          if (by_type[t] > 0) {
            std::printf("  %s=%" PRIu64,
                        WalTypeName(static_cast<WalRecordType>(t)),
                        by_type[t]);
          }
        }
        std::printf("\n");
      }
    }
    if (json) std::printf("}\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
