// cne_serve — batch-serving front end over the concurrent query service.
//
// Reads a workload of query pairs, executes it against a graph under one
// service-lifetime privacy budget, and prints the answers plus a
// throughput / privacy-accounting report.
//
// Usage:
//   cne_serve --graph=g.txt|--dataset=RM
//             [--workload=w.txt | --pairs=10000 --hot=64 --layer=lower]
//             [--algorithm=OneR --epsilon=2.0 --budget=0 --threads=4
//              --seed=7 --out=answers.txt --json]
//             [--snapshot-dir=DIR --checkpoint-every=N]
//             [--metrics-level=off|counters|full --metrics-json=PATH]
//             [--trace-out=PATH --trace-sample=N --trace-buffer=N]
//             [--failpoints=SPEC --failpoints-seed=S]
//
// Workload files hold one `<upper|lower> <u> <w>` query per line
// (src/service/workload.h). Without --workload, a hot-set workload of
// --pairs queries over the --hot lowest-id vertices of --layer is
// generated. --budget sets the per-vertex lifetime budget (default: one
// full ε per vertex). --out writes one `estimate` or `REJECTED` line per
// query, in input order. --json switches the report to machine-readable
// JSON.
//
// Persistence: --snapshot-dir makes the service crash-safe (store/). On
// start it recovers any existing snapshot + budget WAL in DIR — a killed
// server restarts byte-identical: same answers, same residual budgets,
// zero re-released views. With --checkpoint-every=N the workload is
// submitted in batches of N queries with a checkpoint after each batch
// (and a final checkpoint at the end); N=0 (default) checkpoints once,
// after the whole workload. Inspect DIR with `cne_snapshot --dir=DIR`.
//
// Observability: the report always carries the service's cumulative
// per-phase latency quantiles (admission, wal_fsync, release, plan,
// execute, post_process, checkpoint — obs/metrics.h) as a table (text
// mode) or a "metrics" object (--json). --metrics-json=PATH additionally
// writes the metrics object alone to PATH (diff two with `cne_metrics`);
// --metrics-level=off|counters|full (default full) is the runtime kill
// switch.
//
// Tracing: --trace-out=PATH captures per-span trace events during the run
// and writes them as Chrome-trace-event JSON (open in Perfetto or
// chrome://tracing, or inspect with `cne_trace`). Requires
// --metrics-level=full. --trace-sample=N keeps every Nth submission's
// span tree (default 1: all); --trace-buffer=N sets the per-thread event
// ring capacity (default 4096; oldest events are overwritten when full).
//
// Fault drills: --failpoints=SPEC arms deterministic fault injection
// (grammar in src/util/failpoint.h, e.g. "wal.fsync=err:EIO@3"), seeded
// by --failpoints-seed for the probabilistic triggers. In a binary built
// with -DCNE_FAILPOINTS=OFF the flag is refused loudly rather than
// silently ignored. Faults exercise the service's degradation path (docs/
// ARCHITECTURE.md, "Failure model & degradation"); the run keeps serving
// read-only when the journal fails instead of dying.
//
// Exit codes: 0 success; 1 runtime error; 2 usage error; 3 finished but
// the service degraded to read-only; 4 the service failed mid-execution;
// 5 finished healthy but a checkpoint could not be written.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "obs/trace_export.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "tool_common.h"
#include "util/cli.h"
#include "util/failpoint.h"

using namespace cne;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_serve --graph=g.txt|--dataset=RM "
               "[--workload=w.txt | --pairs=N --hot=K --layer=lower]\n"
               "                 [--algorithm=OneR --epsilon=2.0 --budget=0 "
               "--threads=4 --seed=7 --out=answers.txt --json]\n"
               "                 [--snapshot-dir=DIR --checkpoint-every=N]\n"
               "                 [--metrics-level=off|counters|full "
               "--metrics-json=PATH]\n"
               "                 [--trace-out=PATH --trace-sample=N "
               "--trace-buffer=N]\n"
               "                 [--failpoints=SPEC --failpoints-seed=S]\n"
               "see the header of tools/cne_serve.cc for details\n");
  return 2;
}

void PrintReport(const ServiceReport& report, const ServiceOptions& options,
                 bool json) {
  const double hit_rate = report.store.CacheHitRate();
  if (json) {
    std::printf(
        "{\"algorithm\": \"%s\", \"epsilon\": %g, \"lifetime_budget\": %g,\n"
        " \"threads\": %d, \"queries\": %zu, \"answered\": %llu, "
        "\"rejected\": %llu,\n"
        " \"rejected_budget\": %llu, \"rejected_unavailable\": %llu,\n"
        " \"health\": \"%s\", \"sealed\": %s,\n"
        " \"seconds\": %.6f, \"qps\": %.1f,\n"
        " \"vertices_released\": %llu, \"cache_hit_rate\": %.4f, "
        "\"uploaded_bytes\": %.0f,\n"
        " \"budget_vertices_charged\": %llu, \"budget_total_spent\": %.3f, "
        "\"budget_min_remaining\": %.6f,\n"
        " \"snapshot_load_seconds\": %.6f, \"wal_replay_records\": %llu, "
        "\"checkpoint_seconds\": %.6f,\n \"metrics\": ",
        ToString(options.algorithm), options.epsilon,
        options.lifetime_budget > 0.0 ? options.lifetime_budget
                                      : options.epsilon,
        options.num_threads, report.answers.size(),
        static_cast<unsigned long long>(report.answered),
        static_cast<unsigned long long>(report.rejected),
        static_cast<unsigned long long>(report.rejected_budget),
        static_cast<unsigned long long>(report.rejected_unavailable),
        ServiceHealthName(report.health), report.sealed ? "true" : "false",
        report.seconds, report.QueriesPerSecond(),
        static_cast<unsigned long long>(report.store.releases), hit_rate,
        report.store.UploadedBytes(),
        static_cast<unsigned long long>(report.budget_vertices_charged),
        report.budget_total_spent, report.budget_min_remaining,
        report.snapshot_load_seconds,
        static_cast<unsigned long long>(report.wal_replay_records),
        report.checkpoint_seconds);
    std::printf("%s}\n", report.metrics.ToJson(1).c_str());
    return;
  }
  std::printf("algorithm          %s (epsilon=%g, lifetime budget=%g)\n",
              ToString(options.algorithm), options.epsilon,
              options.lifetime_budget > 0.0 ? options.lifetime_budget
                                            : options.epsilon);
  std::printf("queries            %zu (%llu answered, %llu rejected: "
              "%llu budget, %llu unavailable)\n",
              report.answers.size(),
              static_cast<unsigned long long>(report.answered),
              static_cast<unsigned long long>(report.rejected),
              static_cast<unsigned long long>(report.rejected_budget),
              static_cast<unsigned long long>(report.rejected_unavailable));
  std::printf("health             %s%s\n", ServiceHealthName(report.health),
              report.sealed ? "" : " (some batches were not journaled)");
  std::printf("throughput         %.1f queries/s (%.3fs on %d thread%s)\n",
              report.QueriesPerSecond(), report.seconds,
              options.num_threads, options.num_threads == 1 ? "" : "s");
  std::printf("noisy-view store   %llu releases, %.1f%% cache hits, "
              "%.0f bytes uploaded\n",
              static_cast<unsigned long long>(report.store.releases),
              100.0 * hit_rate, report.store.UploadedBytes());
  std::printf("budget ledger      %llu vertices charged, %.3f eps total, "
              "min residual %.6f\n",
              static_cast<unsigned long long>(report.budget_vertices_charged),
              report.budget_total_spent, report.budget_min_remaining);
  if (!options.snapshot_dir.empty()) {
    std::printf("persistence        %s: load %.3fs, %llu WAL records "
                "replayed, last checkpoint %.3fs\n",
                options.snapshot_dir.c_str(), report.snapshot_load_seconds,
                static_cast<unsigned long long>(report.wal_replay_records),
                report.checkpoint_seconds);
  }
  if (!report.metrics.phases.empty() || !report.metrics.counters.empty()) {
    std::printf("\n%s", report.metrics.ToTable().c_str());
  }
}

// Folds one batch's report into the whole-run report: answers append,
// per-submission counters add, lifetime accounting takes the latest.
void FoldReport(ServiceReport&& batch, ServiceReport& total) {
  total.answered += batch.answered;
  total.rejected += batch.rejected;
  total.rejected_budget += batch.rejected_budget;
  total.rejected_unavailable += batch.rejected_unavailable;
  total.health = batch.health;  // the latest batch knows the final state
  total.sealed = total.sealed && batch.sealed;
  total.seconds += batch.seconds;
  total.groups_formed += batch.groups_formed;
  total.planner_seconds += batch.planner_seconds;
  total.store = batch.store;
  total.budget_vertices_charged = batch.budget_vertices_charged;
  total.budget_total_spent = batch.budget_total_spent;
  total.budget_min_remaining = batch.budget_min_remaining;
  total.snapshot_load_seconds = batch.snapshot_load_seconds;
  total.wal_replay_records = batch.wal_replay_records;
  total.checkpoint_seconds = batch.checkpoint_seconds;
  // total.metrics is filled once at the end from SnapshotMetrics() —
  // Submit no longer snapshots the registry, and the cumulative snapshot
  // covers every batch anyway.
  std::move(batch.answers.begin(), batch.answers.end(),
            std::back_inserter(total.answers));
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  try {
    if (!cl.Has("graph") && !cl.Has("dataset")) return Usage();
    const BipartiteGraph graph = tools::LoadGraph(cl);

    std::vector<QueryPair> workload;
    const std::string workload_path = cl.GetString("workload");
    if (!workload_path.empty()) {
      workload = ReadWorkloadFile(workload_path);
    } else {
      const Layer layer = tools::ParseLayerFlag(cl, "lower");
      Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 7)));
      workload = MakeHotSetWorkload(
          graph, layer, static_cast<size_t>(cl.GetInt("pairs", 10000)),
          static_cast<VertexId>(cl.GetInt("hot", 64)), rng);
    }
    if (workload.empty()) {
      std::fprintf(stderr, "error: empty workload\n");
      return 1;
    }
    for (size_t i = 0; i < workload.size(); ++i) {
      const QueryPair& q = workload[i];
      const VertexId layer_size = graph.NumVertices(q.layer);
      if (q.u >= layer_size || q.w >= layer_size) {
        std::fprintf(stderr,
                     "error: workload query %zu (%s %u %u) is out of range "
                     "for the graph (%u %s vertices)\n",
                     i + 1, LayerName(q.layer), q.u, q.w, layer_size,
                     LayerName(q.layer));
        return 1;
      }
    }

    ServiceOptions options;
    const std::string algorithm_name = cl.GetString("algorithm", "OneR");
    const auto algorithm = ParseServiceAlgorithm(algorithm_name);
    if (!algorithm) {
      std::fprintf(stderr, "error: unknown algorithm %s\n",
                   algorithm_name.c_str());
      return 1;
    }
    options.algorithm = *algorithm;
    options.epsilon = cl.GetDouble("epsilon", 2.0);
    options.lifetime_budget = cl.GetDouble("budget", 0.0);
    options.num_threads = static_cast<int>(cl.GetInt("threads", 4));
    options.seed = static_cast<uint64_t>(cl.GetInt("seed", 7));
    options.snapshot_dir = cl.GetString("snapshot-dir");
    options.metrics_level =
        obs::ParseMetricsLevel(cl.GetString("metrics-level", "full"));
    const size_t checkpoint_every = static_cast<size_t>(
        std::max<long long>(0, cl.GetInt("checkpoint-every", 0)));
    if (checkpoint_every > 0 && options.snapshot_dir.empty()) {
      std::fprintf(stderr,
                   "error: --checkpoint-every needs --snapshot-dir\n");
      return 1;
    }

    const std::string trace_path = cl.GetString("trace-out");
    std::unique_ptr<obs::TraceSink> trace_sink;
    if (!trace_path.empty()) {
      if (options.metrics_level != obs::MetricsLevel::kFull) {
        std::fprintf(stderr,
                     "error: --trace-out needs --metrics-level=full "
                     "(tracing rides on the full-level span stack)\n");
        return 2;
      }
      obs::TraceSinkOptions trace_options;
      trace_options.ring_capacity = static_cast<size_t>(
          std::max<long long>(1, cl.GetInt("trace-buffer", 4096)));
      trace_options.sample_period = static_cast<uint64_t>(
          std::max<long long>(1, cl.GetInt("trace-sample", 1)));
      trace_sink = std::make_unique<obs::TraceSink>(trace_options);
      trace_sink->Install();
    }

    const std::string failpoints = cl.GetString("failpoints");
    if (!failpoints.empty()) {
      try {
        fail::Configure(failpoints,
                        static_cast<uint64_t>(cl.GetInt("failpoints-seed", 0)));
        std::fprintf(stderr, "failpoints armed: %s\n",
                     fail::Describe().c_str());
      } catch (const std::exception& e) {
        // Covers both a malformed spec and a binary compiled with
        // -DCNE_FAILPOINTS=OFF — a fault drill must never run faultless
        // silently.
        std::fprintf(stderr, "error: --failpoints: %s\n", e.what());
        return 2;
      }
    }

    QueryService service(graph, options);
    if (service.persistent() && service.recovery().snapshot_loaded) {
      std::fprintf(stderr,
                   "recovered snapshot + %llu WAL records from %s "
                   "in %.3fs%s\n",
                   static_cast<unsigned long long>(
                       service.recovery().wal_replay_records),
                   options.snapshot_dir.c_str(),
                   service.recovery().snapshot_load_seconds,
                   service.recovery().wal_torn_tail
                       ? " (torn WAL tail dropped)"
                       : "");
    }

    // Submit in checkpoint-sized batches (one batch when N = 0), with a
    // final checkpoint so a clean shutdown restarts from snapshot alone.
    // A failed checkpoint is reported, not fatal: the WAL keeps the run
    // durable (or the service degrades to read-only and says so in the
    // exit code).
    ServiceReport report;
    bool checkpoint_failed = false;
    const auto try_checkpoint = [&]() {
      try {
        report.checkpoint_seconds = service.Checkpoint();
      } catch (const std::exception& e) {
        checkpoint_failed = true;
        std::fprintf(stderr, "warning: checkpoint failed: %s\n", e.what());
      }
    };
    const size_t batch_size =
        checkpoint_every > 0 ? checkpoint_every : workload.size();
    try {
      for (size_t begin = 0; begin < workload.size(); begin += batch_size) {
        const size_t end = std::min(workload.size(), begin + batch_size);
        FoldReport(service.Submit({workload.begin() + begin,
                                   workload.begin() + end}),
                   report);
        if (service.persistent() && checkpoint_every > 0 &&
            end < workload.size()) {
          try_checkpoint();
        }
      }
    } catch (const std::exception& e) {
      // A mid-execution failure latches ServiceHealth::kFailed and
      // rethrows; durable state is intact on disk, this process is done.
      if (service.health() == ServiceHealth::kFailed) {
        std::fprintf(stderr, "error: service failed mid-execution: %s\n",
                     e.what());
        return 4;
      }
      throw;
    }
    if (service.persistent() &&
        service.health() != ServiceHealth::kFailed) {
      try_checkpoint();
    }
    if (options.metrics_level != obs::MetricsLevel::kOff) {
      // Re-snapshot after the final checkpoint so its span is included.
      report.metrics = service.SnapshotMetrics();
    }
    PrintReport(report, options, cl.GetBool("json"));

    const std::string metrics_path = cl.GetString("metrics-json");
    if (!metrics_path.empty()) {
      std::ofstream metrics_out(metrics_path);
      if (!metrics_out) {
        throw std::runtime_error("cannot write " + metrics_path);
      }
      metrics_out << report.metrics.ToJson() << '\n';
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
    }

    if (trace_sink != nullptr) {
      trace_sink->Uninstall();
      std::ofstream trace_out(trace_path);
      if (!trace_out) throw std::runtime_error("cannot write " + trace_path);
      trace_out << trace_sink->ToChromeJson();
      std::fprintf(stderr,
                   "wrote %llu trace events (%llu dropped) to %s\n",
                   static_cast<unsigned long long>(
                       trace_sink->EventsRetained()),
                   static_cast<unsigned long long>(
                       trace_sink->EventsDropped()),
                   trace_path.c_str());
    }

    const std::string out_path = cl.GetString("out");
    if (!out_path.empty()) {
      std::ofstream out(out_path);
      if (!out) throw std::runtime_error("cannot write " + out_path);
      for (const ServiceAnswer& answer : report.answers) {
        if (answer.rejected) {
          out << "REJECTED\n";
        } else {
          out << answer.estimate << '\n';
        }
      }
      std::fprintf(stderr, "wrote %zu answers to %s\n",
                   report.answers.size(), out_path.c_str());
    }
    switch (service.health()) {
      case ServiceHealth::kFailed:
        std::fprintf(stderr, "error: service failed mid-execution\n");
        return 4;
      case ServiceHealth::kDegradedReadOnly:
        std::fprintf(stderr,
                     "warning: service finished degraded (read-only)\n");
        return 3;
      case ServiceHealth::kHealthy:
        break;
    }
    return checkpoint_failed ? 5 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
