// cne_calibrate — measures the per-kernel cost tables the set-operation
// dispatcher prices kernels with (graph/set_ops_cost.h).
//
// For every ISA level this machine can execute, every kernel, and every
// log2-work bucket, the tool builds operands whose kernel-specific work
// count lands mid-bucket, times the kernel until a measurement budget is
// spent, and reports the best-of-blocks ns per work unit. Best-of rather
// than mean for the usual reason: timing noise is one-sided.
//
// Usage:
//   cne_calibrate                 # human-readable table
//   cne_calibrate --emit-inc      # src/graph/set_ops_calibration.inc body
//   cne_calibrate --min-ms=5      # per-cell measurement budget
//
// Regenerate the checked-in default with:
//   build/tools/cne_calibrate --emit-inc > src/graph/set_ops_calibration.inc
//
// Levels above DetectedSimdLevel() cannot be measured; their rows repeat
// the highest measured level (annotated in the emitted file). A machine
// that can actually run those levels never reads the copied rows — its
// own regeneration overwrites them — and a machine that cannot, cannot
// dispatch on them either.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/set_ops.h"
#include "graph/set_ops_cost.h"
#include "util/cli.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cne {
namespace {

uint64_t g_sink = 0;

// Mid-bucket work target: bucket b covers [2^(b-1), 2^b), so aim at
// 1.5 * 2^(b-1). Bucket 0 only holds work 0, which the work functions
// never produce; it inherits bucket 1's value.
uint64_t BucketTargetWork(int bucket) {
  if (bucket <= 1) return 1;
  return (uint64_t{3} << (bucket - 1)) / 2;
}

// Operand kit for one bucket of one kernel. Only the members the kernel
// reads are populated.
struct Operands {
  std::vector<VertexId> sorted_a;
  std::vector<VertexId> sorted_b;
  DenseBitset bits_a;
  DenseBitset bits_b;
  uint64_t work = 1;
};

std::vector<VertexId> RandomSorted(uint64_t size, VertexId domain, Rng& rng) {
  std::vector<VertexId> ids;
  for (;;) {
    // Oversample to absorb duplicate draws, then dedup in one pass.
    while (ids.size() < size + size / 4 + 8) {
      ids.push_back(static_cast<VertexId>(rng.UniformInt(domain)));
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    if (ids.size() >= size) {
      ids.resize(size);
      return ids;
    }
  }
}

DenseBitset RandomBits(VertexId domain, double density, Rng& rng) {
  DenseBitset bits(domain);
  const uint64_t target = static_cast<uint64_t>(density * domain);
  for (uint64_t i = 0; i < target; ++i) {
    bits.Set(static_cast<VertexId>(rng.UniformInt(domain)));
  }
  return bits;
}

Operands BuildOperands(SetKernel kernel, int bucket, Rng& rng) {
  const uint64_t w = BucketTargetWork(bucket);
  Operands ops;
  switch (kernel) {
    case SetKernel::kScalarMerge: {
      // Two comparable sorted lists, ~50% overlap. work = |a| + |b|.
      const uint64_t half = std::max<uint64_t>(1, w / 2);
      const VertexId domain = static_cast<VertexId>(half * 3 + 7);
      ops.sorted_a = RandomSorted(half, domain, rng);
      ops.sorted_b = RandomSorted(half, domain, rng);
      ops.work = MergeWork(ops.sorted_a.size(), ops.sorted_b.size());
      break;
    }
    case SetKernel::kGalloping: {
      // Fixed 64:1 skew: work = s * (1 + bit_width(64 + 1)) = 8s.
      const uint64_t small = std::max<uint64_t>(1, w / 8);
      const uint64_t large = small * 64;
      const VertexId domain = static_cast<VertexId>(large * 2 + 7);
      ops.sorted_a = RandomSorted(small, domain, rng);
      ops.sorted_b = RandomSorted(large, domain, rng);
      ops.work = GallopWork(ops.sorted_a.size(), ops.sorted_b.size());
      break;
    }
    case SetKernel::kBitmapAnd: {
      // work = min word count; density where the kernel actually runs.
      const VertexId domain = static_cast<VertexId>(w * 64);
      ops.bits_a = RandomBits(domain, 0.3, rng);
      ops.bits_b = RandomBits(domain, 0.3, rng);
      ops.work = BitmapAndWork(ops.bits_a.Words().size(),
                               ops.bits_b.Words().size());
      break;
    }
    case SetKernel::kProbeBitmap: {
      // work = probe count, against a domain 32x the probes.
      const VertexId domain = static_cast<VertexId>(std::max<uint64_t>(
          64, w * 32));
      ops.sorted_a = RandomSorted(w, domain, rng);
      ops.bits_b = RandomBits(domain, 0.25, rng);
      ops.work = ProbeWork(ops.sorted_a.size());
      break;
    }
    case SetKernel::kBitmapProbe: {
      // work = sparse words + sparse popcount, with the sparse side in
      // its home regime: ~1 set bit per 3 words, so most words skip.
      const uint64_t words = std::max<uint64_t>(1, w * 3 / 4);
      const VertexId domain = static_cast<VertexId>(words * 64);
      ops.bits_a = RandomBits(domain, 1.0 / 192.0, rng);
      ops.bits_b = RandomBits(domain, 0.3, rng);
      ops.work = BitmapProbeWork(ops.bits_a.Words().size(),
                                 ops.bits_a.Count());
      break;
    }
  }
  return ops;
}

uint64_t RunKernelOnce(SetKernel kernel, const Operands& ops) {
  switch (kernel) {
    case SetKernel::kScalarMerge:
      return IntersectScalarMerge(ops.sorted_a, ops.sorted_b);
    case SetKernel::kGalloping:
      return IntersectGalloping(ops.sorted_a, ops.sorted_b);
    case SetKernel::kBitmapAnd:
      return IntersectBitmapAnd(ops.bits_a, ops.bits_b);
    case SetKernel::kProbeBitmap:
      return IntersectProbeBitmap(ops.sorted_a, ops.bits_b);
    case SetKernel::kBitmapProbe:
      return IntersectBitmapProbe(ops.bits_a, ops.bits_b);
  }
  return 0;
}

// Best-of-blocks ns per work unit for one operand kit at the currently
// forced SIMD level.
double MeasureCell(SetKernel kernel, const Operands& ops, double min_ms) {
  // Size one block to ~min_ms/8 using a quick pilot, then keep the
  // fastest of 4 blocks.
  int iters = 1;
  double pilot_s = 0;
  for (;;) {
    Timer timer;
    for (int i = 0; i < iters; ++i) g_sink += RunKernelOnce(kernel, ops);
    pilot_s = timer.Seconds();
    if (pilot_s * 1e3 >= min_ms / 8 || iters > (1 << 28)) break;
    iters *= 2;
  }
  double best_s_per_iter = pilot_s / iters;
  for (int block = 0; block < 3; ++block) {
    Timer timer;
    for (int i = 0; i < iters; ++i) g_sink += RunKernelOnce(kernel, ops);
    best_s_per_iter = std::min(best_s_per_iter, timer.Seconds() / iters);
  }
  return best_s_per_iter * 1e9 / static_cast<double>(ops.work);
}

KernelCostTable MeasureLevel(SimdLevel level, double min_ms) {
  ForceSimdLevel(level);
  KernelCostTable table{};
  for (int k = 0; k < kNumSetKernels; ++k) {
    // One deterministic stream per kernel so every level times the same
    // operand shapes and the per-level differences are the kernels'.
    Rng rng(1000 + static_cast<uint64_t>(k));
    bool measured[kNumWorkBuckets] = {};
    for (int b = 1; b < kNumWorkBuckets; ++b) {
      const Operands ops = BuildOperands(static_cast<SetKernel>(k), b, rng);
      // Record under the bucket the realized work actually lands in —
      // kernels with a work floor (galloping's skew multiplier) cannot
      // hit the smallest targets, and mislabeling those rows would feed
      // the dispatcher fiction exactly where calls are densest.
      const int actual = WorkBucket(ops.work);
      const double ns = MeasureCell(static_cast<SetKernel>(k), ops, min_ms);
      if (!measured[actual] || ns < table.ns_per_unit[k][actual]) {
        table.ns_per_unit[k][actual] = ns;
        measured[actual] = true;
      }
    }
    // Fill unmeasured buckets from the nearest measured neighbor below
    // (or above, for a leading gap) so every lookup sees a sane value.
    double last = 0;
    bool seen = false;
    for (int b = 0; b < kNumWorkBuckets; ++b) {
      if (measured[b]) {
        last = table.ns_per_unit[k][b];
        seen = true;
      } else if (seen) {
        table.ns_per_unit[k][b] = last;
      }
    }
    for (int b = kNumWorkBuckets - 1; b >= 0; --b) {
      if (measured[b]) {
        last = table.ns_per_unit[k][b];
      } else if (table.ns_per_unit[k][b] == 0) {
        table.ns_per_unit[k][b] = last;
      }
    }
  }
  return table;
}

void EmitInc(const std::vector<KernelCostTable>& tables, int measured_levels) {
  std::printf(
      "// Default kernel cost tables: ns-per-work-unit per (ISA level, "
      "kernel,\n"
      "// log2-work bucket), measured by tools/cne_calibrate. Regenerate "
      "with:\n"
      "//   build/tools/cne_calibrate --emit-inc > "
      "src/graph/set_ops_calibration.inc\n");
  if (measured_levels < kNumSimdLevels) {
    std::printf(
        "//\n"
        "// Levels above %s were not executable on the calibrating machine;\n"
        "// their rows repeat the highest measured level.\n",
        SimdLevelName(static_cast<SimdLevel>(measured_levels - 1)));
  }
  std::printf(
      "\ninline constexpr KernelCostTable "
      "kDefaultCostTables[kNumSimdLevels] = {\n");
  for (int l = 0; l < kNumSimdLevels; ++l) {
    std::printf("    // ---- %s ----\n    {{\n",
                SimdLevelName(static_cast<SimdLevel>(l)));
    const KernelCostTable& t = tables[std::min(l, measured_levels - 1)];
    for (int k = 0; k < kNumSetKernels; ++k) {
      std::printf("        // %s\n        {",
                  SetKernelName(static_cast<SetKernel>(k)));
      for (int b = 0; b < kNumWorkBuckets; ++b) {
        std::printf("%s%.4g", b == 0 ? "" : ", ", t.ns_per_unit[k][b]);
      }
      std::printf("},\n");
    }
    std::printf("    }},\n");
  }
  std::printf("};\n");
}

void PrintHuman(const std::vector<KernelCostTable>& tables,
                int measured_levels) {
  for (int l = 0; l < measured_levels; ++l) {
    std::printf("== %s (ns per work unit) ==\n",
                SimdLevelName(static_cast<SimdLevel>(l)));
    std::printf("%-14s", "bucket");
    for (int b = 1; b < kNumWorkBuckets; ++b) std::printf("%8d", b);
    std::printf("\n");
    for (int k = 0; k < kNumSetKernels; ++k) {
      std::printf("%-14s", SetKernelName(static_cast<SetKernel>(k)));
      for (int b = 1; b < kNumWorkBuckets; ++b) {
        std::printf("%8.3f", tables[l].ns_per_unit[k][b]);
      }
      std::printf("\n");
    }
  }
}

int Main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const double min_ms = cl.GetDouble("min-ms", 4.0);
  const bool emit_inc = cl.GetBool("emit-inc");

  const std::vector<SimdLevel> levels = AvailableSimdLevels();
  std::vector<KernelCostTable> tables;
  for (SimdLevel level : levels) {
    if (!emit_inc) {
      std::fprintf(stderr, "calibrating %s...\n", SimdLevelName(level));
    }
    tables.push_back(MeasureLevel(level, min_ms));
  }
  ForceSimdLevel(DetectedSimdLevel());

  if (emit_inc) {
    EmitInc(tables, static_cast<int>(levels.size()));
  } else {
    PrintHuman(tables, static_cast<int>(levels.size()));
  }
  // Defeat whole-program DCE of the measurement loops.
  std::fprintf(stderr, "checksum %llu\n",
               static_cast<unsigned long long>(g_sink));
  return 0;
}

}  // namespace
}  // namespace cne

int main(int argc, char** argv) { return cne::Main(argc, argv); }
