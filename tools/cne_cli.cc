// cne — command-line driver for the library.
//
// Subcommands:
//   cne gen       --out=g.txt [--upper=N --lower=N --edges=M --model=chunglu|er
//                 --exponent=2.1 --seed=S] | [--dataset=RM]
//   cne stats     --graph=g.txt
//   cne estimate  --graph=g.txt --layer=upper|lower --u=ID --w=ID
//                 [--epsilon=2.0 --algorithm=MultiR-DS --runs=1 --seed=S]
//   cne experiment --graph=g.txt|--dataset=RM [--pairs=100 --epsilon=2.0
//                 --trials=1 --seed=S]
//
// Graph files are KONECT-style edge lists (or .bin for the binary format).

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/central_dp.h"
#include "core/estimator.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/datasets.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "tool_common.h"
#include "util/cli.h"
#include "util/statistics.h"
#include "util/table.h"

using namespace cne;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_cli <gen|stats|estimate|experiment> [--flags]\n"
               "see the header of tools/cne_cli.cc for the full flag list\n");
  return 2;
}

std::unique_ptr<CommonNeighborEstimator> MakeEstimator(
    const std::string& name) {
  if (name == "Naive") return std::make_unique<NaiveEstimator>();
  if (name == "OneR") return std::make_unique<OneREstimator>();
  if (name == "MultiR-SS") return std::make_unique<MultiRSSEstimator>();
  if (name == "MultiR-SS-Opt")
    return std::make_unique<MultiRSSOptEstimator>();
  if (name == "MultiR-DS") return MakeMultiRDS();
  if (name == "MultiR-DS-Basic") return MakeMultiRDSBasic();
  if (name == "MultiR-DS*") return MakeMultiRDSStar();
  if (name == "CentralDP") return std::make_unique<CentralDpEstimator>();
  throw std::runtime_error("unknown algorithm " + name);
}

int CmdGen(const CommandLine& cl) {
  const std::string out = cl.GetString("out");
  if (out.empty()) throw std::runtime_error("gen: need --out");
  BipartiteGraph graph;
  const std::string dataset = cl.GetString("dataset");
  if (!dataset.empty()) {
    auto spec = FindDataset(dataset);
    if (!spec) throw std::runtime_error("unknown dataset " + dataset);
    graph = MakeDataset(*spec);
  } else {
    const VertexId upper = static_cast<VertexId>(cl.GetInt("upper", 1000));
    const VertexId lower = static_cast<VertexId>(cl.GetInt("lower", 1000));
    const uint64_t edges = static_cast<uint64_t>(cl.GetInt("edges", 10000));
    Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 1)));
    const std::string model = cl.GetString("model", "chunglu");
    if (model == "er") {
      graph = ErdosRenyiBipartite(upper, lower, edges, rng);
    } else if (model == "chunglu") {
      graph = ChungLuPowerLaw(upper, lower, edges,
                              cl.GetDouble("exponent", 2.1), rng);
    } else {
      throw std::runtime_error("unknown model " + model);
    }
  }
  if (out.ends_with(".bin")) {
    WriteBinaryFile(graph, out);
  } else {
    WriteEdgeListFile(graph, out);
  }
  std::printf("wrote %s: %s\n", out.c_str(), graph.ToString().c_str());
  return 0;
}

int CmdStats(const CommandLine& cl) {
  const BipartiteGraph graph = tools::LoadGraph(cl);
  std::printf("%s\n", ToString(ComputeGraphStats(graph)).c_str());
  return 0;
}

int CmdEstimate(const CommandLine& cl) {
  const BipartiteGraph graph = tools::LoadGraph(cl);
  QueryPair query;
  query.layer = tools::ParseLayerFlag(cl, "upper");
  query.u = static_cast<VertexId>(cl.GetInt("u", 0));
  query.w = static_cast<VertexId>(cl.GetInt("w", 1));
  const double epsilon = cl.GetDouble("epsilon", 2.0);
  const int runs = static_cast<int>(cl.GetInt("runs", 1));
  const auto estimator =
      MakeEstimator(cl.GetString("algorithm", "MultiR-DS"));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 1)));

  const uint64_t truth =
      graph.CountCommonNeighbors(query.layer, query.u, query.w);
  RunningStats stats;
  for (int t = 0; t < runs; ++t) {
    stats.Add(estimator->Estimate(graph, query, epsilon, rng).estimate);
  }
  std::printf("exact C2(%u, %u) = %llu\n", query.u, query.w,
              static_cast<unsigned long long>(truth));
  std::printf("%s estimate (eps=%.2f, %d run%s): mean=%.3f stddev=%.3f\n",
              estimator->Name().c_str(), epsilon, runs, runs == 1 ? "" : "s",
              stats.Mean(), stats.StdDev());
  return 0;
}

int CmdExperiment(const CommandLine& cl) {
  const BipartiteGraph graph = tools::LoadGraph(cl);
  const Layer layer = tools::ParseLayerFlag(cl, "upper");
  ExperimentConfig config;
  config.epsilon = cl.GetDouble("epsilon", 2.0);
  config.trials_per_pair = static_cast<size_t>(cl.GetInt("trials", 1));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 7)));
  const auto pairs = SampleUniformPairs(
      graph, layer, static_cast<size_t>(cl.GetInt("pairs", 100)), rng);
  const auto roster = MakeAllEstimators();
  const auto metrics = RunAllEstimators(graph, roster, pairs, config, rng);

  TextTable table({"algorithm", "MAE", "MRE", "L2", "time(s)", "comm"});
  for (const EstimatorMetrics& m : metrics) {
    table.NewRow()
        .Add(m.estimator)
        .AddDouble(m.mean_absolute_error, 3)
        .AddDouble(m.mean_relative_error, 3)
        .AddSci(m.mean_squared_error, 2)
        .AddDouble(m.total_seconds, 3)
        .Add(FormatBytes(m.mean_comm_bytes));
  }
  if (cl.GetBool("csv")) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const CommandLine cl(argc - 1, argv + 1);
  try {
    if (command == "gen") return CmdGen(cl);
    if (command == "stats") return CmdStats(cl);
    if (command == "estimate") return CmdEstimate(cl);
    if (command == "experiment") return CmdExperiment(cl);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
