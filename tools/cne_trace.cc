// cne_trace — inspector for Chrome-trace-event JSON written by
// `cne_serve --trace-out` (obs/trace_export.h).
//
// Usage:
//   cne_trace FILE.json           # per-span aggregates + per-submit roots
//   cne_trace FILE.json --tree    # indented span trees, one per thread
//   cne_trace FILE.json --submit=N  # restrict to one submission's events
//
// The aggregate view answers "where did the time go" without opening a
// viewer: one row per span name with count / total / mean / max, followed
// by one row per traced submission (its root "submit" span, if retained).
// --tree reconstructs nesting from interval containment per tid — the
// same invariant scripts/check_trace_json.py gates in CI — and prints the
// spans indented by depth in timestamp order.
//
// Exit status: 0 on success, 2 when the file is unreadable, not JSON, or
// not a Chrome trace document (no "traceEvents" array, or an event
// missing name/ts/dur/tid).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "util/cli.h"
#include "util/json.h"

using cne::CommandLine;
using cne::JsonValue;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_trace FILE.json [--tree] [--submit=N]\n"
               "see the header of tools/cne_trace.cc for details\n");
  return 2;
}

struct Span {
  std::string name;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  long long tid = 0;
  long long submit = 0;
};

std::string FormatMicros(double micros) {
  char buf[32];
  if (micros < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0fns", micros * 1e3);
  } else if (micros < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", micros);
  } else if (micros < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", micros / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", micros / 1e6);
  }
  return buf;
}

/// Parses the document into spans. Returns false (with a message) when the
/// file is not a Chrome trace: unlike cne_metrics this tool is strict —
/// the producer is our own serializer, so any shape surprise is a bug.
bool LoadSpans(const std::string& path, std::vector<Span>* spans) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  JsonValue doc;
  std::string error;
  if (!JsonValue::Parse(buffer.str(), &doc, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  const JsonValue* events = doc.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    std::fprintf(stderr, "error: %s has no traceEvents array\n",
                 path.c_str());
    return false;
  }
  for (size_t i = 0; i < events->AsArray().size(); ++i) {
    const JsonValue& e = events->AsArray()[i];
    const JsonValue* name = e.Find("name");
    const JsonValue* ts = e.Find("ts");
    const JsonValue* dur = e.Find("dur");
    const JsonValue* tid = e.Find("tid");
    if (name == nullptr || !name->IsString() || ts == nullptr ||
        !ts->IsNumber() || dur == nullptr || !dur->IsNumber() ||
        tid == nullptr || !tid->IsNumber()) {
      std::fprintf(stderr,
                   "error: %s: traceEvents[%zu] is missing name/ts/dur/tid\n",
                   path.c_str(), i);
      return false;
    }
    Span span;
    span.name = name->AsString();
    span.ts = ts->AsDouble();
    span.dur = dur->AsDouble();
    span.tid = static_cast<long long>(tid->AsDouble());
    span.submit = static_cast<long long>(e["args"]["submit"].AsDouble());
    spans->push_back(std::move(span));
  }
  return true;
}

void PrintAggregates(const std::vector<Span>& spans) {
  struct Agg {
    uint64_t count = 0;
    double total = 0.0;
    double max = 0.0;
  };
  std::map<std::string, Agg> by_name;
  for (const Span& s : spans) {
    Agg& agg = by_name[s.name];
    ++agg.count;
    agg.total += s.dur;
    agg.max = std::max(agg.max, s.dur);
  }
  std::printf("%-14s %8s %10s %10s %10s\n", "span", "count", "total",
              "mean", "max");
  for (const auto& [name, agg] : by_name) {
    std::printf("%-14s %8llu %10s %10s %10s\n", name.c_str(),
                static_cast<unsigned long long>(agg.count),
                FormatMicros(agg.total).c_str(),
                FormatMicros(agg.total / static_cast<double>(agg.count))
                    .c_str(),
                FormatMicros(agg.max).c_str());
  }
}

void PrintSubmits(const std::vector<Span>& spans) {
  std::map<long long, const Span*> roots;
  for (const Span& s : spans) {
    if (s.name == "submit") roots.emplace(s.submit, &s);
  }
  if (roots.empty()) return;
  std::printf("\ntraced submissions:\n");
  for (const auto& [submit, root] : roots) {
    std::printf("  submit %-6lld %10s (tid %lld, ts %s)\n", submit,
                FormatMicros(root->dur).c_str(), root->tid,
                FormatMicros(root->ts).c_str());
  }
}

void PrintTree(const std::vector<Span>& spans) {
  // Group by tid; within one thread spans strictly nest, so a stack of
  // open intervals gives the depth of each span in timestamp order.
  std::map<long long, std::vector<const Span*>> by_tid;
  for (const Span& s : spans) by_tid[s.tid].push_back(&s);
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(), [](const Span* a, const Span* b) {
      if (a->ts != b->ts) return a->ts < b->ts;
      return a->dur > b->dur;
    });
    std::printf("tid %lld:\n", tid);
    std::vector<double> open_ends;
    for (const Span* s : list) {
      while (!open_ends.empty() && s->ts >= open_ends.back()) {
        open_ends.pop_back();
      }
      std::printf("  %*s%-*s %10s  submit=%lld\n",
                  static_cast<int>(2 * open_ends.size()), "",
                  std::max(1, 20 - static_cast<int>(2 * open_ends.size())),
                  s->name.c_str(), FormatMicros(s->dur).c_str(), s->submit);
      open_ends.push_back(s->ts + s->dur);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  if (cl.positional().size() != 1) return Usage();

  std::vector<Span> spans;
  if (!LoadSpans(cl.positional()[0], &spans)) return 2;
  if (spans.empty()) {
    std::printf("no trace events\n");
    return 0;
  }
  if (cl.Has("submit")) {
    const long long wanted = cl.GetInt("submit", 0);
    std::vector<Span> filtered;
    for (Span& s : spans) {
      if (s.submit == wanted) filtered.push_back(std::move(s));
    }
    spans = std::move(filtered);
    if (spans.empty()) {
      std::printf("no trace events for submit %lld\n", wanted);
      return 0;
    }
  }

  if (cl.GetBool("tree")) {
    PrintTree(spans);
    return 0;
  }
  PrintAggregates(spans);
  PrintSubmits(spans);
  return 0;
}
