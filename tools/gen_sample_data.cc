// Regenerates data/sample_userpage.txt, the bundled sample dataset that
// tests/eval/sample_data_test.cc ingests. The file is committed, so this
// tool only needs rerunning if the Chung–Lu generator or the text writer
// changes; in that case update the expectations in sample_data_test.cc to
// the printed shape.
//
//   ./gen_sample_data [--out=data/sample_userpage.txt] [--seed=1]

#include <cstdio>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const std::string out = cl.GetString("out", "data/sample_userpage.txt");
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 1)));

  // 120 users x 300 pages, power-law degrees; with seed 1 the dedup'd
  // graph has exactly 1400 edges (the shape sample_data_test.cc expects).
  const BipartiteGraph g = ChungLuPowerLaw(120, 300, 1400, 2.1, rng);
  WriteEdgeListFile(g, out);

  const BipartiteGraph back = ReadEdgeListFile(out);
  std::printf("wrote %s: |U|=%u |L|=%u m=%llu\n", out.c_str(),
              static_cast<unsigned>(back.NumUpper()),
              static_cast<unsigned>(back.NumLower()),
              static_cast<unsigned long long>(back.NumEdges()));
  return 0;
}
