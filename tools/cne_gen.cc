// cne_gen: seeded Chung–Lu bipartite dataset generator for the scale
// harness (src/graph/synthetic.h).
//
// Generates (or reuses from the on-disk edge cache) a power-law bipartite
// graph shaped like a paper Table 2 row and reports its shape and degree
// statistics. The same spec + seed always produces the same graph, byte
// for byte, so benches and CI can share cached datasets.
//
// Usage:
//   ./cne_gen --upper=105300 --lower=340500 --edges=1100000
//             [--exponent=2.1] [--exponent-lower=...] [--seed=1]
//   ./cne_gen --preset=BX [--scale-edges=1000000]
//   Common flags: [--cache-dir=DIR] [--out=FILE --format=text|bin]
//                 [--stats] [--json]
//
// --preset names a Table 2 dataset code (eval/datasets.h); its generated
// shape becomes the spec. --scale-edges rescales any shape to a target
// draw count (edges linear, vertices by sqrt — density-preserving).
// Exit code 0 on success, 1 on bad flags or IO failure.

#include <chrono>
#include <cstdio>
#include <exception>
#include <string>

#include "eval/datasets.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "graph/synthetic.h"
#include "util/cli.h"

using namespace cne;

namespace {

SyntheticSpec SpecFromFlags(const CommandLine& cl) {
  SyntheticSpec spec;
  const std::string preset = cl.GetString("preset");
  if (!preset.empty()) {
    const auto ds = FindDataset(preset);
    if (!ds) throw std::runtime_error("unknown --preset code " + preset);
    spec.num_upper = static_cast<VertexId>(ds->gen_upper);
    spec.num_lower = static_cast<VertexId>(ds->gen_lower);
    spec.num_edges = ds->gen_edges;
    spec.exponent_upper = ds->exponent;
    spec.exponent_lower = ds->exponent;
    spec.seed = ds->seed;
  }
  spec.num_upper =
      static_cast<VertexId>(cl.GetInt("upper", spec.num_upper));
  spec.num_lower =
      static_cast<VertexId>(cl.GetInt("lower", spec.num_lower));
  spec.num_edges =
      static_cast<uint64_t>(cl.GetInt("edges", spec.num_edges));
  spec.exponent_upper = cl.GetDouble("exponent", spec.exponent_upper);
  spec.exponent_lower =
      cl.GetDouble("exponent-lower", spec.exponent_upper);
  spec.seed = static_cast<uint64_t>(cl.GetInt("seed", spec.seed));
  if (cl.Has("scale-edges")) {
    const uint64_t target =
        static_cast<uint64_t>(cl.GetInt("scale-edges", 0));
    spec = ScaledShapeSpec(spec.num_upper, spec.num_lower, spec.num_edges,
                           target, spec.exponent_upper, spec.seed);
  }
  if (spec.num_upper == 0 || spec.num_lower == 0 || spec.num_edges == 0) {
    throw std::runtime_error(
        "need --upper/--lower/--edges (or --preset); see header comment");
  }
  return spec;
}

void PrintJson(const SyntheticSpec& spec, const EdgeCacheEntry& entry,
               const GraphStats& stats, double build_seconds) {
  std::printf("{\n");
  std::printf("  \"spec\": {\"upper\": %u, \"lower\": %u, \"draws\": %llu, "
              "\"exponent_upper\": %.6g, \"exponent_lower\": %.6g, "
              "\"seed\": %llu},\n",
              spec.num_upper, spec.num_lower,
              static_cast<unsigned long long>(spec.num_edges),
              spec.exponent_upper, spec.exponent_lower,
              static_cast<unsigned long long>(spec.seed));
  std::printf("  \"cache\": {\"path\": \"%s\", \"hit\": %s, "
              "\"file_bytes\": %llu},\n",
              entry.path.c_str(), entry.generated ? "false" : "true",
              static_cast<unsigned long long>(entry.file_bytes));
  std::printf("  \"graph\": {\"edges\": %llu, \"density\": %.6g,\n",
              static_cast<unsigned long long>(stats.num_edges),
              stats.density);
  std::printf("    \"upper\": {\"vertices\": %u, \"max_degree\": %u, "
              "\"avg_degree\": %.6g, \"isolated\": %llu},\n",
              stats.upper.num_vertices, stats.upper.max_degree,
              stats.upper.average_degree,
              static_cast<unsigned long long>(stats.upper.isolated));
  std::printf("    \"lower\": {\"vertices\": %u, \"max_degree\": %u, "
              "\"avg_degree\": %.6g, \"isolated\": %llu}},\n",
              stats.lower.num_vertices, stats.lower.max_degree,
              stats.lower.average_degree,
              static_cast<unsigned long long>(stats.lower.isolated));
  std::printf("  \"build_seconds\": %.3f\n}\n", build_seconds);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CommandLine cl(argc, argv);
    const SyntheticSpec spec = SpecFromFlags(cl);
    const std::string cache_dir = cl.GetString("cache-dir");

    const auto t0 = std::chrono::steady_clock::now();
    EdgeCacheEntry entry;
    const BipartiteGraph graph = BuildSyntheticGraph(spec, cache_dir, &entry);
    const double build_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const GraphStats stats = ComputeGraphStats(graph);
    if (cl.GetBool("json")) {
      PrintJson(spec, entry, stats, build_seconds);
    } else {
      std::printf("%s\n", spec.Describe().c_str());
      std::printf("cache %s: %s (%llu bytes)\n",
                  entry.generated ? "miss" : "hit", entry.path.c_str(),
                  static_cast<unsigned long long>(entry.file_bytes));
      std::printf("built in %.3fs: %llu distinct edges (%.2f%% of draws)\n",
                  build_seconds,
                  static_cast<unsigned long long>(stats.num_edges),
                  100.0 * static_cast<double>(stats.num_edges) /
                      static_cast<double>(spec.num_edges));
      if (cl.GetBool("stats")) {
        std::printf("%s\n", ToString(stats).c_str());
      }
    }

    const std::string out = cl.GetString("out");
    if (!out.empty()) {
      const std::string format = cl.GetString("format", "text");
      if (format == "bin") {
        WriteBinaryFile(graph, out);
      } else if (format == "text") {
        WriteEdgeListFile(graph, out);
      } else {
        throw std::runtime_error("--format must be 'text' or 'bin', got '" +
                                 format + "'");
      }
      std::printf("wrote %s (%s)\n", out.c_str(), format.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cne_gen: %s\n", e.what());
    return 1;
  }
}
