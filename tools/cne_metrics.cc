// cne_metrics — pretty-print or diff metrics JSON for regression triage.
//
// Usage:
//   cne_metrics FILE.json                  # phase table + counters
//   cne_metrics BASELINE.json CURRENT.json # per-phase quantile diff
//
// Accepts either a bare metrics object (`cne_serve --metrics-json`) or any
// JSON document carrying one under a top-level "metrics" key (`cne_serve
// --json` output). The pretty-printer also renders the optional
// "exemplars" (per-phase slowest samples with capture context) and
// "budget" (privacy-budget burn-down) sections when present. The diff
// prints the relative change of every shared phase's count, p50, p99, and
// p999 (positive = current is slower) and the delta of every shared
// counter; phases or counters present on only one side are listed as
// added/removed. Exit status: 0 on success, 2 on unreadable or malformed
// input. The diff never fails the process — it is a triage lens, not a CI
// gate (scripts/check_bench_scale.py gates).
//
// Tolerance: snapshots from different builds or metrics levels disagree
// on shape — a counters-only snapshot has no "phases", an older build may
// lack a quantile field, a newer one may carry counters with non-numeric
// values. Both modes skip what they cannot interpret with a note instead
// of failing, so a diff across versions stays useful.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

using cne::JsonValue;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_metrics FILE.json            (pretty-print)\n"
               "       cne_metrics BASE.json CUR.json   (diff)\n");
  return 2;
}

/// Whether `doc` looks like a metrics snapshot. Any of the snapshot's
/// top-level sections counts, so a counters-only snapshot (metrics level
/// `counters`) or a stripped-down document still loads.
bool LooksLikeMetrics(const JsonValue& doc) {
  return doc.Find("phases") != nullptr || doc.Find("counters") != nullptr ||
         doc.Find("metrics_version") != nullptr;
}

/// The metrics object of a parsed document: the document itself when it
/// looks like a snapshot, else its "metrics" member.
const JsonValue* MetricsRoot(const JsonValue& doc) {
  if (LooksLikeMetrics(doc)) return &doc;
  const JsonValue* nested = doc.Find("metrics");
  if (nested != nullptr && LooksLikeMetrics(*nested)) return nested;
  return nullptr;
}

bool LoadMetrics(const std::string& path, JsonValue* doc,
                 const JsonValue** metrics) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!JsonValue::Parse(buffer.str(), doc, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  *metrics = MetricsRoot(*doc);
  if (*metrics == nullptr) {
    std::fprintf(stderr, "error: %s carries no metrics object\n",
                 path.c_str());
    return false;
  }
  return true;
}

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

/// A phase entry the table/diff can interpret: an object with a string
/// name. Quantile fields may still be individually absent (older builds);
/// those render/diff as skips, not failures.
bool UsablePhase(const JsonValue& phase) {
  const JsonValue* name = phase.Find("name");
  return name != nullptr && name->IsString();
}

bool HasQuantiles(const JsonValue& phase) {
  for (const char* key : {"count", "p50_seconds", "p99_seconds",
                          "p999_seconds"}) {
    const JsonValue* field = phase.Find(key);
    if (field == nullptr || !field->IsNumber()) return false;
  }
  return true;
}

void PrintCounters(const JsonValue& metrics) {
  const auto& counters = metrics["counters"].AsObject();
  if (counters.empty()) return;
  std::vector<std::string> skipped;
  std::printf("counters:");
  for (const auto& [name, value] : counters) {
    if (!value.IsNumber()) {
      skipped.push_back(name);
      continue;
    }
    std::printf(" %s=%.0f", name.c_str(), value.AsDouble());
  }
  std::printf("\n");
  for (const std::string& name : skipped) {
    std::printf("note: counter %s is not numeric; skipped\n", name.c_str());
  }
}

void PrintExemplars(const JsonValue& metrics) {
  for (const auto& [phase, list] : metrics["exemplars"].AsObject()) {
    std::printf("exemplars[%s]: (slowest retained samples)\n", phase.c_str());
    for (const JsonValue& e : list.AsArray()) {
      std::printf("  %s submit=%.0f",
                  FormatDuration(e["seconds"].AsDouble()).c_str(),
                  e["submit"].AsDouble());
      if (e.Find("u") != nullptr) {
        std::printf(" layer=%.0f u=%.0f w=%.0f", e["layer"].AsDouble(),
                    e["u"].AsDouble(), e["w"].AsDouble());
      }
      if (e.Find("kernel") != nullptr) {
        std::printf(" kernel=%s", e["kernel"].AsString().c_str());
      }
      if (e.Find("repr_u") != nullptr) {
        std::printf(" operands=%s[%.0f]", e["repr_u"].AsString().c_str(),
                    e["size_u"].AsDouble());
        if (e.Find("repr_w") != nullptr) {
          std::printf("x%s[%.0f]", e["repr_w"].AsString().c_str(),
                      e["size_w"].AsDouble());
        }
      }
      if (e.Find("simd") != nullptr) {
        std::printf(" simd=%s", e["simd"].AsString().c_str());
      }
      std::printf("\n");
    }
  }
}

void PrintBudget(const JsonValue& metrics) {
  const JsonValue* budget = metrics.Find("budget");
  if (budget == nullptr) return;
  const JsonValue& b = *budget;
  std::printf("budget burn-down:\n");
  std::printf("  lifetime=%g  charged=%.0f vertices  exhausted=%.0f\n",
              b["lifetime_budget"].AsDouble(),
              b["charged_vertices"].AsDouble(),
              b["exhausted_vertices"].AsDouble());
  std::printf("  spent=%g (rr=%g laplace=%g)  min_remaining=%g  "
              "sum_remaining=%g\n",
              b["total_spent"].AsDouble(), b["spent_rr"].AsDouble(),
              b["spent_laplace"].AsDouble(), b["min_remaining"].AsDouble(),
              b["sum_remaining"].AsDouble());
  const double projected = b["projected_submits_to_exhaustion"].AsDouble();
  if (projected >= 0.0) {
    std::printf("  projected submits to exhaustion: %.1f\n", projected);
  }
  const auto& hist = b["residual_histogram"].AsArray();
  if (!hist.empty()) {
    std::printf("  residual-eps histogram (exhausted .. full):");
    for (const JsonValue& bin : hist) std::printf(" %.0f", bin.AsDouble());
    std::printf("\n");
  }
}

void PrintTable(const JsonValue& metrics) {
  if (metrics.Find("phases") == nullptr) {
    std::printf("note: no phases section (counters-only snapshot?)\n");
  } else {
    std::printf("%-14s %10s %10s %9s %9s %9s %9s\n", "phase", "count",
                "total", "p50", "p99", "p999", "max");
    for (const JsonValue& phase : metrics["phases"].AsArray()) {
      if (!UsablePhase(phase)) {
        std::printf("note: skipping malformed phase entry\n");
        continue;
      }
      std::printf("%-14s %10.0f %10s %9s %9s %9s %9s\n",
                  phase["name"].AsString().c_str(), phase["count"].AsDouble(),
                  FormatDuration(phase["total_seconds"].AsDouble()).c_str(),
                  FormatDuration(phase["p50_seconds"].AsDouble()).c_str(),
                  FormatDuration(phase["p99_seconds"].AsDouble()).c_str(),
                  FormatDuration(phase["p999_seconds"].AsDouble()).c_str(),
                  FormatDuration(phase["max_seconds"].AsDouble()).c_str());
    }
  }
  PrintCounters(metrics);
  PrintExemplars(metrics);
  PrintBudget(metrics);
}

const JsonValue* FindPhase(const JsonValue& metrics, const std::string& name) {
  for (const JsonValue& phase : metrics["phases"].AsArray()) {
    if (phase["name"].AsString() == name) return &phase;
  }
  return nullptr;
}

std::string Change(double base, double current) {
  char buf[48];
  if (base == 0.0 && current == 0.0) {
    return "      =";
  }
  if (base == 0.0) {
    return "    new";
  }
  std::snprintf(buf, sizeof(buf), "%+6.1f%%",
                100.0 * (current - base) / base);
  return buf;
}

void PrintDiff(const JsonValue& base, const JsonValue& current) {
  if (base.Find("phases") == nullptr || current.Find("phases") == nullptr) {
    std::printf("note: %s side carries no phases; skipping the phase diff\n",
                base.Find("phases") == nullptr
                    ? (current.Find("phases") == nullptr ? "neither" : "base")
                    : "current");
  }
  std::printf("%-14s %12s %9s %9s %9s   (current p50/p99/p999 vs base; "
              "positive = slower)\n",
              "phase", "count", "p50", "p99", "p999");
  for (const JsonValue& base_phase : base["phases"].AsArray()) {
    if (!UsablePhase(base_phase)) {
      std::printf("note: skipping malformed base phase entry\n");
      continue;
    }
    const std::string& name = base_phase["name"].AsString();
    const JsonValue* cur_phase = FindPhase(current, name);
    if (cur_phase == nullptr) {
      std::printf("%-14s removed\n", name.c_str());
      continue;
    }
    if (!HasQuantiles(base_phase) || !HasQuantiles(*cur_phase)) {
      std::printf("%-14s skipped (missing quantile fields on one side)\n",
                  name.c_str());
      continue;
    }
    char count_change[48];
    std::snprintf(count_change, sizeof(count_change), "%.0f->%.0f",
                  base_phase["count"].AsDouble(),
                  (*cur_phase)["count"].AsDouble());
    std::printf(
        "%-14s %12s %9s %9s %9s   [%s -> %s p99]\n", name.c_str(),
        count_change,
        Change(base_phase["p50_seconds"].AsDouble(),
               (*cur_phase)["p50_seconds"].AsDouble())
            .c_str(),
        Change(base_phase["p99_seconds"].AsDouble(),
               (*cur_phase)["p99_seconds"].AsDouble())
            .c_str(),
        Change(base_phase["p999_seconds"].AsDouble(),
               (*cur_phase)["p999_seconds"].AsDouble())
            .c_str(),
        FormatDuration(base_phase["p99_seconds"].AsDouble()).c_str(),
        FormatDuration((*cur_phase)["p99_seconds"].AsDouble()).c_str());
  }
  for (const JsonValue& cur_phase : current["phases"].AsArray()) {
    if (!UsablePhase(cur_phase)) {
      std::printf("note: skipping malformed current phase entry\n");
      continue;
    }
    const std::string& name = cur_phase["name"].AsString();
    if (FindPhase(base, name) == nullptr) {
      std::printf("%-14s added (p99 %s)\n", name.c_str(),
                  FormatDuration(cur_phase["p99_seconds"].AsDouble()).c_str());
    }
  }
  for (const auto& [name, base_value] : base["counters"].AsObject()) {
    const JsonValue* cur_value = current["counters"].Find(name);
    if (cur_value == nullptr) {
      std::printf("counter %-20s removed\n", name.c_str());
      continue;
    }
    if (!base_value.IsNumber() || !cur_value->IsNumber()) {
      std::printf("counter %-20s skipped (non-numeric value)\n",
                  name.c_str());
      continue;
    }
    std::printf("counter %-20s %.0f -> %.0f (%+.0f)\n", name.c_str(),
                base_value.AsDouble(), cur_value->AsDouble(),
                cur_value->AsDouble() - base_value.AsDouble());
  }
  for (const auto& [name, cur_value] : current["counters"].AsObject()) {
    if (base["counters"].Find(name) == nullptr) {
      std::printf("counter %-20s added (%.0f)\n", name.c_str(),
                  cur_value.AsDouble());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    paths.emplace_back(argv[i]);
  }
  if (paths.empty() || paths.size() > 2) return Usage();

  JsonValue doc_a;
  const JsonValue* metrics_a = nullptr;
  if (!LoadMetrics(paths[0], &doc_a, &metrics_a)) return 2;

  if (paths.size() == 1) {
    PrintTable(*metrics_a);
    return 0;
  }

  JsonValue doc_b;
  const JsonValue* metrics_b = nullptr;
  if (!LoadMetrics(paths[1], &doc_b, &metrics_b)) return 2;
  PrintDiff(*metrics_a, *metrics_b);
  return 0;
}
