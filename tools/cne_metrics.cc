// cne_metrics — pretty-print or diff metrics JSON for regression triage.
//
// Usage:
//   cne_metrics FILE.json                  # phase table + counters
//   cne_metrics BASELINE.json CURRENT.json # per-phase quantile diff
//
// Accepts either a bare metrics object (`cne_serve --metrics-json`) or any
// JSON document carrying one under a top-level "metrics" key (`cne_serve
// --json` output). The diff prints the relative change of every shared
// phase's count, p50, p99, and p999 (positive = current is slower) and
// the delta of every shared counter; phases or counters present on only
// one side are listed as added/removed. Exit status: 0 on success, 2 on
// unreadable or malformed input. The diff never fails the process — it is
// a triage lens, not a CI gate (scripts/check_bench_scale.py gates).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/json.h"

using cne::JsonValue;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: cne_metrics FILE.json            (pretty-print)\n"
               "       cne_metrics BASE.json CUR.json   (diff)\n");
  return 2;
}

/// The metrics object of a parsed document: the document itself when it
/// has "phases", else its "metrics" member.
const JsonValue* MetricsRoot(const JsonValue& doc) {
  if (doc.Find("phases") != nullptr) return &doc;
  const JsonValue* nested = doc.Find("metrics");
  if (nested != nullptr && nested->Find("phases") != nullptr) return nested;
  return nullptr;
}

bool LoadMetrics(const std::string& path, JsonValue* doc,
                 const JsonValue** metrics) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  if (!JsonValue::Parse(buffer.str(), doc, &error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  *metrics = MetricsRoot(*doc);
  if (*metrics == nullptr) {
    std::fprintf(stderr, "error: %s carries no metrics object\n",
                 path.c_str());
    return false;
  }
  return true;
}

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

void PrintTable(const JsonValue& metrics) {
  std::printf("%-14s %10s %10s %9s %9s %9s %9s\n", "phase", "count", "total",
              "p50", "p99", "p999", "max");
  for (const JsonValue& phase : metrics["phases"].AsArray()) {
    std::printf("%-14s %10.0f %10s %9s %9s %9s %9s\n",
                phase["name"].AsString().c_str(), phase["count"].AsDouble(),
                FormatDuration(phase["total_seconds"].AsDouble()).c_str(),
                FormatDuration(phase["p50_seconds"].AsDouble()).c_str(),
                FormatDuration(phase["p99_seconds"].AsDouble()).c_str(),
                FormatDuration(phase["p999_seconds"].AsDouble()).c_str(),
                FormatDuration(phase["max_seconds"].AsDouble()).c_str());
  }
  const auto& counters = metrics["counters"].AsObject();
  if (!counters.empty()) {
    std::printf("counters:");
    for (const auto& [name, value] : counters) {
      std::printf(" %s=%.0f", name.c_str(), value.AsDouble());
    }
    std::printf("\n");
  }
}

const JsonValue* FindPhase(const JsonValue& metrics, const std::string& name) {
  for (const JsonValue& phase : metrics["phases"].AsArray()) {
    if (phase["name"].AsString() == name) return &phase;
  }
  return nullptr;
}

std::string Change(double base, double current) {
  char buf[48];
  if (base == 0.0 && current == 0.0) {
    return "      =";
  }
  if (base == 0.0) {
    return "    new";
  }
  std::snprintf(buf, sizeof(buf), "%+6.1f%%",
                100.0 * (current - base) / base);
  return buf;
}

void PrintDiff(const JsonValue& base, const JsonValue& current) {
  std::printf("%-14s %12s %9s %9s %9s   (current p50/p99/p999 vs base; "
              "positive = slower)\n",
              "phase", "count", "p50", "p99", "p999");
  for (const JsonValue& base_phase : base["phases"].AsArray()) {
    const std::string& name = base_phase["name"].AsString();
    const JsonValue* cur_phase = FindPhase(current, name);
    if (cur_phase == nullptr) {
      std::printf("%-14s removed\n", name.c_str());
      continue;
    }
    char count_change[48];
    std::snprintf(count_change, sizeof(count_change), "%.0f->%.0f",
                  base_phase["count"].AsDouble(),
                  (*cur_phase)["count"].AsDouble());
    std::printf(
        "%-14s %12s %9s %9s %9s   [%s -> %s p99]\n", name.c_str(),
        count_change,
        Change(base_phase["p50_seconds"].AsDouble(),
               (*cur_phase)["p50_seconds"].AsDouble())
            .c_str(),
        Change(base_phase["p99_seconds"].AsDouble(),
               (*cur_phase)["p99_seconds"].AsDouble())
            .c_str(),
        Change(base_phase["p999_seconds"].AsDouble(),
               (*cur_phase)["p999_seconds"].AsDouble())
            .c_str(),
        FormatDuration(base_phase["p99_seconds"].AsDouble()).c_str(),
        FormatDuration((*cur_phase)["p99_seconds"].AsDouble()).c_str());
  }
  for (const JsonValue& cur_phase : current["phases"].AsArray()) {
    const std::string& name = cur_phase["name"].AsString();
    if (FindPhase(base, name) == nullptr) {
      std::printf("%-14s added (p99 %s)\n", name.c_str(),
                  FormatDuration(cur_phase["p99_seconds"].AsDouble()).c_str());
    }
  }
  for (const auto& [name, base_value] : base["counters"].AsObject()) {
    const JsonValue* cur_value = current["counters"].Find(name);
    if (cur_value == nullptr) {
      std::printf("counter %-20s removed\n", name.c_str());
      continue;
    }
    std::printf("counter %-20s %.0f -> %.0f (%+.0f)\n", name.c_str(),
                base_value.AsDouble(), cur_value->AsDouble(),
                cur_value->AsDouble() - base_value.AsDouble());
  }
  for (const auto& [name, cur_value] : current["counters"].AsObject()) {
    if (base["counters"].Find(name) == nullptr) {
      std::printf("counter %-20s added (%.0f)\n", name.c_str(),
                  cur_value.AsDouble());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    paths.emplace_back(argv[i]);
  }
  if (paths.empty() || paths.size() > 2) return Usage();

  JsonValue doc_a;
  const JsonValue* metrics_a = nullptr;
  if (!LoadMetrics(paths[0], &doc_a, &metrics_a)) return 2;

  if (paths.size() == 1) {
    PrintTable(*metrics_a);
    return 0;
  }

  JsonValue doc_b;
  const JsonValue* metrics_b = nullptr;
  if (!LoadMetrics(paths[1], &doc_b, &metrics_b)) return 2;
  PrintDiff(*metrics_a, *metrics_b);
  return 0;
}
