// Private "people who bought what you bought": rank candidate users by
// their estimated common-neighbor count with a source user under a total
// privacy budget, and report how much of the exact top-k survives.
//
//   ./private_topk [--users=500] [--items=2000] [--edges=15000] [--k=5]
//                  [--candidates=30] [--epsilon=40] [--seed=5]

#include <cstdio>
#include <vector>

#include "apps/topk.h"
#include "core/multir_ds.h"
#include "graph/generators.h"
#include "util/cli.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const VertexId users = static_cast<VertexId>(cl.GetInt("users", 500));
  const VertexId items = static_cast<VertexId>(cl.GetInt("items", 2000));
  const uint64_t edges = static_cast<uint64_t>(cl.GetInt("edges", 15000));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 5));
  const size_t num_candidates =
      static_cast<size_t>(cl.GetInt("candidates", 30));
  const double epsilon = cl.GetDouble("epsilon", 40.0);
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 5)));

  const BipartiteGraph graph =
      ChungLuPowerLaw(users, items, edges, 2.1, rng);
  std::printf("user-item graph: %s\n", graph.ToString().c_str());

  // Source: the highest-weight user (a heavy shopper) against a random
  // candidate set.
  const LayeredVertex source{Layer::kUpper, 0};
  std::vector<VertexId> candidates;
  for (uint64_t v : rng.SampleWithoutReplacement(users - 1, num_candidates)) {
    candidates.push_back(static_cast<VertexId>(v) + 1);  // skip the source
  }
  std::printf("source user %u (degree %u), %zu candidates, top-%zu, total "
              "eps=%.1f (%.2f per candidate)\n\n",
              source.id, graph.Degree(source), candidates.size(), k, epsilon,
              epsilon / static_cast<double>(candidates.size()));

  const TopKResult exact =
      ExactTopKCommonNeighbors(graph, source, candidates, k);
  auto estimator = MakeMultiRDSStar();
  const TopKResult priv = PrivateTopKCommonNeighbors(
      graph, *estimator, source, candidates, k, epsilon, rng);

  std::printf("%4s | %-18s | %-18s\n", "rank", "exact (user: C2)",
              "private (user: est)");
  for (size_t i = 0; i < k; ++i) {
    char exact_cell[32] = "-";
    char priv_cell[32] = "-";
    if (i < exact.ranked.size()) {
      std::snprintf(exact_cell, sizeof(exact_cell), "%u: %.0f",
                    exact.ranked[i].vertex, exact.ranked[i].score);
    }
    if (i < priv.ranked.size()) {
      std::snprintf(priv_cell, sizeof(priv_cell), "%u: %.1f",
                    priv.ranked[i].vertex, priv.ranked[i].score);
    }
    std::printf("%4zu | %-18s | %-18s\n", i + 1, exact_cell, priv_cell);
  }
  std::printf("\nrecall@%zu = %.2f\n", k, TopKRecall(exact, priv));
  std::printf(
      "Budget splits across candidates (sequential composition), so larger\n"
      "candidate sets need larger total budgets for the same ranking "
      "quality.\n");
  return 0;
}
