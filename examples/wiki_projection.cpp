// User-page analysis from the paper's introduction: project a user-page
// bipartite graph onto the user layer (connect users co-editing enough
// pages) under edge LDP, and report projection quality plus the graph's
// butterfly statistics.
//
//   ./wiki_projection [--users=400 --pages=1500 --edits=12000]
//                     [--threshold=3] [--epsilon=8] [--seed=9]

#include <cstdio>
#include <vector>

#include "apps/butterfly.h"
#include "apps/projection.h"
#include "core/multir_ds.h"
#include "graph/generators.h"
#include "util/cli.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const VertexId users = static_cast<VertexId>(cl.GetInt("users", 400));
  const VertexId pages = static_cast<VertexId>(cl.GetInt("pages", 1500));
  const uint64_t edits = static_cast<uint64_t>(cl.GetInt("edits", 12000));
  const double threshold = cl.GetDouble("threshold", 3.0);
  const double epsilon = cl.GetDouble("epsilon", 8.0);
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 9)));

  const BipartiteGraph graph =
      ChungLuPowerLaw(users, pages, edits, 2.1, rng);
  std::printf("user-page graph: %s\n", graph.ToString().c_str());
  std::printf("butterflies = %llu, caterpillars = %llu, bipartite "
              "clustering = %.4f\n\n",
              static_cast<unsigned long long>(ExactButterflies(graph)),
              static_cast<unsigned long long>(ExactCaterpillars(graph)),
              BipartiteClusteringCoefficient(graph));

  // Candidate pairs: restrict to the most active users so each user's
  // exposure (number of C2 protocols it joins) stays small.
  std::vector<VertexId> active;
  for (VertexId u = 0; u < users && active.size() < 25; ++u) {
    if (graph.Degree(Layer::kUpper, u) >= 8) active.push_back(u);
  }
  std::vector<QueryPair> candidates;
  for (size_t i = 0; i < active.size(); ++i) {
    for (size_t j = i + 1; j < active.size(); ++j) {
      candidates.push_back({Layer::kUpper, active[i], active[j]});
    }
  }
  std::printf("projecting %zu active users (%zu candidate pairs), "
              "threshold C2 >= %.0f, eps=%.1f per pair\n",
              active.size(), candidates.size(), threshold, epsilon);

  const auto exact = ExactProjection(graph, candidates, threshold);
  auto estimator = MakeMultiRDSStar();
  const auto priv = PrivateProjection(graph, candidates, threshold,
                                      *estimator, epsilon, rng);
  const ProjectionQuality q = CompareProjections(exact, priv);

  std::printf("\nexact projection: %zu edges; private projection: %zu "
              "edges\n", exact.size(), priv.size());
  std::printf("precision=%.3f recall=%.3f f1=%.3f\n", q.precision, q.recall,
              q.f1);
  std::printf(
      "\nThe projection is computed without any user revealing which pages\n"
      "they actually edited; thresholding the noisy counts is free\n"
      "post-processing.\n");
  return 0;
}
