// Contact-tracing scenario from the paper's introduction: a person-location
// bipartite graph where the number of commonly visited locations between
// two people is sensitive. This example compares all estimators on
// person pairs, showing how the multi-round algorithms make the private
// count usable while Naive drowns it in noise.
//
//   ./contact_tracing [--people=3000] [--places=800] [--visits=30000]
//                     [--epsilon=2.0] [--pairs=15] [--runs=30] [--seed=3]

#include <cstdio>
#include <vector>

#include "core/estimator.h"
#include "eval/query_sampler.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/statistics.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const VertexId people = static_cast<VertexId>(cl.GetInt("people", 3000));
  const VertexId places = static_cast<VertexId>(cl.GetInt("places", 800));
  const uint64_t visits = static_cast<uint64_t>(cl.GetInt("visits", 30000));
  const double epsilon = cl.GetDouble("epsilon", 2.0);
  const size_t pairs = static_cast<size_t>(cl.GetInt("pairs", 15));
  const int runs = static_cast<int>(cl.GetInt("runs", 30));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 3)));

  // People upper, locations lower. Power-law: few hub locations
  // (supermarkets) and many rarely-visited ones.
  const BipartiteGraph graph =
      ChungLuPowerLaw(people, places, visits, 2.1, rng);
  std::printf("person-location graph: %s\n", graph.ToString().c_str());
  std::printf("\"how many places did persons u and w both visit?\" under "
              "eps=%.2f edge LDP\n\n", epsilon);

  const auto queries = SampleUniformPairs(graph, Layer::kUpper, pairs, rng);
  const auto roster = MakeAllEstimators();

  std::printf("mean |error| per algorithm, averaged over %zu pairs x %d "
              "runs:\n", queries.size(), runs);
  for (const auto& estimator : roster) {
    RunningStats err;
    for (const QueryPair& q : queries) {
      const double truth = static_cast<double>(
          graph.CountCommonNeighbors(q.layer, q.u, q.w));
      for (int t = 0; t < runs; ++t) {
        err.Add(std::abs(
            estimator->Estimate(graph, q, epsilon, rng).estimate - truth));
      }
    }
    std::printf("  %-16s MAE = %8.3f\n", estimator->Name().c_str(),
                err.Mean());
  }
  std::printf(
      "\nThe multi-round estimators keep the common-place count usable for\n"
      "exposure screening; the Naive count on the noisy graph is dominated\n"
      "by the %u-location candidate pool.\n", places);
  return 0;
}
