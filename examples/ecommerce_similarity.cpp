// E-commerce scenario from the paper's introduction: a user-item network
// where disclosing identical items in two users' carts compromises
// privacy. This example computes private Jaccard/cosine similarity between
// user pairs with MultiR-DS supplying the common-neighbor estimates, and
// reports the error against the exact similarities.
//
//   ./ecommerce_similarity [--users=2000] [--items=5000] [--edges=40000]
//                          [--epsilon=2.0] [--pairs=20] [--seed=1]

#include <cstdio>

#include "apps/similarity.h"
#include "core/multir_ds.h"
#include "eval/query_sampler.h"
#include "graph/generators.h"
#include "util/cli.h"
#include "util/statistics.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const VertexId users = static_cast<VertexId>(cl.GetInt("users", 2000));
  const VertexId items = static_cast<VertexId>(cl.GetInt("items", 5000));
  const uint64_t edges = static_cast<uint64_t>(cl.GetInt("edges", 40000));
  const double epsilon = cl.GetDouble("epsilon", 2.0);
  const size_t pairs = static_cast<size_t>(cl.GetInt("pairs", 20));
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 1)));

  // Users are the upper layer ("who bought"), items the lower layer.
  const BipartiteGraph graph =
      ChungLuPowerLaw(users, items, edges, 2.1, rng);
  std::printf("user-item graph: %s\n", graph.ToString().c_str());
  std::printf("estimating Jaccard/cosine similarity under eps=%.2f edge "
              "LDP\n\n", epsilon);

  PrivateSimilarityEstimator similarity(MakeMultiRDS(),
                                        /*degree_fraction=*/0.2);
  const auto queries = SampleUniformPairs(graph, Layer::kUpper, pairs, rng);

  std::printf("%8s %8s %6s | %9s %9s | %9s %9s\n", "user u", "user w", "C2",
              "jacc(true)", "jacc(est)", "cos(true)", "cos(est)");
  RunningStats jaccard_err, cosine_err;
  for (const QueryPair& q : queries) {
    const SimilarityResult r = similarity.Estimate(graph, q, epsilon, rng);
    const double true_jaccard = ExactJaccard(graph, q);
    const double true_cosine = ExactCosine(graph, q);
    jaccard_err.Add(std::abs(r.jaccard - true_jaccard));
    cosine_err.Add(std::abs(r.cosine - true_cosine));
    std::printf("%8u %8u %6llu | %9.4f %9.4f | %9.4f %9.4f\n", q.u, q.w,
                static_cast<unsigned long long>(
                    graph.CountCommonNeighbors(q.layer, q.u, q.w)),
                true_jaccard, r.jaccard, true_cosine, r.cosine);
  }
  std::printf("\nmean |error|: jaccard=%.4f cosine=%.4f over %zu pairs\n",
              jaccard_err.Mean(), cosine_err.Mean(), queries.size());
  std::printf("No user's item list ever leaves their device unperturbed.\n");
  return 0;
}
