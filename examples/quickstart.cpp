// Quickstart: build a small bipartite graph, run every estimator on one
// query pair, and print the estimates next to the exact count.
//
//   ./quickstart [--epsilon=2.0] [--seed=42]

#include <cstdio>

#include "core/estimator.h"
#include "graph/graph_builder.h"
#include "util/cli.h"

using namespace cne;

int main(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  const double epsilon = cl.GetDouble("epsilon", 2.0);
  Rng rng(static_cast<uint64_t>(cl.GetInt("seed", 42)));

  // A user-item graph: 6 users (lower layer) x 8 items (upper layer).
  // Users 0 and 1 share items 0, 1, 2.
  GraphBuilder builder(/*num_upper=*/8, /*num_lower=*/6);
  builder.AddEdge(0, 0).AddEdge(1, 0).AddEdge(2, 0).AddEdge(3, 0);
  builder.AddEdge(0, 1).AddEdge(1, 1).AddEdge(2, 1).AddEdge(5, 1);
  builder.AddEdge(4, 2).AddEdge(5, 2);
  builder.AddEdge(6, 3).AddEdge(7, 4).AddEdge(3, 5);
  const BipartiteGraph graph = builder.Build();
  std::printf("graph: %s\n", graph.ToString().c_str());

  const QueryPair query{Layer::kLower, 0, 1};
  const uint64_t truth =
      graph.CountCommonNeighbors(query.layer, query.u, query.w);
  std::printf("query: users %u and %u, exact C2 = %llu, eps = %.2f\n\n",
              query.u, query.w, static_cast<unsigned long long>(truth),
              epsilon);

  std::printf("%-16s %10s %7s %12s\n", "algorithm", "estimate", "rounds",
              "comm(bytes)");
  for (const auto& estimator : MakeAllEstimators()) {
    const EstimateResult r = estimator->Estimate(graph, query, epsilon, rng);
    std::printf("%-16s %10.3f %7d %12.0f\n", estimator->Name().c_str(),
                r.estimate, r.rounds, r.TotalBytes());
  }
  std::printf(
      "\nNote: single protocol runs are noisy by design; rerun with other\n"
      "seeds or average repeated runs to see the estimators concentrate.\n");
  return 0;
}
