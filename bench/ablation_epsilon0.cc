// Ablation: the ε0 share of MultiR-DS. The paper fixes ε0 = 0.05ε for the
// degree-estimation round; this harness sweeps the fraction and reports
// the MAE, exposing the trade-off between degree-estimate quality (drives
// the allocation optimizer) and the budget left for the estimate itself.
// MultiR-DS* (public degrees, ε0 = 0) is the reference floor.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/multir_ds.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) options.datasets = {"RM", "DA", "TM"};
  bench::PrintHeader("Ablation", "epsilon0 fraction of MultiR-DS",
                     options);

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    const auto pairs =
        SampleUniformPairs(g, spec.query_layer, options.pairs, rng);
    ExperimentConfig config;
    config.epsilon = options.epsilon;
    config.trials_per_pair = options.trials;

    TextTable table({"eps0 fraction", "MAE"});
    for (double frac : {0.01, 0.025, 0.05, 0.1, 0.2, 0.4}) {
      MultiRDSOptions ds_options;
      ds_options.epsilon0_fraction = frac;
      ds_options.name = "MultiR-DS";
      MultiRDSEstimator ds(ds_options);
      Rng run_rng(options.seed + static_cast<uint64_t>(frac * 1e4));
      const EstimatorMetrics m = RunEstimator(g, ds, pairs, config, run_rng);
      table.NewRow().AddDouble(frac, 3).AddDouble(m.mean_absolute_error, 3);
    }
    auto star = MakeMultiRDSStar();
    Rng star_rng(options.seed + 424242);
    const EstimatorMetrics star_m =
        RunEstimator(g, *star, pairs, config, star_rng);

    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
    std::printf("MultiR-DS* (public degrees, eps0=0): MAE = %.3f\n",
                star_m.mean_absolute_error);
  }
  std::printf(
      "\nExpected: a shallow optimum around the paper's 0.05; very small\n"
      "eps0 hurts the allocation (noisy degrees), very large eps0 starves\n"
      "the estimate. MultiR-DS* lower-bounds all fractions.\n");
  return 0;
}
