// Ablation: the budget-allocation optimizer. Compares safeguarded Newton
// (the paper's choice), plain golden-section, and a brute-force grid on
// the double-source loss F(eps1, alpha) across degree configurations —
// solution quality (loss vs grid optimum) and iteration counts.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/allocation.h"
#include "core/theory.h"
#include "util/newton.h"
#include "util/table.h"
#include "util/timer.h"

using namespace cne;

namespace {

// Dense grid reference optimum.
double GridOptimum(double epsilon, double du, double dw) {
  double best = 1e300;
  for (double eps1 = 0.01; eps1 < epsilon; eps1 += 0.002) {
    const double eps2 = epsilon - eps1;
    const double alpha = OptimalAlpha(du, dw, eps1, eps2);
    best = std::min(best,
                    DoubleSourceExpectedL2(du, dw, alpha, eps1, eps2));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::PrintHeader("Ablation", "Newton vs golden-section vs grid search",
                     options);

  const double epsilon = options.epsilon;
  TextTable table({"du", "dw", "grid loss", "newton loss", "golden loss",
                   "newton iters", "newton us", "grid us"});
  for (auto [du, dw] : {std::pair{2.0, 2.0},
                        {5.0, 10.0},
                        {5.0, 100.0},
                        {50.0, 50.0},
                        {2.0, 2000.0},
                        {500.0, 800.0}}) {
    Timer tg;
    const double grid = GridOptimum(epsilon, du, dw);
    const double grid_us = tg.Seconds() * 1e6;

    Timer tn;
    const AllocationResult newton = OptimizeDoubleSource(epsilon, du, dw);
    const double newton_us = tn.Seconds() * 1e6;

    auto loss_at = [&](double eps1) {
      const double eps2 = epsilon - eps1;
      return DoubleSourceExpectedL2(
          du, dw, OptimalAlpha(du, dw, eps1, eps2), eps1, eps2);
    };
    const MinimizeResult golden = GoldenSectionMinimize(
        loss_at, 0.02 * epsilon, 0.98 * epsilon, 1e-8);

    table.NewRow()
        .AddDouble(du, 0)
        .AddDouble(dw, 0)
        .AddDouble(grid, 4)
        .AddDouble(newton.predicted_loss, 4)
        .AddDouble(golden.value, 4)
        .AddInt(newton.iterations)
        .AddDouble(newton_us, 1)
        .AddDouble(grid_us, 1);
  }
  options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::printf(
      "\nExpected: Newton matches the grid optimum to 4 decimals at a\n"
      "fraction of the evaluations; golden-section agrees (safeguard).\n");
  return 0;
}
