// Regenerates Fig. 6: (a) mean absolute error and (b) computational time
// of Naive, OneR, MultiR-SS, MultiR-DS, MultiR-DS*, and CentralDP across
// all 15 dataset analogs at ε = 2, on 100 uniformly sampled same-layer
// query pairs per dataset.

#include <iostream>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::PrintHeader("Figure 6", "MAE and time across datasets (eps = 2)",
                     options);

  const auto roster = MakeAllEstimators();
  std::vector<std::string> header = {"dataset"};
  for (const auto& e : roster) header.push_back(e->Name());
  TextTable mae_table(header);
  TextTable time_table(header);

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    const auto pairs =
        SampleUniformPairs(g, spec.query_layer, options.pairs, rng);
    ExperimentConfig config;
    config.epsilon = options.epsilon;
    config.trials_per_pair = options.trials;
    const auto metrics = RunAllEstimators(g, roster, pairs, config, rng);

    mae_table.NewRow().Add(spec.code);
    time_table.NewRow().Add(spec.code);
    for (const EstimatorMetrics& m : metrics) {
      mae_table.AddSci(m.mean_absolute_error, 2);
      time_table.AddDouble(m.total_seconds, 3);
    }
  }

  std::cout << "\n(a) mean absolute error\n";
  options.csv ? mae_table.PrintCsv(std::cout) : mae_table.Print(std::cout);
  std::cout << "\n(b) computational time (seconds, " << options.pairs
            << " pairs)\n";
  options.csv ? time_table.PrintCsv(std::cout) : time_table.Print(std::cout);
  std::cout
      << "\nExpected shape (paper): MultiR-SS/DS/DS* orders of magnitude\n"
         "below Naive and OneR on every dataset; MultiR-DS below MultiR-SS;\n"
         "MultiR-DS* slightly below MultiR-DS; CentralDP lowest. Time:\n"
         "Naive/OneR/MultiR-SS comparable, MultiR-DS higher (degree round).\n";
  return 0;
}
