// Extension experiment: concurrent query-service throughput. Runs a
// hot-set workload through QueryService at several thread counts and
// reports queries/second, cache sharing, and budget accounting as
// machine-readable JSON (stdout; progress goes to stderr), so CI can
// archive a perf trajectory across commits.
//
// Extra flags on top of the shared bench set:
//   --threads=1,2,4,8   thread counts to sweep
//   --algorithm=OneR    service algorithm (Naive|OneR|MultiR-SS|MultiR-DS)
//   --hot=64            hot-set size of the synthetic workload
//   --scale=1e5,1e6     edge-draw targets for the scale section: hot-set
//                       sweep over generated BX-shaped graphs, qps as the
//                       canonical scale metric
//   --out=path          also write the JSON to a file
//   --smoke             small CI configuration (one dataset, 2k queries,
//                       threads 1,2)
//
// Besides the per-dataset sweeps, a `thread_scaling` section sweeps the
// first dataset from 1 thread up to every core this process may run on
// and gates on the result: with 2+ cores available, peak throughput must
// beat the 1-thread baseline or the bench exits non-zero (a scaling
// regression — e.g. a new serial section — should fail CI loudly, not
// drift into the archive). On a 1-core machine the gate is skipped with a
// warning, since no sweep can demonstrate scaling there.
//
// The default workload is 10k queries over a 64-vertex hot set: the
// regime the service is built for, where almost every query is a cache
// hit on the shared noisy views and throughput is bounded by
// post-processing, not by randomized response.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <sched.h>
#endif

#include "bench_common.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/cli.h"
#include "util/cpu_features.h"

using namespace cne;

namespace {

// Cores this process may actually run on (the affinity mask, not the
// machine): a CI container pinned to one core must skip the scaling gate
// even when the host has dozens.
int CoresAvailable() {
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    return CPU_COUNT(&mask);
  }
#endif
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

struct ThreadResult {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  // Per-phase latency quantiles of this run's service (obs/metrics.h):
  // one histogram per thread count, so the JSON shows how tail latency
  // moves as the pool widens.
  std::string phases_json;
};

struct DatasetResult {
  std::string code;
  size_t queries = 0;
  VertexId hot_set = 0;
  uint64_t releases = 0;
  uint64_t rejected = 0;
  double cache_hit_rate = 0.0;
  double min_residual_budget = 0.0;
  uint64_t groups_formed = 0;
  double avg_group_size = 0.0;
  double planner_seconds = 0.0;
  // Persistence accounting (ServiceReport): zero here — the bench runs
  // ephemeral services — but kept in the JSON so the schema matches
  // cne_serve and persistent deployments can diff against it.
  double snapshot_load_seconds = 0.0;
  uint64_t wal_replay_records = 0;
  double checkpoint_seconds = 0.0;
  bool answers_identical = true;
  std::vector<ThreadResult> runs;
};

void AppendJson(std::ostringstream& out, const DatasetResult& r) {
  out << "    {\n"
      << "      \"dataset\": \"" << r.code << "\",\n"
      << "      \"queries\": " << r.queries << ",\n"
      << "      \"hot_set\": " << r.hot_set << ",\n"
      << "      \"vertices_released\": " << r.releases << ",\n"
      << "      \"rejected\": " << r.rejected << ",\n"
      << "      \"cache_hit_rate\": " << r.cache_hit_rate << ",\n"
      << "      \"min_residual_budget\": " << r.min_residual_budget << ",\n"
      << "      \"groups_formed\": " << r.groups_formed << ",\n"
      << "      \"avg_group_size\": " << r.avg_group_size << ",\n"
      << "      \"planner_seconds\": " << r.planner_seconds << ",\n"
      << "      \"snapshot_load_seconds\": " << r.snapshot_load_seconds
      << ",\n"
      << "      \"wal_replay_records\": " << r.wal_replay_records << ",\n"
      << "      \"checkpoint_seconds\": " << r.checkpoint_seconds << ",\n"
      << "      \"answers_identical_across_threads\": "
      << (r.answers_identical ? "true" : "false") << ",\n"
      << "      \"runs\": [";
  for (size_t i = 0; i < r.runs.size(); ++i) {
    if (i) out << ",";
    out << "\n        {\"threads\": " << r.runs[i].threads
        << ", \"seconds\": " << r.runs[i].seconds
        << ", \"qps\": " << r.runs[i].qps << ",\n         \"phases\": "
        << r.runs[i].phases_json << "}";
  }
  out << "\n      ],\n";
  double base = 0.0;
  double peak = 0.0;
  for (const ThreadResult& run : r.runs) {
    if (run.threads == 1) base = run.qps;
    peak = std::max(peak, run.qps);
  }
  // Only meaningful when a 1-thread baseline was part of the sweep.
  out << "      \"speedup_vs_1_thread\": ";
  if (base > 0.0) {
    out << peak / base;
  } else {
    out << "null";
  }
  out << "\n    }";
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  const bool smoke = cl.GetBool("smoke");

  std::vector<int> thread_counts;
  for (const std::string& t : cl.GetList("threads")) {
    thread_counts.push_back(std::stoi(t));
  }
  if (thread_counts.empty()) {
    thread_counts = smoke ? std::vector<int>{1, 2}
                          : std::vector<int>{1, 2, 4, 8};
  }
  const std::string algorithm_name = cl.GetString("algorithm", "OneR");
  const auto algorithm = ParseServiceAlgorithm(algorithm_name);
  if (!algorithm) {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm_name.c_str());
    return 2;
  }
  // The shared --pairs flag defaults to the paper's 100; this bench needs
  // a service-sized workload, so it has its own default.
  const size_t queries = cl.Has("pairs")
                             ? options.pairs
                             : (smoke ? 2000 : 10000);
  const VertexId hot =
      static_cast<VertexId>(cl.GetInt("hot", smoke ? 32 : 64));
  if (options.datasets.empty()) {
    options.datasets = smoke ? std::vector<std::string>{"RM"}
                             : std::vector<std::string>{"RM", "DA"};
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ext_service\",\n"
       << "  \"algorithm\": \"" << ToString(*algorithm) << "\",\n"
       << "  \"epsilon\": " << options.epsilon << ",\n"
       << "  \"seed\": " << options.seed << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"hardware\": " << bench::HardwareContextJson() << ",\n"
       << "  \"datasets\": [\n";

  bool first_dataset = true;
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng workload_rng(options.seed);
    const std::vector<QueryPair> workload = MakeHotSetWorkload(
        g, spec.query_layer, queries, hot, workload_rng);

    DatasetResult result;
    result.code = spec.code;
    result.queries = workload.size();
    result.hot_set = hot;

    {
      // Throwaway run: pages in the dataset and warms the allocator so
      // the first timed configuration is not penalized.
      ServiceOptions warmup;
      warmup.algorithm = *algorithm;
      warmup.epsilon = options.epsilon;
      warmup.num_threads = thread_counts.front();
      warmup.seed = options.seed;
      QueryService service(g, warmup);
      service.Submit(workload);
    }

    std::vector<ServiceAnswer> reference;
    for (int threads : thread_counts) {
      ServiceOptions service_options;
      service_options.algorithm = *algorithm;
      service_options.epsilon = options.epsilon;
      service_options.num_threads = threads;
      service_options.seed = options.seed;
      QueryService service(g, service_options);
      const ServiceReport report = service.Submit(workload);

      ThreadResult run;
      run.threads = threads;
      run.seconds = report.seconds;
      run.qps = report.QueriesPerSecond();
      run.phases_json = bench::PhasesJson(service.SnapshotMetrics(), "         ");
      result.runs.push_back(run);
      std::fprintf(stderr, "%s  threads=%d  %.3fs  %.0f qps\n",
                   spec.code.c_str(), threads, run.seconds, run.qps);

      if (reference.empty()) {
        reference = report.answers;
        result.releases = report.store.releases;
        result.rejected = report.rejected;
        result.cache_hit_rate = report.store.CacheHitRate();
        result.min_residual_budget = report.budget_min_remaining;
        result.groups_formed = report.groups_formed;
        result.avg_group_size = report.avg_group_size;
        result.planner_seconds = report.planner_seconds;
        result.snapshot_load_seconds = report.snapshot_load_seconds;
        result.wal_replay_records = report.wal_replay_records;
        result.checkpoint_seconds = report.checkpoint_seconds;
      } else {
        for (size_t i = 0; i < reference.size(); ++i) {
          if (reference[i].estimate != report.answers[i].estimate ||
              reference[i].rejected != report.answers[i].rejected) {
            result.answers_identical = false;
            break;
          }
        }
      }
    }

    if (!first_dataset) json << ",\n";
    first_dataset = false;
    AppendJson(json, result);
  }
  json << "\n  ],\n";

  // ---- Thread-scaling gate: 1..nproc sweep over the first dataset.
  bool scaling_ok = true;
  {
    const int cores = CoresAvailable();
    const DatasetSpec spec = ResolveDatasets(options.datasets)[0];
    json << "  \"thread_scaling\": {\"cores_available\": " << cores
         << ", \"dataset\": \"" << spec.code << "\"";
    if (cores < 2) {
      std::fprintf(stderr,
                   "WARNING: only %d core(s) available; thread-scaling "
                   "gate skipped (cannot demonstrate scaling on one "
                   "core)\n",
                   cores);
      json << ", \"skipped\": true, \"runs\": []},\n";
    } else {
      const BipartiteGraph& g = bench::CachedDataset(spec);
      Rng workload_rng(options.seed);
      const std::vector<QueryPair> workload = MakeHotSetWorkload(
          g, spec.query_layer, queries, hot, workload_rng);
      // 1, 2, 4, ... plus the full affinity count itself.
      std::vector<int> sweep;
      for (int t = 1; t < cores; t *= 2) sweep.push_back(t);
      sweep.push_back(cores);
      double base_qps = 0.0;
      double peak_qps = 0.0;
      json << ", \"skipped\": false, \"runs\": [";
      for (size_t i = 0; i < sweep.size(); ++i) {
        ServiceOptions service_options;
        service_options.algorithm = *algorithm;
        service_options.epsilon = options.epsilon;
        service_options.num_threads = sweep[i];
        service_options.seed = options.seed;
        QueryService service(g, service_options);
        const ServiceReport report = service.Submit(workload);
        const double qps = report.QueriesPerSecond();
        if (sweep[i] == 1) base_qps = qps;
        peak_qps = std::max(peak_qps, qps);
        std::fprintf(stderr, "thread_scaling threads=%d %.0f qps\n",
                     sweep[i], qps);
        json << (i ? "," : "") << "\n    {\"threads\": " << sweep[i]
             << ", \"qps\": " << qps << "}";
      }
      const double speedup = base_qps > 0.0 ? peak_qps / base_qps : 0.0;
      // With 2+ cores, multi-threaded peak merely matching the 1-thread
      // baseline means parallel execution buys nothing — a regression in
      // this service, whose execution phase is embarrassingly parallel.
      constexpr double kMinSpeedup = 1.15;
      scaling_ok = speedup >= kMinSpeedup;
      if (!scaling_ok) {
        std::fprintf(stderr,
                     "THREAD-SCALING REGRESSION: peak %.0f qps is only "
                     "%.2fx the 1-thread %.0f qps (gate: %.2fx) with %d "
                     "cores available\n",
                     peak_qps, speedup, base_qps, kMinSpeedup, cores);
      }
      json << "\n  ], \"speedup\": " << speedup
           << ", \"min_speedup\": " << kMinSpeedup << ", \"passed\": "
           << (scaling_ok ? "true" : "false") << "},\n";
    }
  }

  // ---- Scale section: hot-set-size sweep over generated BX-shaped
  // ---- graphs. Queries/second under the widest thread count is the
  // ---- canonical metric; the hot-set axis varies cache-sharing pressure.
  json << "  \"scale\": [";
  bool first_scale = true;
  for (uint64_t target : bench::ParseScaleList(cl)) {
    const bench::ScaleDataset dataset = bench::MakeScaleDataset(target);
    const BipartiteGraph& g = dataset.graph;
    const size_t scale_queries = smoke ? 2000 : queries;
    const int threads = *std::max_element(thread_counts.begin(),
                                          thread_counts.end());
    for (VertexId scale_hot : {VertexId{16}, VertexId{64}, VertexId{256}}) {
      Rng scale_rng(options.seed);
      const std::vector<QueryPair> workload = MakeHotSetWorkload(
          g, Layer::kUpper, scale_queries, scale_hot, scale_rng);
      ServiceOptions service_options;
      service_options.algorithm = *algorithm;
      service_options.epsilon = options.epsilon;
      service_options.num_threads = threads;
      service_options.seed = options.seed;
      QueryService service(g, service_options);
      const ServiceReport report = service.Submit(workload);
      std::fprintf(stderr,
                   "scale %llu hot=%u: %.3fs, %.0f qps, %zu released\n",
                   static_cast<unsigned long long>(target), scale_hot,
                   report.seconds, report.QueriesPerSecond(),
                   static_cast<size_t>(report.store.releases));
      if (!first_scale) json << ",";
      first_scale = false;
      // Admission tail latency rides along as a second gated metric
      // (lower is better): it bounds per-query service overhead
      // independently of the execution phase that dominates qps.
      const obs::MetricsSnapshot run_metrics = service.SnapshotMetrics();
      const obs::PhaseStats* admission = run_metrics.Phase("admission");
      json << "\n    {\"shape\": " << bench::GraphShapeJson(dataset)
           << ",\n     \"hot_set\": " << scale_hot
           << ", \"queries\": " << workload.size()
           << ", \"threads\": " << threads << ", \"simd_level\": \""
           << SimdLevelName(ActiveSimdLevel()) << "\""
           << ", \"seconds\": " << report.seconds
           << ", \"vertices_released\": " << report.store.releases
           << ", \"cache_hit_rate\": " << report.store.CacheHitRate()
           << ",\n     \"phases\": "
           << bench::PhasesJson(run_metrics, "     ")
           << ",\n     \"scale_metric\": "
           << bench::ScaleMetricJson("qps", report.QueriesPerSecond(), true)
           << ",\n     \"extra_scale_metrics\": ["
           << bench::ScaleMetricJson(
                  "admission_p99_seconds",
                  admission != nullptr ? admission->p99_seconds : 0.0, false)
           << "]}";
    }
  }
  json << "\n  ]\n}\n";

  std::cout << json.str();
  const std::string out_path = cl.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return scaling_ok ? 0 : 1;
}
