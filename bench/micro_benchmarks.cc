// Google-benchmark micro-benchmarks of the substrate: the adaptive
// set-intersection kernels (scalar merge, galloping, bitmap AND, probe),
// sparse and bitmap randomized response, graph generation, and end-to-end
// estimator latency on the rmwiki analog.

#include <benchmark/benchmark.h>

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/datasets.h"
#include "graph/generators.h"
#include "graph/set_ops.h"
#include "ldp/randomized_response.h"
#include "util/rng.h"

namespace cne {
namespace {

const BipartiteGraph& RmGraph() {
  static const BipartiteGraph* graph =
      new BipartiteGraph(MakeDataset(*FindDataset("RM")));
  return *graph;
}

void BM_SortedIntersection(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<VertexId> a, b;
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<VertexId>(rng.UniformInt(10 * n)));
    b.push_back(static_cast<VertexId>(rng.UniformInt(10 * n)));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortedIntersectionSize(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SortedIntersection)->Range(1 << 8, 1 << 16);

// Two same-density random sets over a 10n domain; density n/(10n) = 0.1.
void MakeRandomPair(size_t n, std::vector<VertexId>& a,
                    std::vector<VertexId>& b, DenseBitset& ba,
                    DenseBitset& bb) {
  Rng rng(1);
  const VertexId domain = static_cast<VertexId>(10 * n);
  for (size_t i = 0; i < n; ++i) {
    a.push_back(static_cast<VertexId>(rng.UniformInt(domain)));
    b.push_back(static_cast<VertexId>(rng.UniformInt(domain)));
  }
  std::sort(a.begin(), a.end());
  a.erase(std::unique(a.begin(), a.end()), a.end());
  std::sort(b.begin(), b.end());
  b.erase(std::unique(b.begin(), b.end()), b.end());
  ba = DenseBitset(domain);
  for (VertexId v : a) ba.Set(v);
  bb = DenseBitset(domain);
  for (VertexId v : b) bb.Set(v);
}

void BM_IntersectBitmapAnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> a, b;
  DenseBitset ba, bb;
  MakeRandomPair(n, a, b, ba, bb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectBitmapAnd(ba, bb));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IntersectBitmapAnd)->Range(1 << 8, 1 << 16);

void BM_IntersectProbeBitmap(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> a, b;
  DenseBitset ba, bb;
  MakeRandomPair(n, a, b, ba, bb);
  // Probe a 64x smaller sorted set into the dense bitmap.
  a.resize(std::max<size_t>(1, a.size() / 64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectProbeBitmap(a, bb));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_IntersectProbeBitmap)->Range(1 << 8, 1 << 16);

void BM_IntersectGallopingSkewed(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<VertexId> a, b;
  DenseBitset ba, bb;
  MakeRandomPair(n, a, b, ba, bb);
  a.resize(std::max<size_t>(1, a.size() / 64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(IntersectGalloping(a, b));
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_IntersectGallopingSkewed)->Range(1 << 8, 1 << 16);

void BM_RandomizedResponseBitmap(benchmark::State& state) {
  const VertexId domain = static_cast<VertexId>(state.range(0));
  Rng gen(2);
  const BipartiteGraph g = ErdosRenyiBipartite(1, domain, domain / 100, gen);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyRandomizedResponse(
        g, {Layer::kUpper, 0}, 1.0, rng, RrStorage::kBitmap));
  }
  state.SetItemsProcessed(state.iterations() * domain);
}
BENCHMARK(BM_RandomizedResponseBitmap)->Range(1 << 10, 1 << 20);

void BM_RandomizedResponseSparse(benchmark::State& state) {
  const VertexId domain = static_cast<VertexId>(state.range(0));
  Rng gen(2);
  const BipartiteGraph g = ErdosRenyiBipartite(1, domain, domain / 100, gen);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApplyRandomizedResponse(g, {Layer::kUpper, 0}, 2.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * domain);
}
BENCHMARK(BM_RandomizedResponseSparse)->Range(1 << 10, 1 << 20);

void BM_ChungLuGeneration(benchmark::State& state) {
  const uint64_t edges = static_cast<uint64_t>(state.range(0));
  uint64_t seed = 4;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(
        ChungLuPowerLaw(10000, 10000, edges, 2.1, rng));
  }
  state.SetItemsProcessed(state.iterations() * edges);
}
BENCHMARK(BM_ChungLuGeneration)->Range(1 << 12, 1 << 17);

void BM_ExactCommonNeighbors(benchmark::State& state) {
  const BipartiteGraph& g = RmGraph();
  Rng rng(5);
  for (auto _ : state) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(g.NumUpper()));
    const VertexId w = static_cast<VertexId>(rng.UniformInt(g.NumUpper()));
    benchmark::DoNotOptimize(
        g.CountCommonNeighbors(Layer::kUpper, u, w));
  }
}
BENCHMARK(BM_ExactCommonNeighbors);

template <typename MakeEstimator>
void EstimatorLatency(benchmark::State& state, MakeEstimator make) {
  const BipartiteGraph& g = RmGraph();
  const auto estimator = make();
  Rng rng(6);
  for (auto _ : state) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(g.NumUpper()));
    VertexId w = static_cast<VertexId>(rng.UniformInt(g.NumUpper() - 1));
    if (w >= u) ++w;
    benchmark::DoNotOptimize(
        estimator->Estimate(g, {Layer::kUpper, u, w}, 2.0, rng));
  }
}

void BM_EstimatorNaive(benchmark::State& state) {
  EstimatorLatency(state, [] { return std::make_unique<NaiveEstimator>(); });
}
BENCHMARK(BM_EstimatorNaive);

void BM_EstimatorOneR(benchmark::State& state) {
  EstimatorLatency(state, [] { return std::make_unique<OneREstimator>(); });
}
BENCHMARK(BM_EstimatorOneR);

void BM_EstimatorMultiRSS(benchmark::State& state) {
  EstimatorLatency(state,
                   [] { return std::make_unique<MultiRSSEstimator>(); });
}
BENCHMARK(BM_EstimatorMultiRSS);

void BM_EstimatorMultiRDS(benchmark::State& state) {
  EstimatorLatency(state, [] { return MakeMultiRDS(); });
}
BENCHMARK(BM_EstimatorMultiRDS);

void BM_EstimatorCentralDP(benchmark::State& state) {
  EstimatorLatency(state,
                   [] { return std::make_unique<CentralDpEstimator>(); });
}
BENCHMARK(BM_EstimatorCentralDP);

}  // namespace
}  // namespace cne

BENCHMARK_MAIN();
