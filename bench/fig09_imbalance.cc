// Regenerates Fig. 9: robustness to query pairs with imbalanced degrees.
// κ sweeps 1, 10, 100, 1000 where sampled pairs satisfy
// max(deg) > κ · min(deg); MAE of MultiR-SS, MultiR-DS-Basic, MultiR-DS
// on TM, BX, DUI, OG at ε = 2.

#include <iostream>

#include "bench_common.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"TM", "BX", "DUI", "OG"};
  }
  bench::PrintHeader("Figure 9",
                     "effectiveness on imbalanced-degree pairs (eps = 2)",
                     options);

  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  roster.push_back(MakeMultiRDSBasic(0.5));
  roster.push_back(MakeMultiRDS());

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    std::vector<std::string> header = {"kappa"};
    for (const auto& e : roster) header.push_back(e->Name());
    TextTable table(header);

    for (double kappa : {1.0, 10.0, 100.0, 1000.0}) {
      Rng rng(options.seed + static_cast<uint64_t>(kappa));
      const auto pairs = SampleImbalancedPairs(g, spec.query_layer, kappa,
                                               options.pairs, rng);
      if (pairs.empty()) {
        table.NewRow().AddDouble(kappa, 0).Add("(no such pairs)");
        continue;
      }
      ExperimentConfig config;
      config.epsilon = options.epsilon;
      config.trials_per_pair = options.trials;
      const auto metrics = RunAllEstimators(g, roster, pairs, config, rng);
      table.NewRow().AddDouble(kappa, 0);
      for (const EstimatorMetrics& m : metrics) {
        table.AddDouble(m.mean_absolute_error, 3);
      }
    }
    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }
  std::cout
      << "\nExpected shape (paper): MultiR-SS and MultiR-DS-Basic degrade\n"
         "as kappa grows; MultiR-DS stays roughly flat because alpha\n"
         "shifts weight to the low-degree vertex.\n";
  return 0;
}
