// Extension experiment: adaptive set-intersection kernel throughput.
// Sweeps density × size-skew × domain over synthetic id sets and times
// every applicable kernel on each configuration — the word kernels once
// per ISA level this machine can execute (ForceSimdLevel) — then times
// the end-to-end regime the estimators live in: ε-RR releases of the
// committed sample graph, intersected pairwise in both representations.
// Emits machine-readable JSON (stdout; progress to stderr) so CI can
// archive a perf trajectory across commits (BENCH_intersect.json).
//
// Every timed configuration self-checks each kernel's count against the
// scalar merge on the same inputs; any disagreement makes the process
// exit non-zero, so the CI bench run doubles as a correctness gate. Each
// cell also records how far the calibrated dispatcher landed from the
// best kernel applicable to the auto-storage representations
// (`auto_gap`; 1.0 = picked the best).
//
// Extra flags on top of the shared bench set:
//   --domains=N,M    id-domains of the synthetic sweep (default 65536 and
//                    1048576 = 16Ki words, the dense-AND acceptance cell;
//                    smoke default 16384)
//   --reps=N         timed repetitions per kernel (default auto-scaled)
//   --scale=1e5,1e6  edge-draw targets for the scale section: hub-pair
//                    intersections over generated BX-shaped graphs at
//                    exponents 1.7/2.1/3.0 (the degree-skew axis)
//   --out=path       also write the JSON to a file
//   --smoke          small CI configuration (fewer reps, small domain)
//   --self-check     run only the correctness sweep (no timing): every
//                    kernel vs the scalar merge across the density grid,
//                    ragged-tail domains, and fuzzed operands, at every
//                    ISA level at or below the active one (so CI can
//                    force levels via CNE_SIMD_LEVEL); exits non-zero on
//                    any divergence.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "graph/graph_io.h"
#include "graph/set_ops.h"
#include "ldp/randomized_response.h"
#include "obs/trace.h"
#include "util/cli.h"
#include "util/cpu_features.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace cne;

namespace {

std::vector<VertexId> RandomSortedSet(VertexId domain, double density,
                                      Rng& rng) {
  std::vector<VertexId> out;
  out.reserve(static_cast<size_t>(density * domain * 1.2) + 16);
  for (VertexId v = 0; v < domain; ++v) {
    if (rng.Bernoulli(density)) out.push_back(v);
  }
  return out;
}

DenseBitset ToBitset(const std::vector<VertexId>& sorted, VertexId domain) {
  DenseBitset bits(domain);
  for (VertexId v : sorted) bits.Set(v);
  return bits;
}

struct KernelResult {
  std::string kernel;
  std::string simd_level;  // empty for level-independent kernels
  double ns_per_op = 0.0;
  double speedup_vs_scalar = 0.0;
  // Per-call latency quantiles (obs/metrics.h histogram, ~2% relative
  // error) from a second, individually-clocked pass.
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  uint64_t count = 0;
};

// Times `fn` (returning the intersection count) in four pilot-sized
// blocks, keeping the fastest: timing noise on these memory-bound loops is
// one-sided (preemption, frequency transitions), and the per-cell auto_gap
// ratio diffs two such loops against each other. Each block is sized from
// a pilot run to span ~200µs so sub-100ns kernels still get loops long
// enough to swamp timer resolution; `reps` only drives the quantile pass.
template <typename Fn>
KernelResult TimeKernel(const std::string& name, size_t reps, Fn fn) {
  KernelResult r;
  r.kernel = name;
  r.count = fn();  // warm + record the count for the self-check
  uint64_t sink = 0;
  size_t block_reps = 1;
  {
    constexpr double kBlockSeconds = 200e-6;
    Timer pilot;
    for (size_t i = 0; i < 3; ++i) sink += fn();
    const double per_call = std::max(pilot.Seconds() / 3.0, 1e-9);
    block_reps = std::min<size_t>(
        1 << 20, std::max<size_t>(4, static_cast<size_t>(
                                         kBlockSeconds / per_call)));
  }
  const size_t blocks = 4;
  double best_seconds = 0.0;
  for (size_t b = 0; b < blocks; ++b) {
    Timer timer;
    for (size_t i = 0; i < block_reps; ++i) sink += fn();
    const double seconds = timer.Seconds();
    if (b == 0 || seconds < best_seconds) best_seconds = seconds;
  }
  const size_t timed_reps = 3 + blocks * block_reps;
  r.ns_per_op = best_seconds * 1e9 / static_cast<double>(block_reps);
  // Quantile pass: the same calls clocked one by one, kept out of the
  // throughput loop above so ns_per_op never pays per-iteration clock
  // reads.
  obs::LatencyHistogram histogram;
  uint64_t quantile_sink = 0;
  for (size_t i = 0; i < reps; ++i) {
    const uint64_t t0 = obs::NowNanos();
    quantile_sink += fn();
    histogram.Record(obs::NowNanos() - t0);
  }
  const obs::HistogramSnapshot snapshot = histogram.Snapshot();
  r.p50_ns = snapshot.QuantileNanos(0.50);
  r.p99_ns = snapshot.QuantileNanos(0.99);
  r.p999_ns = snapshot.QuantileNanos(0.999);
  // Fold the sinks into the (already-validated) count so the timed calls
  // cannot be optimized away.
  if (sink != r.count * timed_reps || quantile_sink != r.count * reps) {
    r.count = ~uint64_t{0};
  }
  return r;
}

bool g_self_check_ok = true;

volatile uint64_t g_timing_sink = 0;

// Interleaved A/B timing for ratio measurements. Each round times one
// pilot-sized block of each callable back to back and records the
// round's A/B ratio; the returned ratio is the *median* over rounds. A
// noise burst (neighbor-VM steal, frequency step) spanning several
// rounds inflates both halves of the rounds it covers — their ratios
// stay honest — and a burst clipping just one half corrupts only that
// round's ratio, which the median discards. Min-of-blocks on two
// independently timed loops has neither property, and fabricated 1.3×
// "gaps" between loops running identical code were observed with it.
struct InterleavedResult {
  double a_ns = 0.0;    // fastest-block ns/call of A
  double b_ns = 0.0;    // fastest-block ns/call of B
  double ratio = 0.0;   // median over rounds of (A ns / B ns)
};

template <typename FnA, typename FnB>
InterleavedResult TimeInterleaved(FnA fa, FnB fb) {
  constexpr double kBlockSeconds = 200e-6;
  const auto block_reps = [&](auto& fn) {
    Timer pilot;
    uint64_t sink = 0;
    for (int i = 0; i < 3; ++i) sink += fn();
    g_timing_sink = g_timing_sink + sink;
    const double per_call = std::max(pilot.Seconds() / 3.0, 1e-9);
    return std::min<size_t>(
        1 << 20, std::max<size_t>(4, static_cast<size_t>(
                                         kBlockSeconds / per_call)));
  };
  const size_t reps_a = block_reps(fa);
  const size_t reps_b = block_reps(fb);
  InterleavedResult result;
  std::vector<double> ratios;
  for (int round = 0; round < 10; ++round) {
    uint64_t sink = 0;
    Timer ta;
    for (size_t i = 0; i < reps_a; ++i) sink += fa();
    const double a_ns = ta.Seconds() * 1e9 / static_cast<double>(reps_a);
    Timer tb;
    for (size_t i = 0; i < reps_b; ++i) sink += fb();
    const double b_ns = tb.Seconds() * 1e9 / static_cast<double>(reps_b);
    g_timing_sink = g_timing_sink + sink;
    if (round == 0 || a_ns < result.a_ns) result.a_ns = a_ns;
    if (round == 0 || b_ns < result.b_ns) result.b_ns = b_ns;
    if (b_ns > 0.0) ratios.push_back(a_ns / b_ns);
  }
  std::sort(ratios.begin(), ratios.end());
  if (!ratios.empty()) result.ratio = ratios[ratios.size() / 2];
  return result;
}

void SelfCheck(const std::vector<KernelResult>& results) {
  for (const KernelResult& r : results) {
    if (r.count != results.front().count) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: kernel %s[%s] returned %llu, scalar "
                   "merge returned %llu\n",
                   r.kernel.c_str(), r.simd_level.c_str(),
                   static_cast<unsigned long long>(r.count),
                   static_cast<unsigned long long>(results.front().count));
      g_self_check_ok = false;
    }
  }
}

void AppendKernels(std::ostringstream& json,
                   std::vector<KernelResult>& results) {
  SelfCheck(results);
  const double scalar_ns = results.front().ns_per_op;
  json << "\"kernels\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    KernelResult& r = results[i];
    r.speedup_vs_scalar = r.ns_per_op > 0.0 ? scalar_ns / r.ns_per_op : 0.0;
    if (i) json << ",";
    json << "\n      {\"kernel\": \"" << r.kernel << "\", ";
    if (!r.simd_level.empty()) {
      json << "\"simd_level\": \"" << r.simd_level << "\", ";
    }
    json << "\"ns_per_op\": " << r.ns_per_op << ", \"speedup_vs_scalar\": "
         << r.speedup_vs_scalar << ", \"p50_ns\": " << r.p50_ns
         << ", \"p99_ns\": " << r.p99_ns << ", \"p999_ns\": " << r.p999_ns
         << "}";
  }
  json << "]";
}

// ---- --self-check mode: pure correctness, no timing ----

bool CheckPair(const std::vector<VertexId>& a, const std::vector<VertexId>& b,
               const DenseBitset& ba, const DenseBitset& bb,
               const std::vector<SimdLevel>& levels, const char* what) {
  const uint64_t want_and = IntersectScalarMerge(a, b);
  const uint64_t want_or = UnionScalarMerge(a, b);
  bool ok = true;
  for (SimdLevel level : levels) {
    ForceSimdLevel(level);
    const struct {
      const char* kernel;
      uint64_t got;
      uint64_t want;
    } checks[] = {
        {"bitmap_and", IntersectBitmapAnd(ba, bb), want_and},
        {"bitmap_and_swapped", IntersectBitmapAnd(bb, ba), want_and},
        {"bitmap_probe", IntersectBitmapProbe(ba, bb), want_and},
        {"bitmap_probe_swapped", IntersectBitmapProbe(bb, ba), want_and},
        {"probe_bitmap", IntersectProbeBitmap(a, bb), want_and},
        {"galloping", IntersectGalloping(a, b), want_and},
        {"union_bitmap_or", UnionBitmapOr(ba, bb), want_or},
        {"count_a", ba.Count(), a.size()},
        {"dispatch_bitmap",
         IntersectionSize(SetView::Bitmap(ba, a.size()),
                          SetView::Bitmap(bb, b.size())),
         want_and},
        {"dispatch_mixed",
         IntersectionSize(SetView::Sorted(a), SetView::Bitmap(bb, b.size())),
         want_and},
    };
    for (const auto& c : checks) {
      if (c.got != c.want) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s %s at %s: got %llu want %llu\n",
                     what, c.kernel, SimdLevelName(level),
                     static_cast<unsigned long long>(c.got),
                     static_cast<unsigned long long>(c.want));
        ok = false;
      }
    }
  }
  return ok;
}

int RunSelfCheckMode(uint64_t seed) {
  // Only levels at or below the level the process started with: CI forces
  // CNE_SIMD_LEVEL=scalar|avx2|avx512 and expects exactly that ceiling.
  const SimdLevel ceiling = ActiveSimdLevel();
  std::vector<SimdLevel> levels;
  for (SimdLevel level : AvailableSimdLevels()) {
    if (static_cast<int>(level) <= static_cast<int>(ceiling)) {
      levels.push_back(level);
    }
  }

  Rng rng(seed);
  bool ok = true;
  size_t cells = 0;

  // Ragged-tail domains around every vector stride (64/256/512), plus a
  // couple of large ones.
  const VertexId domains[] = {1,   63,  64,  65,   255,   256,      257,
                              511, 512, 513, 1000, 16384, 16384 + 21};
  const double densities[] = {0.0, 0.001, 0.01, 0.1, 0.27, 0.5, 1.0};
  for (VertexId domain : domains) {
    for (double da : densities) {
      for (double db : densities) {
        const std::vector<VertexId> a = RandomSortedSet(domain, da, rng);
        const std::vector<VertexId> b = RandomSortedSet(domain, db, rng);
        const DenseBitset ba = ToBitset(a, domain);
        const DenseBitset bb = ToBitset(b, domain);
        char what[64];
        std::snprintf(what, sizeof(what), "grid d=%u %.4g x %.4g", domain,
                      da, db);
        ok = CheckPair(a, b, ba, bb, levels, what) && ok;
        ++cells;
      }
    }
  }

  // Fuzzed operands, mixed domains included.
  for (int round = 0; round < 200; ++round) {
    const VertexId domain_a =
        1 + static_cast<VertexId>(rng.UniformInt(1 << 14));
    const VertexId domain_b =
        1 + static_cast<VertexId>(rng.UniformInt(1 << 14));
    const std::vector<VertexId> a =
        RandomSortedSet(domain_a, rng.NextDouble(), rng);
    const std::vector<VertexId> b =
        RandomSortedSet(domain_b, rng.NextDouble(), rng);
    const DenseBitset ba = ToBitset(a, domain_a);
    const DenseBitset bb = ToBitset(b, domain_b);
    // CheckPair's union reference needs equal domains; for mixed domains
    // verify the intersection kernels only.
    const uint64_t want = IntersectScalarMerge(a, b);
    for (SimdLevel level : levels) {
      ForceSimdLevel(level);
      if (IntersectBitmapAnd(ba, bb) != want ||
          IntersectBitmapProbe(ba, bb) != want ||
          IntersectBitmapProbe(bb, ba) != want ||
          IntersectProbeBitmap(a, bb) != want) {
        std::fprintf(stderr, "SELF-CHECK FAILED: fuzz round %d at %s\n",
                     round, SimdLevelName(level));
        ok = false;
      }
    }
    ++cells;
  }

  ForceSimdLevel(ceiling);
  std::fprintf(stderr,
               "self-check %s: %zu configurations, levels up to %s\n",
               ok ? "passed" : "FAILED", cells, SimdLevelName(ceiling));
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  if (cl.GetBool("self-check")) return RunSelfCheckMode(options.seed);

  const bool smoke = cl.GetBool("smoke");
  const size_t default_reps = smoke ? 20 : 100;
  const size_t reps =
      static_cast<size_t>(cl.GetInt("reps",
                                    static_cast<int64_t>(default_reps)));

  // Sweep domains. 1048576 bits = 16Ki words is the acceptance cell for
  // the dense-AND SIMD speedup: far past every cache-resident size the
  // smoke domain covers. --domain=N (singular) still pins a single one.
  std::vector<VertexId> domains;
  for (const std::string& d : cl.GetList("domains")) {
    domains.push_back(static_cast<VertexId>(std::atoll(d.c_str())));
  }
  if (cl.Has("domain")) {
    domains.assign(1, static_cast<VertexId>(cl.GetInt("domain", 1 << 16)));
  }
  if (domains.empty()) {
    if (smoke) {
      domains = {1 << 14};
    } else {
      domains = {1 << 16, 1 << 20};
    }
  }

  const std::vector<SimdLevel> levels = AvailableSimdLevels();
  const SimdLevel detected = DetectedSimdLevel();

  Rng rng(options.seed);
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ext_intersect\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"domains\": [";
  for (size_t i = 0; i < domains.size(); ++i) {
    json << (i ? ", " : "") << domains[i];
  }
  json << "],\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"hardware\": " << bench::HardwareContextJson() << ",\n"
       << "  \"grid\": [\n";

  // Density × skew sweep. density_b / density_a is the size skew; the
  // 0.27-ish densities are the ε = 1 noisy-row regime.
  const std::vector<std::pair<double, double>> grid = {
      {0.001, 0.001}, {0.01, 0.01},  {0.1, 0.1},   {0.27, 0.27},
      {0.5, 0.5},     {0.001, 0.27}, {0.001, 0.5}, {0.01, 0.27},
      {0.0001, 0.27}, {0.1, 0.27},
  };

  bool first = true;
  // Worst dispatcher gap over the cells where kernel time is the signal:
  // choosing + virtual-call overhead is a handful of ns, so on sub-100ns
  // cells the ratio measures that fixed cost, not the pick.
  constexpr double kGapFloorNs = 100.0;
  double worst_gap = 0.0;
  for (const VertexId domain : domains) {
    for (const auto& [da, db] : grid) {
      const std::vector<VertexId> a = RandomSortedSet(domain, da, rng);
      const std::vector<VertexId> b = RandomSortedSet(domain, db, rng);
      const DenseBitset ba = ToBitset(a, domain);
      const DenseBitset bb = ToBitset(b, domain);
      const SetView va = SetView::Bitmap(ba, a.size());
      const SetView vb = SetView::Bitmap(bb, b.size());
      const SetView sa = SetView::Sorted(a);
      const SetView sb = SetView::Sorted(b);

      std::vector<KernelResult> results;
      results.push_back(TimeKernel("scalar_merge", reps, [&] {
        return IntersectScalarMerge(a, b);
      }));
      results.push_back(TimeKernel("galloping", reps, [&] {
        return IntersectGalloping(a, b);
      }));
      // The word kernels once per ISA level: the per-ISA rows the bench
      // trajectory tracks (and the 4x dense-AND acceptance evidence).
      for (SimdLevel level : levels) {
        ForceSimdLevel(level);
        results.push_back(TimeKernel("bitmap_and", reps, [&] {
          return IntersectBitmapAnd(ba, bb);
        }));
        results.back().simd_level = SimdLevelName(level);
      }
      ForceSimdLevel(detected);
      results.push_back(TimeKernel("bitmap_probe", reps, [&] {
        return IntersectBitmapProbe(ba, bb);
      }));
      results.push_back(TimeKernel("probe_bitmap", reps, [&] {
        return IntersectProbeBitmap(a, bb);
      }));
      // The dispatcher over the representations kAuto storage would pick
      // for each side (bitmap at and above the density threshold).
      const SetView auto_a = da >= kBitmapDensityThreshold ? va : sa;
      const SetView auto_b = db >= kBitmapDensityThreshold ? vb : sb;
      results.push_back(TimeKernel("dispatch_auto", reps, [&] {
        return IntersectionSize(auto_a, auto_b);
      }));
      results.back().simd_level = SimdLevelName(detected);

      // Best kernel the dispatcher could have run for the auto
      // representations, picked from the rows just measured (bitmap_and
      // counted at the detected level only — the level dispatch actually
      // runs) ...
      const KernelResult* best_row = nullptr;
      for (const KernelResult& r : results) {
        bool applicable = false;
        if (auto_a.IsBitmap() && auto_b.IsBitmap()) {
          applicable = (r.kernel == "bitmap_and" &&
                        r.simd_level == SimdLevelName(detected)) ||
                       r.kernel == "bitmap_probe";
        } else if (auto_a.IsBitmap() || auto_b.IsBitmap()) {
          applicable = r.kernel == "probe_bitmap";
        } else {
          applicable = r.kernel == "scalar_merge" || r.kernel == "galloping";
        }
        if (applicable &&
            (best_row == nullptr || r.ns_per_op < best_row->ns_per_op)) {
          best_row = &r;
        }
      }
      // ... then re-timed interleaved with dispatch_auto, so the gap
      // ratio compares two loops that saw the same noise environment
      // rather than loops minutes apart in the cell's schedule.
      const auto call_for = [&](const std::string& kernel)
          -> std::function<uint64_t()> {
        if (kernel == "scalar_merge") {
          return [&] { return IntersectScalarMerge(a, b); };
        }
        if (kernel == "galloping") {
          return [&] { return IntersectGalloping(a, b); };
        }
        if (kernel == "bitmap_and") {
          return [&] { return IntersectBitmapAnd(ba, bb); };
        }
        if (kernel == "bitmap_probe") {
          return [&] { return IntersectBitmapProbe(ba, bb); };
        }
        return [&] { return IntersectProbeBitmap(a, bb); };
      };
      const InterleavedResult paired = TimeInterleaved(
          [&] { return IntersectionSize(auto_a, auto_b); },
          call_for(best_row->kernel));
      const double best_applicable = paired.b_ns;
      const double auto_gap = paired.ratio;
      if (best_applicable >= kGapFloorNs && auto_gap > worst_gap) {
        worst_gap = auto_gap;
      }

      if (!first) json << ",\n";
      first = false;
      json << "    {\"domain\": " << domain << ", \"density_a\": " << da
           << ", \"density_b\": " << db << ", \"size_a\": " << a.size()
           << ", \"size_b\": " << b.size()
           << ",\n     \"dispatcher_choice\": \""
           << DispatchedKernelName(auto_a, auto_b)
           << "\", \"best_applicable_ns\": " << best_applicable
           << ", \"auto_gap\": " << auto_gap << ",\n     ";
      AppendKernels(json, results);
      json << "}";
      std::fprintf(stderr, "grid d=%u %.4f x %.4f done (auto_gap %.2f)\n",
                   domain, da, db, auto_gap);
    }
  }
  json << "\n  ],\n"
       << "  \"dispatch_gap\": {\"max_gap\": " << worst_gap
       << ", \"floor_ns\": " << kGapFloorNs << ", \"within_10pct\": "
       << (worst_gap <= 1.10 ? "true" : "false") << "},\n";

  // End-to-end regime: ε ≤ 1 releases of the committed sample graph,
  // pairwise-intersected across the upper layer — the Naive/OneR hot loop.
  {
    // The committed fixture when reachable (repo root or CNE_SOURCE_DIR),
    // otherwise the RM analog — both are the paper's small-graph regime.
    const char* root = std::getenv("CNE_SOURCE_DIR");
    const std::string sample_path =
        std::string(root ? root : ".") + "/data/sample_userpage.txt";
    BipartiteGraph graph;
    if (std::ifstream(sample_path).good()) {
      graph = ReadGraphFile(sample_path);
    } else {
      graph = bench::CachedDataset(ResolveDatasets({"RM"})[0]);
    }
    const double epsilon = std::min(options.epsilon, 1.0);
    const VertexId n = std::min<VertexId>(graph.NumUpper(), smoke ? 60 : 120);

    std::vector<NoisyNeighborSet> sorted_views, bitmap_views;
    for (VertexId u = 0; u < n; ++u) {
      Rng view_rng = rng.Fork(u);
      Rng view_rng2 = rng.Fork(u);
      sorted_views.push_back(ApplyRandomizedResponse(
          graph, {Layer::kUpper, u}, epsilon, view_rng, RrStorage::kSorted));
      bitmap_views.push_back(ApplyRandomizedResponse(
          graph, {Layer::kUpper, u}, epsilon, view_rng2,
          RrStorage::kBitmap));
    }

    const size_t pair_reps = smoke ? 3 : 10;
    uint64_t scalar_total = 0, bitmap_total = 0;
    uint64_t pairs = 0;
    // Per-rep sweep latencies feed the phase histograms; one clock pair
    // per full n² sweep is negligible against the sweep itself.
    obs::LatencyHistogram scalar_hist, bitmap_hist;
    Timer scalar_timer;
    for (size_t rep = 0; rep < pair_reps; ++rep) {
      scalar_total = 0;
      const uint64_t t0 = obs::NowNanos();
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId w = u + 1; w < n; ++w) {
          scalar_total += IntersectScalarMerge(
              sorted_views[u].SortedMembers(),
              sorted_views[w].SortedMembers());
        }
      }
      scalar_hist.Record(obs::NowNanos() - t0);
    }
    const double scalar_seconds = scalar_timer.Seconds();
    Timer bitmap_timer;
    for (size_t rep = 0; rep < pair_reps; ++rep) {
      bitmap_total = 0;
      const uint64_t t0 = obs::NowNanos();
      for (VertexId u = 0; u < n; ++u) {
        for (VertexId w = u + 1; w < n; ++w) {
          bitmap_total +=
              IntersectionSize(bitmap_views[u].View(), bitmap_views[w].View());
        }
      }
      bitmap_hist.Record(obs::NowNanos() - t0);
    }
    const double bitmap_seconds = bitmap_timer.Seconds();
    pairs = static_cast<uint64_t>(n) * (n - 1) / 2;

    // Self-check on real releases: for every pair, the bitmap kernel must
    // equal the scalar merge over the decoded members of the same views.
    for (VertexId u = 0; u < n && g_self_check_ok; ++u) {
      const std::vector<VertexId> mu = bitmap_views[u].ToSortedVector();
      for (VertexId w = u + 1; w < n; ++w) {
        const std::vector<VertexId> mw = bitmap_views[w].ToSortedVector();
        const uint64_t want = IntersectScalarMerge(mu, mw);
        const uint64_t got = IntersectionSize(bitmap_views[u].View(),
                                              bitmap_views[w].View());
        if (want != got) {
          std::fprintf(stderr,
                       "SELF-CHECK FAILED: sample pair (%u, %u) bitmap %llu "
                       "!= scalar %llu\n",
                       u, w, static_cast<unsigned long long>(got),
                       static_cast<unsigned long long>(want));
          g_self_check_ok = false;
          break;
        }
      }
    }
    (void)scalar_total;
    (void)bitmap_total;

    const double scalar_ns =
        scalar_seconds * 1e9 / static_cast<double>(pairs * pair_reps);
    const double bitmap_ns =
        bitmap_seconds * 1e9 / static_cast<double>(pairs * pair_reps);
    obs::MetricsSnapshot sweep_metrics;
    sweep_metrics.phases.push_back(
        obs::MakePhaseStats("scalar_sweep", scalar_hist.Snapshot()));
    sweep_metrics.phases.push_back(
        obs::MakePhaseStats("bitmap_sweep", bitmap_hist.Snapshot()));
    json << "  \"sample_graph\": {\"epsilon\": " << epsilon
         << ", \"vertices\": " << n << ", \"pairs\": " << pairs
         << ", \"simd_level\": \"" << SimdLevelName(ActiveSimdLevel())
         << "\",\n    \"scalar_ns_per_pair\": " << scalar_ns
         << ", \"bitmap_ns_per_pair\": " << bitmap_ns
         << ", \"speedup\": " << (bitmap_ns > 0 ? scalar_ns / bitmap_ns : 0)
         << ",\n    \"phases\": "
         << bench::PhasesJson(sweep_metrics, "    ") << "},\n";
    std::fprintf(stderr,
                 "sample graph: scalar %.1f ns/pair, bitmap %.1f ns/pair, "
                 "speedup %.1fx\n",
                 scalar_ns, bitmap_ns,
                 bitmap_ns > 0 ? scalar_ns / bitmap_ns : 0.0);
  }

  // ---- Scale section: real hub views over generated BX-shaped graphs.
  // ---- The exponent axis varies degree skew (1.7 = heavy hubs, 3.0 =
  // ---- near-uniform); the hubs' ε = 1 releases are intersected pairwise
  // ---- in both representations, bitmap ns/pair is the scale metric.
  json << "  \"scale\": [";
  {
    bool first_scale = true;
    const double scale_epsilon = std::min(options.epsilon, 1.0);
    const VertexId hubs = smoke ? 8 : 16;
    // The bitmap AND over a 1e5-draw graph's domain runs in microseconds;
    // enough repetitions to push each timed loop well past timer and
    // frequency-scaling noise, or the 20% CI gate flakes.
    const size_t pair_reps = smoke ? 24 : 48;
    for (uint64_t target : bench::ParseScaleList(cl)) {
      for (double exponent : {1.7, 2.1, 3.0}) {
        const bench::ScaleDataset dataset =
            bench::MakeScaleDataset(target, exponent);
        const BipartiteGraph& g = dataset.graph;

        // The `hubs` highest-degree upper vertices: the vertices whose
        // views the estimators intersect most often.
        std::vector<VertexId> order(g.NumUpper());
        for (VertexId v = 0; v < g.NumUpper(); ++v) order[v] = v;
        std::partial_sort(order.begin(), order.begin() + hubs, order.end(),
                          [&](VertexId a, VertexId b) {
                            return g.Degree(Layer::kUpper, a) >
                                   g.Degree(Layer::kUpper, b);
                          });

        std::vector<NoisyNeighborSet> sorted_views, bitmap_views;
        for (VertexId i = 0; i < hubs; ++i) {
          Rng view_rng = rng.Fork(order[i]);
          Rng view_rng2 = rng.Fork(order[i]);
          sorted_views.push_back(
              ApplyRandomizedResponse(g, {Layer::kUpper, order[i]},
                                      scale_epsilon, view_rng,
                                      RrStorage::kSorted));
          bitmap_views.push_back(
              ApplyRandomizedResponse(g, {Layer::kUpper, order[i]},
                                      scale_epsilon, view_rng2,
                                      RrStorage::kBitmap));
        }

        const uint64_t pairs = static_cast<uint64_t>(hubs) * (hubs - 1) / 2;
        // Best-of-reps rather than mean: timing noise on sub-millisecond
        // sweeps is one-sided (preemption, frequency scaling), and the CI
        // gate diffs these numbers across runs at a 20% threshold.
        uint64_t scalar_total = 0, bitmap_total = 0;
        double scalar_best = 0.0, bitmap_best = 0.0;
        obs::LatencyHistogram scalar_hist, bitmap_hist;
        for (size_t rep = 0; rep < pair_reps; ++rep) {
          scalar_total = 0;
          Timer timer;
          for (VertexId a = 0; a < hubs; ++a) {
            for (VertexId b = a + 1; b < hubs; ++b) {
              scalar_total += IntersectScalarMerge(
                  sorted_views[a].SortedMembers(),
                  sorted_views[b].SortedMembers());
            }
          }
          const double seconds = timer.Seconds();
          scalar_hist.RecordSeconds(seconds);
          if (rep == 0 || seconds < scalar_best) scalar_best = seconds;
        }
        for (size_t rep = 0; rep < pair_reps; ++rep) {
          bitmap_total = 0;
          Timer timer;
          for (VertexId a = 0; a < hubs; ++a) {
            for (VertexId b = a + 1; b < hubs; ++b) {
              bitmap_total += IntersectionSize(bitmap_views[a].View(),
                                               bitmap_views[b].View());
            }
          }
          const double seconds = timer.Seconds();
          bitmap_hist.RecordSeconds(seconds);
          if (rep == 0 || seconds < bitmap_best) bitmap_best = seconds;
        }
        (void)scalar_total;
        (void)bitmap_total;

        // Self-check on the first hub pair: bitmap kernel vs scalar merge
        // over the decoded members of the same bitmap views.
        if (hubs >= 2) {
          const uint64_t want =
              IntersectScalarMerge(bitmap_views[0].ToSortedVector(),
                                   bitmap_views[1].ToSortedVector());
          const uint64_t got = IntersectionSize(bitmap_views[0].View(),
                                                bitmap_views[1].View());
          if (want != got) {
            std::fprintf(stderr,
                         "SELF-CHECK FAILED: scale %llu exp %.1f hub pair "
                         "bitmap %llu != scalar %llu\n",
                         static_cast<unsigned long long>(target), exponent,
                         static_cast<unsigned long long>(got),
                         static_cast<unsigned long long>(want));
            g_self_check_ok = false;
          }
        }

        const double scalar_ns =
            scalar_best * 1e9 / static_cast<double>(pairs);
        const double bitmap_ns =
            bitmap_best * 1e9 / static_cast<double>(pairs);
        std::fprintf(stderr,
                     "scale %llu exp %.1f: scalar %.0f ns/pair, bitmap "
                     "%.0f ns/pair\n",
                     static_cast<unsigned long long>(target), exponent,
                     scalar_ns, bitmap_ns);

        obs::MetricsSnapshot sweep_metrics;
        sweep_metrics.phases.push_back(
            obs::MakePhaseStats("scalar_sweep", scalar_hist.Snapshot()));
        sweep_metrics.phases.push_back(
            obs::MakePhaseStats("bitmap_sweep", bitmap_hist.Snapshot()));
        if (!first_scale) json << ",";
        first_scale = false;
        json << "\n    {\"shape\": " << bench::GraphShapeJson(dataset)
             << ",\n     \"epsilon\": " << scale_epsilon
             << ", \"hubs\": " << hubs << ", \"pairs\": " << pairs
             << ", \"simd_level\": \"" << SimdLevelName(ActiveSimdLevel())
             << "\", \"scalar_ns_per_pair\": " << scalar_ns
             << ", \"bitmap_ns_per_pair\": " << bitmap_ns
             << ", \"speedup\": "
             << (bitmap_ns > 0 ? scalar_ns / bitmap_ns : 0.0)
             << ",\n     \"phases\": "
             << bench::PhasesJson(sweep_metrics, "     ")
             << ",\n     \"scale_metric\": "
             << bench::ScaleMetricJson("bitmap_ns_per_pair", bitmap_ns, false)
             << "}";
      }
    }
  }
  json << "\n  ],\n";

  json << "  \"self_check_passed\": " << (g_self_check_ok ? "true" : "false")
       << "\n}\n";

  std::cout << json.str();
  const std::string out_path = cl.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return g_self_check_ok ? 0 : 1;
}
