// Regenerates Fig. 10: per-query-pair communication cost (MB) of Naive,
// OneR, MultiR-SS, and MultiR-DS as ε varies from 1 to 3, on WC, ER, DUI,
// OG. Communication counts uploads of noisy edges/scalars plus downloads
// of noisy edges to the query vertices (see ldp/comm_model.h).

#include <iostream>

#include "bench_common.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"WC", "ER", "DUI", "OG"};
  }
  bench::PrintHeader("Figure 10", "communication cost per query pair (MB)",
                     options);

  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<NaiveEstimator>());
  roster.push_back(std::make_unique<OneREstimator>());
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  roster.push_back(MakeMultiRDS());

  constexpr double kMb = 1024.0 * 1024.0;
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    const auto pairs =
        SampleUniformPairs(g, spec.query_layer, options.pairs, rng);

    std::vector<std::string> header = {"eps"};
    for (const auto& e : roster) header.push_back(e->Name());
    TextTable table(header);
    for (double eps = 1.0; eps <= 3.0001; eps += 0.5) {
      ExperimentConfig config;
      config.epsilon = eps;
      Rng run_rng(options.seed + static_cast<uint64_t>(eps * 100));
      const auto metrics =
          RunAllEstimators(g, roster, pairs, config, run_rng);
      table.NewRow().AddDouble(eps, 1);
      for (const EstimatorMetrics& m : metrics) {
        table.AddSci(m.mean_comm_bytes / kMb, 2);
      }
    }
    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }
  std::cout
      << "\nExpected shape (paper): Naive and OneR coincide (same RR);\n"
         "MultiR-SS adds the download of noisy edges; MultiR-DS is highest\n"
         "(degree round + both directions); all shrink as eps grows.\n";
  return 0;
}
