#include "bench_common.h"

#include <cstdio>
#include <map>

#include "util/timer.h"

namespace cne {
namespace bench {

BenchOptions ParseOptions(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  BenchOptions options;
  options.datasets = cl.GetList("datasets");
  options.pairs = static_cast<size_t>(cl.GetInt("pairs", 100));
  options.epsilon = cl.GetDouble("epsilon", 2.0);
  options.trials = static_cast<size_t>(cl.GetInt("trials", 1));
  options.seed = static_cast<uint64_t>(cl.GetInt("seed", 7));
  options.csv = cl.GetBool("csv");
  return options;
}

void PrintHeader(const std::string& artifact, const std::string& summary,
                 const BenchOptions& options) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), summary.c_str());
  std::printf("paper: Common Neighborhood Estimation over Bipartite Graphs\n");
  std::printf("       under Local Differential Privacy (SIGMOD 2024)\n");
  std::printf("datasets: synthetic Chung-Lu analogs of the KONECT graphs\n");
  std::printf("          (Table 2 sizes; >2M-edge graphs scaled, see "
              "docs/BENCHMARKS.md)\n");
  std::printf("pairs=%zu trials=%zu seed=%llu\n", options.pairs,
              options.trials,
              static_cast<unsigned long long>(options.seed));
  std::printf("==============================================================\n");
}

const BipartiteGraph& CachedDataset(const DatasetSpec& spec) {
  static std::map<std::string, BipartiteGraph>* cache =
      new std::map<std::string, BipartiteGraph>();
  auto it = cache->find(spec.code);
  if (it == cache->end()) {
    Timer timer;
    std::fprintf(stderr, "[bench] generating %s (%s: |U|=%llu |L|=%llu "
                 "m=%llu) ...\n",
                 spec.code.c_str(), spec.name.c_str(),
                 static_cast<unsigned long long>(spec.gen_upper),
                 static_cast<unsigned long long>(spec.gen_lower),
                 static_cast<unsigned long long>(spec.gen_edges));
    it = cache->emplace(spec.code, MakeDataset(spec)).first;
    std::fprintf(stderr, "[bench]   done in %.1fs\n", timer.Seconds());
  }
  return it->second;
}

}  // namespace bench
}  // namespace cne
