#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "graph/graph_stats.h"
#include "util/cpu_features.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cne {
namespace bench {

BenchOptions ParseOptions(int argc, char** argv) {
  const CommandLine cl(argc, argv);
  BenchOptions options;
  options.datasets = cl.GetList("datasets");
  options.pairs = static_cast<size_t>(cl.GetInt("pairs", 100));
  options.epsilon = cl.GetDouble("epsilon", 2.0);
  options.trials = static_cast<size_t>(cl.GetInt("trials", 1));
  options.seed = static_cast<uint64_t>(cl.GetInt("seed", 7));
  options.csv = cl.GetBool("csv");
  return options;
}

void PrintHeader(const std::string& artifact, const std::string& summary,
                 const BenchOptions& options) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), summary.c_str());
  std::printf("paper: Common Neighborhood Estimation over Bipartite Graphs\n");
  std::printf("       under Local Differential Privacy (SIGMOD 2024)\n");
  std::printf("datasets: synthetic Chung-Lu analogs of the KONECT graphs\n");
  std::printf("          (Table 2 sizes; >2M-edge graphs scaled, see "
              "docs/BENCHMARKS.md)\n");
  std::printf("pairs=%zu trials=%zu seed=%llu\n", options.pairs,
              options.trials,
              static_cast<unsigned long long>(options.seed));
  std::printf("==============================================================\n");
}

const BipartiteGraph& CachedDataset(const DatasetSpec& spec) {
  static std::map<std::string, BipartiteGraph>* cache =
      new std::map<std::string, BipartiteGraph>();
  auto it = cache->find(spec.code);
  if (it == cache->end()) {
    Timer timer;
    std::fprintf(stderr, "[bench] generating %s (%s: |U|=%llu |L|=%llu "
                 "m=%llu) ...\n",
                 spec.code.c_str(), spec.name.c_str(),
                 static_cast<unsigned long long>(spec.gen_upper),
                 static_cast<unsigned long long>(spec.gen_lower),
                 static_cast<unsigned long long>(spec.gen_edges));
    it = cache->emplace(spec.code, MakeDataset(spec)).first;
    std::fprintf(stderr, "[bench]   done in %.1fs\n", timer.Seconds());
  }
  return it->second;
}

std::vector<uint64_t> ParseScaleList(const CommandLine& cl) {
  std::vector<uint64_t> targets;
  for (const std::string& s : cl.GetList("scale")) {
    const long long v = std::atoll(s.c_str());
    if (v <= 0) {
      CNE_LOG(kWarning) << "ignoring non-positive --scale entry '" << s << "'";
      continue;
    }
    targets.push_back(static_cast<uint64_t>(v));
  }
  return targets;
}

ScaleDataset MakeScaleDataset(uint64_t target_edges, double exponent,
                              uint64_t seed) {
  // BX (Bookcrossing) is the largest full-size Table 2 analog; its shape
  // is the base every scale target is derived from.
  const auto bx = FindDataset("BX");
  CNE_CHECK(bx.has_value());
  ScaleDataset dataset;
  dataset.spec = ScaledShapeSpec(bx->gen_upper, bx->gen_lower, bx->gen_edges,
                                 target_edges, exponent, seed);
  Timer timer;
  dataset.graph = BuildSyntheticGraph(dataset.spec, "", &dataset.cache);
  dataset.build_seconds = timer.Seconds();
  std::fprintf(stderr,
               "[bench] scale graph %s: %s, built in %.2fs (m=%llu)\n",
               dataset.cache.generated ? "generated" : "cache hit",
               dataset.spec.Describe().c_str(), dataset.build_seconds,
               static_cast<unsigned long long>(dataset.graph.NumEdges()));
  return dataset;
}

std::string GraphShapeJson(const ScaleDataset& dataset) {
  const GraphStats stats = ComputeGraphStats(dataset.graph);
  std::ostringstream out;
  out << "{\"draws\": " << dataset.spec.num_edges
      << ", \"upper\": " << dataset.spec.num_upper
      << ", \"lower\": " << dataset.spec.num_lower
      << ", \"edges\": " << stats.num_edges
      << ", \"exponent\": " << dataset.spec.exponent_upper
      << ", \"seed\": " << dataset.spec.seed
      << ", \"max_degree_upper\": " << stats.upper.max_degree
      << ", \"avg_degree_upper\": " << stats.upper.average_degree
      << ", \"max_degree_lower\": " << stats.lower.max_degree
      << ", \"avg_degree_lower\": " << stats.lower.average_degree
      << ", \"cache_hit\": " << (dataset.cache.generated ? "false" : "true")
      << ", \"build_seconds\": " << dataset.build_seconds << "}";
  return out.str();
}

std::string ScaleMetricJson(const std::string& name, double value,
                            bool higher_is_better) {
  std::ostringstream out;
  out << "{\"name\": \"" << name << "\", \"value\": " << value
      << ", \"higher_is_better\": " << (higher_is_better ? "true" : "false")
      << "}";
  return out.str();
}

std::string PhasesJson(const obs::MetricsSnapshot& metrics,
                       const std::string& indent) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const obs::PhaseStats& phase : metrics.phases) {
    if (!first) out << ",";
    first = false;
    out << "\n" << indent << "  {\"name\": \"" << phase.name
        << "\", \"count\": " << phase.count
        << ", \"total_seconds\": " << phase.total_seconds
        << ", \"mean_seconds\": " << phase.mean_seconds
        << ", \"p50_seconds\": " << phase.p50_seconds
        << ", \"p90_seconds\": " << phase.p90_seconds
        << ", \"p99_seconds\": " << phase.p99_seconds
        << ", \"p999_seconds\": " << phase.p999_seconds
        << ", \"max_seconds\": " << phase.max_seconds << "}";
  }
  if (!first) out << "\n" << indent;
  out << "]";
  return out.str();
}

std::string HardwareContextJson() {
  int affinity = -1;
#if defined(__linux__)
  cpu_set_t mask;
  CPU_ZERO(&mask);
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    affinity = CPU_COUNT(&mask);
  }
#endif
  std::ostringstream out;
  out << "{\"hardware_concurrency\": " << std::thread::hardware_concurrency()
      << ", \"affinity_cores\": " << affinity << ", \"simd_level\": \""
      << SimdLevelName(ActiveSimdLevel()) << "\", \"simd_detected\": \""
      << SimdLevelName(DetectedSimdLevel()) << "\"}";
  return out.str();
}

}  // namespace bench
}  // namespace cne
