// Ablation: sparse randomized response vs the textbook dense (bit-by-bit)
// implementation. docs/ARCHITECTURE.md claims the sparse sampler is
// distributionally identical at O(d + pn) cost; this harness measures both
// the speedup and the distributional agreement (noisy-degree mean over
// repeated runs).

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "graph/generators.h"
#include "ldp/randomized_response.h"
#include "util/statistics.h"
#include "util/table.h"
#include "util/timer.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::PrintHeader("Ablation", "sparse vs dense randomized response",
                     options);

  TextTable table({"domain n", "deg d", "eps", "sparse us/run",
                   "bitmap us/run", "dense us/run", "speedup",
                   "mean|noisy| sparse", "mean|noisy| dense",
                   "E[noisy] theory"});
  Rng gen(1);
  for (VertexId domain : {1000u, 10000u, 100000u}) {
    const VertexId degree = domain / 100;
    Rng graph_rng(gen.NextU64());
    const BipartiteGraph g =
        ErdosRenyiBipartite(1, domain, degree, graph_rng);
    for (double eps : {1.0, 2.0}) {
      // Dense runs are capped so the 100k domain stays fast. The sorted
      // and bitmap samplers are pinned explicitly: at these eps kAuto
      // would pick the bitmap, and this ablation is about each sampler.
      const int sparse_runs = 2000;
      const int dense_runs = domain > 50000 ? 50 : 400;
      Rng rng_s(11), rng_b(11), rng_d(12);
      RunningStats size_s, size_d;
      Timer t1;
      for (int i = 0; i < sparse_runs; ++i) {
        size_s.Add(static_cast<double>(
            ApplyRandomizedResponse(g, {Layer::kUpper, 0}, eps, rng_s,
                                    RrStorage::kSorted)
                .Size()));
      }
      const double sparse_us = t1.Seconds() * 1e6 / sparse_runs;
      Timer tb;
      for (int i = 0; i < sparse_runs; ++i) {
        (void)ApplyRandomizedResponse(g, {Layer::kUpper, 0}, eps, rng_b,
                                      RrStorage::kBitmap);
      }
      const double bitmap_us = tb.Seconds() * 1e6 / sparse_runs;
      Timer t2;
      for (int i = 0; i < dense_runs; ++i) {
        size_d.Add(static_cast<double>(
            ApplyRandomizedResponseDense(g, {Layer::kUpper, 0}, eps, rng_d)
                .Size()));
      }
      const double dense_us = t2.Seconds() * 1e6 / dense_runs;
      table.NewRow()
          .AddInt(domain)
          .AddInt(degree)
          .AddDouble(eps, 1)
          .AddDouble(sparse_us, 1)
          .AddDouble(bitmap_us, 1)
          .AddDouble(dense_us, 1)
          .AddDouble(dense_us / sparse_us, 1)
          .AddDouble(size_s.Mean(), 1)
          .AddDouble(size_d.Mean(), 1)
          .AddDouble(ExpectedNoisyDegree(degree, domain, eps), 1);
    }
  }
  options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::printf(
      "\nExpected: matching noisy-degree means (same distribution).\n"
      "Runtime: both samplers beat the dense bit-by-bit scan. The bitmap\n"
      "writer pays rejection probes per flip-in, so the sorted sampler\n"
      "stays the fastest *generator* at scale — the bitmap's payoff is the\n"
      "packed representation, which makes downstream intersections 20-70x\n"
      "faster (see ext_intersect).\n");
  return 0;
}
