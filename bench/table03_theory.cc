// Regenerates Table 3: the summary of expected L2 losses and communication
// costs, evaluated numerically and cross-checked against Monte-Carlo
// measurements on a planted-configuration graph so the closed forms are
// auditable end to end.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "core/theory.h"
#include "graph/generators.h"
#include "ldp/comm_model.h"
#include "util/statistics.h"
#include "util/table.h"

using namespace cne;

namespace {

struct Measurement {
  double l2 = 0.0;
  double comm = 0.0;
};

Measurement Measure(const CommonNeighborEstimator& estimator,
                    const BipartiteGraph& g, const QueryPair& q,
                    double epsilon, double truth, int trials,
                    uint64_t seed) {
  Rng rng(seed);
  RunningStats sq, comm;
  for (int t = 0; t < trials; ++t) {
    const EstimateResult r = estimator.Estimate(g, q, epsilon, rng);
    sq.Add((r.estimate - truth) * (r.estimate - truth));
    comm.Add(r.TotalBytes());
  }
  return {sq.Mean(), comm.Mean()};
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  const int trials = static_cast<int>(cl.GetInt("runs", 20000));
  bench::PrintHeader("Table 3",
                     "expected L2 losses and communication: theory vs "
                     "measured",
                     options);

  // Planted configuration: c2=4, du=24, dw=12, n1=2000 candidates.
  const double c2 = 4, du = 24, dw = 12, n1 = 2000;
  const BipartiteGraph g = PlantedCommonNeighbors(4, 20, 8, 1968);
  const QueryPair q{Layer::kLower, 0, 1};
  const double eps = options.epsilon;
  const double e1 = eps / 2, e2 = eps / 2;  // MultiR-SS split

  std::printf("configuration: n1=%.0f du=%.0f dw=%.0f C2=%.0f eps=%.2f "
              "(trials=%d)\n\n", n1, du, dw, c2, eps, trials);

  TextTable table({"algorithm", "unbiased", "L2 theory", "L2 measured",
                   "comm theory(B)", "comm measured(B)"});
  const CommModel model;

  {
    NaiveEstimator naive;
    const Measurement m = Measure(naive, g, q, eps, c2, trials, 11);
    const double comm_theory = ExpectedRrUploadBytes(du, n1, eps, model) +
                               ExpectedRrUploadBytes(dw, n1, eps, model);
    table.NewRow()
        .Add("Naive")
        .Add("no")
        .AddDouble(NaiveExpectedL2(n1, du, dw, c2, eps), 2)
        .AddDouble(m.l2, 2)
        .AddDouble(comm_theory, 0)
        .AddDouble(m.comm, 0);
  }
  {
    OneREstimator oner;
    const Measurement m = Measure(oner, g, q, eps, c2, trials, 12);
    const double comm_theory = ExpectedRrUploadBytes(du, n1, eps, model) +
                               ExpectedRrUploadBytes(dw, n1, eps, model);
    table.NewRow()
        .Add("OneR")
        .Add("yes")
        .AddDouble(OneRExpectedL2(n1, du, dw, eps), 2)
        .AddDouble(m.l2, 2)
        .AddDouble(comm_theory, 0)
        .AddDouble(m.comm, 0);
  }
  {
    MultiRSSEstimator ss;
    const Measurement m = Measure(ss, g, q, eps, c2, trials, 13);
    // Upload + download of w's noisy edges, plus one scalar.
    const double comm_theory =
        2 * ExpectedRrUploadBytes(dw, n1, e1, model) + 8.0;
    table.NewRow()
        .Add("MultiR-SS")
        .Add("yes")
        .AddDouble(SingleSourceExpectedL2(du, e1, e2), 2)
        .AddDouble(m.l2, 2)
        .AddDouble(comm_theory, 0)
        .AddDouble(m.comm, 0);
  }
  {
    auto basic = MakeMultiRDSBasic(0.5);
    const Measurement m = Measure(*basic, g, q, eps, c2, trials, 14);
    const double comm_theory =
        2 * (ExpectedRrUploadBytes(du, n1, e1, model) +
             ExpectedRrUploadBytes(dw, n1, e1, model)) +
        16.0;
    table.NewRow()
        .Add("MultiR-DS-Basic")
        .Add("yes")
        .AddDouble(DoubleSourceExpectedL2(du, dw, 0.5, e1, e2), 2)
        .AddDouble(m.l2, 2)
        .AddDouble(comm_theory, 0)
        .AddDouble(m.comm, 0);
  }
  {
    auto star = MakeMultiRDSStar();
    Rng probe(1);
    const EstimateResult alloc = star->Estimate(g, q, eps, probe);
    const Measurement m = Measure(*star, g, q, eps, c2, trials, 15);
    table.NewRow()
        .Add("MultiR-DS*")
        .Add("yes")
        .AddDouble(DoubleSourceExpectedL2(du, dw, alloc.alpha,
                                          alloc.epsilon1, alloc.epsilon2),
                   2)
        .AddDouble(m.l2, 2)
        .Add("-")
        .AddDouble(m.comm, 0);
  }
  {
    CentralDpEstimator central;
    const Measurement m = Measure(central, g, q, eps, c2, trials, 16);
    table.NewRow()
        .Add("CentralDP")
        .Add("yes")
        .AddDouble(CentralDpExpectedL2(eps), 2)
        .AddDouble(m.l2, 2)
        .AddDouble(0, 0)
        .AddDouble(m.comm, 0);
  }

  options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::printf(
      "\nAsymptotic orders (Table 3): Naive O(n1^2 e^{4eps}/(1+e^eps)^4), "
      "OneR O(n1 e^{2eps}/(1-e^eps)^4),\nMultiR-SS/DS independent of n1 "
      "(degree- and split-dependent only).\n");
  return 0;
}
