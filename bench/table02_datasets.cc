// Regenerates Table 2: dataset statistics. Prints the paper's reported
// sizes next to the generated analogs' actual sizes and degree structure,
// so the substitution is auditable.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "graph/graph_stats.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::PrintHeader("Table 2", "summary of datasets (paper vs generated)",
                     options);

  TextTable table({"code", "name", "paper|U|", "paper|L|", "paper|E|",
                   "gen|U|", "gen|L|", "gen|E|", "dmax(U)", "dmax(L)",
                   "davg(q-layer)"});
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    const GraphStats stats = ComputeGraphStats(g);
    table.NewRow()
        .Add(spec.code)
        .Add(spec.name)
        .AddInt(static_cast<long long>(spec.paper_upper))
        .AddInt(static_cast<long long>(spec.paper_lower))
        .AddInt(static_cast<long long>(spec.paper_edges))
        .AddInt(static_cast<long long>(g.NumUpper()))
        .AddInt(static_cast<long long>(g.NumLower()))
        .AddInt(static_cast<long long>(g.NumEdges()))
        .AddInt(stats.upper.max_degree)
        .AddInt(stats.lower.max_degree)
        .AddDouble(g.AverageDegree(spec.query_layer), 2);
  }
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  return 0;
}
