// Regenerates Fig. 11: effect of the number of vertices. Every algorithm
// runs on induced subgraphs of 20%, 40%, 60%, 80%, 100% of the vertices of
// WC, ER, DUI, OG at ε = 2.

#include <iostream>

#include "bench_common.h"
#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "graph/subgraph.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"WC", "ER", "DUI", "OG"};
  }
  bench::PrintHeader("Figure 11", "effect of the number of vertices",
                     options);

  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<NaiveEstimator>());
  roster.push_back(std::make_unique<OneREstimator>());
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  roster.push_back(MakeMultiRDS());
  roster.push_back(std::make_unique<CentralDpEstimator>());

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& full = bench::CachedDataset(spec);
    std::vector<std::string> header = {"%|V|"};
    for (const auto& e : roster) header.push_back(e->Name());
    TextTable table(header);

    for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
      Rng sub_rng(options.seed + static_cast<uint64_t>(fraction * 100));
      const BipartiteGraph sub =
          fraction >= 1.0
              ? BipartiteGraph(full)
              : InducedSubgraphByVertexFraction(full, fraction, sub_rng);
      Rng rng(options.seed);
      const auto pairs =
          SampleUniformPairs(sub, spec.query_layer, options.pairs, rng);
      ExperimentConfig config;
      config.epsilon = options.epsilon;
      const auto metrics = RunAllEstimators(sub, roster, pairs, config, rng);
      table.NewRow().Add(FormatDouble(fraction * 100, 0) + "%");
      for (const EstimatorMetrics& m : metrics) {
        table.AddSci(m.mean_absolute_error, 2);
      }
    }
    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }
  std::cout
      << "\nExpected shape (paper): Naive and OneR errors grow with |V|\n"
         "(O(n1^2) and O(n1) losses); MultiR-SS, MultiR-DS, and CentralDP\n"
         "stay flat.\n";
  return 0;
}
