// Shared plumbing for the figure/table benchmark harnesses: standard
// flags, dataset caching, and uniform headers so every binary regenerates
// its paper artifact in the same format.

#ifndef CNE_BENCH_BENCH_COMMON_H_
#define CNE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/datasets.h"
#include "graph/bipartite_graph.h"
#include "graph/synthetic.h"
#include "obs/metrics.h"
#include "util/cli.h"

namespace cne {
namespace bench {

/// Flags shared by all harnesses:
///   --datasets=RM,AC   subset of dataset codes (default: per-bench)
///   --pairs=N          query pairs per dataset (default 100, as in paper)
///   --epsilon=X        privacy budget (default 2.0)
///   --trials=N         protocol runs per pair (default 1)
///   --seed=N           master seed (default 7)
///   --csv              emit CSV instead of aligned tables
struct BenchOptions {
  std::vector<std::string> datasets;
  size_t pairs = 100;
  double epsilon = 2.0;
  size_t trials = 1;
  uint64_t seed = 7;
  bool csv = false;
};

/// Parses the standard flags.
BenchOptions ParseOptions(int argc, char** argv);

/// Prints the uniform harness banner (figure id, paper reference, and the
/// substitution note for generated datasets).
void PrintHeader(const std::string& artifact, const std::string& summary,
                 const BenchOptions& options);

/// Returns the graph for `spec`, generating it on first use and caching it
/// in-process (several harness phases reuse the same dataset).
const BipartiteGraph& CachedDataset(const DatasetSpec& spec);

// ---- Scale sections (--scale=N,M) ----
//
// Every ext_* bench grows a "scale" JSON array when --scale lists edge-draw
// targets: each entry runs the bench's hot loop on a generated Table 2
// BX-shaped graph of that size (graph/synthetic.h; cached on disk under
// DefaultSyntheticCacheDir()), records the graph's shape and degree-skew
// axes, and emits one canonical `scale_metric` that
// scripts/check_bench_scale.py diffs across commits.

/// Parses `--scale=100000,1000000` into edge-draw targets; empty when the
/// flag is absent (scale sections are skipped entirely).
std::vector<uint64_t> ParseScaleList(const CommandLine& cl);

/// One generated scale dataset plus its provenance.
struct ScaleDataset {
  SyntheticSpec spec;
  BipartiteGraph graph;
  EdgeCacheEntry cache;
  double build_seconds = 0.0;
};

/// The Table 2 BX (Bookcrossing) shape scaled to `target_edges` draws —
/// the canonical scale-axis graph family. Built through the streamed
/// builder from the on-disk edge cache.
ScaleDataset MakeScaleDataset(uint64_t target_edges, double exponent = 2.1,
                              uint64_t seed = 107);

/// JSON object describing a scale dataset: generator params, realized
/// shape, per-layer degree skew, and cache provenance.
std::string GraphShapeJson(const ScaleDataset& dataset);

/// The canonical scale metric object every scale entry carries:
/// `{"name": ..., "value": ..., "higher_is_better": ...}`.
std::string ScaleMetricJson(const std::string& name, double value,
                            bool higher_is_better);

// ---- Per-phase latency quantiles (obs/metrics.h) ----

/// JSON array of per-phase latency rows from a metrics snapshot — the
/// same schema as the "phases" array of MetricsSnapshot::ToJson, one
/// phase per line prefixed with `indent`. Every bench section that runs
/// a service embeds this so BENCH_*.json carries p50/p99/p999 per phase.
std::string PhasesJson(const obs::MetricsSnapshot& metrics,
                       const std::string& indent = "");

/// JSON object describing the machine a perf number was measured on:
/// `{"hardware_concurrency": N, "affinity_cores": M}`. The affinity
/// count comes from the process scheduling mask and can be lower than
/// hardware_concurrency inside containers or under taskset (-1 when the
/// platform cannot report it).
std::string HardwareContextJson();

}  // namespace bench
}  // namespace cne

#endif  // CNE_BENCH_BENCH_COMMON_H_
