// Shared plumbing for the figure/table benchmark harnesses: standard
// flags, dataset caching, and uniform headers so every binary regenerates
// its paper artifact in the same format.

#ifndef CNE_BENCH_BENCH_COMMON_H_
#define CNE_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "eval/datasets.h"
#include "graph/bipartite_graph.h"
#include "util/cli.h"

namespace cne {
namespace bench {

/// Flags shared by all harnesses:
///   --datasets=RM,AC   subset of dataset codes (default: per-bench)
///   --pairs=N          query pairs per dataset (default 100, as in paper)
///   --epsilon=X        privacy budget (default 2.0)
///   --trials=N         protocol runs per pair (default 1)
///   --seed=N           master seed (default 7)
///   --csv              emit CSV instead of aligned tables
struct BenchOptions {
  std::vector<std::string> datasets;
  size_t pairs = 100;
  double epsilon = 2.0;
  size_t trials = 1;
  uint64_t seed = 7;
  bool csv = false;
};

/// Parses the standard flags.
BenchOptions ParseOptions(int argc, char** argv);

/// Prints the uniform harness banner (figure id, paper reference, and the
/// substitution note for generated datasets).
void PrintHeader(const std::string& artifact, const std::string& summary,
                 const BenchOptions& options);

/// Returns the graph for `spec`, generating it on first use and caching it
/// in-process (several harness phases reuse the same dataset).
const BipartiteGraph& CachedDataset(const DatasetSpec& spec);

}  // namespace bench
}  // namespace cne

#endif  // CNE_BENCH_BENCH_COMMON_H_
