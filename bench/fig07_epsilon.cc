// Regenerates Fig. 7: mean absolute error as the privacy budget ε varies
// from 1 to 3, on the paper's eight largest datasets (SO, TM, WC, ML, ER,
// NX, DUI, OG), for Naive, OneR, MultiR-SS, MultiR-DS, and CentralDP.

#include <iostream>

#include "bench_common.h"
#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"SO", "TM", "WC", "ML", "ER", "NX", "DUI", "OG"};
  }
  bench::PrintHeader("Figure 7", "effect of the privacy budget on MAE",
                     options);

  std::vector<std::unique_ptr<CommonNeighborEstimator>> roster;
  roster.push_back(std::make_unique<NaiveEstimator>());
  roster.push_back(std::make_unique<OneREstimator>());
  roster.push_back(std::make_unique<MultiRSSEstimator>());
  roster.push_back(MakeMultiRDS());
  roster.push_back(std::make_unique<CentralDpEstimator>());

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    const auto pairs =
        SampleUniformPairs(g, spec.query_layer, options.pairs, rng);

    std::vector<std::string> header = {"eps"};
    for (const auto& e : roster) header.push_back(e->Name());
    TextTable table(header);
    for (double eps = 1.0; eps <= 3.0001; eps += 0.5) {
      ExperimentConfig config;
      config.epsilon = eps;
      config.trials_per_pair = options.trials;
      Rng run_rng(options.seed + static_cast<uint64_t>(eps * 100));
      const auto metrics =
          RunAllEstimators(g, roster, pairs, config, run_rng);
      table.NewRow().AddDouble(eps, 1);
      for (const EstimatorMetrics& m : metrics) {
        table.AddSci(m.mean_absolute_error, 2);
      }
    }
    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): every curve decreases in eps;\n"
               "MultiR curves sit orders of magnitude below Naive/OneR;\n"
               "CentralDP below everything.\n";
  return 0;
}
