// Extension experiment: vertex-grouped batch execution. The paper's
// applications (similarity, top-k, projection) are one-vs-many workloads:
// one source vertex against hundreds of candidates. This bench measures
// the three ways the repo can execute such a workload:
//
//   per_pair            PR 3's apps path — one full protocol execution per
//                       candidate (fresh randomized response from both
//                       vertices every time);
//   service_unplanned   QueryService with the planner disabled — shared
//                       noisy views, but per-query post-processing;
//   service_planned     QueryService with the WorkloadPlanner — shared
//                       views plus per-source grouped execution through
//                       BatchIntersectionSize.
//
// Section `one_vs_many` runs a 1×N shared-source workload on the
// committed sample graph at ε = 1 (N ≥ 256 distinct candidates, repeated
// submissions so steady-state answering dominates); section
// `grouped_sweep` runs hot-set workloads across datasets. Output is JSON
// on stdout (progress on stderr) for the BENCH_* perf trajectory.
//
// Built-in self-check: planned and unplanned answers must be bitwise
// identical (including at 2 threads); any mismatch exits non-zero, so CI
// runs double as a correctness gate.
//
// Extra flags on top of the shared bench set:
//   --candidates=256   candidates N of the 1×N section
//   --repeats=64       submissions of the 1×N workload per timed path
//   --hot=24           hot-set size of the grouped sweep
//   --scale=1e5,1e6    edge-draw targets for the scale section: the 1×N
//                      workload on the top-degree source of generated
//                      BX-shaped graphs, reduced repeats
//   --out=path         also write the JSON to a file
//   --smoke            small CI configuration

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/oner.h"
#include "graph/graph_io.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/cli.h"
#include "util/cpu_features.h"
#include "util/timer.h"

using namespace cne;

namespace {

bool AnswersIdentical(const std::vector<ServiceAnswer>& a,
                      const std::vector<ServiceAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].rejected != b[i].rejected || a[i].estimate != b[i].estimate) {
      return false;
    }
  }
  return true;
}

struct ServiceRun {
  double seconds = 0.0;
  std::vector<ServiceAnswer> answers;  ///< of the last submission
  ServiceReport last;
};

// Submits `workload` `repeats` times to a fresh service and returns the
// total wall time: one view materialization, then steady-state answering.
ServiceRun RunService(const BipartiteGraph& graph, ServiceOptions options,
                      const std::vector<QueryPair>& workload,
                      size_t repeats) {
  QueryService service(graph, options);
  ServiceRun run;
  Timer timer;
  for (size_t r = 0; r < repeats; ++r) {
    ServiceReport report = service.Submit(workload);
    if (r + 1 == repeats) run.last = std::move(report);
  }
  run.seconds = timer.Seconds();
  // Submit no longer snapshots the registry (too costly per batch); pull
  // the cumulative snapshot once, outside the timed loop.
  run.last.metrics = service.SnapshotMetrics();
  run.answers = run.last.answers;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  const bool smoke = cl.GetBool("smoke");
  const size_t candidates_n =
      static_cast<size_t>(cl.GetInt("candidates", 256));
  const size_t repeats =
      static_cast<size_t>(cl.GetInt("repeats", smoke ? 32 : 64));
  const VertexId hot = static_cast<VertexId>(cl.GetInt("hot", 24));
  if (options.datasets.empty()) {
    options.datasets = smoke ? std::vector<std::string>{"RM"}
                             : std::vector<std::string>{"RM", "DA"};
  }
  bool identity_ok = true;

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ext_batch\",\n"
       << "  \"seed\": " << options.seed << ",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";

  // ---- Section 1: 1×N shared-source workload, sample graph, ε = 1 ----
  {
    const char* root = std::getenv("CNE_SOURCE_DIR");
    const std::string sample_path =
        std::string(root ? root : ".") + "/data/sample_userpage.txt";
    json << "  \"one_vs_many\": ";
    if (!std::ifstream(sample_path).good()) {
      std::fprintf(stderr,
                   "sample graph not found at %s; skipping one_vs_many\n",
                   sample_path.c_str());
      json << "null,\n";
    } else {
      const BipartiteGraph g = ReadGraphFile(sample_path);
      const double epsilon = 1.0;
      // The busiest lower vertex plays the shared source, as in a top-k
      // query for the platform's heaviest user.
      const Layer layer = Layer::kLower;
      LayeredVertex source{layer, 0};
      for (VertexId v = 1; v < g.NumVertices(layer); ++v) {
        if (g.Degree(layer, v) > g.Degree(source)) source = {layer, v};
      }
      std::vector<QueryPair> workload;
      for (VertexId v = 0;
           v < g.NumVertices(layer) && workload.size() < candidates_n; ++v) {
        if (v != source.id) workload.push_back({layer, source.id, v});
      }

      ServiceOptions service_options;
      service_options.algorithm = ServiceAlgorithm::kOneR;
      service_options.epsilon = epsilon;
      service_options.seed = options.seed;
      service_options.num_threads = 1;

      // PR 3's per-query path: one full OneR protocol per candidate, per
      // repetition — every query pays two fresh ε-RR releases.
      OneREstimator oner;
      Rng per_pair_rng(options.seed + 1);
      double checksum = 0.0;
      Timer per_pair_timer;
      for (size_t r = 0; r < repeats; ++r) {
        for (const QueryPair& q : workload) {
          checksum += oner.Estimate(g, q, epsilon, per_pair_rng).estimate;
        }
      }
      const double per_pair_seconds = per_pair_timer.Seconds();

      ServiceOptions unplanned = service_options;
      unplanned.enable_planner = false;
      const ServiceRun run_unplanned =
          RunService(g, unplanned, workload, repeats);

      ServiceOptions planned = service_options;
      planned.enable_planner = true;
      const ServiceRun run_planned =
          RunService(g, planned, workload, repeats);

      // Self-check: planned ≡ unplanned, also at 2 threads.
      ServiceOptions planned2 = planned;
      planned2.num_threads = 2;
      const ServiceRun run_planned2 = RunService(g, planned2, workload, 1);
      if (!AnswersIdentical(run_planned.answers, run_unplanned.answers) ||
          !AnswersIdentical(run_planned2.answers, run_unplanned.answers)) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: planned answers differ from the "
                     "per-query path\n");
        identity_ok = false;
      }

      const double total_queries =
          static_cast<double>(workload.size() * repeats);
      const double speedup_vs_per_pair =
          run_planned.seconds > 0.0 ? per_pair_seconds / run_planned.seconds
                                    : 0.0;
      const double speedup_vs_unplanned =
          run_planned.seconds > 0.0
              ? run_unplanned.seconds / run_planned.seconds
              : 0.0;
      std::fprintf(stderr,
                   "one_vs_many N=%zu x%zu: per_pair %.3fs, unplanned "
                   "%.3fs, planned %.3fs (%.1fx vs per_pair, %.2fx vs "
                   "unplanned, checksum %.1f)\n",
                   workload.size(), repeats, per_pair_seconds,
                   run_unplanned.seconds, run_planned.seconds,
                   speedup_vs_per_pair, speedup_vs_unplanned, checksum);

      json << "{\n"
           << "    \"epsilon\": " << epsilon << ",\n"
           << "    \"source_degree\": " << g.Degree(source) << ",\n"
           << "    \"candidates\": " << workload.size() << ",\n"
           << "    \"repeats\": " << repeats << ",\n"
           << "    \"total_queries\": " << total_queries << ",\n"
           << "    \"per_pair_seconds\": " << per_pair_seconds << ",\n"
           << "    \"unplanned_seconds\": " << run_unplanned.seconds
           << ",\n"
           << "    \"planned_seconds\": " << run_planned.seconds << ",\n"
           << "    \"planned_qps\": "
           << (run_planned.seconds > 0.0 ? total_queries / run_planned.seconds
                                         : 0.0)
           << ",\n"
           << "    \"speedup_vs_per_pair\": " << speedup_vs_per_pair
           << ",\n"
           << "    \"meets_3x_vs_per_pair\": "
           << (speedup_vs_per_pair >= 3.0 ? "true" : "false") << ",\n"
           << "    \"speedup_vs_unplanned\": " << speedup_vs_unplanned
           << ",\n"
           << "    \"groups_formed\": " << run_planned.last.groups_formed
           << ",\n"
           << "    \"avg_group_size\": " << run_planned.last.avg_group_size
           << ",\n"
           << "    \"planner_seconds_last_submit\": "
           << run_planned.last.planner_seconds << ",\n"
           << "    \"rejected\": " << run_planned.last.rejected << ",\n"
           << "    \"phases\": "
           << bench::PhasesJson(run_planned.last.metrics, "    ") << "\n"
           << "  },\n";
    }
  }

  // ---- Section 2: grouped hot-set sweep across datasets ----
  json << "  \"grouped_sweep\": [\n";
  bool first_row = true;
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    const size_t queries = smoke ? 2000 : 8000;
    Rng workload_rng(options.seed);
    const std::vector<QueryPair> workload = MakeHotSetWorkload(
        g, spec.query_layer, queries, hot, workload_rng);
    for (ServiceAlgorithm algorithm :
         {ServiceAlgorithm::kOneR, ServiceAlgorithm::kMultiRDS}) {
      ServiceOptions base;
      base.algorithm = algorithm;
      base.epsilon = options.epsilon;
      // Let the MultiR family answer a meaningful share of the hot-set
      // workload before the ledger cuts it off.
      base.lifetime_budget = options.epsilon * 64.0;
      base.seed = options.seed;
      base.num_threads = 1;

      ServiceOptions unplanned = base;
      unplanned.enable_planner = false;
      const ServiceRun off = RunService(g, unplanned, workload, 1);
      ServiceOptions planned = base;
      planned.enable_planner = true;
      const ServiceRun on = RunService(g, planned, workload, 1);
      if (!AnswersIdentical(on.answers, off.answers)) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: %s %s planned != unplanned\n",
                     spec.code.c_str(), ToString(algorithm));
        identity_ok = false;
      }

      if (!first_row) json << ",\n";
      first_row = false;
      json << "    {\"dataset\": \"" << spec.code << "\", \"algorithm\": \""
           << ToString(algorithm) << "\", \"queries\": " << workload.size()
           << ", \"hot_set\": " << hot
           << ", \"answered\": " << on.last.answered
           << ", \"rejected\": " << on.last.rejected
           << ", \"groups_formed\": " << on.last.groups_formed
           << ", \"avg_group_size\": " << on.last.avg_group_size
           << ", \"planner_seconds\": " << on.last.planner_seconds
           << ", \"unplanned_seconds\": " << off.seconds
           << ", \"planned_seconds\": " << on.seconds
           << ", \"speedup\": "
           << (on.seconds > 0.0 ? off.seconds / on.seconds : 0.0)
           << ",\n     \"phases\": "
           << bench::PhasesJson(on.last.metrics, "     ") << "}";
      std::fprintf(stderr, "%s %s: unplanned %.3fs, planned %.3fs\n",
                   spec.code.c_str(), ToString(algorithm), off.seconds,
                   on.seconds);
    }
  }
  json << "\n  ],\n";

  // ---- Section 3 (--scale): the 1×N workload on the top-degree source
  // ---- of generated BX-shaped graphs. Reduced repeats — at 10⁶ edges
  // ---- the per-query post-processing dominates, which is exactly the
  // ---- regime the planner exists for. Planned qps is the scale metric.
  json << "  \"scale\": [";
  bool first_scale = true;
  for (uint64_t target : bench::ParseScaleList(cl)) {
    const bench::ScaleDataset dataset = bench::MakeScaleDataset(target);
    const BipartiteGraph& g = dataset.graph;
    const size_t scale_repeats = smoke ? 4 : 8;

    // The busiest upper vertex is the shared source; the next
    // `candidates_n` busiest upper vertices are its candidates (matching
    // a top-k query against the head of the degree distribution).
    const Layer layer = Layer::kUpper;
    std::vector<VertexId> by_degree(g.NumVertices(layer));
    for (VertexId v = 0; v < g.NumVertices(layer); ++v) by_degree[v] = v;
    std::partial_sort(by_degree.begin(),
                      by_degree.begin() +
                          std::min<size_t>(candidates_n + 1, by_degree.size()),
                      by_degree.end(), [&](VertexId a, VertexId b) {
                        return g.Degree(layer, a) > g.Degree(layer, b);
                      });
    const VertexId source = by_degree.front();
    std::vector<QueryPair> workload;
    for (size_t i = 1; i < by_degree.size() && workload.size() < candidates_n;
         ++i) {
      workload.push_back({layer, source, by_degree[i]});
    }

    ServiceOptions base;
    base.algorithm = ServiceAlgorithm::kOneR;
    base.epsilon = 1.0;
    base.seed = options.seed;
    base.num_threads = 1;

    ServiceOptions unplanned = base;
    unplanned.enable_planner = false;
    const ServiceRun off = RunService(g, unplanned, workload, scale_repeats);
    ServiceOptions planned = base;
    planned.enable_planner = true;
    const ServiceRun on = RunService(g, planned, workload, scale_repeats);
    if (!AnswersIdentical(on.answers, off.answers)) {
      std::fprintf(stderr, "SELF-CHECK FAILED: scale %llu planned != "
                           "unplanned\n",
                   static_cast<unsigned long long>(target));
      identity_ok = false;
    }

    const double total_queries =
        static_cast<double>(workload.size() * scale_repeats);
    const double planned_qps =
        on.seconds > 0.0 ? total_queries / on.seconds : 0.0;
    std::fprintf(stderr,
                 "scale %llu 1x%zu x%zu: unplanned %.3fs, planned %.3fs "
                 "(%.0f qps)\n",
                 static_cast<unsigned long long>(target), workload.size(),
                 scale_repeats, off.seconds, on.seconds, planned_qps);

    if (!first_scale) json << ",";
    first_scale = false;
    json << "\n    {\"shape\": " << bench::GraphShapeJson(dataset)
         << ",\n     \"source_degree\": " << g.Degree(layer, source)
         << ", \"candidates\": " << workload.size()
         << ", \"repeats\": " << scale_repeats << ", \"simd_level\": \""
         << SimdLevelName(ActiveSimdLevel())
         << "\", \"unplanned_seconds\": " << off.seconds
         << ", \"planned_seconds\": " << on.seconds
         << ", \"speedup_vs_unplanned\": "
         << (on.seconds > 0.0 ? off.seconds / on.seconds : 0.0)
         << ", \"groups_formed\": " << on.last.groups_formed
         << ",\n     \"phases\": "
         << bench::PhasesJson(on.last.metrics, "     ")
         << ",\n     \"scale_metric\": "
         << bench::ScaleMetricJson("planned_qps", planned_qps, true) << "}";
  }
  json << "\n  ],\n"
       << "  \"answers_identical\": " << (identity_ok ? "true" : "false")
       << "\n}\n";

  std::cout << json.str();
  const std::string out_path = cl.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return identity_ok ? 0 : 3;
}
