// Extension experiment: batch amortization. Answering a workload of Q
// query pairs with one shared noisy-graph release (post-processing reuse)
// versus Q independent per-pair OneR protocols — accuracy is statistically
// identical per pair, while upload volume and vertex-side work drop from
// O(Q) releases to one release per distinct vertex.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/oner.h"
#include "service/batch.h"
#include "eval/query_sampler.h"
#include "util/statistics.h"
#include "util/table.h"
#include "util/timer.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) options.datasets = {"RM", "AC", "DA"};
  bench::PrintHeader("Extension", "batch vs per-pair query answering",
                     options);

  TextTable table({"dataset", "queries", "distinct v", "hit rate",
                   "MAE per-pair", "MAE batch", "upload per-pair",
                   "upload batch", "time per-pair(s)", "time batch(s)"});
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    // A workload with vertex reuse: pairs drawn from a small hot set, as
    // in a recommendation frontend querying the same heavy users.
    const VertexId n = g.NumVertices(spec.query_layer);
    const VertexId hot = std::min<VertexId>(n, 30);
    std::vector<QueryPair> queries;
    for (size_t i = 0; i < options.pairs; ++i) {
      const VertexId u = static_cast<VertexId>(rng.UniformInt(hot));
      VertexId w = static_cast<VertexId>(rng.UniformInt(hot - 1));
      if (w >= u) ++w;
      queries.push_back({spec.query_layer, u, w});
    }
    std::vector<double> truths;
    for (const QueryPair& q : queries) {
      truths.push_back(static_cast<double>(
          g.CountCommonNeighbors(q.layer, q.u, q.w)));
    }

    OneREstimator oner;
    Rng rng_pp(options.seed + 1);
    std::vector<double> per_pair;
    double upload_pp = 0.0;
    Timer t1;
    for (const QueryPair& q : queries) {
      const EstimateResult r =
          oner.Estimate(g, q, options.epsilon, rng_pp);
      per_pair.push_back(r.estimate);
      upload_pp += r.uploaded_bytes;
    }
    const double time_pp = t1.Seconds();

    Rng rng_batch(options.seed + 2);
    Timer t2;
    const BatchResult batch =
        BatchOneR(g, queries, options.epsilon, rng_batch);
    const double time_batch = t2.Seconds();
    std::vector<double> batch_estimates;
    for (const BatchAnswer& a : batch.answers) {
      batch_estimates.push_back(a.estimate);
    }

    table.NewRow()
        .Add(spec.code)
        .AddInt(static_cast<long long>(queries.size()))
        .AddInt(static_cast<long long>(batch.vertices_released))
        .AddDouble(batch.cache_hit_rate, 3)
        .AddDouble(MeanAbsoluteError(per_pair, truths), 3)
        .AddDouble(MeanAbsoluteError(batch_estimates, truths), 3)
        .Add(FormatBytes(upload_pp))
        .Add(FormatBytes(batch.uploaded_bytes))
        .AddDouble(time_pp, 3)
        .AddDouble(time_batch, 3);
  }
  options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  std::printf(
      "\nExpected: per-pair MAE comparable; batch upload and time smaller\n"
      "by roughly queries / distinct-vertices (each vertex releases once).\n");
  return 0;
}
