// Extension experiment: (2,2)-biclique (butterfly) counting under edge
// LDP via pair-sampled common-neighborhood estimation — the follow-up
// problem the paper names in its introduction. Reports the exact count,
// the private estimate, and the relative error across budgets on small
// dataset analogs, alongside the bipartite clustering coefficient.

#include <cstdio>
#include <iostream>

#include "apps/butterfly.h"
#include "bench_common.h"
#include "core/multir_ds.h"
#include "util/statistics.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) options.datasets = {"RM", "AC"};
  const CommandLine cl(argc, argv);
  const int repeats = static_cast<int>(cl.GetInt("repeats", 20));
  const size_t sample_pairs =
      static_cast<size_t>(cl.GetInt("sample-pairs", 400));
  bench::PrintHeader("Extension", "private butterfly counting", options);

  auto estimator = MakeMultiRDSStar();
  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    const double exact = static_cast<double>(ExactButterflies(g));
    const double cc = BipartiteClusteringCoefficient(g);
    std::printf("\n--- %s: exact butterflies = %.3e, clustering = %.4f ---\n",
                spec.code.c_str(), exact, cc);

    TextTable table({"eps per pair", "mean estimate", "rel err of mean",
                     "stddev/exact"});
    for (double eps : {1.0, 2.0, 4.0}) {
      Rng rng(options.seed + static_cast<uint64_t>(eps * 100));
      RunningStats stats;
      for (int r = 0; r < repeats; ++r) {
        stats.Add(EstimateButterflies(g, spec.query_layer, *estimator, eps,
                                      sample_pairs, rng)
                      .butterflies);
      }
      table.NewRow()
          .AddDouble(eps, 1)
          .AddSci(stats.Mean(), 3)
          .AddDouble(std::abs(stats.Mean() - exact) / exact, 3)
          .AddDouble(stats.StdDev() / exact, 3);
    }
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
  }
  std::printf(
      "\nExpected: the mean estimate converges on the exact count (the\n"
      "pair-sampled estimator is unbiased); per-run spread shrinks with\n"
      "the budget and the number of sampled pairs.\n");
  return 0;
}
