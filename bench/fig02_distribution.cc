// Regenerates Fig. 2: the estimate distribution of Naive, OneR, MultiR-SS,
// and MultiR-DS on the rmwiki analog at ε = 1, for a query pair with
// highly imbalanced degrees (paper uses degrees 556 and 2). Prints summary
// statistics and ASCII densities for each algorithm.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/query_sampler.h"
#include "util/statistics.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  const double epsilon = cl.GetDouble("epsilon", 1.0);  // paper: ε = 1
  const int runs = static_cast<int>(cl.GetInt("runs", 1000));
  bench::PrintHeader("Figure 2",
                     "estimate distributions on rmwiki, imbalanced pair",
                     options);

  const DatasetSpec spec = *FindDataset("RM");
  const BipartiteGraph& g = bench::CachedDataset(spec);

  // The paper's pair has degrees 556 and 2; find the closest analog pair.
  const QueryPair query =
      FindPairWithDegrees(g, spec.query_layer, 556, 2);
  const double truth = static_cast<double>(
      g.CountCommonNeighbors(query.layer, query.u, query.w));
  std::printf("query pair degrees: %u and %u, true C2 = %.0f, eps = %.2f\n\n",
              g.Degree(query.layer, query.u), g.Degree(query.layer, query.w),
              truth, epsilon);

  std::vector<std::unique_ptr<CommonNeighborEstimator>> algorithms;
  algorithms.push_back(std::make_unique<NaiveEstimator>());
  algorithms.push_back(std::make_unique<OneREstimator>());
  algorithms.push_back(std::make_unique<MultiRSSEstimator>());
  algorithms.push_back(MakeMultiRDS());

  TextTable table({"algorithm", "mean", "stddev", "p05", "median", "p95",
                   "p99", "p999", "bias"});
  Rng master(options.seed);
  for (const auto& algorithm : algorithms) {
    Rng rng = master.Split();
    std::vector<double> estimates;
    estimates.reserve(runs);
    for (int t = 0; t < runs; ++t) {
      estimates.push_back(
          algorithm->Estimate(g, query, epsilon, rng).estimate);
    }
    const Summary s = Summarize(estimates);
    table.NewRow()
        .Add(algorithm->Name())
        .AddDouble(s.mean, 2)
        .AddDouble(s.stddev, 2)
        .AddDouble(s.p05, 2)
        .AddDouble(s.median, 2)
        .AddDouble(s.p95, 2)
        .AddDouble(s.p99, 2)
        .AddDouble(s.p999, 2)
        .AddDouble(s.mean - truth, 2);

    if (!options.csv) {
      // Render the density over a window matched to the paper's x-axis.
      Histogram hist(-400, 800, 24);
      for (double e : estimates) hist.Add(e);
      std::printf("--- %s (true count marked by bucket containing %.0f)\n",
                  algorithm->Name().c_str(), truth);
      std::fputs(hist.ToAscii(46).c_str(), stdout);
      std::printf("\n");
    }
  }
  if (options.csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  std::printf(
      "\nExpected shape (paper): Naive shifted far right of the true\n"
      "count; OneR centered but wide; MultiR-SS tighter; MultiR-DS\n"
      "tightest because it down-weights the high-degree source.\n");
  return 0;
}
