// Extension experiment: persistence subsystem throughput (store/).
//
// Measures, on the committed sample graph, (1) checkpoint (save) cost and
// snapshot size, (2) warm-start latency — restoring a killed service from
// snapshot + WAL — against the cold start that rebuilds the same state by
// re-executing the workload, and (3) runs the round-trip self-check: the
// restored service must produce byte-identical answers and residual
// budgets to an uninterrupted run. Any disagreement exits non-zero, so
// the CI smoke run is also a correctness gate for the persistence layer.
//
// Output is machine-readable JSON on stdout (progress on stderr).
//
// Extra flags on top of the shared bench set:
//   --algorithm=OneR    service algorithm (Naive|OneR|MultiR-SS|MultiR-DS)
//   --hot=48            hot-set size of the synthetic workload
//   --repeats=5         save/load timing repetitions (median-free mean)
//   --scale=1e5,1e6     edge-draw targets for the scale section:
//                       checkpoint/warm/cold on generated BX-shaped graphs,
//                       checkpoint MB/s as the canonical scale metric
//   --out=path          also write the JSON to a file
//   --smoke             small CI configuration

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/binary_io.h"
#include "util/cli.h"
#include "util/cpu_features.h"
#include "util/timer.h"

using namespace cne;

namespace {

bool SameAnswers(const ServiceReport& a, const ServiceReport& b) {
  if (a.answers.size() != b.answers.size()) return false;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    if (a.answers[i].rejected != b.answers[i].rejected ||
        a.answers[i].estimate != b.answers[i].estimate) {
      return false;
    }
  }
  return true;
}

bool SameLedgers(const BudgetLedger& a, const BudgetLedger& b) {
  const auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  if (sa.size() != sb.size()) return false;
  for (size_t i = 0; i < sa.size(); ++i) {
    if (!(sa[i].vertex == sb[i].vertex) || sa[i].spent != sb[i].spent) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  const CommandLine cl(argc, argv);
  const bool smoke = cl.GetBool("smoke");

  const std::string algorithm_name = cl.GetString("algorithm", "OneR");
  const auto algorithm = ParseServiceAlgorithm(algorithm_name);
  if (!algorithm) {
    std::fprintf(stderr, "unknown --algorithm=%s\n", algorithm_name.c_str());
    return 2;
  }
  // This bench lives in the dense ε ≤ 1 regime of the sample graph, like
  // ext_intersect; the shared --epsilon default of 2 is for estimators.
  const double epsilon = cl.Has("epsilon") ? options.epsilon : 1.0;
  const size_t queries =
      cl.Has("pairs") ? options.pairs : (smoke ? 2000 : 10000);
  const VertexId hot = static_cast<VertexId>(cl.GetInt("hot", 48));
  const size_t repeats =
      static_cast<size_t>(cl.GetInt("repeats", smoke ? 3 : 5));

  // The committed fixture when reachable (repo root or CNE_SOURCE_DIR),
  // a matched generated graph otherwise.
  const char* root = std::getenv("CNE_SOURCE_DIR");
  const std::string sample_path =
      std::string(root ? root : ".") + "/data/sample_userpage.txt";
  BipartiteGraph graph;
  std::string graph_source;
  if (std::ifstream(sample_path).good()) {
    graph = ReadGraphFile(sample_path);
    graph_source = "data/sample_userpage.txt";
  } else {
    Rng rng(1);
    graph = ErdosRenyiBipartite(120, 300, 1400, rng);
    graph_source = "generated ER(120, 300, 1400)";
  }

  const auto dir = std::filesystem::temp_directory_path() /
                   ("cne_ext_snapshot_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  ServiceOptions service_options;
  service_options.algorithm = *algorithm;
  service_options.epsilon = epsilon;
  // Headroom for the MultiR per-query sourcings so the workload answers
  // instead of rejecting.
  service_options.lifetime_budget = 4.0 * epsilon;
  service_options.num_threads = 2;
  service_options.seed = options.seed;

  Rng workload_rng(options.seed);
  const auto w1 = MakeHotSetWorkload(graph, Layer::kLower, queries, hot,
                                     workload_rng);
  // The post-checkpoint batch hits the *other* layer, so its releases are
  // all fresh: the WAL actually carries charges and view authorizations,
  // not just a seal.
  const auto w2 = MakeHotSetWorkload(graph, Layer::kUpper, queries / 4,
                                     hot, workload_rng);
  const auto probe = MakeHotSetWorkload(graph, Layer::kLower, queries / 4,
                                        hot, workload_rng);

  // --- Phase 1: run + checkpoint (save cost), then kill mid-stream.
  double save_seconds = 0.0;
  uint64_t snapshot_bytes = 0;
  std::string phases_json;
  {
    ServiceOptions persistent = service_options;
    persistent.snapshot_dir = dir.string();
    QueryService service(graph, persistent);
    service.Submit(w1);
    for (size_t r = 0; r < repeats; ++r) {
      save_seconds += service.Checkpoint();
    }
    save_seconds /= static_cast<double>(repeats);
    snapshot_bytes =
        std::filesystem::file_size(dir / kSnapshotFileName);
    service.Submit(w2);  // lives only in the WAL
    // Per-phase latency quantiles of the persistent run — the only
    // section of any bench where the checkpoint histogram has counts.
    phases_json = bench::PhasesJson(service.SnapshotMetrics(), "  ");
    std::fprintf(stderr, "checkpoint: %.4fs for %" PRIu64 " bytes\n",
                 save_seconds, snapshot_bytes);
  }  // kill: no final checkpoint

  // --- Phase 2: warm start (snapshot load + WAL replay), cold start
  // --- (re-execute the history), averaged over `repeats`.
  double warm_seconds = 0.0;
  uint64_t wal_replay_records = 0;
  for (size_t r = 0; r < repeats; ++r) {
    ServiceOptions persistent = service_options;
    persistent.snapshot_dir = dir.string();
    Timer timer;
    QueryService warm(graph, persistent);
    warm_seconds += timer.Seconds();
    wal_replay_records = warm.recovery().wal_replay_records;
  }
  warm_seconds /= static_cast<double>(repeats);

  double cold_seconds = 0.0;
  for (size_t r = 0; r < repeats; ++r) {
    Timer timer;
    QueryService cold(graph, service_options);
    cold.Submit(w1);
    cold.Submit(w2);
    cold_seconds += timer.Seconds();
  }
  cold_seconds /= static_cast<double>(repeats);
  std::fprintf(stderr, "warm start %.4fs (replayed %" PRIu64
                       " WAL records), cold start %.4fs\n",
               warm_seconds, wal_replay_records, cold_seconds);

  // --- Phase 3: round-trip self-check. The restored service and the
  // --- uninterrupted one must agree bit for bit.
  bool identical = true;
  {
    ServiceOptions persistent = service_options;
    persistent.snapshot_dir = dir.string();
    QueryService warm(graph, persistent);
    QueryService reference(graph, service_options);
    reference.Submit(w1);
    reference.Submit(w2);
    const ServiceReport got = warm.Submit(probe);
    const ServiceReport want = reference.Submit(probe);
    identical = SameAnswers(want, got) &&
                SameLedgers(reference.ledger(), warm.ledger()) &&
                want.store.releases == got.store.releases;
    if (!identical) {
      std::fprintf(stderr,
                   "SELF-CHECK FAILED: restored service diverges from the "
                   "uninterrupted run\n");
    }
  }
  std::filesystem::remove_all(dir);

  // ---- Scale section: the same checkpoint / warm-start / cold-start
  // ---- cycle on generated BX-shaped graphs. Checkpoint MB/s is the
  // ---- canonical metric — it tracks snapshot serialization throughput
  // ---- as block-CSR sections and view stores grow.
  std::vector<std::string> scale_entries;
  for (uint64_t target : bench::ParseScaleList(cl)) {
    const bench::ScaleDataset dataset = bench::MakeScaleDataset(target);
    const BipartiteGraph& g = dataset.graph;
    const size_t scale_queries = smoke ? 2000 : 4000;
    const auto scale_dir =
        std::filesystem::temp_directory_path() /
        ("cne_ext_snapshot_scale_" + std::to_string(::getpid()) + "_" +
         std::to_string(target));
    std::filesystem::remove_all(scale_dir);

    Rng scale_rng(options.seed);
    const auto sw1 =
        MakeHotSetWorkload(g, Layer::kUpper, scale_queries, hot, scale_rng);
    const auto sw2 = MakeHotSetWorkload(g, Layer::kLower, scale_queries / 4,
                                        hot, scale_rng);
    const auto sprobe = MakeHotSetWorkload(
        g, Layer::kUpper, scale_queries / 4, hot, scale_rng);

    double s_save = 0.0;
    uint64_t s_bytes = 0;
    std::string s_phases;
    {
      ServiceOptions persistent = service_options;
      persistent.snapshot_dir = scale_dir.string();
      QueryService service(g, persistent);
      service.Submit(sw1);
      for (size_t r = 0; r < repeats; ++r) s_save += service.Checkpoint();
      s_save /= static_cast<double>(repeats);
      s_bytes = std::filesystem::file_size(scale_dir / kSnapshotFileName);
      service.Submit(sw2);  // lives only in the WAL
      s_phases = bench::PhasesJson(service.SnapshotMetrics(), "     ");
    }  // kill: no final checkpoint

    double s_warm = 0.0;
    uint64_t s_wal_records = 0;
    for (size_t r = 0; r < repeats; ++r) {
      ServiceOptions persistent = service_options;
      persistent.snapshot_dir = scale_dir.string();
      Timer timer;
      QueryService warm(g, persistent);
      s_warm += timer.Seconds();
      s_wal_records = warm.recovery().wal_replay_records;
    }
    s_warm /= static_cast<double>(repeats);

    double s_cold = 0.0;
    for (size_t r = 0; r < repeats; ++r) {
      Timer timer;
      QueryService cold(g, service_options);
      cold.Submit(sw1);
      cold.Submit(sw2);
      s_cold += timer.Seconds();
    }
    s_cold /= static_cast<double>(repeats);

    bool scale_identical = true;
    {
      ServiceOptions persistent = service_options;
      persistent.snapshot_dir = scale_dir.string();
      QueryService warm(g, persistent);
      QueryService reference(g, service_options);
      reference.Submit(sw1);
      reference.Submit(sw2);
      const ServiceReport got = warm.Submit(sprobe);
      const ServiceReport want = reference.Submit(sprobe);
      scale_identical = SameAnswers(want, got) &&
                        SameLedgers(reference.ledger(), warm.ledger()) &&
                        want.store.releases == got.store.releases;
      if (!scale_identical) {
        std::fprintf(stderr,
                     "SELF-CHECK FAILED: scale %" PRIu64 " restored service "
                     "diverges from the uninterrupted run\n",
                     target);
        identical = false;
      }
    }
    std::filesystem::remove_all(scale_dir);

    const double s_mb = static_cast<double>(s_bytes) / (1024.0 * 1024.0);
    const double s_mbps = s_save > 0 ? s_mb / s_save : 0.0;
    std::fprintf(stderr,
                 "scale %" PRIu64 ": checkpoint %.4fs (%.1f MB/s), warm "
                 "%.4fs, cold %.4fs\n",
                 target, s_save, s_mbps, s_warm, s_cold);

    std::ostringstream entry;
    entry << "{\"shape\": " << bench::GraphShapeJson(dataset)
          << ",\n     \"hot_set\": " << hot
          << ", \"checkpointed_queries\": " << sw1.size()
          << ", \"wal_queries\": " << sw2.size() << ", \"simd_level\": \""
          << SimdLevelName(ActiveSimdLevel())
          << "\",\n     \"checkpoint_seconds\": " << s_save
          << ", \"snapshot_bytes\": " << s_bytes
          << ", \"warm_start_seconds\": " << s_warm
          << ", \"wal_replay_records\": " << s_wal_records
          << ", \"cold_start_seconds\": " << s_cold
          << ",\n     \"cold_over_warm_speedup\": "
          << (s_warm > 0 ? s_cold / s_warm : 0.0)
          << ", \"round_trip_identical\": "
          << (scale_identical ? "true" : "false")
          << ",\n     \"phases\": " << s_phases
          << ",\n     \"scale_metric\": "
          << bench::ScaleMetricJson("checkpoint_mb_per_second", s_mbps, true)
          << "}";
    scale_entries.push_back(entry.str());
  }

  const double mb = static_cast<double>(snapshot_bytes) / (1024.0 * 1024.0);
  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"ext_snapshot\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"seed\": " << options.seed << ",\n"
       << "  \"graph\": {\"source\": \"" << graph_source
       << "\", \"upper\": " << graph.NumUpper()
       << ", \"lower\": " << graph.NumLower()
       << ", \"edges\": " << graph.NumEdges() << "},\n"
       << "  \"workload\": {\"algorithm\": \"" << ToString(*algorithm)
       << "\", \"epsilon\": " << epsilon
       << ", \"checkpointed_queries\": " << w1.size()
       << ", \"wal_queries\": " << w2.size()
       << ", \"probe_queries\": " << probe.size()
       << ", \"hot_set\": " << hot << "},\n"
       << "  \"checkpoint\": {\"seconds\": " << save_seconds
       << ", \"bytes\": " << snapshot_bytes
       << ", \"mb_per_second\": " << (save_seconds > 0 ? mb / save_seconds : 0.0)
       << "},\n"
       << "  \"warm_start\": {\"seconds\": " << warm_seconds
       << ", \"wal_replay_records\": " << wal_replay_records
       << ", \"mb_per_second\": " << (warm_seconds > 0 ? mb / warm_seconds : 0.0)
       << "},\n"
       << "  \"cold_start\": {\"seconds\": " << cold_seconds << "},\n"
       << "  \"cold_over_warm_speedup\": "
       << (warm_seconds > 0 ? cold_seconds / warm_seconds : 0.0) << ",\n"
       << "  \"phases\": " << phases_json << ",\n"
       << "  \"scale\": [";
  for (size_t i = 0; i < scale_entries.size(); ++i) {
    if (i) json << ",";
    json << "\n    " << scale_entries[i];
  }
  json << "\n  ],\n"
       << "  \"round_trip_identical\": " << (identical ? "true" : "false")
       << "\n}\n";

  std::cout << json.str();
  const std::string out_path = cl.GetString("out");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    out << json.str();
    std::fprintf(stderr, "wrote %s\n", out_path.c_str());
  }
  return identical ? 0 : 1;
}
