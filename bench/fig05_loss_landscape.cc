// Regenerates Fig. 5: the analytic L2 loss of the double-source estimator
// f* as a function of ε1 for α ∈ {0, 0.5, 1}, plus the global minimum, for
// the paper's two panels (du=5, dw=10) and (du=5, dw=100) at ε = 2.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "core/allocation.h"
#include "core/theory.h"
#include "util/table.h"

using namespace cne;

namespace {

void Panel(double du, double dw, double epsilon, bool csv) {
  std::printf("\n--- L2 loss of f* when du=%.0f, dw=%.0f, eps=%.1f ---\n", du,
              dw, epsilon);
  TextTable table({"eps1", "alpha=0 (f_w)", "alpha=1 (f_u)",
                   "alpha=0.5 (avg)", "alpha*(eps1)", "loss at alpha*"});
  for (double eps1 = 0.6; eps1 <= 1.4001; eps1 += 0.1) {
    const double eps2 = epsilon - eps1;
    const double alpha_star = OptimalAlpha(du, dw, eps1, eps2);
    table.NewRow()
        .AddDouble(eps1, 2)
        .AddDouble(DoubleSourceExpectedL2(du, dw, 0.0, eps1, eps2), 3)
        .AddDouble(DoubleSourceExpectedL2(du, dw, 1.0, eps1, eps2), 3)
        .AddDouble(DoubleSourceExpectedL2(du, dw, 0.5, eps1, eps2), 3)
        .AddDouble(alpha_star, 3)
        .AddDouble(DoubleSourceExpectedL2(du, dw, alpha_star, eps1, eps2),
                   3);
  }
  if (csv) {
    table.PrintCsv(std::cout);
  } else {
    table.Print(std::cout);
  }
  const AllocationResult best = OptimizeDoubleSource(epsilon, du, dw);
  std::printf(
      "global minimum: L2=%.3f at eps1=%.3f (eps2=%.3f), alpha=%.3f\n",
      best.predicted_loss, best.epsilon1, best.epsilon2, best.alpha);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  bench::PrintHeader("Figure 5",
                     "L2-loss landscape of the double-source estimator",
                     options);
  Panel(5, 10, 2.0, options.csv);
  Panel(5, 100, 2.0, options.csv);
  std::printf(
      "\nExpected shape (paper): with du=5, dw=10 the balanced average\n"
      "alpha=0.5 tracks the global minimum; with du=5, dw=100 the\n"
      "single-source curve alpha=1 attains it.\n");
  return 0;
}
