// Regenerates Fig. 8: effectiveness of the privacy-budget allocation
// optimization. MultiR-DS-Basic is swept over fixed ε1 ∈ {0.1ε ... 0.7ε}
// and compared against MultiR-DS (which chooses ε1 and α per query pair),
// on TM, BX, DUI, OG at ε = 2.

#include <iostream>

#include "bench_common.h"
#include "core/multir_ds.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "util/table.h"

using namespace cne;

int main(int argc, char** argv) {
  bench::BenchOptions options = bench::ParseOptions(argc, argv);
  if (options.datasets.empty()) {
    options.datasets = {"TM", "BX", "DUI", "OG"};
  }
  bench::PrintHeader("Figure 8",
                     "privacy-budget allocation optimization (eps = 2)",
                     options);

  for (const DatasetSpec& spec : ResolveDatasets(options.datasets)) {
    const BipartiteGraph& g = bench::CachedDataset(spec);
    Rng rng(options.seed);
    const auto pairs =
        SampleUniformPairs(g, spec.query_layer, options.pairs, rng);
    ExperimentConfig config;
    config.epsilon = options.epsilon;
    config.trials_per_pair = options.trials;

    TextTable table({"eps1", "MAE MultiR-DS-Basic"});
    for (double frac : {0.1, 0.3, 0.5, 0.7}) {
      auto basic = MakeMultiRDSBasic(frac);
      Rng run_rng(options.seed + static_cast<uint64_t>(frac * 1000));
      const EstimatorMetrics m =
          RunEstimator(g, *basic, pairs, config, run_rng);
      table.NewRow()
          .Add(FormatDouble(frac, 1) + "eps")
          .AddDouble(m.mean_absolute_error, 3);
    }
    auto ds = MakeMultiRDS();
    Rng ds_rng(options.seed + 9999);
    const EstimatorMetrics ds_metrics =
        RunEstimator(g, *ds, pairs, config, ds_rng);

    std::cout << "\n--- " << spec.code << " (" << spec.name << ") ---\n";
    options.csv ? table.PrintCsv(std::cout) : table.Print(std::cout);
    std::cout << "MultiR-DS (optimized per pair): MAE = "
              << FormatDouble(ds_metrics.mean_absolute_error, 3) << "\n";
  }
  std::cout
      << "\nExpected shape (paper): the best fixed eps1 varies by dataset;\n"
         "MultiR-DS is close to or below the best fixed allocation on each.\n";
  return 0;
}
