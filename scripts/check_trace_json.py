#!/usr/bin/env python3
"""Gate the Chrome-trace JSON written by `cne_serve --trace-out`.

Structural checks (any failure fails the gate):
  - the document has a non-empty `traceEvents` array
  - every event is a complete event: ph == "X", string name, numeric
    ts/dur >= 0, integer pid/tid, and an integer args.submit
  - events are sorted by ts (the serializer's contract; viewers tolerate
    any order but the nesting check below depends on it)
  - per tid, spans strictly nest: an event starting inside an open span
    must end inside it too (TraceSpans are scoped objects, so a partial
    overlap means the serializer or the ring drain is broken)

Accounting check, per retained "submit" root span longer than 100 us:
  - the sum of its direct children's durations must not exceed 1.05x the
    root's duration (children are disjoint sub-intervals of the root;
    beyond-tolerance overshoot means overlapping or mis-parented spans)
  - the direct children must cover at least half of the root (the service
    wraps every heavyweight phase in a named span, so a root mostly made
    of untracked time means a phase span went missing)
  Short roots skip both: cache-hit submits do almost nothing between
  span entry/exit, so their coverage is dominated by clock quanta.

Ring overwrite can drop *whole* spans (oldest first), which may orphan a
retained child or drop a root entirely — both are fine: the nesting check
only constrains retained pairs, and the accounting check only runs for
retained roots. A root whose children were partially dropped can only
undershoot the children-sum bound, not overshoot it.

Usage:
    scripts/check_trace_json.py TRACE.json

Exit status: 0 when every check passes, 1 on a failed check, 2 on
unreadable or malformed input.
"""

import json
import signal
import sys

signal.signal(signal.SIGPIPE, signal.SIG_DFL)

CHILD_SUM_TOLERANCE = 1.05
MIN_COVERAGE = 0.5
MIN_ROOT_MICROS = 100.0


def fail(message):
    print(f"check_trace_json: FAIL: {message}")
    return 1


def main(argv):
    if len(argv) != 2:
        print("usage: check_trace_json.py TRACE.json")
        return 2
    path = argv[1]
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace_json: cannot load {path}: {e}")
        return 2

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"check_trace_json: {path} has no traceEvents")
        return 2

    failures = 0
    last_ts = -1.0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            return fail(f"traceEvents[{i}] is not an object")
        if e.get("ph") != "X":
            failures += fail(f"traceEvents[{i}] ph is {e.get('ph')!r}, "
                             "want 'X' (complete event)")
            continue
        if not isinstance(e.get("name"), str) or not e["name"]:
            failures += fail(f"traceEvents[{i}] has no name")
        for key in ("ts", "dur"):
            v = e.get(key)
            if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
                failures += fail(
                    f"traceEvents[{i}] {key} is {v!r}, want a number >= 0")
        for key in ("pid", "tid"):
            v = e.get(key)
            if not isinstance(v, int) or isinstance(v, bool):
                failures += fail(
                    f"traceEvents[{i}] {key} is {v!r}, want an integer")
        submit = e.get("args", {}).get("submit")
        if not isinstance(submit, int) or isinstance(submit, bool):
            failures += fail(
                f"traceEvents[{i}] args.submit is {submit!r}, "
                "want an integer")
        ts = e.get("ts", 0.0)
        if isinstance(ts, (int, float)) and ts < last_ts:
            failures += fail(
                f"traceEvents[{i}] ts {ts} < previous ts {last_ts}: "
                "events must be sorted")
        if isinstance(ts, (int, float)):
            last_ts = ts
    if failures:
        return 1

    # Per-tid nesting + direct-children accounting in one sweep. The stack
    # holds (end_ts, child_sum_accumulator) per open span; submit roots
    # additionally register in `roots` for the final accounting report.
    stacks = {}  # tid -> list of [end, name, index, child_micros]
    roots = []   # (submit, dur, direct_child_micros)

    def close(frame):
        if frame[1] == "submit":
            event = events[frame[2]]
            roots.append((event["args"]["submit"], float(event["dur"]),
                          frame[3]))

    for i, e in enumerate(events):
        tid = e["tid"]
        ts, dur = float(e["ts"]), float(e["dur"])
        end = ts + dur
        stack = stacks.setdefault(tid, [])
        while stack and ts >= stack[-1][0] - 1e-9:
            close(stack.pop())
        if stack:
            open_end = stack[-1][0]
            if end > open_end + 1e-6:
                failures += fail(
                    f"traceEvents[{i}] ({e['name']}, tid {tid}) starts "
                    f"inside an open span but ends {end - open_end:.3f} us "
                    "after it: spans on one thread must nest")
            else:
                stack[-1][3] += dur  # a direct child of the enclosing span
        stack.append([end, e["name"], i, 0.0])
    for stack in stacks.values():
        while stack:
            close(stack.pop())
    if failures:
        return 1

    checked = 0
    for submit, dur, child_micros in roots:
        if dur <= MIN_ROOT_MICROS:
            continue
        checked += 1
        if child_micros > dur * CHILD_SUM_TOLERANCE:
            failures += fail(
                f"submit {submit}: direct children sum to "
                f"{child_micros:.1f} us > {CHILD_SUM_TOLERANCE}x the root's "
                f"{dur:.1f} us")
        elif child_micros < dur * MIN_COVERAGE:
            failures += fail(
                f"submit {submit}: direct children cover only "
                f"{child_micros:.1f} of {dur:.1f} us "
                f"(< {MIN_COVERAGE:.0%}): a phase span is missing")
    if failures:
        return 1

    print(f"check_trace_json: OK: {len(events)} events, "
          f"{len(roots)} submit roots ({checked} accounting-checked), "
          f"{len(stacks)} threads")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
