#!/usr/bin/env python3
"""Gate on the scale-section perf trajectory of the ext_* benches.

Compares the `scale` array of a freshly produced bench JSON against the
committed baseline (BENCH_*.json). Every scale entry carries one canonical
`scale_metric` object:

    {"name": "...", "value": <number>, "higher_is_better": <bool>}

and may carry `extra_scale_metrics`, a list of additional objects of the
same shape (e.g. per-phase latency quantiles). Every metric is gated.

Metrics are matched across files by the entry's axes — the generator draw
count and exponent (from `shape`) plus whichever bench axis the entry
carries (`hot_set` for ext_service, `candidates` for ext_batch;
ext_intersect and ext_snapshot are fully identified by the shape), the
entry's `simd_level` when present (numbers from different ISA levels are
different experiments, not regressions of each other) — plus the metric
name. The check fails when a matched metric regresses by more
than the threshold in the direction `higher_is_better` declares; metric
names ending in `_p99_seconds` are always gated lower-is-better, whatever
the file claims — a latency quantile that "improves" by growing is a bug
in the emitter, not a better number. Sub-microsecond `_p99_seconds`
values sit at the noise floor of the clock and the histogram's log
buckets (a handful of ~100 ns samples flips buckets freely), so when both
sides are under 1 us the delta is reported but never fails the gate; a
regression that drags the quantile past 1 us still does.
Metrics present on only one side are
reported but not failures: the committed baselines deliberately carry
larger scale points (10^6+) than the CI smoke run produces.

Usage:
    scripts/check_bench_scale.py BASELINE.json CURRENT.json [--threshold=0.2]

Exit status: 0 when every matched metric is within the threshold,
1 on regression or missing entry, 2 on malformed input.
"""

import json
import signal
import sys

# Die quietly when piped into head & co. instead of tracebacking.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def entry_axes(entry):
    """Axes identifying a scale entry across runs of the same bench."""
    shape = entry.get("shape", {})
    return (
        shape.get("draws"),
        shape.get("exponent"),
        entry.get("hot_set"),
        entry.get("candidates"),
        # SIMD level is an axis, not noise: a baseline recorded on an
        # AVX-512 machine must not gate a scalar-only runner (the numbers
        # differ by an order of magnitude by design). Mismatched levels
        # fall out as skip/new entries instead of false regressions.
        entry.get("simd_level"),
    )


def entry_metrics(entry, path):
    """The entry's gated metrics: scale_metric plus extra_scale_metrics."""
    metric = entry.get("scale_metric")
    if not metric or "value" not in metric:
        print(f"error: scale entry without scale_metric in {path}",
              file=sys.stderr)
        sys.exit(2)
    metrics = [metric]
    for extra in entry.get("extra_scale_metrics", []):
        if "name" not in extra or "value" not in extra:
            print(f"error: malformed extra_scale_metrics in {path}",
                  file=sys.stderr)
            sys.exit(2)
        metrics.append(extra)
    return metrics


def load_scale(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for entry in doc.get("scale", []):
        axes = entry_axes(entry)
        for metric in entry_metrics(entry, path):
            entries[axes + (metric.get("name"),)] = metric
    return doc.get("bench", path), entries


def describe(key):
    draws, exponent, hot_set, candidates, simd_level, _name = key
    parts = [f"draws={draws}", f"exp={exponent}"]
    if hot_set is not None:
        parts.append(f"hot_set={hot_set}")
    if candidates is not None:
        parts.append(f"candidates={candidates}")
    if simd_level is not None:
        parts.append(f"simd={simd_level}")
    return " ".join(parts)


def is_higher_better(metric):
    name = metric.get("name") or ""
    if name.endswith("_p99_seconds"):
        return False
    return bool(metric.get("higher_is_better", True))


def main(argv):
    threshold = 0.2
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    bench, baseline = load_scale(paths[0])
    _, current = load_scale(paths[1])

    if not baseline:
        print(f"{bench}: baseline has no scale section; nothing to check")
        return 0

    failed = False
    for key, base_metric in sorted(baseline.items(), key=str):
        label = describe(key)
        if key not in current:
            print(f"skip {bench} [{label}] {key[-1]}: not in current run")
            continue
        cur_metric = current[key]
        base_value = float(base_metric["value"])
        cur_value = float(cur_metric["value"])
        if base_value == 0:
            print(f"skip {bench} [{label}] {key[-1]}: zero baseline")
            continue
        # Signed relative change, oriented so positive = improvement.
        change = (cur_value - base_value) / abs(base_value)
        if not is_higher_better(base_metric):
            change = -change
        below_noise_floor = (
            (key[-1] or "").endswith("_p99_seconds")
            and max(base_value, cur_value) < 1e-6
        )
        failing = change < -threshold and not below_noise_floor
        status = "FAIL" if failing else "ok  "
        print(f"{status} {bench} [{label}] {base_metric['name']}: "
              f"{base_value:.4g} -> {cur_value:.4g} ({change:+.1%})")
        if failing:
            failed = True

    new_keys = set(current) - set(baseline)
    for key in sorted(new_keys, key=str):
        print(f"new  {bench} [{describe(key)}] {key[-1]}: "
              "no baseline, skipped")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
