#!/usr/bin/env python3
"""Gate on the scale-section perf trajectory of the ext_* benches.

Compares the `scale` array of a freshly produced bench JSON against the
committed baseline (BENCH_*.json). Every scale entry carries one canonical
`scale_metric` object:

    {"name": "...", "value": <number>, "higher_is_better": <bool>}

Entries are matched across files by their axes: the generator draw count
and exponent (from `shape`) plus whichever bench axis the entry carries
(`hot_set` for ext_service, `candidates` for ext_batch; ext_intersect and
ext_snapshot are fully identified by the shape). The check fails when a
matched metric regresses by more than the threshold in the direction
`higher_is_better` declares. Entries present on only one side are
reported but not failures: the committed baselines deliberately carry
larger scale points (10^6+) than the CI smoke run produces.

Usage:
    scripts/check_bench_scale.py BASELINE.json CURRENT.json [--threshold=0.2]

Exit status: 0 when every matched metric is within the threshold,
1 on regression or missing entry, 2 on malformed input.
"""

import json
import signal
import sys

# Die quietly when piped into head & co. instead of tracebacking.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)


def entry_key(entry):
    """Axes identifying a scale entry across runs of the same bench."""
    shape = entry.get("shape", {})
    return (
        shape.get("draws"),
        shape.get("exponent"),
        entry.get("hot_set"),
        entry.get("candidates"),
    )


def load_scale(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    entries = {}
    for entry in doc.get("scale", []):
        metric = entry.get("scale_metric")
        if not metric or "value" not in metric:
            print(f"error: scale entry without scale_metric in {path}",
                  file=sys.stderr)
            sys.exit(2)
        entries[entry_key(entry)] = metric
    return doc.get("bench", path), entries


def describe(key):
    draws, exponent, hot_set, candidates = key
    parts = [f"draws={draws}", f"exp={exponent}"]
    if hot_set is not None:
        parts.append(f"hot_set={hot_set}")
    if candidates is not None:
        parts.append(f"candidates={candidates}")
    return " ".join(parts)


def main(argv):
    threshold = 0.2
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    bench, baseline = load_scale(paths[0])
    _, current = load_scale(paths[1])

    if not baseline:
        print(f"{bench}: baseline has no scale section; nothing to check")
        return 0

    failed = False
    for key, base_metric in sorted(baseline.items(), key=str):
        label = describe(key)
        if key not in current:
            print(f"skip {bench} [{label}]: not in current run")
            continue
        cur_metric = current[key]
        if cur_metric.get("name") != base_metric.get("name"):
            print(f"FAIL {bench} [{label}]: metric renamed "
                  f"{base_metric.get('name')} -> {cur_metric.get('name')}")
            failed = True
            continue
        base_value = float(base_metric["value"])
        cur_value = float(cur_metric["value"])
        higher_is_better = bool(base_metric.get("higher_is_better", True))
        if base_value == 0:
            print(f"skip {bench} [{label}]: zero baseline")
            continue
        # Signed relative change, oriented so positive = improvement.
        change = (cur_value - base_value) / abs(base_value)
        if not higher_is_better:
            change = -change
        status = "FAIL" if change < -threshold else "ok  "
        print(f"{status} {bench} [{label}] {base_metric['name']}: "
              f"{base_value:.4g} -> {cur_value:.4g} ({change:+.1%})")
        if change < -threshold:
            failed = True

    new_keys = set(current) - set(baseline)
    for key in sorted(new_keys, key=str):
        print(f"new  {bench} [{describe(key)}]: no baseline, skipped")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
