// The versioned, checksummed binary snapshot format of the persistence
// subsystem.
//
// Everything the query service holds — the bipartite graph, every
// materialized ε-RR noisy view, the per-vertex budget ledger — lives in
// process memory; a restart without persistence either refuses all
// traffic or re-randomizes views and double-spends lifetime edge-LDP
// budget. A snapshot is one self-describing file capturing that state so
// a killed server restarts byte-identical: same answers, same residual
// budgets, zero re-released views.
//
// File layout (all integers little-endian, util/binary_io.h):
//
//   header   magic "CNESNP01" (u64) | version u32 | epoch u64 |
//            section_count u32
//   TOC      per section: id u32 | offset u64 | size u64 | crc32 u32
//   payloads section bytes back to back, in TOC order
//
// Sections (ids in SectionId):
//   kConfig  the service configuration the state was produced under —
//            protocol kind, ε split, seed, lifetime budget (initial and
//            current), the Laplace substream counter, graph shape
//   kGraph   the bipartite graph in block-CSR: both CSR directions,
//            offsets followed by adjacency ids chunked into fixed-size
//            blocks, each block carrying its own CRC32 (MiniGraph-style
//            out-of-core blocks; the granularity at which corruption is
//            localized and a future partial loader can stream)
//   kViews   every noisy view in its native sorted-or-bitmap
//            representation with its ε and RNG stream id (the store's
//            Fork key) — written/consumed by NoisyViewStore::Save/Restore
//   kLedger  the full budget-ledger table (BudgetLedger::Serialize)
//
// Commit is atomic: SnapshotWriter serializes to `<path>.tmp`, fsyncs,
// and renames over the target, so a crash mid-checkpoint leaves the
// previous snapshot intact. SnapshotReader validates the magic, version,
// TOC bounds, and every section CRC up front; corruption surfaces as
// std::runtime_error before any state is restored.
//
// The `epoch` links a snapshot to its write-ahead log (budget_wal.h):
// recovery replays only a WAL whose epoch matches the snapshot it was
// opened against, which is what makes checkpoint + WAL-reset safe against
// a crash between the two steps.

#ifndef CNE_STORE_SNAPSHOT_FORMAT_H_
#define CNE_STORE_SNAPSHOT_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/binary_io.h"

namespace cne {

/// Snapshot file name inside a service's snapshot directory.
inline constexpr const char* kSnapshotFileName = "snapshot.cne";

/// Write-ahead-log file name inside a service's snapshot directory.
inline constexpr const char* kWalFileName = "budget.wal";

/// Current snapshot format version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Section identifiers. Values are part of the on-disk format.
enum class SectionId : uint32_t {
  kConfig = 1,
  kGraph = 2,
  kViews = 3,
  kLedger = 4,
};

/// Display name of a section ("config", "graph", ...).
const char* SectionName(SectionId id);

/// One table-of-contents row of a snapshot file.
struct SectionInfo {
  SectionId id;
  uint64_t offset = 0;  ///< payload start, from the file start
  uint64_t size = 0;    ///< payload bytes
  uint32_t crc = 0;     ///< CRC-32 of the payload
};

/// Builds a snapshot in memory section by section and commits it to disk
/// atomically. Usage: BeginSection / fill the returned writer /
/// EndSection, repeated per section, then Commit.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(uint64_t epoch) : epoch_(epoch) {}

  /// Starts a section; returns the writer its payload is encoded into.
  /// Sections must not nest and each id may appear once.
  ByteWriter& BeginSection(SectionId id);

  /// Seals the open section.
  void EndSection();

  /// Serializes header + TOC + payloads and writes the file atomically
  /// (tmp + fsync + rename). Throws std::runtime_error on IO failure.
  void Commit(const std::string& path);

 private:
  struct Section {
    SectionId id;
    std::vector<uint8_t> payload;
  };

  uint64_t epoch_;
  std::vector<Section> sections_;
  ByteWriter current_;
  bool open_ = false;
};

/// Reads and validates a snapshot file: magic, version, TOC bounds, and
/// every section CRC. All validation failures throw std::runtime_error.
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::string& path);

  uint32_t version() const { return version_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t file_bytes() const { return bytes_.size(); }
  const std::vector<SectionInfo>& sections() const { return sections_; }

  bool Has(SectionId id) const;

  /// A reader over the payload of section `id`; throws if absent.
  ByteReader Section(SectionId id) const;

 private:
  std::string path_;
  std::vector<uint8_t> bytes_;
  uint32_t version_ = 0;
  uint64_t epoch_ = 0;
  std::vector<SectionInfo> sections_;
};

/// The service configuration a snapshot was produced under. Recovery
/// refuses to restore state into a service whose options differ — a
/// different seed or ε would silently re-randomize every "restored" view.
struct SnapshotConfig {
  uint32_t protocol_kind = 0;        ///< ProtocolKind as u32
  double epsilon = 0.0;              ///< total per-query budget
  double epsilon1_fraction = 0.0;    ///< RR share (MultiR family)
  double alpha = 0.5;                ///< double-source combination weight
  uint64_t seed = 0;                 ///< master seed (view determinism)
  double initial_lifetime_budget = 0.0;  ///< budget at service start
  double current_lifetime_budget = 0.0;  ///< after RaiseLifetimeBudget
  uint64_t next_noise_stream = 0;    ///< per-query Laplace substream counter
  VertexId num_upper = 0;            ///< graph shape, for the inspector
  VertexId num_lower = 0;
  uint64_t num_edges = 0;
};

void WriteConfigSection(const SnapshotConfig& config, ByteWriter& out);
SnapshotConfig ReadConfigSection(ByteReader& in);

/// Adjacency ids per CSR block of the graph section. Small enough that a
/// corrupt block localizes to ~256 KiB, large enough that per-block
/// headers are noise.
inline constexpr uint32_t kDefaultCsrBlockEdges = 65536;

/// One block's slice of a CSR adjacency array: ids [first, first + count).
struct CsrBlockSpan {
  uint64_t first = 0;
  uint32_t count = 0;

  friend bool operator==(const CsrBlockSpan&, const CsrBlockSpan&) = default;
};

/// Number of blocks a CSR direction of `num_ids` adjacency ids occupies.
/// 64-bit arithmetic end to end: a 10⁸-edge direction is ~1.5k blocks,
/// and block indexing must stay exact far past the 2³² id boundary
/// (tests/store/wide_index_test.cc). The single definition the writer,
/// reader, and inspector all use.
constexpr uint64_t CsrBlockCount(uint64_t num_ids, uint32_t block_edges) {
  return block_edges == 0 ? 0 : (num_ids + block_edges - 1) / block_edges;
}

/// The id span of block `block` within a direction of `num_ids` ids.
constexpr CsrBlockSpan CsrBlockAt(uint64_t block, uint64_t num_ids,
                                  uint32_t block_edges) {
  const uint64_t first = block * block_edges;
  const uint64_t count =
      first < num_ids ? (num_ids - first < block_edges ? num_ids - first
                                                       : block_edges)
                      : 0;
  return {first, static_cast<uint32_t>(count)};
}

/// Writes `graph` as block-CSR: both directions, offsets then adjacency
/// in blocks of `block_edges` ids, each block with its own CRC32.
void WriteGraphSection(const BipartiteGraph& graph, ByteWriter& out,
                       uint32_t block_edges = kDefaultCsrBlockEdges);

/// Reconstructs a graph from a block-CSR section. Validates every block
/// CRC (std::runtime_error on mismatch); structural validation happens in
/// BipartiteGraph::FromCsr.
BipartiteGraph ReadGraphSection(ByteReader& in);

/// Per-block accounting of a graph section, for the inspector.
struct GraphSectionSummary {
  VertexId num_upper = 0;
  VertexId num_lower = 0;
  uint64_t num_edges = 0;
  uint32_t block_edges = 0;
  uint64_t num_blocks = 0;
};

/// Parses a graph section's shape and block layout without materializing
/// the graph (validates block CRCs along the way) — the inspector's view.
GraphSectionSummary SummarizeGraphSection(ByteReader& in);

/// Loads just the graph from a snapshot file — the warm-start path for
/// tools that would otherwise re-parse a text edge list.
BipartiteGraph LoadGraphFromSnapshot(const std::string& path);

/// One vertex's entry in the views section. `state` distinguishes a view
/// that was authorized (ε charged) but not yet materialized from a fully
/// materialized one; only the latter carries payload.
struct ViewRecord {
  /// On-disk lifecycle states. Part of the format — the single source of
  /// truth every writer, reader, and inspector must use (NoisyViewStore's
  /// in-memory lifecycle translates to/from these, never raw-copies).
  static constexpr uint8_t kStateAuthorizedPending = 1;
  static constexpr uint8_t kStateMaterialized = 2;

  uint64_t packed_vertex = 0;
  uint8_t state = 0;  ///< kStateAuthorizedPending or kStateMaterialized

  // Materialized payload. `rng_stream` is the Rng::Fork stream the view
  // was (and on regeneration would be) drawn from; `epsilon` its release
  // budget. Exactly one of `members` (sorted mode) / `words` (bitmap
  // mode) is populated.
  uint64_t rng_stream = 0;
  double epsilon = 0.0;
  double flip_probability = 0.0;
  VertexId domain = 0;
  bool bitmap = false;
  uint64_t size = 0;  ///< noisy degree (popcount in bitmap mode)
  std::vector<VertexId> members;
  std::vector<uint64_t> words;
};

/// The views section: the store's release budget, its cumulative stats
/// counters, and every touched vertex's record in (layer, id) order.
struct ViewsSection {
  double epsilon = 0.0;
  uint64_t lookups = 0;
  uint64_t releases = 0;
  uint64_t cache_hits = 0;
  uint64_t rejections = 0;
  uint64_t uploaded_edges = 0;
  std::vector<ViewRecord> entries;
};

void WriteViewsSection(const ViewsSection& views, ByteWriter& out);
ViewsSection ReadViewsSection(ByteReader& in);

}  // namespace cne

#endif  // CNE_STORE_SNAPSHOT_FORMAT_H_
