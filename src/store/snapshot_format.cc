#include "store/snapshot_format.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/crc32.h"
#include "util/logging.h"

namespace cne {

namespace {

// The file literally starts with the ASCII bytes "CNESNP01".
constexpr uint64_t kSnapshotMagic = 0x3130504E53454E43ULL;

void Fail(const std::string& path, const std::string& why) {
  throw std::runtime_error(path + ": " + why);
}

}  // namespace

const char* SectionName(SectionId id) {
  switch (id) {
    case SectionId::kConfig:
      return "config";
    case SectionId::kGraph:
      return "graph";
    case SectionId::kViews:
      return "views";
    case SectionId::kLedger:
      return "ledger";
  }
  return "unknown";
}

ByteWriter& SnapshotWriter::BeginSection(SectionId id) {
  CNE_CHECK(!open_) << "sections must not nest";
  for (const Section& section : sections_) {
    CNE_CHECK(section.id != id)
        << "duplicate section " << SectionName(id);
  }
  sections_.push_back({id, {}});
  current_ = ByteWriter();
  open_ = true;
  return current_;
}

void SnapshotWriter::EndSection() {
  CNE_CHECK(open_) << "EndSection without BeginSection";
  sections_.back().payload = current_.Take();
  open_ = false;
}

void SnapshotWriter::Commit(const std::string& path) {
  CNE_CHECK(!open_) << "Commit with an open section";
  ByteWriter header;
  header.U64(kSnapshotMagic);
  header.U32(kSnapshotVersion);
  header.U64(epoch_);
  header.U32(static_cast<uint32_t>(sections_.size()));
  // TOC rows are fixed-width, so payload offsets are known up front.
  constexpr size_t kTocRowBytes = 4 + 8 + 8 + 4;
  uint64_t offset = header.size() + kTocRowBytes * sections_.size();
  for (const Section& section : sections_) {
    header.U32(static_cast<uint32_t>(section.id));
    header.U64(offset);
    header.U64(section.payload.size());
    header.U32(Crc32(section.payload.data(), section.payload.size()));
    offset += section.payload.size();
  }
  // Header + payloads go to disk as parts: the payloads are never copied
  // into a second snapshot-sized buffer.
  std::vector<std::span<const uint8_t>> parts;
  parts.reserve(sections_.size() + 1);
  parts.push_back(header.data());
  for (const Section& section : sections_) {
    parts.push_back(section.payload);
  }
  // Sites snapshot.open/.write/.fsync/.rename/.dirfsync; each section is
  // one write call, so snapshot.write=err@N fails the Nth part. A failed
  // commit quarantines the temp file instead of unlinking it — the
  // checkpoint retry loop writes a fresh one, and the operator keeps the
  // evidence.
  AtomicWriteOptions options;
  options.site = "snapshot";
  options.quarantine_tmp = true;
  WriteFileAtomic(path, parts, options);
}

SnapshotReader::SnapshotReader(const std::string& path)
    // Sites snapshot.open / snapshot.read; a corrupt injection flips a
    // byte before the TOC CRC validation below, exercising the
    // corruption-detection path end to end.
    : path_(path), bytes_(ReadFileBytes(path, "snapshot")) {
  constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4;
  if (bytes_.size() < kHeaderBytes) {
    Fail(path_, "truncated snapshot header");
  }
  ByteReader in(bytes_);
  // Validate magic and version before trusting any other field, with
  // their own diagnoses: a foreign file and a future format version are
  // different operator problems than a torn write.
  if (in.U64() != kSnapshotMagic) Fail(path_, "bad snapshot magic");
  version_ = in.U32();
  if (version_ != kSnapshotVersion) {
    Fail(path_,
         "unsupported snapshot version " + std::to_string(version_));
  }
  epoch_ = in.U64();
  const uint32_t count = in.U32();
  try {
    for (uint32_t i = 0; i < count; ++i) {
      SectionInfo info;
      info.id = static_cast<SectionId>(in.U32());
      info.offset = in.U64();
      info.size = in.U64();
      info.crc = in.U32();
      sections_.push_back(info);
    }
  } catch (const std::runtime_error&) {
    Fail(path_, "truncated snapshot TOC");
  }
  for (const SectionInfo& info : sections_) {
    if (info.offset > bytes_.size() ||
        info.size > bytes_.size() - info.offset) {
      Fail(path_, std::string("section ") + SectionName(info.id) +
                      " extends past the end of the file");
    }
    const uint32_t crc = Crc32(bytes_.data() + info.offset, info.size);
    if (crc != info.crc) {
      Fail(path_, std::string("section ") + SectionName(info.id) +
                      " CRC mismatch: file corrupt");
    }
  }
}

bool SnapshotReader::Has(SectionId id) const {
  for (const SectionInfo& info : sections_) {
    if (info.id == id) return true;
  }
  return false;
}

ByteReader SnapshotReader::Section(SectionId id) const {
  for (const SectionInfo& info : sections_) {
    if (info.id == id) {
      return ByteReader(
          std::span<const uint8_t>(bytes_.data() + info.offset, info.size));
    }
  }
  Fail(path_, std::string("missing section ") + SectionName(id));
  __builtin_unreachable();
}

void WriteConfigSection(const SnapshotConfig& config, ByteWriter& out) {
  out.U32(config.protocol_kind);
  out.F64(config.epsilon);
  out.F64(config.epsilon1_fraction);
  out.F64(config.alpha);
  out.U64(config.seed);
  out.F64(config.initial_lifetime_budget);
  out.F64(config.current_lifetime_budget);
  out.U64(config.next_noise_stream);
  out.U32(config.num_upper);
  out.U32(config.num_lower);
  out.U64(config.num_edges);
}

SnapshotConfig ReadConfigSection(ByteReader& in) {
  SnapshotConfig config;
  config.protocol_kind = in.U32();
  config.epsilon = in.F64();
  config.epsilon1_fraction = in.F64();
  config.alpha = in.F64();
  config.seed = in.U64();
  config.initial_lifetime_budget = in.F64();
  config.current_lifetime_budget = in.F64();
  config.next_noise_stream = in.U64();
  config.num_upper = in.U32();
  config.num_lower = in.U32();
  config.num_edges = in.U64();
  return config;
}

namespace {

void WriteCsrDirection(BipartiteGraph::CsrParts csr, uint32_t block_edges,
                       ByteWriter& out) {
  for (uint64_t offset : csr.offsets) out.U64(offset);
  const uint64_t num_blocks = CsrBlockCount(csr.adj.size(), block_edges);
  CNE_CHECK(num_blocks <= std::numeric_limits<uint32_t>::max())
      << "CSR direction needs " << num_blocks
      << " blocks, beyond the format's u32 block count";
  out.U32(static_cast<uint32_t>(num_blocks));
  ByteWriter block;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const CsrBlockSpan span = CsrBlockAt(b, csr.adj.size(), block_edges);
    block = ByteWriter();
    for (uint32_t i = 0; i < span.count; ++i) block.U32(csr.adj[span.first + i]);
    out.U64(span.first);
    out.U32(span.count);
    out.U32(Crc32(block.data().data(), block.size()));
    out.Bytes(block.data().data(), block.size());
  }
}

struct CsrArrays {
  std::vector<uint64_t> offsets;
  std::vector<VertexId> adj;
};

CsrArrays ReadCsrDirection(ByteReader& in, VertexId num_vertices,
                           uint64_t num_edges) {
  CsrArrays csr;
  // 64-bit loop index: `v <= num_vertices` on VertexId would wrap forever
  // at num_vertices == UINT32_MAX.
  csr.offsets.reserve(static_cast<size_t>(num_vertices) + 1);
  for (uint64_t v = 0; v <= num_vertices; ++v) csr.offsets.push_back(in.U64());
  csr.adj.reserve(num_edges);
  const uint32_t num_blocks = in.U32();
  for (uint32_t b = 0; b < num_blocks; ++b) {
    const uint64_t first = in.U64();
    const uint32_t count = in.U32();
    const uint32_t crc = in.U32();
    const auto raw = in.Borrow(static_cast<size_t>(count) * 4);
    if (Crc32(raw.data(), raw.size()) != crc) {
      throw std::runtime_error("CSR block " + std::to_string(b) +
                               " CRC mismatch");
    }
    if (first != csr.adj.size()) {
      throw std::runtime_error("CSR block " + std::to_string(b) +
                               " out of order");
    }
    ByteReader ids(raw);
    for (uint32_t i = 0; i < count; ++i) csr.adj.push_back(ids.U32());
  }
  if (csr.adj.size() != num_edges) {
    throw std::runtime_error("CSR direction holds " +
                             std::to_string(csr.adj.size()) + " edges, " +
                             std::to_string(num_edges) + " expected");
  }
  return csr;
}

}  // namespace

void WriteGraphSection(const BipartiteGraph& graph, ByteWriter& out,
                       uint32_t block_edges) {
  CNE_CHECK(block_edges > 0) << "block size must be positive";
  out.U32(graph.NumUpper());
  out.U32(graph.NumLower());
  out.U64(graph.NumEdges());
  out.U32(block_edges);
  WriteCsrDirection(graph.Csr(Layer::kUpper), block_edges, out);
  WriteCsrDirection(graph.Csr(Layer::kLower), block_edges, out);
}

BipartiteGraph ReadGraphSection(ByteReader& in) {
  const VertexId num_upper = in.U32();
  const VertexId num_lower = in.U32();
  const uint64_t num_edges = in.U64();
  in.U32();  // block_edges: a write-side tuning knob, not needed to read
  CsrArrays upper = ReadCsrDirection(in, num_upper, num_edges);
  CsrArrays lower = ReadCsrDirection(in, num_lower, num_edges);
  return BipartiteGraph::FromCsr(
      num_upper, num_lower, std::move(upper.offsets), std::move(upper.adj),
      std::move(lower.offsets), std::move(lower.adj));
}

GraphSectionSummary SummarizeGraphSection(ByteReader& in) {
  GraphSectionSummary summary;
  summary.num_upper = in.U32();
  summary.num_lower = in.U32();
  summary.num_edges = in.U64();
  summary.block_edges = in.U32();
  for (const VertexId n : {summary.num_upper, summary.num_lower}) {
    for (uint64_t v = 0; v <= n; ++v) in.U64();  // offsets (64-bit index)
    const uint32_t num_blocks = in.U32();
    for (uint32_t b = 0; b < num_blocks; ++b) {
      in.U64();  // first
      const uint32_t count = in.U32();
      const uint32_t crc = in.U32();
      const auto raw = in.Borrow(static_cast<size_t>(count) * 4);
      if (Crc32(raw.data(), raw.size()) != crc) {
        throw std::runtime_error("CSR block " + std::to_string(b) +
                                 " CRC mismatch");
      }
      ++summary.num_blocks;
    }
  }
  return summary;
}

BipartiteGraph LoadGraphFromSnapshot(const std::string& path) {
  const SnapshotReader reader(path);
  ByteReader section = reader.Section(SectionId::kGraph);
  return ReadGraphSection(section);
}

void WriteViewsSection(const ViewsSection& views, ByteWriter& out) {
  out.F64(views.epsilon);
  out.U64(views.lookups);
  out.U64(views.releases);
  out.U64(views.cache_hits);
  out.U64(views.rejections);
  out.U64(views.uploaded_edges);
  out.U64(views.entries.size());
  for (const ViewRecord& entry : views.entries) {
    out.U64(entry.packed_vertex);
    out.U8(entry.state);
    if (entry.state != ViewRecord::kStateMaterialized) continue;
    out.U64(entry.rng_stream);
    out.F64(entry.epsilon);
    out.F64(entry.flip_probability);
    out.U32(entry.domain);
    out.U8(entry.bitmap ? 1 : 0);
    out.U64(entry.size);
    if (entry.bitmap) {
      out.U64(entry.words.size());
      for (uint64_t word : entry.words) out.U64(word);
    } else {
      out.U64(entry.members.size());
      for (VertexId member : entry.members) out.U32(member);
    }
  }
}

ViewsSection ReadViewsSection(ByteReader& in) {
  ViewsSection views;
  views.epsilon = in.F64();
  views.lookups = in.U64();
  views.releases = in.U64();
  views.cache_hits = in.U64();
  views.rejections = in.U64();
  views.uploaded_edges = in.U64();
  const uint64_t count = in.U64();
  views.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    ViewRecord entry;
    entry.packed_vertex = in.U64();
    entry.state = in.U8();
    if (entry.state != ViewRecord::kStateAuthorizedPending &&
        entry.state != ViewRecord::kStateMaterialized) {
      throw std::runtime_error("views section: bad vertex state " +
                               std::to_string(entry.state));
    }
    if (entry.state == ViewRecord::kStateMaterialized) {
      entry.rng_stream = in.U64();
      entry.epsilon = in.F64();
      entry.flip_probability = in.F64();
      entry.domain = in.U32();
      entry.bitmap = in.U8() != 0;
      entry.size = in.U64();
      const uint64_t payload = in.U64();
      if (entry.bitmap) {
        entry.words.reserve(payload);
        for (uint64_t w = 0; w < payload; ++w) entry.words.push_back(in.U64());
      } else {
        entry.members.reserve(payload);
        for (uint64_t m = 0; m < payload; ++m)
          entry.members.push_back(in.U32());
      }
    }
    views.entries.push_back(std::move(entry));
  }
  return views;
}

}  // namespace cne
