#include "store/budget_wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/binary_io.h"
#include "util/crc32.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace cne {

namespace {

// The file literally starts with the ASCII bytes "CNEWAL01".
constexpr uint64_t kWalMagic = 0x31304C4157454E43ULL;
constexpr uint32_t kWalVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8;
constexpr size_t kRecordBytes = 1 + 8 + 8 + 4;

bool IsBarrier(WalRecordType type) {
  return type == WalRecordType::kRaiseBudget ||
         type == WalRecordType::kSubmitSealed;
}

// The record's second payload word: value for charge/raise, counter for
// submit seals (exactly one of the two is meaningful per type).
uint64_t PayloadWord(const WalRecord& record) {
  return record.type == WalRecordType::kSubmitSealed
             ? record.counter
             : std::bit_cast<uint64_t>(record.value);
}

void EncodeRecord(const WalRecord& record, ByteWriter& out) {
  ByteWriter body;
  body.U8(static_cast<uint8_t>(record.type));
  body.U64(record.vertex);
  body.U64(PayloadWord(record));
  const uint32_t crc = Crc32(body.data().data(), body.size());
  out.Bytes(body.data().data(), body.size());
  out.U32(crc);
}

void EncodeHeader(uint64_t epoch, ByteWriter& out) {
  out.U64(kWalMagic);
  out.U32(kWalVersion);
  out.U64(epoch);
}

void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

void BudgetWal::Reset(const std::string& path, uint64_t epoch) {
  Rewrite(path, epoch, {});
}

void BudgetWal::Rewrite(const std::string& path, uint64_t epoch,
                        std::span<const WalRecord> records) {
  ByteWriter out;
  EncodeHeader(epoch, out);
  for (const WalRecord& record : records) EncodeRecord(record, out);
  const std::span<const uint8_t> parts[] = {out.data()};
  // "walreset", not "wal": the append path's wal.append/wal.fsync sites
  // target the per-submit seal, and arming those must not also fail the
  // atomic rewrite that recovery and checkpoints use.
  WriteFileAtomic(path, parts, {.site = "walreset"});
}

WalReplay BudgetWal::Read(const std::string& path) {
  // Sites wal.open / wal.read (err, short, corrupt — see failpoint.h).
  const std::vector<uint8_t> bytes = ReadFileBytes(path, "wal");
  if (bytes.size() < kHeaderBytes) {
    throw std::runtime_error(path + ": WAL shorter than its header");
  }
  ByteReader in(bytes);
  if (in.U64() != kWalMagic) {
    throw std::runtime_error(path + ": bad WAL magic");
  }
  const uint32_t version = in.U32();
  if (version != kWalVersion) {
    throw std::runtime_error(path + ": unsupported WAL version " +
                             std::to_string(version));
  }
  WalReplay replay;
  replay.epoch = in.U64();
  while (in.remaining() >= kRecordBytes) {
    const auto body = in.Borrow(kRecordBytes - 4);
    const uint32_t crc = in.U32();
    if (Crc32(body.data(), body.size()) != crc) {
      // A torn fsync: this record and anything after it never committed.
      replay.torn_tail = true;
      replay.dropped_bytes = bytes.size() - (in.consumed() - kRecordBytes);
      break;
    }
    ByteReader fields(body);
    WalRecord record;
    record.type = static_cast<WalRecordType>(fields.U8());
    record.vertex = fields.U64();
    const uint64_t payload = fields.U64();
    if (record.type == WalRecordType::kSubmitSealed) {
      record.counter = payload;
    } else {
      record.value = std::bit_cast<double>(payload);
    }
    if (record.type != WalRecordType::kCharge &&
        record.type != WalRecordType::kViewAuthorized &&
        !IsBarrier(record.type)) {
      // An unknown type with a valid CRC means a newer writer; refuse to
      // guess at semantics that guard privacy budget.
      throw std::runtime_error(path + ": unknown WAL record type " +
                               std::to_string(static_cast<int>(record.type)));
    }
    replay.records.push_back(record);
    if (IsBarrier(record.type)) replay.committed = replay.records.size();
  }
  if (in.remaining() > 0 && !replay.torn_tail) {
    replay.torn_tail = true;
    replay.dropped_bytes = in.remaining();
  }
  return replay;
}

BudgetWal::BudgetWal(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd_ < 0) ThrowErrno("cannot open WAL", path);
}

BudgetWal::~BudgetWal() {
  if (fd_ >= 0) ::close(fd_);
}

void BudgetWal::Append(const WalRecord& record) {
  if (fd_ < 0) {
    throw std::runtime_error(path_ +
                             ": WAL handle was poisoned by an earlier "
                             "write failure; reopen to recover");
  }
  ByteWriter out;
  EncodeRecord(record, out);
  buffer_.insert(buffer_.end(), out.data().begin(), out.data().end());
  ++appended_;
}

void BudgetWal::Sync() {
  if (fd_ < 0) {
    throw std::runtime_error(path_ +
                             ": WAL handle was poisoned by an earlier "
                             "write failure; reopen to recover");
  }
  size_t written = 0;
  while (written < buffer_.size()) {
    size_t chunk = buffer_.size() - written;
    // wal.append faults: err poisons mid-write (the on-disk tail is then
    // torn, exactly like a real partial append); short writes part of the
    // chunk and continues, exercising the resume path.
    const fail::Injected fp = fail::Hit("wal", ".append");
    if (fp.action == fail::Action::kError) {
      errno = fp.error;
      Poison();
      ThrowErrno("cannot append to WAL", path_);
    }
    if (fp.action == fail::Action::kShort) chunk = fp.ShortenedLen(chunk);
    const ssize_t n = ::write(fd_, buffer_.data() + written, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      // The file may now hold a partial record and a retry would desync
      // the framing; poison the handle so recovery (which drops the torn
      // tail) is the only way forward.
      Poison();
      ThrowErrno("cannot append to WAL", path_);
    }
    written += static_cast<size_t>(n);
  }
  buffer_.clear();
  int fsync_rc = ::fsync(fd_);
  int fsync_errno = errno;
  if (const fail::Injected fp = fail::Hit("wal", ".fsync");
      fp.action == fail::Action::kError) {
    fsync_rc = -1;
    fsync_errno = fp.error;
  }
  if (fsync_rc != 0) {
    // A second fsync after a failed one can report success without
    // durability (the kernel clears the error); never retry over it.
    Poison();
    errno = fsync_errno;
    ThrowErrno("cannot fsync WAL", path_);
  }
}

void BudgetWal::Poison() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

}  // namespace cne
