// Write-ahead budget journal.
//
// Snapshots are periodic; the WAL makes everything *between* checkpoints
// durable. The query service appends a record for every ledger charge and
// every first-authorization of a noisy view during its (sequential)
// admission pass, then appends a submit-seal record and fsyncs ONCE —
// before any noise is sampled or any answer computed. That ordering is
// the whole safety argument:
//
//   * crash after the fsync: every admitted decision is on disk; replay
//     reproduces the exact ledger, the exact authorized-view set, and the
//     exact Laplace substream counter, so the restarted service behaves
//     byte-identically to one that never crashed.
//   * crash before the fsync: the tail of the log is an unsealed (or
//     torn) batch the service never acted on — no noise drawn, no answer
//     returned. Recovery drops everything after the last seal, which is
//     exactly the state the outside world observed.
//
// Record framing: fixed 21 bytes — type u8 | a u64 | b u64 | crc32 u32
// (crc over type+a+b). A torn final record fails its length or CRC check
// and is discarded along with everything after it; records are replayed
// only up to the last *commit barrier* (a seal or a budget raise, the two
// record kinds that are individually fsynced).
//
// The file starts with magic "CNEWAL01" | version u32 | epoch u64. The
// epoch ties the log to the snapshot it extends (snapshot_format.h): a
// checkpoint renames the new snapshot into place and then resets the WAL
// to the new epoch; a crash between the two steps leaves a stale-epoch
// WAL that recovery recognizes and discards instead of double-applying.

#ifndef CNE_STORE_BUDGET_WAL_H_
#define CNE_STORE_BUDGET_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cne {

/// WAL record kinds. Values are part of the on-disk format.
enum class WalRecordType : uint8_t {
  /// A ledger charge: `vertex` spent `value` ε. Appended for every
  /// randomized-response authorization and every Laplace sourcing.
  kCharge = 1,
  /// First authorization of `vertex`'s noisy view (the view itself is
  /// deterministic from the service seed, so the fact of authorization is
  /// all that must be durable).
  kViewAuthorized = 2,
  /// The lifetime budget was raised to `value`. A commit barrier.
  kRaiseBudget = 3,
  /// A submission's admission pass was sealed; `counter` is the Laplace
  /// substream counter after it. A commit barrier: records after the last
  /// barrier were never acted on and are dropped by recovery.
  kSubmitSealed = 4,
};

/// One journal record. Field use by type: kCharge (vertex, value),
/// kViewAuthorized (vertex), kRaiseBudget (value), kSubmitSealed
/// (counter).
struct WalRecord {
  WalRecordType type = WalRecordType::kCharge;
  uint64_t vertex = 0;  ///< PackLayeredVertex key
  double value = 0.0;
  uint64_t counter = 0;

  friend bool operator==(const WalRecord&, const WalRecord&) = default;
};

/// Everything recovery learns from reading a WAL file.
struct WalReplay {
  uint64_t epoch = 0;
  /// All complete, CRC-valid records, in append order.
  std::vector<WalRecord> records;
  /// Records up to and including the last commit barrier — the prefix
  /// recovery applies. Trailing records beyond it belong to an admission
  /// batch whose fsync never completed.
  size_t committed = 0;
  /// True when the file ended in a torn (short or CRC-failing) record.
  bool torn_tail = false;
  /// Bytes discarded after the last valid record.
  uint64_t dropped_bytes = 0;
};

/// Append-side handle on a budget journal. Appends buffer in memory;
/// Sync() writes the buffer and fsyncs — the service calls it exactly
/// once per submission, before acting on any admitted query.
class BudgetWal {
 public:
  /// Atomically creates (or replaces) the WAL at `path` holding only a
  /// fresh header with `epoch`.
  static void Reset(const std::string& path, uint64_t epoch);

  /// Atomically rewrites the WAL to hold exactly `records` — recovery
  /// compaction: drops a torn tail and uncommitted records for good.
  static void Rewrite(const std::string& path, uint64_t epoch,
                      std::span<const WalRecord> records);

  /// Parses the WAL at `path`. Throws std::runtime_error only on an
  /// unreadable file, bad magic, or unsupported version; a torn tail is a
  /// normal crash artifact and is reported in the result, not thrown.
  static WalReplay Read(const std::string& path);

  /// Opens an existing WAL (created by Reset/Rewrite) for appending.
  explicit BudgetWal(const std::string& path);
  ~BudgetWal();

  BudgetWal(const BudgetWal&) = delete;
  BudgetWal& operator=(const BudgetWal&) = delete;

  /// Buffers one record.
  void Append(const WalRecord& record);

  /// Writes all buffered records and fsyncs. Throws std::runtime_error on
  /// IO failure — budget durability is not best-effort — and *poisons*
  /// the handle: after a failed write the file may end in a partial
  /// record (a retry would desync the framing) and after a failed fsync
  /// a retry can succeed without durability, so every later Append/Sync
  /// throws until a fresh handle re-runs recovery.
  void Sync();

  /// Records appended over this handle's lifetime (buffered + synced).
  uint64_t appended_records() const { return appended_; }

 private:
  void Poison();

  std::string path_;
  int fd_ = -1;
  std::vector<uint8_t> buffer_;
  uint64_t appended_ = 0;
};

}  // namespace cne

#endif  // CNE_STORE_BUDGET_WAL_H_
