#include "util/cli.h"

#include <cstdlib>

namespace cne {

CommandLine::CommandLine(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string body = arg.substr(2);
      const size_t eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "";
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool CommandLine::Has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& def) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? def : it->second;
}

long long CommandLine::GetInt(const std::string& name, long long def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end && *end == '\0') ? v : def;
}

double CommandLine::GetDouble(const std::string& name, double def) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.empty()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end && *end == '\0') ? v : def;
}

bool CommandLine::GetBool(const std::string& name, bool def) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  const std::string& v = it->second;
  return v.empty() || v == "1" || v == "true" || v == "yes";
}

std::vector<std::string> CommandLine::GetList(const std::string& name) const {
  return SplitString(GetString(name), ',');
}

std::vector<std::string> SplitString(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(sep, start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace cne
