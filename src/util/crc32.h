// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte ranges.
//
// The integrity check of the persistence subsystem: every snapshot
// section, every CSR block, and every write-ahead-log record carries a
// CRC so that torn writes and bit rot are *detected* instead of silently
// replayed into the privacy accounting. Software table implementation —
// the payloads it guards are written once per checkpoint, so portability
// beats peak throughput here.

#ifndef CNE_UTIL_CRC32_H_
#define CNE_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace cne {

/// CRC-32 of `len` bytes at `data`. Chainable: pass a previous result as
/// `seed` to continue a running checksum over split buffers;
/// Crc32(ab) == Crc32(b, Crc32(a)).
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

}  // namespace cne

#endif  // CNE_UTIL_CRC32_H_
