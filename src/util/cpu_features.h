// Runtime CPU ISA detection for the SIMD set-operation kernels.
//
// The hot word-AND+popcount and batched-probe kernels in graph/set_ops
// have three implementations — portable scalar, AVX2 (nibble-LUT vpshufb
// popcount), and AVX-512 (vpopcntq + masked tails) — compiled into
// per-ISA translation units with per-file arch flags. Which one runs is
// decided *once per process* here, from CPUID/xgetbv:
//
//   * kScalar  — always available (and the only level off x86-64).
//   * kAvx2    — CPUID.7.0:EBX[AVX2], with OS XMM+YMM state support
//                (OSXSAVE + XCR0 bits 1..2).
//   * kAvx512  — AVX-512 F+BW+VL plus VPOPCNTDQ, with OS ZMM/opmask
//                state support (XCR0 bits 5..7).
//
// The environment variable CNE_SIMD_LEVEL=scalar|avx2|avx512 overrides
// the detected level (clamped to what the hardware supports, with a
// warning) so tests, benches, and CI can force every code path on one
// machine. ForceSimdLevel() does the same from inside a process — the
// SIMD/scalar parity suites sweep it.

#ifndef CNE_UTIL_CPU_FEATURES_H_
#define CNE_UTIL_CPU_FEATURES_H_

#include <optional>
#include <string_view>
#include <vector>

namespace cne {

/// The ISA tiers the set-operation kernels are compiled for, in strictly
/// increasing capability order (every level includes the ones below it).
enum class SimdLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

inline constexpr int kNumSimdLevels = 3;

/// Highest level this machine can execute, probed via CPUID/xgetbv once
/// and cached. Never throws; returns kScalar on non-x86-64 builds.
SimdLevel DetectedSimdLevel();

/// The level the kernels dispatch on: DetectedSimdLevel() clamped down by
/// the CNE_SIMD_LEVEL environment variable (read once) or by the last
/// ForceSimdLevel() call. One relaxed atomic load on the fast path.
SimdLevel ActiveSimdLevel();

/// Overrides ActiveSimdLevel() at runtime. Levels above
/// DetectedSimdLevel() are clamped (with a warning) rather than allowed
/// to emit illegal instructions; the parity tests and the calibration
/// tool sweep this across AvailableSimdLevels().
void ForceSimdLevel(SimdLevel level);

/// Every level this machine can execute, ascending: {kScalar, ...,
/// DetectedSimdLevel()}.
std::vector<SimdLevel> AvailableSimdLevels();

/// Canonical lowercase name: "scalar", "avx2", "avx512".
const char* SimdLevelName(SimdLevel level);

/// Parses a CNE_SIMD_LEVEL-style name; nullopt for anything else.
std::optional<SimdLevel> ParseSimdLevel(std::string_view name);

}  // namespace cne

#endif  // CNE_UTIL_CPU_FEATURES_H_
