// Wall-clock timing helper (header-only).

#ifndef CNE_UTIL_TIMER_H_
#define CNE_UTIL_TIMER_H_

#include <chrono>

namespace cne {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cne

#endif  // CNE_UTIL_TIMER_H_
