#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace cne {

namespace {

const std::string kEmptyString;
const JsonValue::Array kEmptyArray;
const JsonValue::Object kEmptyObject;
const JsonValue kNullValue;

}  // namespace

const std::string& JsonValue::AsString() const {
  return IsString() ? string_ : kEmptyString;
}

const JsonValue::Array& JsonValue::AsArray() const {
  return IsArray() ? array_ : kEmptyArray;
}

const JsonValue::Object& JsonValue::AsObject() const {
  return IsObject() ? object_ : kEmptyObject;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!IsObject()) return nullptr;
  for (const auto& [name, value] : object_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::operator[](const std::string& key) const {
  const JsonValue* found = Find(key);
  return found != nullptr ? *found : kNullValue;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) {
      if (error != nullptr) {
        char buf[160];
        std::snprintf(buf, sizeof(buf), "%s at offset %zu", error_.c_str(),
                      pos_);
        *error = buf;
      }
      return false;
    }
    SkipWhitespace();
    if (pos_ != text_.size()) {
      if (error != nullptr) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "trailing content at offset %zu",
                      pos_);
        *error = buf;
      }
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 128;

  bool Fail(const char* message) {
    if (error_.empty()) error_ = message;
    return false;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->type_ = JsonValue::Type::kString;
        return ParseString(&out->string_);
      case 't':
        if (text_.compare(pos_, 4, "true") != 0) return Fail("bad literal");
        pos_ += 4;
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = true;
        return true;
      case 'f':
        if (text_.compare(pos_, 5, "false") != 0) return Fail("bad literal");
        pos_ += 5;
        out->type_ = JsonValue::Type::kBool;
        out->bool_ = false;
        return true;
      case 'n':
        if (text_.compare(pos_, 4, "null") != 0) return Fail("bad literal");
        pos_ += 4;
        out->type_ = JsonValue::Type::kNull;
        return true;
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->type_ = JsonValue::Type::kObject;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected :");
      ++pos_;
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->object_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return Fail("expected , or }");
    }
  }

  bool ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->type_ = JsonValue::Type::kArray;
    SkipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWhitespace();
      JsonValue value;
      if (!ParseValue(&value, depth + 1)) return false;
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return Fail("expected , or ]");
    }
  }

  bool ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Fail("unterminated escape");
        switch (text_[pos_]) {
          case '"':
            out->push_back('"');
            break;
          case '\\':
            out->push_back('\\');
            break;
          case '/':
            out->push_back('/');
            break;
          case 'b':
            out->push_back('\b');
            break;
          case 'f':
            out->push_back('\f');
            break;
          case 'n':
            out->push_back('\n');
            break;
          case 'r':
            out->push_back('\r');
            break;
          case 't':
            out->push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            AppendUtf8(code, out);
            break;
          }
          default:
            return Fail("unknown escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  bool ParseNumber(JsonValue* out) {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(start, &end);
    if (end == start) return Fail("expected value");
    // strtod accepts forms JSON forbids (hex, inf, nan, leading +); reject
    // anything that does not start like a JSON number.
    const char first = *start;
    if (first != '-' && !(first >= '0' && first <= '9')) {
      return Fail("expected value");
    }
    if (end - start >= 2 && (start[1] == 'x' || start[1] == 'X')) {
      return Fail("expected value");
    }
    pos_ += static_cast<size_t>(end - start);
    out->type_ = JsonValue::Type::kNumber;
    out->number_ = value;
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

bool JsonValue::Parse(const std::string& text, JsonValue* out,
                      std::string* error) {
  *out = JsonValue();
  JsonParser parser(text);
  return parser.Parse(out, error);
}

}  // namespace cne
