// Buffered little-endian binary encoding and crash-safe file helpers.
//
// The byte-level substrate of the persistence subsystem (store/): every
// snapshot section and WAL record is built in memory with a `ByteWriter`,
// decoded with a bounds-checked `ByteReader`, and reaches disk through
// `WriteFileAtomic` — write to a temp file, fsync, rename over the target,
// fsync the directory — so a reader never observes a half-written file.
//
// Encoding is explicit little-endian byte shifts, not memcpy of host
// structs: snapshots must be readable across compilers and architectures,
// and the explicit form costs nothing on the write-once paths it serves.

#ifndef CNE_UTIL_BINARY_IO_H_
#define CNE_UTIL_BINARY_IO_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cne {

/// Append-only little-endian encoder over a growable byte buffer.
class ByteWriter {
 public:
  void U8(uint8_t v) { bytes_.push_back(v); }

  void U32(uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }

  void U64(uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      bytes_.push_back(static_cast<uint8_t>(v >> shift));
    }
  }

  /// IEEE-754 double, bit-exact through its 64-bit pattern.
  void F64(double v);

  void Bytes(const void* data, size_t len);

  size_t size() const { return bytes_.size(); }
  std::span<const uint8_t> data() const { return bytes_; }

  /// Moves the buffer out, leaving the writer empty and reusable.
  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  std::vector<uint8_t> bytes_;
};

/// Bounds-checked little-endian decoder over a borrowed byte span. Every
/// read past the end throws std::runtime_error — corrupted or truncated
/// persistence files surface as exceptions, never as garbage values.
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() {
    Need(1);
    return bytes_[pos_++];
  }

  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int shift = 0; shift < 32; shift += 8) {
      v |= static_cast<uint32_t>(bytes_[pos_++]) << shift;
    }
    return v;
  }

  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 8) {
      v |= static_cast<uint64_t>(bytes_[pos_++]) << shift;
    }
    return v;
  }

  double F64();

  void Bytes(void* out, size_t len);

  /// Borrows the next `len` bytes without copying and advances past them.
  std::span<const uint8_t> Borrow(size_t len);

  size_t remaining() const { return bytes_.size() - pos_; }
  size_t consumed() const { return pos_; }

 private:
  void Need(size_t len) const;

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
};

/// True when `path` names an existing regular file.
bool FileExists(const std::string& path);

/// Reads a whole file into memory. Throws std::runtime_error (with errno
/// text) when the file cannot be opened or read, and when fewer bytes
/// arrive than the file's size reported — a partial read is corruption,
/// never silently returned. `site` prefixes the fault-injection sites
/// consulted along the way: `<site>.open` and `<site>.read`
/// (util/failpoint.h; "wal.read" simulates a short read, etc.).
std::vector<uint8_t> ReadFileBytes(const std::string& path,
                                   std::string_view site = "file");

/// Behavior knobs for WriteFileAtomic.
struct AtomicWriteOptions {
  /// Prefix of the fault-injection sites consulted at each step:
  /// `<site>.open`, `<site>.write`, `<site>.fsync`, `<site>.rename`,
  /// `<site>.dirfsync` (util/failpoint.h).
  std::string_view site = "file";

  /// On failure, rename the temp file to `<path>.tmp.quarantine` instead
  /// of unlinking it, preserving the partial write as evidence for
  /// operators (used by snapshot checkpoints, which retry over it).
  bool quarantine_tmp = false;
};

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. Readers see either
/// the old complete file or the new complete file, never a mix — the
/// commit primitive behind snapshot rename-on-commit and WAL resets.
/// Throws std::runtime_error (with errno text) on any IO failure,
/// including a failed directory fsync — the rename's durability is then
/// unknown, though the destination is still never torn.
void WriteFileAtomic(const std::string& path, std::span<const uint8_t> bytes);

/// Multi-part variant: writes the concatenation of `parts` without ever
/// materializing it in one buffer, so committing a section-structured
/// file (header + payloads) peaks at one copy of the data, not two.
void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const uint8_t>> parts,
                     const AtomicWriteOptions& options = {});

}  // namespace cne

#endif  // CNE_UTIL_BINARY_IO_H_
