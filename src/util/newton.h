// One-dimensional minimization used by the privacy-budget allocation
// optimizer (Section 4.2 of the paper resorts to Newton's method because the
// stationarity conditions are transcendental).

#ifndef CNE_UTIL_NEWTON_H_
#define CNE_UTIL_NEWTON_H_

#include <functional>

namespace cne {

/// Result of a 1-D minimization.
struct MinimizeResult {
  double x = 0.0;        ///< Arg-min found.
  double value = 0.0;    ///< Objective at `x`.
  int iterations = 0;    ///< Iterations used.
  bool converged = false;
};

/// Minimizes `f` over the closed interval [lo, hi] by golden-section search.
/// `f` must be unimodal on the interval for a guaranteed global minimum;
/// otherwise a local minimum is returned.
MinimizeResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi,
                                     double tol = 1e-9, int max_iter = 200);

/// Minimizes `f` over [lo, hi] with safeguarded Newton iteration on the
/// derivative (central finite differences). Falls back to golden-section
/// whenever a Newton step leaves the interval or the curvature is not
/// positive, so the result is always at least as good as golden-section.
MinimizeResult NewtonMinimize(const std::function<double(double)>& f,
                              double lo, double hi,
                              double tol = 1e-9, int max_iter = 100);

/// Finds a root of `f` on [lo, hi] by bisection; requires a sign change.
/// Returns the midpoint of the final bracket.
double BisectRoot(const std::function<double(double)>& f, double lo,
                  double hi, double tol = 1e-12, int max_iter = 200);

}  // namespace cne

#endif  // CNE_UTIL_NEWTON_H_
