// A small persistent thread pool for data-parallel loops.
//
// The pool exists so the service layer can fan independent work items
// (noisy-view materialization, per-query post-processing) across cores
// while staying byte-identical to sequential execution: callers give every
// work item its own output slot and its own `Rng::Fork` substream, so the
// result depends only on the item index, never on which thread ran it or
// in what order. `ThreadPool(1)` spawns no workers and runs everything
// inline, making "one thread" genuinely sequential for baselines.

#ifndef CNE_UTIL_THREAD_POOL_H_
#define CNE_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace cne {

/// Fixed-size pool of worker threads executing chunked parallel-for loops.
/// The calling thread participates as one of the `num_threads` workers.
class ThreadPool {
 public:
  /// Creates a pool where `ParallelFor` runs on `num_threads` threads
  /// (the caller plus `num_threads - 1` workers). `num_threads <= 0` is
  /// clamped to the hardware concurrency.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Outstanding loops must have returned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a loop (workers + caller).
  int NumThreads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs `body(begin, end)` over a partition of [0, n) and blocks until
  /// every index has been processed. Chunks are claimed dynamically, so
  /// `body` must be safe to call concurrently on disjoint ranges and must
  /// not itself call ParallelFor on this pool. With no workers the single
  /// call `body(0, n)` runs inline on the caller.
  void ParallelFor(size_t n,
                   const std::function<void(size_t, size_t)>& body);

 private:
  void WorkerLoop();
  /// Claims chunks until the current loop is exhausted.
  void RunChunks();

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  // State of the active ParallelFor, guarded by mutex_.
  uint64_t generation_ = 0;  ///< bumped per loop; workers wake on change
  bool shutdown_ = false;
  size_t total_ = 0;
  size_t next_ = 0;        ///< next unclaimed index
  size_t chunk_ = 1;       ///< indices per claim
  int active_workers_ = 0;  ///< workers still inside the current loop
  const std::function<void(size_t, size_t)>* body_ = nullptr;
};

}  // namespace cne

#endif  // CNE_UTIL_THREAD_POOL_H_
