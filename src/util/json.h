// Minimal recursive-descent JSON parser (read-only DOM).
//
// Exists so tools can read the JSON this repo's own binaries emit
// (bench JSON, `cne_serve --metrics-json`) without a third-party
// dependency. Full RFC 8259 value grammar; numbers are doubles; object
// member order is preserved.

#ifndef CNE_UTIL_JSON_H_
#define CNE_UTIL_JSON_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace cne {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  using Object = std::vector<std::pair<std::string, JsonValue>>;
  using Array = std::vector<JsonValue>;

  JsonValue() = default;

  Type type() const { return type_; }
  bool IsNull() const { return type_ == Type::kNull; }
  bool IsBool() const { return type_ == Type::kBool; }
  bool IsNumber() const { return type_ == Type::kNumber; }
  bool IsString() const { return type_ == Type::kString; }
  bool IsArray() const { return type_ == Type::kArray; }
  bool IsObject() const { return type_ == Type::kObject; }

  /// Typed accessors; return the fallback on type mismatch.
  bool AsBool(bool fallback = false) const {
    return IsBool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0.0) const {
    return IsNumber() ? number_ : fallback;
  }
  const std::string& AsString() const;
  const Array& AsArray() const;
  const Object& AsObject() const;

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// `Find`, but returns a shared null value when absent — chains safely:
  /// `doc["a"]["b"].AsDouble()`.
  const JsonValue& operator[](const std::string& key) const;

  /// Parses `text` into `*out`. On failure returns false and, when `error`
  /// is non-null, stores a message with the byte offset of the problem.
  static bool Parse(const std::string& text, JsonValue* out,
                    std::string* error = nullptr);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace cne

#endif  // CNE_UTIL_JSON_H_
