// Deterministic fault injection (failpoints).
//
// Durability code is dominated by error paths that never run in healthy
// environments: a failed WAL fsync, a short snapshot write, a rename that
// returns ENOSPC, a flipped byte under a valid-looking file. This module
// lets tests and operators make exactly those paths fire, deterministically,
// at named *sites* threaded through the IO seams (util/binary_io,
// store/budget_wal, store/snapshot_format, service/query_service).
//
// A site is a dotted name such as "wal.fsync" or "snapshot.write". Code
// consults a site with `fail::Hit("wal", ".fsync")` and acts on the returned
// `Injected` — simulate the errno, shorten the write, flip a byte. Sites are
// configured from a spec string (one or more entries, ','- or ';'-separated):
//
//   entry   := site '=' action
//   action  := 'off' | kind [':' param] ['@' trigger]
//   kind    := 'err'     fail with an errno (param: errno name or number,
//                        default EIO)
//            | 'short'   truncate the operation (param: byte count, or 'N%'
//                        of the requested amount; default 50%)
//            | 'corrupt' flip one byte (param: byte offset, default 0)
//   trigger := N         fire on the Nth evaluation only (1-based)
//            | N '+'     fire on every evaluation from the Nth on
//            | P '%'     fire each evaluation with probability P/100,
//                        drawn from a per-site seeded RNG
//
// Examples: "wal.fsync=err:EIO@3", "snapshot.write=short:17%",
// "wal.append=err:ENOSPC@25%", "snapshot.corrupt=corrupt:12".
// Without a trigger the site fires on every evaluation.
//
// Determinism: probabilistic triggers draw from an Rng seeded by
// `Configure`'s seed and the site name, so a fault schedule replays
// identically for the same spec + seed. Counting triggers are per-site
// evaluation counts; both reset on every Configure/Clear.
//
// Overhead: the unarmed fast path is one relaxed atomic load and a
// predicted-not-taken branch — no allocation, no lock, no site-name
// construction. Compiling with CNE_FAILPOINTS_ENABLED=0 removes the
// framework entirely: Hit() becomes a constant-empty inline the optimizer
// deletes, and Configure() rejects any non-empty spec so a forgotten
// --failpoints flag fails loudly instead of silently doing nothing.

#ifndef CNE_UTIL_FAILPOINT_H_
#define CNE_UTIL_FAILPOINT_H_

// Compile-time kill switch. Defaults to on; build with
// -DCNE_FAILPOINTS_ENABLED=0 (CMake: -DCNE_FAILPOINTS=OFF) to compile the
// framework out of every translation unit.
#ifndef CNE_FAILPOINTS_ENABLED
#define CNE_FAILPOINTS_ENABLED 1
#endif

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace cne::fail {

/// What an armed site injects. kNone means "proceed normally".
enum class Action : uint8_t {
  kNone = 0,
  kError,    ///< simulate a syscall failure with `error` as errno
  kShort,    ///< truncate the operation to ShortenedLen() bytes
  kCorrupt,  ///< flip the byte at offset `amount` (mod buffer size)
};

/// The verdict of one site evaluation. Contextually convertible to bool:
/// true when a fault should be injected.
struct Injected {
  Action action = Action::kNone;
  int error = 0;         ///< errno to simulate (kError)
  uint64_t amount = 0;   ///< byte count / percent (kShort), offset (kCorrupt)
  bool percent = false;  ///< `amount` is a percentage of the request

  explicit operator bool() const { return action != Action::kNone; }

  /// Length a kShort injection truncates a `requested`-byte operation to.
  /// Clamped to [1, requested] (0 only when requested == 0) so retry loops
  /// that re-issue the remainder always make progress.
  uint64_t ShortenedLen(uint64_t requested) const;
};

#if CNE_FAILPOINTS_ENABLED

namespace internal {
/// Number of armed sites; 0 keeps Hit() on its fast path.
extern std::atomic<uint32_t> g_armed_sites;
/// Slow path: resolves the site and evaluates its trigger.
Injected Evaluate(std::string_view prefix, std::string_view suffix);
}  // namespace internal

/// True in builds that compile the framework in.
inline constexpr bool kCompiledIn = true;

/// Evaluates the site named by the concatenation `prefix + suffix` (split
/// so callers that parameterize a site family — e.g. WriteFileAtomic's
/// "<prefix>.write" — never build strings on the unarmed path). Returns
/// what to inject; kNone when the site is not armed.
inline Injected Hit(std::string_view prefix, std::string_view suffix = {}) {
  if (internal::g_armed_sites.load(std::memory_order_relaxed) == 0) {
    return {};
  }
  return internal::Evaluate(prefix, suffix);
}

/// Replaces the active configuration with `spec` (grammar above; empty
/// clears everything). Trigger state and hit counts reset. Probabilistic
/// triggers derive their streams from `seed` and the site name. Throws
/// std::runtime_error on malformed specs.
void Configure(const std::string& spec, uint64_t seed = 0);

/// Disarms every site and resets all counts.
void Clear();

/// Evaluations of `site` since it was configured (0 if unknown).
uint64_t HitCount(const std::string& site);

/// Evaluations of `site` that injected a fault (0 if unknown).
uint64_t FireCount(const std::string& site);

/// The active configuration, one "site=action" per entry, sorted —
/// for logs and error reports.
std::string Describe();

#else  // !CNE_FAILPOINTS_ENABLED

inline constexpr bool kCompiledIn = false;

inline Injected Hit(std::string_view, std::string_view = {}) { return {}; }

/// Compiled out: rejects any non-empty spec so a configured-but-inert
/// failpoint run fails loudly. Declared here, defined in failpoint.cc.
void Configure(const std::string& spec, uint64_t seed = 0);

inline void Clear() {}
inline uint64_t HitCount(const std::string&) { return 0; }
inline uint64_t FireCount(const std::string&) { return 0; }
inline std::string Describe() { return {}; }

#endif  // CNE_FAILPOINTS_ENABLED

}  // namespace cne::fail

#endif  // CNE_UTIL_FAILPOINT_H_
