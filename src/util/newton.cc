#include "util/newton.h"

#include <cassert>
#include <cmath>

namespace cne {

MinimizeResult GoldenSectionMinimize(const std::function<double(double)>& f,
                                     double lo, double hi, double tol,
                                     int max_iter) {
  assert(hi >= lo);
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  MinimizeResult res;
  int it = 0;
  while (b - a > tol && it < max_iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++it;
  }
  res.x = (a + b) / 2.0;
  res.value = f(res.x);
  res.iterations = it;
  res.converged = (b - a) <= tol;
  // The endpoints can beat the interior point when the minimum lies on the
  // boundary of the original interval.
  const double flo = f(lo), fhi = f(hi);
  if (flo < res.value) {
    res.x = lo;
    res.value = flo;
  }
  if (fhi < res.value) {
    res.x = hi;
    res.value = fhi;
  }
  return res;
}

MinimizeResult NewtonMinimize(const std::function<double(double)>& f,
                              double lo, double hi, double tol,
                              int max_iter) {
  assert(hi >= lo);
  if (hi - lo < tol) {
    MinimizeResult res;
    res.x = (lo + hi) / 2.0;
    res.value = f(res.x);
    res.converged = true;
    return res;
  }
  // Finite-difference step scaled to the interval width.
  const double h = std::max(1e-7, (hi - lo) * 1e-6);
  double x = (lo + hi) / 2.0;
  MinimizeResult res;
  bool ok = false;
  for (int it = 0; it < max_iter; ++it) {
    res.iterations = it + 1;
    const double fp = (f(x + h) - f(x - h)) / (2.0 * h);
    const double fpp = (f(x + h) - 2.0 * f(x) + f(x - h)) / (h * h);
    if (!(fpp > 0.0) || !std::isfinite(fp) || !std::isfinite(fpp)) {
      ok = false;
      break;
    }
    double step = fp / fpp;
    double nx = x - step;
    if (nx <= lo || nx >= hi) {
      ok = false;
      break;
    }
    if (std::abs(nx - x) < tol) {
      x = nx;
      ok = true;
      break;
    }
    x = nx;
  }
  if (ok) {
    res.x = x;
    res.value = f(x);
    res.converged = true;
    // Verify Newton did not converge to a boundary-dominated local point.
    MinimizeResult golden = GoldenSectionMinimize(f, lo, hi, tol, 200);
    if (golden.value < res.value) return golden;
    return res;
  }
  return GoldenSectionMinimize(f, lo, hi, tol, 200);
}

double BisectRoot(const std::function<double(double)>& f, double lo,
                  double hi, double tol, int max_iter) {
  double flo = f(lo);
  double fhi = f(hi);
  assert(flo * fhi <= 0.0 && "BisectRoot requires a sign change");
  (void)fhi;
  for (int it = 0; it < max_iter && hi - lo > tol; ++it) {
    const double mid = (lo + hi) / 2.0;
    const double fmid = f(mid);
    if (fmid == 0.0) return mid;
    if ((flo < 0) == (fmid < 0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace cne
