// Lightweight leveled logging for the library. Benches and examples use
// INFO; the library itself only logs at WARNING and above so that embedding
// applications stay quiet by default.

#ifndef CNE_UTIL_LOGGING_H_
#define CNE_UTIL_LOGGING_H_

#include <sstream>

namespace cne {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it to stderr on destruction. When
/// `fatal` is set, the destructor aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cne

/// Streams a log line at the given level, e.g. CNE_LOG(kInfo) << "msg".
#define CNE_LOG(level) \
  ::cne::internal::LogMessage(::cne::LogLevel::level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Active in all build types.
#define CNE_CHECK(cond)                                                    \
  if (cond) {                                                              \
  } else                                                                   \
    ::cne::internal::LogMessage(::cne::LogLevel::kError, __FILE__,         \
                                __LINE__, /*fatal=*/true)                  \
        << "Check failed: " #cond " "

#endif  // CNE_UTIL_LOGGING_H_
