// Minimal command-line flag parsing for the bench harnesses and examples.
// Flags take the forms `--name=value` and `--name value`; bare `--name` is a
// boolean true.

#ifndef CNE_UTIL_CLI_H_
#define CNE_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

namespace cne {

/// Parsed command line: `--key=value` flags plus positional arguments.
class CommandLine {
 public:
  CommandLine(int argc, const char* const* argv);

  /// True if the flag was present (with or without a value).
  bool Has(const std::string& name) const;

  /// String value of a flag, or `def` when absent.
  std::string GetString(const std::string& name,
                        const std::string& def = "") const;

  /// Integer value of a flag, or `def` when absent or unparsable.
  long long GetInt(const std::string& name, long long def) const;

  /// Double value of a flag, or `def` when absent or unparsable.
  double GetDouble(const std::string& name, double def) const;

  /// Boolean value: present without value or with "1"/"true" -> true.
  bool GetBool(const std::string& name, bool def = false) const;

  /// Comma-separated list value of a flag.
  std::vector<std::string> GetList(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> SplitString(const std::string& s, char sep);

}  // namespace cne

#endif  // CNE_UTIL_CLI_H_
