#include "util/statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <limits>

namespace cne {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::Mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::Min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::Max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double RunningStats::Variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::StdDev() const { return std::sqrt(Variance()); }

double RunningStats::StdError() const {
  if (count_ == 0) return 0.0;
  return StdDev() / std::sqrt(static_cast<double>(count_));
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double QuantileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted[0];
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t i = static_cast<size_t>(pos);
  if (i + 1 >= sorted.size()) return sorted.back();
  const double frac = pos - static_cast<double>(i);
  return sorted[i] * (1.0 - frac) + sorted[i + 1] * frac;
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double v : sorted) rs.Add(v);
  s.mean = rs.Mean();
  s.variance = rs.Variance();
  s.stddev = rs.StdDev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = QuantileSorted(sorted, 0.5);
  s.p05 = QuantileSorted(sorted, 0.05);
  s.p95 = QuantileSorted(sorted, 0.95);
  s.p99 = QuantileSorted(sorted, 0.99);
  s.p999 = QuantileSorted(sorted, 0.999);
  return s;
}

double MeanAbsoluteError(const std::vector<double>& estimates,
                         const std::vector<double>& truths) {
  assert(estimates.size() == truths.size());
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    sum += std::abs(estimates[i] - truths[i]);
  }
  return sum / static_cast<double>(estimates.size());
}

double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths) {
  assert(estimates.size() == truths.size());
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    sum += std::abs(estimates[i] - truths[i]) / std::max(truths[i], 1.0);
  }
  return sum / static_cast<double>(estimates.size());
}

double MeanSquaredError(const std::vector<double>& estimates,
                        const std::vector<double>& truths) {
  assert(estimates.size() == truths.size());
  if (estimates.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    const double d = estimates[i] - truths[i];
    sum += d * d;
  }
  return sum / static_cast<double>(estimates.size());
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  double pos = (x - lo_) / width;
  long bucket = static_cast<long>(std::floor(pos));
  bucket = std::clamp<long>(bucket, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bucket)];
  ++total_;
}

double Histogram::BucketLow(size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::BucketHigh(size_t i) const { return BucketLow(i + 1); }

std::string Histogram::ToAscii(size_t width) const {
  size_t max_count = 0;
  for (size_t c : counts_) max_count = std::max(max_count, c);
  if (max_count == 0) max_count = 1;
  std::string out;
  char line[128];
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = counts_[i] * width / max_count;
    std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %7zu ",
                  BucketLow(i), BucketHigh(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace cne
