#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cne {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = static_cast<int>(level); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level),
      fatal_(fatal),
      enabled_(fatal || static_cast<int>(level) >= g_level.load()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace cne
