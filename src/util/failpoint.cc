#include "util/failpoint.h"

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#if CNE_FAILPOINTS_ENABLED
#include <map>
#include <mutex>
#include <vector>

#include "util/rng.h"
#endif

namespace cne::fail {

uint64_t Injected::ShortenedLen(uint64_t requested) const {
  if (requested == 0) return 0;
  uint64_t len =
      percent ? requested * std::min<uint64_t>(amount, 100) / 100 : amount;
  // Never 0: write loops re-issue the remainder, and a zero-progress
  // injection would spin them forever.
  len = std::clamp<uint64_t>(len, 1, requested);
  return len;
}

#if !CNE_FAILPOINTS_ENABLED

void Configure(const std::string& spec, uint64_t /*seed*/) {
  // Silently accepting a spec the build cannot honor would turn a fault
  // drill into a no-op that *passes*; refuse instead.
  if (!spec.empty()) {
    throw std::runtime_error(
        "failpoints were compiled out (CNE_FAILPOINTS_ENABLED=0); "
        "cannot configure \"" + spec + "\"");
  }
}

#else  // CNE_FAILPOINTS_ENABLED

namespace internal {
std::atomic<uint32_t> g_armed_sites{0};
}  // namespace internal

namespace {

/// When an armed site fires.
enum class Trigger : uint8_t {
  kAlways,
  kNth,      ///< the Nth evaluation only
  kFromNth,  ///< every evaluation from the Nth on
  kProb,     ///< each evaluation with probability p
};

struct Site {
  Action action = Action::kNone;
  int error = EIO;
  uint64_t amount = 0;
  bool percent = false;
  Trigger trigger = Trigger::kAlways;
  uint64_t n = 0;    ///< kNth / kFromNth threshold (1-based)
  double p = 0.0;    ///< kProb per-evaluation probability
  uint64_t hits = 0;
  uint64_t fires = 0;
  Rng rng{0};        ///< kProb stream, seeded per site by Configure
};

struct Registry {
  std::mutex mutex;
  std::map<std::string, Site> sites;
};

Registry& TheRegistry() {
  static Registry* registry = new Registry;  // leaked: used in atexit paths
  return *registry;
}

[[noreturn]] void BadSpec(const std::string& entry, const std::string& why) {
  throw std::runtime_error("bad failpoint spec \"" + entry + "\": " + why);
}

uint64_t ParseUint(const std::string& entry, std::string_view text) {
  if (text.empty()) BadSpec(entry, "expected a number");
  uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      BadSpec(entry, "expected a number, got \"" + std::string(text) + "\"");
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

int ParseErrnoName(const std::string& entry, std::string_view name) {
  static constexpr std::pair<std::string_view, int> kNames[] = {
      {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EDQUOT", EDQUOT},
      {"EROFS", EROFS},   {"EACCES", EACCES}, {"ENOENT", ENOENT},
      {"EBADF", EBADF},   {"EINTR", EINTR},   {"EMFILE", EMFILE},
      {"ENOMEM", ENOMEM}, {"EFBIG", EFBIG},
  };
  for (const auto& [known, value] : kNames) {
    if (name == known) return value;
  }
  if (!name.empty() && name[0] >= '0' && name[0] <= '9') {
    return static_cast<int>(ParseUint(entry, name));
  }
  BadSpec(entry, "unknown errno \"" + std::string(name) + "\"");
}

// Parses "kind[:param][@trigger]" into `site` (trigger fields excluded —
// handled by the caller, which strips the '@' part first).
void ParseAction(const std::string& entry, std::string_view action,
                 Site& site) {
  std::string_view kind = action;
  std::string_view param;
  if (const size_t colon = action.find(':'); colon != std::string_view::npos) {
    kind = action.substr(0, colon);
    param = action.substr(colon + 1);
  }
  if (kind == "err") {
    site.action = Action::kError;
    site.error = param.empty() ? EIO : ParseErrnoName(entry, param);
  } else if (kind == "short") {
    site.action = Action::kShort;
    if (param.empty()) {
      site.amount = 50;
      site.percent = true;
    } else if (param.back() == '%') {
      site.amount = ParseUint(entry, param.substr(0, param.size() - 1));
      site.percent = true;
      if (site.amount > 100) BadSpec(entry, "percentage above 100");
    } else {
      site.amount = ParseUint(entry, param);
      site.percent = false;
    }
  } else if (kind == "corrupt") {
    site.action = Action::kCorrupt;
    site.amount = param.empty() ? 0 : ParseUint(entry, param);
  } else {
    BadSpec(entry, "unknown action \"" + std::string(kind) + "\"");
  }
}

void ParseTrigger(const std::string& entry, std::string_view trigger,
                  Site& site) {
  if (trigger.empty()) BadSpec(entry, "empty trigger after '@'");
  if (trigger.back() == '%') {
    const uint64_t percent =
        ParseUint(entry, trigger.substr(0, trigger.size() - 1));
    if (percent > 100) BadSpec(entry, "probability above 100%");
    site.trigger = Trigger::kProb;
    site.p = static_cast<double>(percent) / 100.0;
  } else if (trigger.back() == '+') {
    site.trigger = Trigger::kFromNth;
    site.n = ParseUint(entry, trigger.substr(0, trigger.size() - 1));
    if (site.n == 0) BadSpec(entry, "hit counts are 1-based");
  } else {
    site.trigger = Trigger::kNth;
    site.n = ParseUint(entry, trigger);
    if (site.n == 0) BadSpec(entry, "hit counts are 1-based");
  }
}

std::string_view Strip(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

const char* ActionName(Action action) {
  switch (action) {
    case Action::kNone:
      return "off";
    case Action::kError:
      return "err";
    case Action::kShort:
      return "short";
    case Action::kCorrupt:
      return "corrupt";
  }
  return "?";
}

}  // namespace

namespace internal {

Injected Evaluate(std::string_view prefix, std::string_view suffix) {
  Registry& registry = TheRegistry();
  std::string name;
  name.reserve(prefix.size() + suffix.size());
  name.append(prefix).append(suffix);
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(name);
  if (it == registry.sites.end()) return {};
  Site& site = it->second;
  ++site.hits;
  bool fire = false;
  switch (site.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kNth:
      fire = site.hits == site.n;
      break;
    case Trigger::kFromNth:
      fire = site.hits >= site.n;
      break;
    case Trigger::kProb:
      fire = site.rng.NextDouble() < site.p;
      break;
  }
  if (!fire) return {};
  ++site.fires;
  Injected injected;
  injected.action = site.action;
  injected.error = site.error;
  injected.amount = site.amount;
  injected.percent = site.percent;
  return injected;
}

}  // namespace internal

void Configure(const std::string& spec, uint64_t seed) {
  // Parse into a fresh map first so a malformed entry leaves the active
  // configuration untouched.
  std::map<std::string, Site> parsed;
  size_t begin = 0;
  while (begin <= spec.size()) {
    size_t end = spec.find_first_of(",;", begin);
    if (end == std::string::npos) end = spec.size();
    const std::string entry(Strip(spec.substr(begin, end - begin)));
    begin = end + 1;
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      BadSpec(entry, "expected site=action");
    }
    const std::string name(Strip(std::string_view(entry).substr(0, eq)));
    std::string_view action = Strip(std::string_view(entry).substr(eq + 1));
    if (action == "off") {
      parsed.erase(name);
      continue;
    }
    Site site;
    if (const size_t at = action.find('@'); at != std::string_view::npos) {
      ParseTrigger(entry, action.substr(at + 1), site);
      action = action.substr(0, at);
    }
    ParseAction(entry, action, site);
    // Independent per-site streams: two probabilistic sites armed by one
    // spec must not mirror each other's draws.
    site.rng = Rng(seed).Fork(std::hash<std::string>{}(name));
    parsed[name] = site;
  }
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites = std::move(parsed);
  internal::g_armed_sites.store(
      static_cast<uint32_t>(registry.sites.size()),
      std::memory_order_relaxed);
}

void Clear() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  registry.sites.clear();
  internal::g_armed_sites.store(0, std::memory_order_relaxed);
}

uint64_t HitCount(const std::string& site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.hits;
}

uint64_t FireCount(const std::string& site) {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  const auto it = registry.sites.find(site);
  return it == registry.sites.end() ? 0 : it->second.fires;
}

std::string Describe() {
  Registry& registry = TheRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  std::string out;
  for (const auto& [name, site] : registry.sites) {
    if (!out.empty()) out += ',';
    out += name;
    out += '=';
    out += ActionName(site.action);
  }
  return out;
}

#endif  // CNE_FAILPOINTS_ENABLED

}  // namespace cne::fail
