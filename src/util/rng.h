// Deterministic pseudo-random number generation for libcne.
//
// The library is a simulation of a randomized privacy protocol, so every
// source of randomness flows through an explicit `Rng` instance. `Rng`
// implements xoshiro256++ (Blackman & Vigna, 2019), seeded through
// SplitMix64 so that any 64-bit seed yields a well-mixed state. It
// satisfies the C++ `UniformRandomBitGenerator` concept, which lets the
// standard `<random>` distributions (binomial, etc.) run on top of it.

#ifndef CNE_UTIL_RNG_H_
#define CNE_UTIL_RNG_H_

#include <cstdint>
#include <limits>
#include <vector>

namespace cne {

/// xoshiro256++ generator with SplitMix64 seeding.
///
/// Not thread-safe; create one instance per thread (use `Split()` to derive
/// independent streams deterministically).
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Equal seeds give equal
  /// streams on every platform.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Returns the next 64 random bits.
  uint64_t operator()() { return NextU64(); }

  /// Returns the next 64 random bits.
  uint64_t NextU64();

  /// Returns a double uniformly distributed in [0, 1).
  double NextDouble();

  /// Returns an integer uniformly distributed in [0, bound). Requires
  /// bound > 0. Uses Lemire's nearly-divisionless rejection method.
  uint64_t UniformInt(uint64_t bound);

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Draws from the Laplace distribution with location 0 and scale b > 0.
  double Laplace(double scale);

  /// Draws from the exponential distribution with rate lambda > 0.
  double Exponential(double lambda);

  /// Draws from the standard normal distribution (Marsaglia polar method).
  double Gaussian();

  /// Draws from Binomial(n, p). Exact: delegates to
  /// std::binomial_distribution (BTPE-style internally) on top of this
  /// generator's bits.
  uint64_t Binomial(uint64_t n, double p);

  /// Draws from Geometric(p) on {0, 1, ...}: the number of failures before
  /// the first success of a Bernoulli(p) process, P(G = g) = (1-p)^g p.
  /// Requires p in (0, 1]. Inverse CDF, O(1). The gap law of a Bernoulli
  /// process: skip-sampling the positions of independent p-coin successes
  /// draws successive gaps from this distribution.
  uint64_t Geometric(double p);

  /// Samples k distinct integers uniformly from [0, n) using Robert Floyd's
  /// algorithm. Returns them in unspecified order. Requires k <= n.
  std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k);

  /// Derives an independent generator deterministically from this one.
  /// Advances this generator's state, so successive calls yield distinct
  /// children.
  Rng Split();

  /// Derives an independent generator for substream `stream` without
  /// advancing this generator. The child depends only on (current state,
  /// stream), never on call order, so concurrent workers that fork the
  /// same parent by work-item index draw byte-identical noise regardless
  /// of thread count or scheduling. Distinct streams are independent
  /// (splitmix64-hashed seeding).
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t state_[4];
};

}  // namespace cne

#endif  // CNE_UTIL_RNG_H_
