#include "util/cpu_features.h"

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "util/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#define CNE_X86_64 1
#include <cpuid.h>
#else
#define CNE_X86_64 0
#endif

namespace cne {

namespace {

#if CNE_X86_64

// XCR0 via xgetbv; only valid once CPUID.1:ECX[OSXSAVE] confirmed the
// instruction exists and the OS manages extended state.
uint64_t Xgetbv0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

SimdLevel ProbeHardware() {
  uint32_t eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return SimdLevel::kScalar;
  constexpr uint32_t kOsxsave = 1u << 27;
  constexpr uint32_t kAvx = 1u << 28;
  if ((ecx & kOsxsave) == 0 || (ecx & kAvx) == 0) return SimdLevel::kScalar;

  const uint64_t xcr0 = Xgetbv0();
  constexpr uint64_t kXmmYmm = 0x6;  // bits 1 (SSE) and 2 (AVX)
  if ((xcr0 & kXmmYmm) != kXmmYmm) return SimdLevel::kScalar;

  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) {
    return SimdLevel::kScalar;
  }
  constexpr uint32_t kAvx2 = 1u << 5;
  if ((ebx & kAvx2) == 0) return SimdLevel::kScalar;

  // AVX-512 tier: F (foundation), BW (byte/word for full mask ops), VL
  // (128/256-bit encodings), and the VPOPCNTDQ extension the AND+popcount
  // kernel is built around — plus OS support for opmask + ZMM state.
  constexpr uint32_t kAvx512F = 1u << 16;
  constexpr uint32_t kAvx512Bw = 1u << 30;
  constexpr uint32_t kAvx512Vl = 1u << 31;
  constexpr uint32_t kVpopcntdq = 1u << 14;  // in ECX
  constexpr uint64_t kOpmaskZmm = 0xe0;      // XCR0 bits 5..7
  const bool avx512 = (ebx & kAvx512F) != 0 && (ebx & kAvx512Bw) != 0 &&
                      (ebx & kAvx512Vl) != 0 && (ecx & kVpopcntdq) != 0 &&
                      (xcr0 & kOpmaskZmm) == kOpmaskZmm;
  return avx512 ? SimdLevel::kAvx512 : SimdLevel::kAvx2;
}

#else  // !CNE_X86_64

SimdLevel ProbeHardware() { return SimdLevel::kScalar; }

#endif

SimdLevel ClampToDetected(SimdLevel requested, const char* origin) {
  const SimdLevel detected = DetectedSimdLevel();
  if (static_cast<int>(requested) <= static_cast<int>(detected)) {
    return requested;
  }
  CNE_LOG(kWarning) << origin << " requested SIMD level "
                    << SimdLevelName(requested)
                    << " but this machine only supports "
                    << SimdLevelName(detected) << "; clamping";
  return detected;
}

SimdLevel InitialActiveLevel() {
  const char* env = std::getenv("CNE_SIMD_LEVEL");
  if (env == nullptr || env[0] == '\0') return DetectedSimdLevel();
  const std::optional<SimdLevel> parsed = ParseSimdLevel(env);
  if (!parsed.has_value()) {
    CNE_LOG(kWarning) << "CNE_SIMD_LEVEL='" << env
                      << "' is not scalar|avx2|avx512; using detected level "
                      << SimdLevelName(DetectedSimdLevel());
    return DetectedSimdLevel();
  }
  return ClampToDetected(*parsed, "CNE_SIMD_LEVEL");
}

// -1 = not yet resolved. Resolution is idempotent (env + CPUID are
// stable), so a benign first-use race costs at most a duplicate probe.
std::atomic<int> g_active_level{-1};

}  // namespace

SimdLevel DetectedSimdLevel() {
  static const SimdLevel level = ProbeHardware();
  return level;
}

SimdLevel ActiveSimdLevel() {
  int level = g_active_level.load(std::memory_order_relaxed);
  if (level < 0) {
    level = static_cast<int>(InitialActiveLevel());
    g_active_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(level);
}

void ForceSimdLevel(SimdLevel level) {
  g_active_level.store(
      static_cast<int>(ClampToDetected(level, "ForceSimdLevel")),
      std::memory_order_relaxed);
}

std::vector<SimdLevel> AvailableSimdLevels() {
  std::vector<SimdLevel> levels;
  for (int l = 0; l <= static_cast<int>(DetectedSimdLevel()); ++l) {
    levels.push_back(static_cast<SimdLevel>(l));
  }
  return levels;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<SimdLevel> ParseSimdLevel(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "avx2") return SimdLevel::kAvx2;
  if (name == "avx512") return SimdLevel::kAvx512;
  return std::nullopt;
}

}  // namespace cne
