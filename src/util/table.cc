#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace cne {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

TextTable& TextTable::NewRow() {
  rows_.emplace_back();
  return *this;
}

TextTable& TextTable::Add(const std::string& cell) {
  assert(!rows_.empty());
  rows_.back().push_back(cell);
  return *this;
}

TextTable& TextTable::AddDouble(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

TextTable& TextTable::AddSci(double value, int precision) {
  return Add(FormatSci(value, precision));
}

TextTable& TextTable::AddInt(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return Add(buf);
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << cell;
      if (i + 1 < widths.size()) {
        os << std::string(widths[i] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) os << ',';
      os << row[i];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatSci(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, value);
  return buf;
}

std::string FormatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f %s", bytes, units[u]);
  return buf;
}

}  // namespace cne
