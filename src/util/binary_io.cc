#include "util/binary_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace cne {

void ByteWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Bytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + len);
}

double ByteReader::F64() { return std::bit_cast<double>(U64()); }

void ByteReader::Bytes(void* out, size_t len) {
  Need(len);
  std::memcpy(out, bytes_.data() + pos_, len);
  pos_ += len;
}

std::span<const uint8_t> ByteReader::Borrow(size_t len) {
  Need(len);
  std::span<const uint8_t> view = bytes_.subspan(pos_, len);
  pos_ += len;
  return view;
}

void ByteReader::Need(size_t len) const {
  if (len > bytes_.size() - pos_) {
    throw std::runtime_error("truncated binary payload: need " +
                             std::to_string(len) + " bytes, have " +
                             std::to_string(bytes_.size() - pos_));
  }
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<uint8_t> bytes(static_cast<size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(bytes.data()), size)) {
    throw std::runtime_error("cannot read " + path);
  }
  return bytes;
}

namespace {

void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

// fsync the directory holding `path` so the rename itself is durable.
void SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

void WriteFileAtomic(const std::string& path,
                     std::span<const uint8_t> bytes) {
  const std::span<const uint8_t> parts[] = {bytes};
  WriteFileAtomic(path, parts);
}

void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const uint8_t>> parts) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("cannot create", tmp);
  for (const std::span<const uint8_t> bytes : parts) {
    size_t written = 0;
    while (written < bytes.size()) {
      const ssize_t n =
          ::write(fd, bytes.data() + written, bytes.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        ::unlink(tmp.c_str());
        ThrowErrno("cannot write", tmp);
      }
      written += static_cast<size_t>(n);
    }
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    ThrowErrno("cannot fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    ThrowErrno("cannot rename into", path);
  }
  SyncParentDir(path);
}

}  // namespace cne
