#include "util/binary_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/failpoint.h"

namespace cne {

void ByteWriter::F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Bytes(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + len);
}

double ByteReader::F64() { return std::bit_cast<double>(U64()); }

void ByteReader::Bytes(void* out, size_t len) {
  Need(len);
  std::memcpy(out, bytes_.data() + pos_, len);
  pos_ += len;
}

std::span<const uint8_t> ByteReader::Borrow(size_t len) {
  Need(len);
  std::span<const uint8_t> view = bytes_.subspan(pos_, len);
  pos_ += len;
  return view;
}

void ByteReader::Need(size_t len) const {
  if (len > bytes_.size() - pos_) {
    throw std::runtime_error("truncated binary payload: need " +
                             std::to_string(len) + " bytes, have " +
                             std::to_string(bytes_.size() - pos_));
  }
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

namespace {

void ThrowErrno(const std::string& what, const std::string& path) {
  throw std::runtime_error(what + " " + path + ": " +
                           std::strerror(errno));
}

// An injected kError fault: sets errno like the failed syscall would.
bool InjectError(const fail::Injected& injected) {
  if (injected.action != fail::Action::kError) return false;
  errno = injected.error;
  return true;
}

// fsync the directory holding `path` so the rename itself is durable.
// Throws when the directory fsync *fails*; filesystems that cannot sync
// directories at all (EINVAL/ENOTSUP) keep the historical best-effort
// behavior, as does a directory that refuses to open.
void SyncParentDir(const std::string& path, std::string_view site) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  int rc = ::fsync(fd);
  int saved_errno = errno;
  if (const fail::Injected fp = fail::Hit(site, ".dirfsync");
      fp.action == fail::Action::kError) {
    rc = -1;
    saved_errno = fp.error;
  }
  ::close(fd);
  if (rc != 0 && saved_errno != EINVAL && saved_errno != ENOTSUP) {
    errno = saved_errno;
    ThrowErrno("cannot fsync directory of", path);
  }
}

}  // namespace

std::vector<uint8_t> ReadFileBytes(const std::string& path,
                                   std::string_view site) {
  if (InjectError(fail::Hit(site, ".open"))) ThrowErrno("cannot open", path);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) ThrowErrno("cannot open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const int saved_errno = errno;
    ::close(fd);
    errno = saved_errno;
    ThrowErrno("cannot stat", path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  // A short/corrupt injection at <site>.read simulates a file shrinking
  // or rotting underneath us between stat and read.
  size_t limit = size;
  const fail::Injected read_fault = fail::Hit(site, ".read");
  if (InjectError(read_fault)) {
    ::close(fd);
    errno = read_fault.error;
    ThrowErrno("cannot read", path);
  }
  if (read_fault.action == fail::Action::kShort) {
    limit = read_fault.ShortenedLen(size);
  }
  std::vector<uint8_t> bytes(size);
  size_t got = 0;
  while (got < limit) {
    const ssize_t n = ::read(fd, bytes.data() + got, limit - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved_errno = errno;
      ::close(fd);
      errno = saved_errno;
      ThrowErrno("cannot read", path);
    }
    if (n == 0) break;  // EOF before st_size: truncated under us
    got += static_cast<size_t>(n);
  }
  ::close(fd);
  if (got != size) {
    // Returning fewer bytes than the file holds would hand the caller a
    // zero-padded buffer that may still parse; corruption must throw.
    throw std::runtime_error("short read of " + path + ": got " +
                             std::to_string(got) + " of " +
                             std::to_string(size) + " bytes");
  }
  if (read_fault.action == fail::Action::kCorrupt && !bytes.empty()) {
    bytes[read_fault.amount % bytes.size()] ^= 0xFF;
  }
  return bytes;
}

void WriteFileAtomic(const std::string& path,
                     std::span<const uint8_t> bytes) {
  const std::span<const uint8_t> parts[] = {bytes};
  WriteFileAtomic(path, parts);
}

void WriteFileAtomic(const std::string& path,
                     std::span<const std::span<const uint8_t>> parts,
                     const AtomicWriteOptions& options) {
  const std::string tmp = path + ".tmp";
  // Failure cleanup: the destination is untouched either way; quarantine
  // preserves the partial temp file as `<path>.tmp.quarantine` evidence.
  const auto discard_tmp = [&] {
    if (options.quarantine_tmp) {
      const std::string quarantine = tmp + ".quarantine";
      if (::rename(tmp.c_str(), quarantine.c_str()) == 0) return;
    }
    ::unlink(tmp.c_str());
  };
  if (InjectError(fail::Hit(options.site, ".open"))) {
    ThrowErrno("cannot create", tmp);
  }
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) ThrowErrno("cannot create", tmp);
  for (const std::span<const uint8_t> bytes : parts) {
    size_t written = 0;
    while (written < bytes.size()) {
      size_t chunk = bytes.size() - written;
      // One evaluation per write call: a multi-part commit (snapshot
      // sections) hits <site>.write once per section, so "fail the 3rd
      // section" is expressible as <site>.write=err@3.
      const fail::Injected fp = fail::Hit(options.site, ".write");
      if (InjectError(fp)) {
        const int saved_errno = errno;
        ::close(fd);
        discard_tmp();
        errno = saved_errno;
        ThrowErrno("cannot write", tmp);
      }
      if (fp.action == fail::Action::kShort) {
        chunk = fp.ShortenedLen(chunk);
      }
      const ssize_t n = ::write(fd, bytes.data() + written, chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        const int saved_errno = errno;
        ::close(fd);
        discard_tmp();
        errno = saved_errno;
        ThrowErrno("cannot write", tmp);
      }
      written += static_cast<size_t>(n);
    }
  }
  int fsync_rc = ::fsync(fd);
  int fsync_errno = errno;
  if (const fail::Injected fp = fail::Hit(options.site, ".fsync");
      fp.action == fail::Action::kError) {
    fsync_rc = -1;
    fsync_errno = fp.error;
  }
  if (fsync_rc != 0) {
    ::close(fd);
    discard_tmp();
    errno = fsync_errno;
    ThrowErrno("cannot fsync", tmp);
  }
  ::close(fd);
  if (InjectError(fail::Hit(options.site, ".rename"))) {
    const int saved_errno = errno;
    discard_tmp();
    errno = saved_errno;
    ThrowErrno("cannot rename into", path);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved_errno = errno;
    discard_tmp();
    errno = saved_errno;
    ThrowErrno("cannot rename into", path);
  }
  SyncParentDir(path, options.site);
}

}  // namespace cne
