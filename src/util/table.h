// Aligned text-table and CSV emission for benchmark harnesses. The bench
// binaries print paper-style tables with these helpers so every figure's
// rows/series are regenerated in a uniform format.

#ifndef CNE_UTIL_TABLE_H_
#define CNE_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace cne {

/// A simple column-aligned table. Cells are strings; numeric helpers format
/// with sensible defaults.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row. Subsequent `Add*` calls append cells to it.
  TextTable& NewRow();

  TextTable& Add(const std::string& cell);
  TextTable& AddDouble(double value, int precision = 4);
  /// Scientific notation, for error magnitudes spanning many decades.
  TextTable& AddSci(double value, int precision = 3);
  TextTable& AddInt(long long value);

  size_t NumRows() const { return rows_.size(); }

  /// Writes the table with aligned columns.
  void Print(std::ostream& os) const;

  /// Writes the table as CSV (comma-separated, no quoting of commas —
  /// callers must not put commas in cells).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double in fixed notation with the given precision.
std::string FormatDouble(double value, int precision = 4);

/// Formats a double in scientific notation with the given precision.
std::string FormatSci(double value, int precision = 3);

/// Formats a byte count as a human-readable string (B/KB/MB/GB).
std::string FormatBytes(double bytes);

}  // namespace cne

#endif  // CNE_UTIL_TABLE_H_
