// Streaming and batch descriptive statistics used by the evaluation harness
// and by the Monte-Carlo test suites.

#ifndef CNE_UTIL_STATISTICS_H_
#define CNE_UTIL_STATISTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace cne {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added so far.
  size_t Count() const { return count_; }

  /// Sample mean; 0 when empty.
  double Mean() const;

  /// Unbiased sample variance (n-1 denominator); 0 when fewer than two
  /// observations.
  double Variance() const;

  /// Square root of `Variance()`.
  double StdDev() const;

  /// Standard error of the mean: StdDev / sqrt(n).
  double StdError() const;

  /// Smallest/largest observation; quiet NaN when empty so an empty
  /// accumulator is distinguishable from one that saw a real 0.0.
  double Min() const;
  double Max() const;

  /// Merges another accumulator into this one (parallel Welford).
  void Merge(const RunningStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample: order statistics plus moments.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Computes a `Summary` of `values` (copies and sorts internally).
Summary Summarize(const std::vector<double>& values);

/// Linear-interpolated quantile of a *sorted* sample, q in [0, 1].
double QuantileSorted(const std::vector<double>& sorted, double q);

/// Mean of |estimate[i] - truth[i]| over paired samples.
double MeanAbsoluteError(const std::vector<double>& estimates,
                         const std::vector<double>& truths);

/// Mean of |estimate[i] - truth[i]| / max(truth[i], 1) over paired samples.
/// The max(., 1) guard matches the convention for count data where the true
/// value may be zero.
double MeanRelativeError(const std::vector<double>& estimates,
                         const std::vector<double>& truths);

/// Mean of (estimate[i] - truth[i])^2 over paired samples (empirical L2).
double MeanSquaredError(const std::vector<double>& estimates,
                        const std::vector<double>& truths);

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t bins);

  void Add(double x);

  size_t BucketCount() const { return counts_.size(); }
  size_t BucketValue(size_t i) const { return counts_[i]; }
  double BucketLow(size_t i) const;
  double BucketHigh(size_t i) const;
  size_t Total() const { return total_; }

  /// Renders an ASCII bar chart, one line per bucket, bars scaled so the
  /// fullest bucket has `width` characters.
  std::string ToAscii(size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t total_ = 0;
};

}  // namespace cne

#endif  // CNE_UTIL_STATISTICS_H_
