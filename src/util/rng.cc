#include "util/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>
#include <unordered_set>

namespace cne {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  // SplitMix64 expansion guarantees a non-zero, well-mixed state for any
  // seed, including 0.
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    const uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Laplace(double scale) {
  assert(scale > 0.0);
  // Inverse CDF on a symmetric uniform: u in (-1/2, 1/2).
  double u = NextDouble() - 0.5;
  // Guard against u == -0.5 exactly (log(0)).
  if (u <= -0.5) u = -0.5 + 1e-18;
  const double sign = u < 0 ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::abs(u));
}

double Rng::Exponential(double lambda) {
  assert(lambda > 0.0);
  double u = NextDouble();
  if (u >= 1.0) u = 1.0 - 1e-18;
  return -std::log1p(-u) / lambda;
}

double Rng::Gaussian() {
  // Marsaglia polar method; spare value intentionally discarded to keep the
  // generator stateless w.r.t. call ordering.
  while (true) {
    const double a = 2.0 * NextDouble() - 1.0;
    const double b = 2.0 * NextDouble() - 1.0;
    const double s = a * a + b * b;
    if (s > 0.0 && s < 1.0) {
      return a * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

uint64_t Rng::Binomial(uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  std::binomial_distribution<uint64_t> dist(n, p);
  return dist(*this);
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  // Inverse transform: G = floor(ln(1-U) / ln(1-p)), U uniform in [0, 1).
  // log1p keeps precision for small p; U = 0 maps to 0.
  const double g = std::floor(std::log1p(-NextDouble()) / std::log1p(-p));
  // Clamp the (astronomically unlikely) float overshoot into range.
  if (g >= 9.2233720368547758e18) return UINT64_MAX;
  return static_cast<uint64_t>(g);
}

std::vector<uint64_t> Rng::SampleWithoutReplacement(uint64_t n, uint64_t k) {
  assert(k <= n);
  std::vector<uint64_t> result;
  result.reserve(k);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(k * 2);
  // Robert Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t
  // unless already chosen, else insert j. Yields a uniform k-subset.
  for (uint64_t j = n - k; j < n; ++j) {
    const uint64_t t = UniformInt(j + 1);
    if (chosen.insert(t).second) {
      result.push_back(t);
    } else {
      chosen.insert(j);
      result.push_back(j);
    }
  }
  return result;
}

Rng Rng::Split() { return Rng(NextU64()); }

Rng Rng::Fork(uint64_t stream) const {
  // Hash the four state words together with the stream index through a
  // SplitMix64 chain. The parent state is read, never advanced, so the
  // child is a pure function of (state, stream); the Rng(seed) expansion
  // then re-mixes the 64-bit digest into a full xoshiro state.
  uint64_t x = stream;
  uint64_t seed = SplitMix64(x);
  for (uint64_t word : state_) {
    x ^= word;
    seed ^= SplitMix64(x);
  }
  return Rng(seed);
}

}  // namespace cne
