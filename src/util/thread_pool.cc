#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace cne {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) {
    num_threads = static_cast<int>(std::thread::hardware_concurrency());
    if (num_threads <= 0) num_threads = 1;
  }
  workers_.reserve(static_cast<size_t>(num_threads - 1));
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::ParallelFor(
    size_t n, const std::function<void(size_t, size_t)>& body) {
  if (n == 0) return;
  if (workers_.empty()) {
    body(0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    total_ = n;
    next_ = 0;
    // ~4 claims per thread balances load without contending on the claim
    // counter; results are identical for any chunking because work items
    // are independent.
    chunk_ = std::max<size_t>(1, n / (4 * static_cast<size_t>(NumThreads())));
    body_ = &body;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_ready_.notify_all();
  RunChunks();
  std::unique_lock<std::mutex> lock(mutex_);
  work_done_.wait(lock, [this] { return active_workers_ == 0; });
  body_ = nullptr;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_generation = 0;
  while (true) {
    std::unique_lock<std::mutex> lock(mutex_);
    work_ready_.wait(lock, [&] {
      return shutdown_ || generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = generation_;
    lock.unlock();
    RunChunks();
    lock.lock();
    if (--active_workers_ == 0) work_done_.notify_one();
  }
}

void ThreadPool::RunChunks() {
  while (true) {
    size_t begin;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (next_ >= total_) return;
      begin = next_;
      next_ += chunk_;
    }
    const size_t end = std::min(begin + chunk_, total_);
    (*body_)(begin, end);
  }
}

}  // namespace cne
