#include "service/noisy_view_store.h"

#include <utility>

#include "obs/trace.h"
#include "store/snapshot_format.h"
#include "util/cpu_features.h"
#include "util/logging.h"

namespace cne {

NoisyViewStore::NoisyViewStore(const BipartiteGraph& graph, double epsilon,
                               const Rng& base_rng, BudgetLedger& ledger)
    : graph_(graph), epsilon_(epsilon), base_rng_(base_rng), ledger_(ledger) {
  CNE_CHECK(epsilon > 0.0) << "release budget must be positive";
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    LayerTable& table = Table(layer);
    const size_t n = graph.NumVertices(layer);
    table.state = std::vector<std::atomic<uint8_t>>(n);
    table.view = std::vector<std::atomic<NoisyNeighborSet*>>(n);
  }
}

NoisyViewStore::~NoisyViewStore() {
  for (LayerTable& table : tables_) {
    for (std::atomic<NoisyNeighborSet*>& slot : table.view) {
      delete slot.load(std::memory_order_relaxed);
    }
  }
}

NoisyViewStore::Admission NoisyViewStore::Authorize(LayeredVertex vertex) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LayerTable& table = Table(vertex.layer);
  CNE_CHECK(vertex.id < table.state.size()) << "vertex out of range";
  // Fast path: an authorized or materialized vertex never charges again —
  // one atomic load, no lock.
  if (table.state[vertex.id].load(std::memory_order_acquire) != kUntouched) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kCacheHit;
  }
  std::lock_guard<std::mutex> lock(slow_mutex_);
  if (table.state[vertex.id].load(std::memory_order_acquire) != kUntouched) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kCacheHit;
  }
  if (!ledger_.TryCharge(vertex, epsilon_)) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kRejected;
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
  pending_.push_back(vertex);
  table.state[vertex.id].store(kAuthorizedPending, std::memory_order_release);
  return Admission::kAuthorized;
}

bool NoisyViewStore::Contains(LayeredVertex vertex) const {
  return Table(vertex.layer).state[vertex.id].load(
             std::memory_order_acquire) != kUntouched;
}

void NoisyViewStore::MaterializeAuthorized(ThreadPool& pool) {
  std::vector<LayeredVertex> batch;
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;
  pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const LayeredVertex vertex = batch[i];
      LayerTable& table = Table(vertex.layer);
      // A lazy Get may have built this view already; both paths draw from
      // the vertex's own substream, so whichever wins stores the same
      // bytes — skip to avoid double-counting the upload.
      if (table.state[vertex.id].load(std::memory_order_acquire) ==
          kMaterialized) {
        continue;
      }
      const uint64_t t0 = build_histogram_ != nullptr ? obs::NowNanos() : 0;
      std::unique_ptr<NoisyNeighborSet> view = Generate(vertex);
      if (build_histogram_ != nullptr) {
        const uint64_t dt = obs::NowNanos() - t0;
        build_histogram_->Record(dt);
        OfferBuildExemplar(vertex, *view, dt);
      }
      std::lock_guard<std::mutex> lock(slow_mutex_);
      if (table.state[vertex.id].load(std::memory_order_acquire) !=
          kMaterialized) {
        Publish(vertex, std::move(view));
      }
    }
  });
}

void NoisyViewStore::OfferBuildExemplar(LayeredVertex vertex,
                                        const NoisyNeighborSet& view,
                                        uint64_t nanos) const {
  if (build_exemplars_ == nullptr || !build_exemplars_->WouldAccept(nanos)) {
    return;
  }
  obs::Exemplar e;
  e.seconds = static_cast<double>(nanos) * 1e-9;
  e.submit = build_submit_;
  e.has_query = true;  // u == w: the released vertex, not a pair
  e.layer = static_cast<uint8_t>(vertex.layer);
  e.u = vertex.id;
  e.w = vertex.id;
  e.repr_u = view.IsBitmap() ? "bitmap" : "sorted";
  e.size_u = view.Size();
  e.simd = SimdLevelName(ActiveSimdLevel());
  build_exemplars_->Offer(nanos, e);
}

const NoisyNeighborSet* NoisyViewStore::Get(LayeredVertex vertex) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  LayerTable& table = Table(vertex.layer);
  CNE_CHECK(vertex.id < table.state.size()) << "vertex out of range";
  // Fast path: the view exists — one atomic load.
  if (const NoisyNeighborSet* view =
          table.view[vertex.id].load(std::memory_order_acquire)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return view;
  }
  std::unique_lock<std::mutex> lock(slow_mutex_);
  const uint8_t state =
      table.state[vertex.id].load(std::memory_order_acquire);
  if (state == kMaterialized) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return table.view[vertex.id].load(std::memory_order_acquire);
  }
  if (state == kUntouched) {
    if (!ledger_.TryCharge(vertex, epsilon_)) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    releases_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Authorized earlier but never prefetched; build it now. Noise comes
    // from the vertex's own substream, so the view is identical to what
    // MaterializeAuthorized would have produced.
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  // Building under the lock is acceptable: lazy builds are the cold path
  // (the service prefetches via MaterializeAuthorized).
  const uint64_t t0 = build_histogram_ != nullptr ? obs::NowNanos() : 0;
  std::unique_ptr<NoisyNeighborSet> built = Generate(vertex);
  if (build_histogram_ != nullptr) {
    const uint64_t dt = obs::NowNanos() - t0;
    build_histogram_->Record(dt);
    OfferBuildExemplar(vertex, *built, dt);
  }
  Publish(vertex, std::move(built));
  return table.view[vertex.id].load(std::memory_order_acquire);
}

const NoisyNeighborSet& NoisyViewStore::View(LayeredVertex vertex) const {
  const NoisyNeighborSet* view =
      Table(vertex.layer).view[vertex.id].load(std::memory_order_acquire);
  CNE_CHECK(view != nullptr)
      << "view of " << LayerName(vertex.layer) << " vertex " << vertex.id
      << " was never materialized";
  return *view;
}

NoisyViewStore::Stats NoisyViewStore::stats() const {
  Stats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.releases = releases_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.rejections = rejections_.load(std::memory_order_relaxed);
  stats.uploaded_edges = uploaded_edges_.load(std::memory_order_relaxed);
  return stats;
}

void NoisyViewStore::Save(ByteWriter& out) const {
  ViewsSection views;
  views.epsilon = epsilon_;
  views.lookups = lookups_.load(std::memory_order_relaxed);
  views.releases = releases_.load(std::memory_order_relaxed);
  views.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  views.rejections = rejections_.load(std::memory_order_relaxed);
  views.uploaded_edges = uploaded_edges_.load(std::memory_order_relaxed);
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    const LayerTable& table = Table(layer);
    for (VertexId id = 0; id < table.state.size(); ++id) {
      const uint8_t state =
          table.state[id].load(std::memory_order_acquire);
      if (state == kUntouched) continue;
      ViewRecord record;
      record.packed_vertex = PackLayeredVertex({layer, id});
      record.state = state == kMaterialized
                         ? ViewRecord::kStateMaterialized
                         : ViewRecord::kStateAuthorizedPending;
      if (state == kMaterialized) {
        const NoisyNeighborSet* view =
            table.view[id].load(std::memory_order_acquire);
        CNE_CHECK(view != nullptr) << "materialized state without a view";
        record.rng_stream = record.packed_vertex;
        record.epsilon = epsilon_;
        record.flip_probability = view->flip_probability();
        record.domain = view->DomainSize();
        record.bitmap = view->IsBitmap();
        record.size = view->Size();
        if (view->IsBitmap()) {
          const auto words = view->View().bitmap().Words();
          record.words.assign(words.begin(), words.end());
        } else {
          record.members = view->SortedMembers();
        }
      }
      views.entries.push_back(std::move(record));
    }
  }
  WriteViewsSection(views, out);
}

void NoisyViewStore::Restore(ByteReader& in) {
  CNE_CHECK(lookups_.load(std::memory_order_relaxed) == 0 &&
            releases_.load(std::memory_order_relaxed) == 0)
      << "view restore requires a fresh store";
  ViewsSection views = ReadViewsSection(in);
  CNE_CHECK(views.epsilon == epsilon_)
      << "snapshot views were released at epsilon " << views.epsilon
      << ", store expects " << epsilon_;
  for (ViewRecord& record : views.entries) {
    const LayeredVertex vertex = UnpackLayeredVertex(record.packed_vertex);
    LayerTable& table = Table(vertex.layer);
    CNE_CHECK(vertex.id < table.state.size())
        << "snapshot vertex out of range for this graph";
    CNE_CHECK(table.state[vertex.id].load(std::memory_order_relaxed) ==
              kUntouched)
        << "duplicate snapshot entry for " << LayerName(vertex.layer)
        << " vertex " << vertex.id;
    if (record.state == ViewRecord::kStateAuthorizedPending) {
      pending_.push_back(vertex);
      table.state[vertex.id].store(kAuthorizedPending,
                                   std::memory_order_release);
      continue;
    }
    CNE_CHECK(record.rng_stream == record.packed_vertex)
        << "view stream id does not match its vertex";
    CNE_CHECK(record.domain ==
              graph_.NumVertices(Opposite(vertex.layer)))
        << "view domain does not match this graph";
    auto view = std::make_unique<NoisyNeighborSet>(
        record.bitmap
            ? NoisyNeighborSet(
                  DenseBitset::FromWords(std::move(record.words),
                                         record.domain),
                  record.flip_probability)
            : NoisyNeighborSet::FromSortedUnique(std::move(record.members),
                                                 record.domain,
                                                 record.flip_probability));
    CNE_CHECK(view->Size() == record.size)
        << "restored view size disagrees with its record";
    table.view[vertex.id].store(view.release(), std::memory_order_release);
    table.state[vertex.id].store(kMaterialized, std::memory_order_release);
  }
  // Counters come from the snapshot, not from the installs above: restore
  // is not a release, so nothing may be re-counted as uploaded.
  lookups_.store(views.lookups, std::memory_order_relaxed);
  releases_.store(views.releases, std::memory_order_relaxed);
  cache_hits_.store(views.cache_hits, std::memory_order_relaxed);
  rejections_.store(views.rejections, std::memory_order_relaxed);
  uploaded_edges_.store(views.uploaded_edges, std::memory_order_relaxed);
}

void NoisyViewStore::RestoreAuthorized(LayeredVertex vertex) {
  LayerTable& table = Table(vertex.layer);
  CNE_CHECK(vertex.id < table.state.size())
      << "WAL vertex out of range for this graph";
  CNE_CHECK(table.state[vertex.id].load(std::memory_order_relaxed) ==
            kUntouched)
      << "WAL re-authorizes " << LayerName(vertex.layer) << " vertex "
      << vertex.id << " — corrupt recovery input";
  // Mirror what the original Authorize counted, so cumulative stats keep
  // their meaning across restarts.
  lookups_.fetch_add(1, std::memory_order_relaxed);
  releases_.fetch_add(1, std::memory_order_relaxed);
  pending_.push_back(vertex);
  table.state[vertex.id].store(kAuthorizedPending,
                               std::memory_order_release);
}

void NoisyViewStore::RevokeAuthorized(LayeredVertex vertex) {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  LayerTable& table = Table(vertex.layer);
  CNE_CHECK(vertex.id < table.state.size()) << "vertex out of range";
  CNE_CHECK(table.state[vertex.id].load(std::memory_order_acquire) ==
            kAuthorizedPending)
      << "revocation of " << LayerName(vertex.layer) << " vertex "
      << vertex.id << " which is not authorized-pending — the release may "
      << "already be public and cannot be taken back";
  // The batch being rolled back authorized last, so its entries sit at
  // the tail of pending_; reverse-order revocation pops from the back.
  bool found = false;
  for (size_t i = pending_.size(); i-- > 0;) {
    if (pending_[i] == vertex) {
      pending_.erase(pending_.begin() + static_cast<ptrdiff_t>(i));
      found = true;
      break;
    }
  }
  CNE_CHECK(found) << "authorized-pending vertex missing from the pending "
                   << "list — store state is inconsistent";
  table.state[vertex.id].store(kUntouched, std::memory_order_release);
  lookups_.fetch_sub(1, std::memory_order_relaxed);
  releases_.fetch_sub(1, std::memory_order_relaxed);
}

std::unique_ptr<NoisyNeighborSet> NoisyViewStore::Generate(
    LayeredVertex vertex) const {
  Rng rng = base_rng_.Fork(PackLayeredVertex(vertex));
  return std::make_unique<NoisyNeighborSet>(
      ApplyRandomizedResponse(graph_, vertex, epsilon_, rng));
}

void NoisyViewStore::Publish(LayeredVertex vertex,
                             std::unique_ptr<NoisyNeighborSet> view) {
  uploaded_edges_.fetch_add(view->Size(), std::memory_order_relaxed);
  LayerTable& table = Table(vertex.layer);
  table.view[vertex.id].store(view.release(), std::memory_order_release);
  table.state[vertex.id].store(kMaterialized, std::memory_order_release);
}

}  // namespace cne
