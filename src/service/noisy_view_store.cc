#include "service/noisy_view_store.h"

#include <utility>

#include "util/logging.h"

namespace cne {

NoisyViewStore::NoisyViewStore(const BipartiteGraph& graph, double epsilon,
                               const Rng& base_rng, BudgetLedger& ledger)
    : graph_(graph), epsilon_(epsilon), base_rng_(base_rng), ledger_(ledger) {
  CNE_CHECK(epsilon > 0.0) << "release budget must be positive";
}

NoisyViewStore::Admission NoisyViewStore::Authorize(LayeredVertex vertex) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.entries.contains(key)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kCacheHit;
  }
  if (!ledger_.TryCharge(vertex, epsilon_)) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kRejected;
  }
  shard.entries.emplace(key, Entry{});
  releases_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> pending_lock(pending_mutex_);
    pending_.push_back(vertex);
  }
  return Admission::kAuthorized;
}

bool NoisyViewStore::Contains(LayeredVertex vertex) const {
  const uint64_t key = PackLayeredVertex(vertex);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.entries.contains(key);
}

void NoisyViewStore::MaterializeAuthorized(ThreadPool& pool) {
  std::vector<LayeredVertex> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mutex_);
    batch.swap(pending_);
  }
  if (batch.empty()) return;
  pool.ParallelFor(batch.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const LayeredVertex vertex = batch[i];
      const uint64_t key = PackLayeredVertex(vertex);
      Shard& shard = ShardFor(key);
      {
        // A lazy Get may have built this view already; both paths draw
        // from the vertex's own substream, so whichever wins stores the
        // same bytes — skip to avoid double-counting the upload.
        std::lock_guard<std::mutex> lock(shard.mutex);
        if (shard.entries.at(key).view != nullptr) continue;
      }
      std::unique_ptr<NoisyNeighborSet> view = Generate(vertex);
      std::lock_guard<std::mutex> lock(shard.mutex);
      Entry& entry = shard.entries.at(key);
      if (entry.view == nullptr) {
        RecordUpload(*view);
        entry.view = std::move(view);
      }
    }
  });
}

const NoisyNeighborSet* NoisyViewStore::Get(LayeredVertex vertex) {
  lookups_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    if (it->second.view == nullptr) {
      // Authorized earlier but never prefetched; build it now. Noise
      // comes from the vertex's own substream, so the view is identical
      // to what MaterializeAuthorized would have produced.
      it->second.view = Generate(vertex);
      RecordUpload(*it->second.view);
    }
    return it->second.view.get();
  }
  if (!ledger_.TryCharge(vertex, epsilon_)) {
    rejections_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  releases_.fetch_add(1, std::memory_order_relaxed);
  Entry entry;
  entry.view = Generate(vertex);
  RecordUpload(*entry.view);
  return shard.entries.emplace(key, std::move(entry))
      .first->second.view.get();
}

const NoisyNeighborSet& NoisyViewStore::View(LayeredVertex vertex) const {
  const uint64_t key = PackLayeredVertex(vertex);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.entries.find(key);
  CNE_CHECK(it != shard.entries.end() && it->second.view != nullptr)
      << "view of " << LayerName(vertex.layer) << " vertex " << vertex.id
      << " was never materialized";
  return *it->second.view;
}

NoisyViewStore::Stats NoisyViewStore::stats() const {
  Stats stats;
  stats.lookups = lookups_.load(std::memory_order_relaxed);
  stats.releases = releases_.load(std::memory_order_relaxed);
  stats.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  stats.rejections = rejections_.load(std::memory_order_relaxed);
  stats.uploaded_edges = uploaded_edges_.load(std::memory_order_relaxed);
  return stats;
}

std::unique_ptr<NoisyNeighborSet> NoisyViewStore::Generate(
    LayeredVertex vertex) const {
  Rng rng = base_rng_.Fork(PackLayeredVertex(vertex));
  return std::make_unique<NoisyNeighborSet>(
      ApplyRandomizedResponse(graph_, vertex, epsilon_, rng));
}

void NoisyViewStore::RecordUpload(const NoisyNeighborSet& view) {
  uploaded_edges_.fetch_add(view.Size(), std::memory_order_relaxed);
}

}  // namespace cne
