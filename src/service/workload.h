// Workload files and synthetic workload generation for the query service.
//
// A workload file is the on-disk form of a Submit batch: one query per
// line, `<layer> <u> <w>` with `upper`/`lower` layer names, `#` or `%`
// comment lines, blank lines ignored. `cne_serve` consumes them; the
// generators below create the service-shaped workloads (hot-set reuse)
// that make sharing measurable.

#ifndef CNE_SERVICE_WORKLOAD_H_
#define CNE_SERVICE_WORKLOAD_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Parses a workload stream. Throws std::runtime_error on malformed
/// input (unknown layer, missing fields, ids that do not fit VertexId).
std::vector<QueryPair> ReadWorkloadStream(std::istream& in);

/// Reads a workload file. Throws std::runtime_error if the file cannot
/// be opened or parsed.
std::vector<QueryPair> ReadWorkloadFile(const std::string& path);

/// Writes `queries` in the workload format with a header comment.
void WriteWorkloadStream(const std::vector<QueryPair>& queries,
                         std::ostream& out);
void WriteWorkloadFile(const std::vector<QueryPair>& queries,
                       const std::string& path);

/// Samples `count` pairs of distinct vertices drawn uniformly from the
/// `hot_set_size` lowest-id vertices of `layer` — the recommendation-
/// frontend shape where a small set of heavy users is queried over and
/// over, so the shared store's cache hit rate approaches 1. Requires the
/// layer to hold at least two vertices; the hot set is clamped to the
/// layer size.
std::vector<QueryPair> MakeHotSetWorkload(const BipartiteGraph& graph,
                                          Layer layer, size_t count,
                                          VertexId hot_set_size, Rng& rng);

}  // namespace cne

#endif  // CNE_SERVICE_WORKLOAD_H_
