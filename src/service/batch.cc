#include "service/batch.h"

#include "service/query_service.h"
#include "util/logging.h"

namespace cne {

namespace {

BatchResult RunBatch(const BipartiteGraph& graph,
                     const std::vector<QueryPair>& queries,
                     ServiceAlgorithm algorithm, double epsilon, Rng& rng) {
  CNE_CHECK(!queries.empty()) << "empty batch";
  const Layer layer = queries.front().layer;
  for (const QueryPair& q : queries) {
    CNE_CHECK(q.layer == layer) << "batch mixes query layers";
  }

  ServiceOptions options;
  options.algorithm = algorithm;
  options.epsilon = epsilon;
  options.num_threads = 1;
  // Derive the service seed from the caller's stream so repeated batches
  // on the same Rng draw fresh noise, as the per-pair estimators do.
  options.seed = rng.NextU64();
  QueryService service(graph, options);
  const ServiceReport report = service.Submit(queries);
  // Every vertex fits one full-ε release under the default lifetime
  // budget, so nothing can be rejected.
  CNE_CHECK(report.rejected == 0) << "batch rejected queries";

  BatchResult result;
  result.answers.reserve(report.answers.size());
  for (const ServiceAnswer& answer : report.answers) {
    result.answers.push_back({answer.query, answer.estimate});
  }
  result.vertices_released = report.store.releases;
  result.cache_hits = report.store.cache_hits;
  result.cache_hit_rate = report.store.CacheHitRate();
  result.uploaded_bytes = report.store.UploadedBytes();
  result.residual_budget = service.ledger().Snapshot();
  return result;
}

}  // namespace

BatchResult BatchOneR(const BipartiteGraph& graph,
                      const std::vector<QueryPair>& queries, double epsilon,
                      Rng& rng) {
  return RunBatch(graph, queries, ServiceAlgorithm::kOneR, epsilon, rng);
}

BatchResult BatchNaive(const BipartiteGraph& graph,
                       const std::vector<QueryPair>& queries, double epsilon,
                       Rng& rng) {
  return RunBatch(graph, queries, ServiceAlgorithm::kNaive, epsilon, rng);
}

}  // namespace cne
