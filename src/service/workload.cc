#include "service/workload.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/logging.h"

namespace cne {

std::vector<QueryPair> ReadWorkloadStream(std::istream& in) {
  std::vector<QueryPair> queries;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' ||
        line[first] == '%') {
      continue;
    }
    std::istringstream fields(line);
    std::string layer_name;
    long long u = -1;
    long long w = -1;
    if (!(fields >> layer_name >> u >> w) || u < 0 || w < 0 ||
        u > std::numeric_limits<VertexId>::max() ||
        w > std::numeric_limits<VertexId>::max()) {
      throw std::runtime_error("workload line " + std::to_string(line_number) +
                               ": expected '<upper|lower> <u> <w>'");
    }
    QueryPair query;
    if (layer_name == "upper") {
      query.layer = Layer::kUpper;
    } else if (layer_name == "lower") {
      query.layer = Layer::kLower;
    } else {
      throw std::runtime_error("workload line " + std::to_string(line_number) +
                               ": unknown layer '" + layer_name + "'");
    }
    query.u = static_cast<VertexId>(u);
    query.w = static_cast<VertexId>(w);
    queries.push_back(query);
  }
  return queries;
}

std::vector<QueryPair> ReadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open workload file " + path);
  return ReadWorkloadStream(in);
}

void WriteWorkloadStream(const std::vector<QueryPair>& queries,
                         std::ostream& out) {
  out << "# cne workload: <layer> <u> <w>, " << queries.size()
      << " queries\n";
  for (const QueryPair& query : queries) {
    out << LayerName(query.layer) << ' ' << query.u << ' ' << query.w
        << '\n';
  }
}

void WriteWorkloadFile(const std::vector<QueryPair>& queries,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write workload file " + path);
  WriteWorkloadStream(queries, out);
  if (!out) throw std::runtime_error("failed writing workload file " + path);
}

std::vector<QueryPair> MakeHotSetWorkload(const BipartiteGraph& graph,
                                          Layer layer, size_t count,
                                          VertexId hot_set_size, Rng& rng) {
  const VertexId layer_size = graph.NumVertices(layer);
  CNE_CHECK(layer_size >= 2) << "hot-set workload needs >= 2 vertices";
  const VertexId hot = std::max<VertexId>(
      2, std::min<VertexId>(hot_set_size, layer_size));
  std::vector<QueryPair> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(hot));
    VertexId w = static_cast<VertexId>(rng.UniformInt(hot - 1));
    if (w >= u) ++w;  // uniform over pairs with w != u
    queries.push_back({layer, u, w});
  }
  return queries;
}

}  // namespace cne
