#include "service/query_service.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "obs/trace.h"
#include "obs/trace_export.h"
#include "service/workload_planner.h"
#include "store/budget_wal.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cne {

namespace {

// Mirrors BudgetLedger's float-drift tolerance so a check-then-commit
// admission never commits a charge the ledger would refuse.
constexpr double kBudgetTolerance = 1e-9;

// Planner threshold: a submission below this size cannot amortize plan
// construction, so it takes the per-query path unchanged.
constexpr size_t kMinQueriesToPlan = 2;

WalRecord MakeCharge(LayeredVertex vertex, double epsilon) {
  WalRecord record;
  record.type = WalRecordType::kCharge;
  record.vertex = PackLayeredVertex(vertex);
  record.value = epsilon;
  return record;
}

WalRecord MakeAuthorized(LayeredVertex vertex) {
  WalRecord record;
  record.type = WalRecordType::kViewAuthorized;
  record.vertex = PackLayeredVertex(vertex);
  return record;
}

}  // namespace

const char* ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kHealthy:
      return "healthy";
    case ServiceHealth::kDegradedReadOnly:
      return "degraded-read-only";
    case ServiceHealth::kFailed:
      return "failed";
  }
  return "unknown";
}

const char* RejectReasonName(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kBudget:
      return "budget";
    case RejectReason::kReadOnly:
      return "read-only";
    case RejectReason::kDurability:
      return "durability";
    case RejectReason::kServiceFailed:
      return "service-failed";
  }
  return "unknown";
}

/// Snapshot-directory paths plus the open WAL append handle and the
/// directory's exclusive lock (held for the service lifetime).
struct QueryService::Persistence {
  std::string snapshot_path;
  std::string wal_path;
  uint64_t epoch = 0;  ///< of the snapshot the current WAL extends
  int lock_fd = -1;    ///< flock on <dir>/lock; -1 until acquired
  std::unique_ptr<BudgetWal> wal;
  double last_checkpoint_seconds = 0.0;

  ~Persistence() {
    if (lock_fd >= 0) ::close(lock_fd);  // releases the flock
  }
};

QueryService::QueryService(const BipartiteGraph& graph,
                           ServiceOptions options)
    : graph_(graph),
      options_(options),
      plan_(MakeProtocolPlan(options.algorithm, options.epsilon,
                             options.epsilon1_fraction)),
      debias_(MakeDebiasConstantsForEpsilon(plan_.epsilon1)),
      ledger_(options.lifetime_budget > 0.0 ? options.lifetime_budget
                                            : options.epsilon),
      root_(options.seed),
      store_(graph, plan_.epsilon1, root_.Fork(0), ledger_),
      noise_root_(root_.Fork(1)),
      pool_(options.num_threads),
      planner_(graph) {
  CNE_CHECK(options.epsilon > 0.0) << "epsilon must be positive";
  CNE_CHECK(options.epsilon1_fraction > 0.0 &&
            options.epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
  InitMetrics();
  if (!options_.snapshot_dir.empty()) OpenPersistent();
}

void QueryService::InitMetrics() {
#if CNE_OBS_ENABLED
  if (options_.metrics_level == obs::MetricsLevel::kOff) return;
  c_queries_ = metrics_.GetCounter("queries_submitted");
  c_answered_ = metrics_.GetCounter("queries_answered");
  c_rejected_ = metrics_.GetCounter("queries_rejected");
  c_submits_ = metrics_.GetCounter("submits");
  c_checkpoints_ = metrics_.GetCounter("checkpoints");
  c_rejected_budget_ = metrics_.GetCounter("queries_rejected_budget");
  c_rejected_unavailable_ = metrics_.GetCounter("queries_rejected_unavailable");
  c_wal_failures_ = metrics_.GetCounter("wal_failures");
  c_submit_rollbacks_ = metrics_.GetCounter("submit_rollbacks");
  c_checkpoint_failures_ = metrics_.GetCounter("checkpoint_failures");
  c_checkpoint_retries_ = metrics_.GetCounter("checkpoint_retries");
  c_health_transitions_ = metrics_.GetCounter("health_transitions");
  g_health_ = metrics_.GetGauge("health");
  g_health_->Set(static_cast<int64_t>(health_));
  metrics_.GetGauge("threads")->Set(pool_.NumThreads());
  // Budget burn-down: per-mechanism spend counters in integer micro-ε
  // (u64 counters cannot carry doubles; 1 µε resolution is far below any
  // meaningful privacy increment) and the exhausted-vertex gauge.
  c_spend_rr_ = metrics_.GetCounter("budget_spent_rr_microeps");
  c_spend_laplace_ = metrics_.GetCounter("budget_spent_laplace_microeps");
  g_budget_exhausted_ = metrics_.GetGauge("budget_exhausted_vertices");
  if (options_.metrics_level != obs::MetricsLevel::kFull) return;
  // Register the full phase taxonomy up front so every snapshot carries
  // every phase row, zero-count phases included — schema over sparsity.
  h_admission_ = metrics_.GetHistogram("admission");
  h_wal_fsync_ = metrics_.GetHistogram("wal_fsync");
  h_release_ = metrics_.GetHistogram("release");
  h_plan_ = metrics_.GetHistogram("plan");
  h_execute_ = metrics_.GetHistogram("execute");
  h_post_process_ = metrics_.GetHistogram("post_process");
  h_checkpoint_ = metrics_.GetHistogram("checkpoint");
  store_.set_build_histogram(metrics_.GetHistogram("release_build"));
  // Tail exemplars ride the phases that already clock individual samples
  // (1-in-N admission/post-process strides, per-view builds), so the only
  // per-sample cost is one relaxed load against the reservoir floor.
  ex_admission_ = metrics_.GetExemplars("admission");
  ex_post_process_ = metrics_.GetExemplars("post_process");
  ex_release_build_ = metrics_.GetExemplars("release_build");
  store_.set_build_exemplars(ex_release_build_);
#endif
}

QueryService::~QueryService() = default;

SnapshotConfig QueryService::CurrentConfig() const {
  SnapshotConfig config;
  config.protocol_kind = static_cast<uint32_t>(options_.algorithm);
  config.epsilon = options_.epsilon;
  config.epsilon1_fraction = options_.epsilon1_fraction;
  config.alpha = plan_.alpha;
  config.seed = options_.seed;
  config.initial_lifetime_budget = options_.lifetime_budget > 0.0
                                       ? options_.lifetime_budget
                                       : options_.epsilon;
  config.current_lifetime_budget = ledger_.lifetime_budget();
  config.next_noise_stream = next_noise_stream_;
  config.num_upper = graph_.NumUpper();
  config.num_lower = graph_.NumLower();
  config.num_edges = graph_.NumEdges();
  return config;
}

void QueryService::OpenPersistent() {
  persist_ = std::make_unique<Persistence>();
  std::filesystem::create_directories(options_.snapshot_dir);
  const std::filesystem::path dir(options_.snapshot_dir);
  persist_->snapshot_path = (dir / kSnapshotFileName).string();
  persist_->wal_path = (dir / kWalFileName).string();

  // One service per snapshot directory, enforced with an flock on a
  // dedicated lock file (not on the WAL itself — checkpoints replace the
  // WAL inode, which would silently invalidate a lock held on it). Two
  // services interleaving one journal would sum their charges on replay:
  // exactly the accounting corruption this subsystem exists to prevent.
  const std::string lock_path = (dir / "lock").string();
  persist_->lock_fd = ::open(lock_path.c_str(), O_RDWR | O_CREAT, 0644);
  if (persist_->lock_fd < 0) {
    throw std::runtime_error("cannot open " + lock_path);
  }
  if (::flock(persist_->lock_fd, LOCK_EX | LOCK_NB) != 0) {
    throw std::runtime_error(options_.snapshot_dir +
                             ": another service holds this snapshot "
                             "directory");
  }

  Timer timer;
  if (FileExists(persist_->snapshot_path)) {
    const SnapshotReader reader(persist_->snapshot_path);
    ByteReader config_section = reader.Section(SectionId::kConfig);
    const SnapshotConfig saved = ReadConfigSection(config_section);
    const SnapshotConfig expected = CurrentConfig();
    // Restoring under different options would silently re-randomize
    // every view (different seed / ε) or mis-account budget; refuse.
    if (saved.protocol_kind != expected.protocol_kind ||
        saved.epsilon != expected.epsilon ||
        saved.epsilon1_fraction != expected.epsilon1_fraction ||
        saved.alpha != expected.alpha || saved.seed != expected.seed ||
        saved.initial_lifetime_budget != expected.initial_lifetime_budget) {
      throw std::runtime_error(persist_->snapshot_path +
                               ": snapshot was produced under different "
                               "service options");
    }
    if (saved.num_upper != expected.num_upper ||
        saved.num_lower != expected.num_lower ||
        saved.num_edges != expected.num_edges) {
      throw std::runtime_error(persist_->snapshot_path +
                               ": snapshot was produced over a different "
                               "graph");
    }
    ByteReader views_section = reader.Section(SectionId::kViews);
    store_.Restore(views_section);
    ByteReader ledger_section = reader.Section(SectionId::kLedger);
    ledger_.Deserialize(ledger_section);
    next_noise_stream_ = saved.next_noise_stream;
    persist_->epoch = reader.epoch();
    recovery_.snapshot_loaded = true;
  }

  if (FileExists(persist_->wal_path)) {
    const WalReplay replay = BudgetWal::Read(persist_->wal_path);
    if (replay.epoch == persist_->epoch) {
      for (size_t i = 0; i < replay.committed; ++i) {
        const WalRecord& record = replay.records[i];
        switch (record.type) {
          case WalRecordType::kCharge:
            ledger_.Replay(UnpackLayeredVertex(record.vertex),
                           record.value);
            break;
          case WalRecordType::kViewAuthorized:
            store_.RestoreAuthorized(UnpackLayeredVertex(record.vertex));
            break;
          case WalRecordType::kRaiseBudget:
            ledger_.RaiseLifetimeBudget(record.value);
            break;
          case WalRecordType::kSubmitSealed:
            next_noise_stream_ = record.counter;
            break;
        }
      }
      recovery_.wal_replay_records = replay.committed;
      recovery_.wal_discarded_records =
          replay.records.size() - replay.committed;
      recovery_.wal_torn_tail = replay.torn_tail;
      recovery_.wal_dropped_bytes = replay.dropped_bytes;
      // Compact: drop the torn tail and uncommitted records for good, so
      // appends continue after a clean prefix.
      if (replay.torn_tail || recovery_.wal_discarded_records > 0) {
        BudgetWal::Rewrite(
            persist_->wal_path, persist_->epoch,
            std::span<const WalRecord>(replay.records.data(),
                                       replay.committed));
      }
    } else if (replay.epoch < persist_->epoch) {
      // A crash between snapshot rename and WAL reset: everything in this
      // log is already inside the snapshot. Start the new epoch cleanly.
      BudgetWal::Reset(persist_->wal_path, persist_->epoch);
    } else {
      throw std::runtime_error(persist_->wal_path +
                               ": WAL epoch is ahead of the snapshot — "
                               "the snapshot file was lost or replaced");
    }
  } else if (recovery_.snapshot_loaded) {
    // A snapshot without its journal means the WAL was lost externally:
    // every committed post-checkpoint charge would be forgotten and the
    // noise-stream counter would roll back onto already-released Laplace
    // draws. Refuse, like the symmetric snapshot-lost case.
    throw std::runtime_error(persist_->wal_path +
                             ": WAL is missing next to the snapshot — "
                             "post-checkpoint budget charges were lost");
  } else {
    BudgetWal::Reset(persist_->wal_path, persist_->epoch);
  }
  recovery_.snapshot_load_seconds = timer.Seconds();
  persist_->wal = std::make_unique<BudgetWal>(persist_->wal_path);
}

double QueryService::Checkpoint() {
  CNE_CHECK(persistent())
      << "Checkpoint() requires ServiceOptions::snapshot_dir";
  if (health_ == ServiceHealth::kFailed) {
    throw std::runtime_error(
        "a failed service cannot checkpoint: in-memory state is not "
        "trustworthy; restart and recover from the last durable state");
  }
  const obs::TraceSpan span(h_checkpoint_, "checkpoint");
  if (c_checkpoints_ != nullptr) c_checkpoints_->Add();
  Timer timer;
  const uint64_t next_epoch = persist_->epoch + 1;

  // Snapshot commit, with bounded retries: a transient IO failure (disk
  // briefly full, a hiccuping volume) should not take the service down.
  // Commit is atomic rename-on-success, so the last good snapshot stays
  // readable across every failed attempt, and each attempt's temp file is
  // quarantined rather than silently deleted (AtomicWriteOptions in
  // snapshot_format.cc). If every attempt fails we rethrow — the current
  // health stands, because the WAL (when healthy) still journals.
  const int attempts = std::max(1, options_.checkpoint_attempts);
  for (int attempt = 0;; ++attempt) {
    try {
      SnapshotWriter writer(next_epoch);
      WriteConfigSection(CurrentConfig(),
                         writer.BeginSection(SectionId::kConfig));
      writer.EndSection();
      WriteGraphSection(graph_, writer.BeginSection(SectionId::kGraph));
      writer.EndSection();
      store_.Save(writer.BeginSection(SectionId::kViews));
      writer.EndSection();
      ledger_.Serialize(writer.BeginSection(SectionId::kLedger));
      writer.EndSection();
      writer.Commit(persist_->snapshot_path);
      break;
    } catch (const std::exception& e) {
      if (c_checkpoint_failures_ != nullptr) c_checkpoint_failures_->Add();
      if (attempt + 1 >= attempts) throw;
      if (c_checkpoint_retries_ != nullptr) c_checkpoint_retries_->Add();
      CNE_LOG(kWarning) << "checkpoint attempt " << attempt + 1 << " of "
                        << attempts << " failed (" << e.what()
                        << "); retrying";
      if (options_.checkpoint_backoff_ms > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            options_.checkpoint_backoff_ms * static_cast<double>(1 << attempt)));
      }
    }
  }

  // The committed snapshot owns everything the old-epoch WAL recorded;
  // reset the log under the new epoch. A crash between the two steps
  // leaves a stale-epoch WAL that recovery recognizes and discards.
  try {
    BudgetWal::Reset(persist_->wal_path, next_epoch);
    persist_->wal = std::make_unique<BudgetWal>(persist_->wal_path);
  } catch (const std::exception& e) {
    // The snapshot committed but the journal could not restart. Keeping
    // the old handle would append records recovery discards as stale
    // (silent budget loss), so drop it and degrade: reads keep serving,
    // new charges are refused until a later Checkpoint() re-establishes a
    // journal or the operator restarts.
    persist_->wal.reset();
    if (c_wal_failures_ != nullptr) c_wal_failures_->Add();
    EnterDegraded(std::string("WAL reset after checkpoint failed: ") +
                  e.what());
    throw;
  }
  persist_->epoch = next_epoch;

  // A fresh epoch with an empty journal makes every in-memory fact
  // durable again, and in-memory state is trustworthy in degraded mode
  // (every unsealed batch was rolled back exactly) — so a successful
  // checkpoint heals a degraded service.
  if (health_ == ServiceHealth::kDegradedReadOnly) {
    health_ = ServiceHealth::kHealthy;
    if (c_health_transitions_ != nullptr) c_health_transitions_->Add();
    if (g_health_ != nullptr) g_health_->Set(static_cast<int64_t>(health_));
    CNE_LOG(kWarning) << "service healed: checkpoint epoch " << next_epoch
                      << " re-established durability";
  }
  persist_->last_checkpoint_seconds = timer.Seconds();
  return persist_->last_checkpoint_seconds;
}

void QueryService::RaiseLifetimeBudget(double new_budget) {
  if (health_ != ServiceHealth::kHealthy) {
    throw std::runtime_error(
        std::string("a ") + ServiceHealthName(health_) +
        " service cannot raise the lifetime budget; checkpoint or restart "
        "to restore durability first");
  }
  if (persist_) {
    CNE_CHECK(persist_->wal != nullptr)
        << "healthy persistent service has no WAL handle";
    // Durable before applied: the raise is a commit barrier, and recovery
    // replays it in journal order relative to the charges around it. If
    // the sync fails the ledger is untouched (nothing to roll back) and
    // the service degrades — the record may or may not have reached disk,
    // which is the usual ambiguity of any failed commit.
    WalRecord record;
    record.type = WalRecordType::kRaiseBudget;
    record.value = new_budget;
    try {
      persist_->wal->Append(record);
      persist_->wal->Sync();
    } catch (const std::exception& e) {
      if (c_wal_failures_ != nullptr) c_wal_failures_->Add();
      EnterDegraded(std::string("WAL raise-budget barrier failed: ") +
                    e.what());
      throw;
    }
  }
  ledger_.RaiseLifetimeBudget(new_budget);
}

ServiceReport QueryService::Submit(const std::vector<QueryPair>& queries) {
  Timer timer;
  ++submit_seq_;
  ServiceReport report;
  report.answers.resize(queries.size());

  // A failed service refuses everything — its in-memory state cannot be
  // trusted, so even "free" read-only answers are off the table.
  if (health_ == ServiceHealth::kFailed) {
    for (size_t i = 0; i < queries.size(); ++i) {
      report.answers[i].query = queries[i];
      report.answers[i].rejected = true;
      report.answers[i].reason = RejectReason::kServiceFailed;
    }
    report.sealed = false;
    if (c_submits_ != nullptr) {
      c_submits_->Add();
      c_queries_->Add(queries.size());
    }
    FinalizeReport(report, timer.Seconds());
    return report;
  }

  // Trace capture scope: the installed TraceSink (if any) samples whole
  // submits; inside a sampled scope the named spans below publish trace
  // events. The scope and the submit root span are declared in this order
  // so the root span's destructor — which emits the event — runs while
  // capture is still armed. Both deflate to no-ops without a sink.
  const obs::SubmitTraceScope trace_scope(
      options_.metrics_level == obs::MetricsLevel::kFull, submit_seq_);
  const obs::TraceSpan submit_span(nullptr, "submit");

  // A batch journals only while healthy: degraded mode admits nothing
  // that needs a charge, so there is nothing to make durable.
  const bool journaling =
      persist_ != nullptr && health_ == ServiceHealth::kHealthy;
  if (journaling) {
    CNE_CHECK(persist_->wal != nullptr)
        << "healthy persistent service has no WAL handle";
  }

  std::vector<PlannedQuery> plan(queries.size());

  // Phase 1 — sequential admission in submission order. Cheap (no noise
  // is drawn) and the only phase whose outcome depends on earlier
  // queries, so running it sequentially makes accept/reject decisions —
  // and hence everything downstream — independent of thread count.
  cache_hit_lookups_ = 0;
  submit_spend_rr_ = 0.0;
  submit_spend_laplace_ = 0.0;
  if (ex_release_build_ != nullptr) store_.set_build_submit(submit_seq_);
  rollback_charges_.clear();
  rollback_authorized_.clear();
  const uint64_t noise_stream_mark = next_noise_stream_;
  // Per-query admission latency, one sample per 1024-query chunk: a
  // single Admit runs in ~100 ns, so clocking every query would cost more
  // than the work it measures, and even the sampler's per-query branch is
  // worth hoisting out of the loop (the histogram's quantiles only need
  // a sample stream).
  const auto admit_one = [&](size_t i) {
    const QueryPair& query = queries[i];
    CNE_CHECK(query.u < graph_.NumVertices(query.layer) &&
              query.w < graph_.NumVertices(query.layer))
        << "query vertex out of range";
    plan[i].query = query;
    plan[i].reason = Admit(query);
    plan[i].admitted = plan[i].reason == RejectReason::kNone;
    // Degraded mode leaves the substream counter untouched: nothing it
    // answers draws Laplace noise, and no seal will record an advance.
    if (health_ == ServiceHealth::kHealthy) {
      plan[i].noise_stream = next_noise_stream_++;
    }
  };
  {
    const obs::TraceSpan admission_span(nullptr, "admission");
    if (h_admission_ == nullptr) {
      for (size_t i = 0; i < queries.size(); ++i) admit_one(i);
    } else {
      constexpr size_t kAdmitStride = 1024;
      size_t i = 0;
      while (i < queries.size()) {
        const uint64_t t0 = obs::NowNanos();
        admit_one(i);
        const uint64_t dt = obs::NowNanos() - t0;
        h_admission_->Record(dt);
        // Exemplar offer only on the already-clocked 1-in-stride sample,
        // and only when it would displace a kept exemplar.
        if (ex_admission_ != nullptr && ex_admission_->WouldAccept(dt)) {
          obs::Exemplar e;
          e.seconds = static_cast<double>(dt) * 1e-9;
          e.submit = submit_seq_;
          e.has_query = true;
          e.layer = static_cast<uint8_t>(queries[i].layer);
          e.u = queries[i].u;
          e.w = queries[i].w;
          ex_admission_->Offer(dt, e);
        }
        ++i;
        const size_t chunk_end =
            std::min(queries.size(), i + (kAdmitStride - 1));
        for (; i < chunk_end; ++i) admit_one(i);
      }
    }
  }
  if (c_submits_ != nullptr) {
    c_submits_->Add();
    c_queries_->Add(queries.size());
  }

  // Write-ahead barrier: seal the admission batch and fsync ONCE before
  // any noise is sampled or any answer computed. After this line a crash
  // replays to exactly this state; before it, recovery drops the whole
  // unsealed batch — which the outside world never saw answers from. A
  // seal that fails in-process gets the same treatment as a crash: the
  // batch is rolled back exactly (no charge kept, no noise ever drawn —
  // noise only flows after this barrier) and the service degrades to
  // read-only instead of answering over a journal that never happened.
  if (journaling) {
    try {
      const obs::TraceSpan wal_span(h_wal_fsync_, "wal_fsync");
      WalRecord seal;
      seal.type = WalRecordType::kSubmitSealed;
      seal.counter = next_noise_stream_;
      persist_->wal->Append(seal);
      persist_->wal->Sync();
    } catch (const std::exception& e) {
      if (c_wal_failures_ != nullptr) c_wal_failures_->Add();
      RollbackUnsealedSubmit(noise_stream_mark, plan, report);
      EnterDegraded(std::string("WAL seal failed: ") + e.what());
      report.sealed = false;
      FinalizeReport(report, timer.Seconds());
      return report;
    }
  } else if (persist_ != nullptr) {
    // Degraded persistent service: read-only answers with no journal
    // entry — recovery neither needs nor sees this batch.
    report.sealed = false;
  }
  // Cache-hit stats flush only after the batch is known to stand, so a
  // rolled-back submission leaves the store's counters exactly as found.
  // Same for the per-mechanism spend counters: the failed-seal path
  // returned above, leaving the burn-down exactly as before the batch.
  store_.RecordCacheHits(cache_hit_lookups_);
  if (c_spend_rr_ != nullptr) {
    if (submit_spend_rr_ > 0.0) {
      c_spend_rr_->Add(
          static_cast<uint64_t>(std::llround(submit_spend_rr_ * 1e6)));
    }
    if (submit_spend_laplace_ > 0.0) {
      c_spend_laplace_->Add(
          static_cast<uint64_t>(std::llround(submit_spend_laplace_ * 1e6)));
    }
  }

  try {
    // Deterministic mid-execution fault hook: fires after the seal, so a
    // harness that catches this knows the batch is durable (and may
    // mirror it) but in-memory execution state is suspect.
    if (const fail::Injected fault = fail::Hit("service", ".execute")) {
      (void)fault;
      throw std::runtime_error("injected service.execute fault");
    }

    // Phase 2 — materialize the newly authorized noisy views in
    // parallel; each view comes from its vertex's own substream. The
    // release span is the submit-level barrier wall time; per-view build
    // latency lands in the store's release_build histogram.
    {
      const obs::TraceSpan release_span(h_release_, "release");
      store_.MaterializeAuthorized(pool_);
    }

    // Phase 3 — answer every admitted query. The planner path groups by
    // shared endpoint and reuses per-source state; the per-query path is
    // the reference both for benchmarking and for submissions too small
    // to plan. Either way the answers are byte-identical.
    if (options_.enable_planner && queries.size() >= kMinQueriesToPlan) {
      ExecutePlanned(plan, report);
    } else {
      const obs::TraceSpan execute_span(h_execute_, "execute");
      pool_.ParallelFor(plan.size(), [&](size_t begin, size_t end) {
        obs::SampledRecorder sampler(h_post_process_);
        for (size_t i = begin; i < end; ++i) {
          ServiceAnswer& answer = report.answers[i];
          answer.query = plan[i].query;
          if (!plan[i].admitted) {
            answer.rejected = true;
            answer.reason = plan[i].reason;
            continue;
          }
          const bool sampled = sampler.ShouldSample();
          const uint64_t t0 = sampled ? obs::NowNanos() : 0;
          answer.estimate = Answer(plan[i]);
          if (sampled) sampler.Record(obs::NowNanos() - t0);
        }
      });
    }
  } catch (const std::exception& e) {
    // Past the seal there is no rollback: views may be half
    // materialized, answers half computed. The durable state is fine —
    // a restart recovers it — but this process must stop serving.
    if (health_ != ServiceHealth::kFailed) {
      health_ = ServiceHealth::kFailed;
      if (c_health_transitions_ != nullptr) c_health_transitions_->Add();
      if (g_health_ != nullptr) g_health_->Set(static_cast<int64_t>(health_));
      CNE_LOG(kWarning) << "service failed mid-execution: " << e.what()
                        << "; restart to recover from durable state";
    }
    throw;
  }

  FinalizeReport(report, timer.Seconds());
  return report;
}

void QueryService::RollbackUnsealedSubmit(
    uint64_t noise_stream_mark, const std::vector<PlannedQuery>& plan,
    ServiceReport& report) {
  // Reverse order, exact values: a vertex charged twice in this batch
  // (ε1 then ε2) steps back through its intermediate spend to the
  // original, and restored doubles are the recorded priors — no refund
  // subtraction that could drift.
  for (size_t i = rollback_authorized_.size(); i-- > 0;) {
    store_.RevokeAuthorized(rollback_authorized_[i]);
  }
  for (size_t i = rollback_charges_.size(); i-- > 0;) {
    ledger_.RestoreSpent(rollback_charges_[i].first,
                         rollback_charges_[i].second);
  }
  next_noise_stream_ = noise_stream_mark;
  if (c_submit_rollbacks_ != nullptr) c_submit_rollbacks_->Add();
  for (size_t i = 0; i < plan.size(); ++i) {
    ServiceAnswer& answer = report.answers[i];
    answer.query = plan[i].query;
    answer.estimate = 0.0;
    answer.rejected = true;
    answer.reason = RejectReason::kDurability;
  }
}

void QueryService::EnterDegraded(const std::string& why) {
  if (health_ != ServiceHealth::kHealthy) return;
  health_ = ServiceHealth::kDegradedReadOnly;
  if (c_health_transitions_ != nullptr) c_health_transitions_->Add();
  if (g_health_ != nullptr) g_health_->Set(static_cast<int64_t>(health_));
  CNE_LOG(kWarning) << "service degraded to read-only: " << why;
}

void QueryService::FinalizeReport(ServiceReport& report, double seconds) {
  for (const ServiceAnswer& answer : report.answers) {
    if (answer.rejected) {
      ++report.rejected;
      if (answer.reason == RejectReason::kBudget) {
        ++report.rejected_budget;
      } else {
        ++report.rejected_unavailable;
      }
    } else {
      ++report.answered;
    }
  }
  if (c_answered_ != nullptr) {
    c_answered_->Add(report.answered);
    c_rejected_->Add(report.rejected);
  }
  if (c_rejected_budget_ != nullptr) {
    c_rejected_budget_->Add(report.rejected_budget);
    c_rejected_unavailable_->Add(report.rejected_unavailable);
  }
  report.seconds = seconds;
  report.health = health_;
  report.store = store_.stats();
  report.budget_vertices_charged = ledger_.NumChargedVertices();
  report.budget_total_spent = ledger_.TotalSpent();
  report.budget_min_remaining = ledger_.MinRemaining();
  if (g_budget_exhausted_ != nullptr) {
    g_budget_exhausted_->Set(static_cast<int64_t>(ledger_.NumExhausted()));
  }
  report.snapshot_load_seconds = recovery_.snapshot_load_seconds;
  report.wal_replay_records = recovery_.wal_replay_records;
  if (persist_) {
    report.checkpoint_seconds = persist_->last_checkpoint_seconds;
  }
  // report.metrics is deliberately NOT filled here: a registry snapshot
  // is O(buckets + names) of allocation and scanning, and at post-SIMD
  // submit speeds (~60 ns/query) paying it per batch busts the < 5%
  // observability budget on its own. Callers that want the cumulative
  // snapshot pull it with SnapshotMetrics() at their own cadence.
}

obs::MetricsSnapshot QueryService::SnapshotMetrics() const {
  obs::MetricsSnapshot snapshot = metrics_.Snapshot();
#if CNE_OBS_ENABLED
  if (options_.metrics_level == obs::MetricsLevel::kOff) return snapshot;
  // Budget burn-down: one sharded ledger walk plus the per-mechanism
  // counters. This runs at snapshot cadence, never per submit.
  const BudgetLedgerTelemetry t = ledger_.GetTelemetry();
  obs::BudgetBurnDown& budget = snapshot.budget;
  budget.present = true;
  budget.lifetime_budget = t.lifetime_budget;
  budget.charged_vertices = t.charged_vertices;
  budget.exhausted_vertices = t.exhausted_vertices;
  budget.total_spent = t.total_spent;
  budget.min_remaining = t.min_remaining;
  budget.sum_remaining = t.sum_remaining;
  budget.residual_histogram = t.residual_histogram;
  if (c_spend_rr_ != nullptr) {
    budget.spent_rr = static_cast<double>(c_spend_rr_->Value()) * 1e-6;
    budget.spent_laplace =
        static_cast<double>(c_spend_laplace_->Value()) * 1e-6;
  }
  // Projection: at the observed mean ε burn per submit, how many more
  // submits until the charged population's remaining budget is gone. A
  // cache-dominated steady state burns ~0 per submit, so the projection
  // legitimately grows without bound; -1 means no spend observed at all.
  const uint64_t submits = snapshot.CounterValue("submits");
  if (submits > 0 && t.total_spent > 0.0) {
    const double per_submit = t.total_spent / static_cast<double>(submits);
    budget.projected_submits_to_exhaustion = t.sum_remaining / per_submit;
  }
#endif
  return snapshot;
}

void QueryService::ExecutePlanned(const std::vector<PlannedQuery>& plan,
                                  ServiceReport& report) {
  Timer plan_timer;
  const WorkloadPlan* planned = nullptr;
  {
    const obs::TraceSpan plan_span(h_plan_, "plan");
    refs_.clear();
    refs_.reserve(plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
      ServiceAnswer& answer = report.answers[i];
      answer.query = plan[i].query;
      if (!plan[i].admitted) {
        answer.rejected = true;
        answer.reason = plan[i].reason;
        continue;
      }
      refs_.push_back({plan[i].query, i, plan[i].noise_stream});
    }
    planned = &planner_.Plan(refs_);
  }
  const WorkloadPlan& workload = *planned;
  report.planner_seconds = plan_timer.Seconds();
  report.groups_formed = workload.groups.size();
  report.avg_group_size = workload.AvgGroupSize();

  // Group estimates land in their submission slots; every slot is written
  // by exactly one group, so groups parallelize freely. Each worker chunk
  // keeps one executor whose scratch survives across its groups.
  // resize, not assign: rejected slots are never read, so stale values
  // from the previous submission are harmless and re-zeroing is waste.
  estimates_.resize(plan.size());
  std::span<double> estimates(estimates_);
  // One execute span per worker chunk, not per group: a group runs in a
  // few µs, so per-group spans would spend a measurable share of the
  // execute phase measuring it. The histogram's quantiles describe chunk
  // latencies; per-query tail latency lives in post_process.
  // The main-thread wrapper spans the whole fan-out for the trace (its
  // duration is the execute phase's wall time); worker chunks emit their
  // own "execute_chunk" events on their own threads, which the trace
  // renders as separate tid tracks.
  const obs::TraceSpan execute_wrapper(nullptr, "execute");
  pool_.ParallelFor(
      workload.groups.size(), [&](size_t begin, size_t end) {
        const obs::TraceSpan execute_span(h_execute_, "execute_chunk");
        GroupExecutor executor(graph_, plan_, debias_, store_, noise_root_,
                               h_post_process_, ex_post_process_,
                               submit_seq_);
        for (size_t g = begin; g < end; ++g) {
          executor.Execute(workload, workload.groups[g], estimates);
        }
      });
  for (const GroupItem& item : workload.items) {
    report.answers[item.slot].estimate = estimates[item.slot];
  }
}

RejectReason QueryService::Admit(const QueryPair& query) {
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  const bool same = query.u == query.w;

  // Which mechanisms does this query run? RR releases are needed only
  // for vertices without a stored view; Laplace releases recur per query.
  const bool rr_u = plan_.UsesNoisyViewU();
  const bool rr_w = plan_.UsesNoisyViewW();
  const bool lap_u = plan_.LaplaceFromU();
  const bool lap_w = plan_.LaplaceFromW();

  const bool rr_u_needed = rr_u && !store_.Contains(u);
  const bool rr_w_needed =
      rr_w && !(same && rr_u) && !store_.Contains(w);

  // Merge the query's charges per distinct vertex, then test them against
  // the residual budgets before committing anything: either the whole
  // query is affordable or nothing is charged.
  std::array<std::pair<LayeredVertex, double>, 2> needs;
  size_t num_needs = 0;
  const auto add = [&](LayeredVertex v, double epsilon) {
    for (size_t i = 0; i < num_needs; ++i) {
      if (needs[i].first == v) {
        needs[i].second += epsilon;
        return;
      }
    }
    needs[num_needs++] = {v, epsilon};
  };
  if (rr_u_needed) add(u, plan_.epsilon1);
  if (rr_w_needed) add(w, plan_.epsilon1);
  if (lap_u) add(u, plan_.epsilon2);
  if (lap_w) add(w, plan_.epsilon2);

  // Read-only gate before the budget gate: a degraded service cannot make
  // a new charge durable, so affordability is moot. Zero-charge queries —
  // pure post-processing of views that are already public — pass through
  // and still answer.
  if (health_ == ServiceHealth::kDegradedReadOnly && num_needs > 0) {
    return RejectReason::kReadOnly;
  }

  for (size_t i = 0; i < num_needs; ++i) {
    if (needs[i].second > ledger_.Remaining(needs[i].first) +
                              kBudgetTolerance) {
      return RejectReason::kBudget;
    }
  }

  // Commit, journaling every decision (buffered; the submit-level seal
  // fsyncs them before anything acts on the admission). Each mutation's
  // prior state is recorded first so a failed seal can undo the batch
  // exactly (RollbackUnsealedSubmit).
  const bool journal = persist_ != nullptr && health_ == ServiceHealth::kHealthy;
  if (rr_u_needed) {
    if (journal) {
      rollback_charges_.emplace_back(u, ledger_.Spent(u));
      rollback_authorized_.push_back(u);
    }
    CNE_CHECK(store_.Authorize(u) == NoisyViewStore::Admission::kAuthorized);
    if (c_spend_rr_ != nullptr) submit_spend_rr_ += plan_.epsilon1;
    if (journal) {
      persist_->wal->Append(MakeAuthorized(u));
      persist_->wal->Append(MakeCharge(u, plan_.epsilon1));
    }
  } else if (rr_u) {
    ++cache_hit_lookups_;  // recorded in bulk after the admission pass
  }
  if (rr_w_needed) {
    if (journal) {
      rollback_charges_.emplace_back(w, ledger_.Spent(w));
      rollback_authorized_.push_back(w);
    }
    CNE_CHECK(store_.Authorize(w) == NoisyViewStore::Admission::kAuthorized);
    if (c_spend_rr_ != nullptr) submit_spend_rr_ += plan_.epsilon1;
    if (journal) {
      persist_->wal->Append(MakeAuthorized(w));
      persist_->wal->Append(MakeCharge(w, plan_.epsilon1));
    }
  } else if (rr_w && !(same && rr_u)) {
    ++cache_hit_lookups_;  // Contains(w) held above: a pure cache hit
  }
  if (lap_u) {
    if (journal) rollback_charges_.emplace_back(u, ledger_.Spent(u));
    CNE_CHECK(ledger_.TryCharge(u, plan_.epsilon2));
    if (c_spend_laplace_ != nullptr) submit_spend_laplace_ += plan_.epsilon2;
    if (journal) persist_->wal->Append(MakeCharge(u, plan_.epsilon2));
  }
  if (lap_w) {
    if (journal) rollback_charges_.emplace_back(w, ledger_.Spent(w));
    CNE_CHECK(ledger_.TryCharge(w, plan_.epsilon2));
    if (c_spend_laplace_ != nullptr) submit_spend_laplace_ += plan_.epsilon2;
    if (journal) persist_->wal->Append(MakeCharge(w, plan_.epsilon2));
  }
  return RejectReason::kNone;
}

double QueryService::Answer(const PlannedQuery& planned) const {
  const QueryPair& query = planned.query;
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};

  ReleasedInputs inputs;
  if (plan_.UsesNoisyViewU()) inputs.view_u = &store_.View(u);
  inputs.view_w = &store_.View(w);
  if (plan_.LaplaceFromU()) inputs.neighbors_u = graph_.Neighbors(u);
  if (plan_.LaplaceFromW()) inputs.neighbors_w = graph_.Neighbors(w);
  inputs.opposite_size = graph_.NumVertices(Opposite(query.layer));

  if (plan_.NumLaplaceReleases() == 0) {
    // Naive/OneR draw no per-query noise; skip the substream fork.
    Rng unused(0);
    return PostProcess(plan_, debias_, inputs, unused);
  }
  Rng rng = noise_root_.Fork(planned.noise_stream);
  return PostProcess(plan_, debias_, inputs, rng);
}

}  // namespace cne
