#include "service/query_service.h"

#include <array>

#include "core/multir_ss.h"
#include "core/oner.h"
#include "graph/set_ops.h"
#include "ldp/laplace_mechanism.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cne {

namespace {

// Mirrors BudgetLedger's float-drift tolerance so a check-then-commit
// admission never commits a charge the ledger would refuse.
constexpr double kBudgetTolerance = 1e-9;

bool IsMultiR(ServiceAlgorithm algorithm) {
  return algorithm == ServiceAlgorithm::kMultiRSS ||
         algorithm == ServiceAlgorithm::kMultiRDS;
}

// Budget each release draws from the store (ε1 for the MultiR family,
// the full ε for the pure post-processing algorithms).
double RrEpsilon(const ServiceOptions& options) {
  return IsMultiR(options.algorithm)
             ? options.epsilon * options.epsilon1_fraction
             : options.epsilon;
}

}  // namespace

const char* ToString(ServiceAlgorithm algorithm) {
  switch (algorithm) {
    case ServiceAlgorithm::kNaive:
      return "Naive";
    case ServiceAlgorithm::kOneR:
      return "OneR";
    case ServiceAlgorithm::kMultiRSS:
      return "MultiR-SS";
    case ServiceAlgorithm::kMultiRDS:
      return "MultiR-DS";
  }
  return "?";
}

std::optional<ServiceAlgorithm> ParseServiceAlgorithm(
    const std::string& name) {
  for (ServiceAlgorithm algorithm :
       {ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
        ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS}) {
    if (name == ToString(algorithm)) return algorithm;
  }
  return std::nullopt;
}

QueryService::QueryService(const BipartiteGraph& graph,
                           ServiceOptions options)
    : graph_(graph),
      options_(options),
      epsilon1_(RrEpsilon(options)),
      epsilon2_(options.epsilon - epsilon1_),
      ledger_(options.lifetime_budget > 0.0 ? options.lifetime_budget
                                            : options.epsilon),
      root_(options.seed),
      store_(graph, epsilon1_, root_.Fork(0), ledger_),
      noise_root_(root_.Fork(1)),
      pool_(options.num_threads) {
  CNE_CHECK(options.epsilon > 0.0) << "epsilon must be positive";
  CNE_CHECK(options.epsilon1_fraction > 0.0 &&
            options.epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
}

ServiceReport QueryService::Submit(const std::vector<QueryPair>& queries) {
  Timer timer;
  ServiceReport report;
  report.answers.resize(queries.size());
  std::vector<PlannedQuery> plan(queries.size());

  // Phase 1 — sequential admission in submission order. Cheap (no noise
  // is drawn) and the only phase whose outcome depends on earlier
  // queries, so running it sequentially makes accept/reject decisions —
  // and hence everything downstream — independent of thread count.
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryPair& query = queries[i];
    CNE_CHECK(query.u < graph_.NumVertices(query.layer) &&
              query.w < graph_.NumVertices(query.layer))
        << "query vertex out of range";
    plan[i].query = query;
    plan[i].noise_stream = next_noise_stream_++;
    plan[i].admitted = Admit(query);
  }

  // Phase 2 — materialize the newly authorized noisy views in parallel;
  // each view comes from its vertex's own substream.
  store_.MaterializeAuthorized(pool_);

  // Phase 3 — answer every admitted query in parallel; pure reads of the
  // store plus per-query Laplace substreams.
  pool_.ParallelFor(plan.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ServiceAnswer& answer = report.answers[i];
      answer.query = plan[i].query;
      if (!plan[i].admitted) {
        answer.rejected = true;
        continue;
      }
      answer.estimate = Answer(plan[i]);
    }
  });

  for (const ServiceAnswer& answer : report.answers) {
    if (answer.rejected) {
      ++report.rejected;
    } else {
      ++report.answered;
    }
  }
  report.seconds = timer.Seconds();
  report.store = store_.stats();
  report.budget_vertices_charged = ledger_.NumChargedVertices();
  report.budget_total_spent = ledger_.TotalSpent();
  report.budget_min_remaining = ledger_.MinRemaining();
  return report;
}

bool QueryService::Admit(const QueryPair& query) {
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  const bool same = query.u == query.w;

  // Which mechanisms does this query run? RR releases are needed only
  // for vertices without a stored view; Laplace releases recur per query.
  const bool rr_u = options_.algorithm != ServiceAlgorithm::kMultiRSS;
  const bool rr_w = true;
  const bool lap_u = IsMultiR(options_.algorithm);
  const bool lap_w = options_.algorithm == ServiceAlgorithm::kMultiRDS;

  const bool rr_u_needed = rr_u && !store_.Contains(u);
  const bool rr_w_needed =
      rr_w && !(same && rr_u) && !store_.Contains(w);

  // Merge the query's charges per distinct vertex, then test them against
  // the residual budgets before committing anything: either the whole
  // query is affordable or nothing is charged.
  std::array<std::pair<LayeredVertex, double>, 2> needs;
  size_t num_needs = 0;
  const auto add = [&](LayeredVertex v, double epsilon) {
    for (size_t i = 0; i < num_needs; ++i) {
      if (needs[i].first == v) {
        needs[i].second += epsilon;
        return;
      }
    }
    needs[num_needs++] = {v, epsilon};
  };
  if (rr_u_needed) add(u, epsilon1_);
  if (rr_w_needed) add(w, epsilon1_);
  if (lap_u) add(u, epsilon2_);
  if (lap_w) add(w, epsilon2_);

  for (size_t i = 0; i < num_needs; ++i) {
    if (needs[i].second > ledger_.Remaining(needs[i].first) +
                              kBudgetTolerance) {
      return false;
    }
  }

  if (rr_u_needed) {
    CNE_CHECK(store_.Authorize(u) == NoisyViewStore::Admission::kAuthorized);
  } else if (rr_u) {
    store_.Authorize(u);  // records the cache hit
  }
  if (rr_w_needed) {
    CNE_CHECK(store_.Authorize(w) == NoisyViewStore::Admission::kAuthorized);
  } else if (rr_w && !(same && rr_u)) {
    store_.Authorize(w);
  }
  if (lap_u) {
    CNE_CHECK(ledger_.TryCharge(u, epsilon2_));
  }
  if (lap_w) {
    CNE_CHECK(ledger_.TryCharge(w, epsilon2_));
  }
  return true;
}

double QueryService::Answer(const PlannedQuery& planned) const {
  const QueryPair& query = planned.query;
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  switch (options_.algorithm) {
    case ServiceAlgorithm::kNaive: {
      const NoisyNeighborSet& noisy_u = store_.View(u);
      const NoisyNeighborSet& noisy_w = store_.View(w);
      return static_cast<double>(
          IntersectionSize(noisy_u.View(), noisy_w.View()));
    }
    case ServiceAlgorithm::kOneR: {
      const NoisyNeighborSet& noisy_u = store_.View(u);
      const NoisyNeighborSet& noisy_w = store_.View(w);
      const uint64_t n1 = IntersectionSize(noisy_u.View(), noisy_w.View());
      const uint64_t n2 = noisy_u.Size() + noisy_w.Size() - n1;
      return OneRClosedForm(n1, n2,
                            graph_.NumVertices(Opposite(query.layer)),
                            noisy_u.flip_probability());
    }
    case ServiceAlgorithm::kMultiRSS: {
      const double f_u = SingleSourceEstimate(graph_, u, store_.View(w));
      Rng rng = noise_root_.Fork(planned.noise_stream);
      return LaplaceMechanism(f_u, SingleSourceSensitivity(epsilon1_),
                              epsilon2_, rng);
    }
    case ServiceAlgorithm::kMultiRDS: {
      Rng rng = noise_root_.Fork(planned.noise_stream);
      const double sensitivity = SingleSourceSensitivity(epsilon1_);
      const double f_u =
          LaplaceMechanism(SingleSourceEstimate(graph_, u, store_.View(w)),
                           sensitivity, epsilon2_, rng);
      const double f_w =
          LaplaceMechanism(SingleSourceEstimate(graph_, w, store_.View(u)),
                           sensitivity, epsilon2_, rng);
      return 0.5 * (f_u + f_w);
    }
  }
  CNE_CHECK(false) << "unreachable";
  return 0.0;
}

}  // namespace cne
