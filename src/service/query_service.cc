#include "service/query_service.h"

#include <array>

#include "service/workload_planner.h"
#include "util/logging.h"
#include "util/timer.h"

namespace cne {

namespace {

// Mirrors BudgetLedger's float-drift tolerance so a check-then-commit
// admission never commits a charge the ledger would refuse.
constexpr double kBudgetTolerance = 1e-9;

// Planner threshold: a submission below this size cannot amortize plan
// construction, so it takes the per-query path unchanged.
constexpr size_t kMinQueriesToPlan = 2;

}  // namespace

QueryService::QueryService(const BipartiteGraph& graph,
                           ServiceOptions options)
    : graph_(graph),
      options_(options),
      plan_(MakeProtocolPlan(options.algorithm, options.epsilon,
                             options.epsilon1_fraction)),
      debias_(MakeDebiasConstantsForEpsilon(plan_.epsilon1)),
      ledger_(options.lifetime_budget > 0.0 ? options.lifetime_budget
                                            : options.epsilon),
      root_(options.seed),
      store_(graph, plan_.epsilon1, root_.Fork(0), ledger_),
      noise_root_(root_.Fork(1)),
      pool_(options.num_threads),
      planner_(graph) {
  CNE_CHECK(options.epsilon > 0.0) << "epsilon must be positive";
  CNE_CHECK(options.epsilon1_fraction > 0.0 &&
            options.epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
}

void QueryService::RaiseLifetimeBudget(double new_budget) {
  ledger_.RaiseLifetimeBudget(new_budget);
}

ServiceReport QueryService::Submit(const std::vector<QueryPair>& queries) {
  Timer timer;
  ServiceReport report;
  report.answers.resize(queries.size());
  std::vector<PlannedQuery> plan(queries.size());

  // Phase 1 — sequential admission in submission order. Cheap (no noise
  // is drawn) and the only phase whose outcome depends on earlier
  // queries, so running it sequentially makes accept/reject decisions —
  // and hence everything downstream — independent of thread count.
  cache_hit_lookups_ = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryPair& query = queries[i];
    CNE_CHECK(query.u < graph_.NumVertices(query.layer) &&
              query.w < graph_.NumVertices(query.layer))
        << "query vertex out of range";
    plan[i].query = query;
    plan[i].noise_stream = next_noise_stream_++;
    plan[i].admitted = Admit(query);
  }
  store_.RecordCacheHits(cache_hit_lookups_);

  // Phase 2 — materialize the newly authorized noisy views in parallel;
  // each view comes from its vertex's own substream.
  store_.MaterializeAuthorized(pool_);

  // Phase 3 — answer every admitted query. The planner path groups by
  // shared endpoint and reuses per-source state; the per-query path is
  // the reference both for benchmarking and for submissions too small to
  // plan. Either way the answers are byte-identical.
  if (options_.enable_planner && queries.size() >= kMinQueriesToPlan) {
    ExecutePlanned(plan, report);
  } else {
    pool_.ParallelFor(plan.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        ServiceAnswer& answer = report.answers[i];
        answer.query = plan[i].query;
        if (!plan[i].admitted) {
          answer.rejected = true;
          continue;
        }
        answer.estimate = Answer(plan[i]);
      }
    });
  }

  for (const ServiceAnswer& answer : report.answers) {
    if (answer.rejected) {
      ++report.rejected;
    } else {
      ++report.answered;
    }
  }
  report.seconds = timer.Seconds();
  report.store = store_.stats();
  report.budget_vertices_charged = ledger_.NumChargedVertices();
  report.budget_total_spent = ledger_.TotalSpent();
  report.budget_min_remaining = ledger_.MinRemaining();
  return report;
}

void QueryService::ExecutePlanned(const std::vector<PlannedQuery>& plan,
                                  ServiceReport& report) {
  Timer plan_timer;
  refs_.clear();
  refs_.reserve(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    ServiceAnswer& answer = report.answers[i];
    answer.query = plan[i].query;
    if (!plan[i].admitted) {
      answer.rejected = true;
      continue;
    }
    refs_.push_back({plan[i].query, i, plan[i].noise_stream});
  }
  const WorkloadPlan& workload = planner_.Plan(refs_);
  report.planner_seconds = plan_timer.Seconds();
  report.groups_formed = workload.groups.size();
  report.avg_group_size = workload.AvgGroupSize();

  // Group estimates land in their submission slots; every slot is written
  // by exactly one group, so groups parallelize freely. Each worker chunk
  // keeps one executor whose scratch survives across its groups.
  // resize, not assign: rejected slots are never read, so stale values
  // from the previous submission are harmless and re-zeroing is waste.
  estimates_.resize(plan.size());
  std::span<double> estimates(estimates_);
  pool_.ParallelFor(
      workload.groups.size(), [&](size_t begin, size_t end) {
        GroupExecutor executor(graph_, plan_, debias_, store_, noise_root_);
        for (size_t g = begin; g < end; ++g) {
          executor.Execute(workload, workload.groups[g], estimates);
        }
      });
  for (const GroupItem& item : workload.items) {
    report.answers[item.slot].estimate = estimates[item.slot];
  }
}

bool QueryService::Admit(const QueryPair& query) {
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  const bool same = query.u == query.w;

  // Which mechanisms does this query run? RR releases are needed only
  // for vertices without a stored view; Laplace releases recur per query.
  const bool rr_u = plan_.UsesNoisyViewU();
  const bool rr_w = plan_.UsesNoisyViewW();
  const bool lap_u = plan_.LaplaceFromU();
  const bool lap_w = plan_.LaplaceFromW();

  const bool rr_u_needed = rr_u && !store_.Contains(u);
  const bool rr_w_needed =
      rr_w && !(same && rr_u) && !store_.Contains(w);

  // Merge the query's charges per distinct vertex, then test them against
  // the residual budgets before committing anything: either the whole
  // query is affordable or nothing is charged.
  std::array<std::pair<LayeredVertex, double>, 2> needs;
  size_t num_needs = 0;
  const auto add = [&](LayeredVertex v, double epsilon) {
    for (size_t i = 0; i < num_needs; ++i) {
      if (needs[i].first == v) {
        needs[i].second += epsilon;
        return;
      }
    }
    needs[num_needs++] = {v, epsilon};
  };
  if (rr_u_needed) add(u, plan_.epsilon1);
  if (rr_w_needed) add(w, plan_.epsilon1);
  if (lap_u) add(u, plan_.epsilon2);
  if (lap_w) add(w, plan_.epsilon2);

  for (size_t i = 0; i < num_needs; ++i) {
    if (needs[i].second > ledger_.Remaining(needs[i].first) +
                              kBudgetTolerance) {
      return false;
    }
  }

  if (rr_u_needed) {
    CNE_CHECK(store_.Authorize(u) == NoisyViewStore::Admission::kAuthorized);
  } else if (rr_u) {
    ++cache_hit_lookups_;  // recorded in bulk after the admission pass
  }
  if (rr_w_needed) {
    CNE_CHECK(store_.Authorize(w) == NoisyViewStore::Admission::kAuthorized);
  } else if (rr_w && !(same && rr_u)) {
    ++cache_hit_lookups_;  // Contains(w) held above: a pure cache hit
  }
  if (lap_u) {
    CNE_CHECK(ledger_.TryCharge(u, plan_.epsilon2));
  }
  if (lap_w) {
    CNE_CHECK(ledger_.TryCharge(w, plan_.epsilon2));
  }
  return true;
}

double QueryService::Answer(const PlannedQuery& planned) const {
  const QueryPair& query = planned.query;
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};

  ReleasedInputs inputs;
  if (plan_.UsesNoisyViewU()) inputs.view_u = &store_.View(u);
  inputs.view_w = &store_.View(w);
  if (plan_.LaplaceFromU()) inputs.neighbors_u = graph_.Neighbors(u);
  if (plan_.LaplaceFromW()) inputs.neighbors_w = graph_.Neighbors(w);
  inputs.opposite_size = graph_.NumVertices(Opposite(query.layer));

  if (plan_.NumLaplaceReleases() == 0) {
    // Naive/OneR draw no per-query noise; skip the substream fork.
    Rng unused(0);
    return PostProcess(plan_, debias_, inputs, unused);
  }
  Rng rng = noise_root_.Fork(planned.noise_stream);
  return PostProcess(plan_, debias_, inputs, rng);
}

}  // namespace cne
