// Shared store of noisy neighbor-list views.
//
// The privacy insight behind the whole service layer (and src/service/
// batch.h before it): once a vertex's ε-randomized-response release
// exists, it is *public*, and every estimate computed from it is
// privacy-free post-processing. The store therefore materializes each
// vertex's noisy view at most once per service lifetime and hands out
// const references — a second query touching the same vertex costs zero
// privacy and zero vertex-side work.
//
// Budget: every materialization charges the store's release budget ε to
// the vertex on the shared `BudgetLedger`; when the ledger refuses (the
// vertex has already spent its lifetime budget on earlier releases), the
// store rejects the release *before* any noise is drawn.
//
// Determinism: vertex v's view is generated from `base_rng.Fork(key(v))`,
// a pure function of the store seed and the vertex identity. Views are
// therefore byte-identical no matter which thread materializes them, in
// what order, or whether they were built lazily (`Get`) or in a parallel
// prefetch (`MaterializeAuthorized`).
//
// Storage: the vertex universe is fixed by the graph at construction, so
// per-vertex state lives in dense per-layer arrays — an atomic lifecycle
// byte and an atomic view pointer per vertex — instead of a sharded hash
// map. The hot paths (Contains, View, a cache-hit Authorize, Get of a
// built view) are single atomic loads with no locking or hashing; one
// mutex serializes only the rare transitions (first authorization, lazy
// builds, the pending list).

#ifndef CNE_SERVICE_NOISY_VIEW_STORE_H_
#define CNE_SERVICE_NOISY_VIEW_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/bipartite_graph.h"
#include "ldp/budget_ledger.h"
#include "ldp/comm_model.h"
#include "ldp/randomized_response.h"
#include "obs/metrics.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cne {

/// Lazily materialized, budget-guarded cache of per-vertex noisy views.
/// All methods are thread-safe.
class NoisyViewStore {
 public:
  /// Outcome of an admission check for one vertex.
  enum class Admission {
    kCacheHit,    ///< view already authorized or materialized; no charge
    kAuthorized,  ///< ε charged; view will materialize on first use
    kRejected,    ///< ledger refused the charge; no release will happen
  };

  /// Cumulative counters over the store's lifetime. All integral: upload
  /// accounting is kept in edges end to end and converted to comm-model
  /// bytes exactly once, in UploadedBytes().
  struct Stats {
    uint64_t lookups = 0;         ///< Authorize/Get calls
    uint64_t releases = 0;        ///< vertices whose RR actually ran/will run
    uint64_t cache_hits = 0;      ///< lookups served by an existing view
    uint64_t rejections = 0;      ///< lookups refused by the ledger
    uint64_t uploaded_edges = 0;  ///< noisy edges uploaded by releases

    /// Fraction of lookups that needed no new release.
    double CacheHitRate() const {
      return lookups == 0
                 ? 0.0
                 : static_cast<double>(cache_hits) / static_cast<double>(lookups);
    }

    /// Uploaded edges converted to bytes under `model`.
    double UploadedBytes(const CommModel& model = CommModel{}) const {
      return model.bytes_per_edge * static_cast<double>(uploaded_edges);
    }
  };

  /// Views are released from `graph` with budget `epsilon` each, charged
  /// to `ledger`. `base_rng` seeds the per-vertex noise substreams; the
  /// graph and ledger must outlive the store.
  NoisyViewStore(const BipartiteGraph& graph, double epsilon,
                 const Rng& base_rng, BudgetLedger& ledger);

  ~NoisyViewStore();

  NoisyViewStore(const NoisyViewStore&) = delete;
  NoisyViewStore& operator=(const NoisyViewStore&) = delete;

  /// Admits `vertex` for release without materializing it: charges the
  /// ledger on first touch, no-op on a repeat. Used by the query
  /// service's sequential admission pass so that accept/reject decisions
  /// are independent of thread count.
  Admission Authorize(LayeredVertex vertex);

  /// Bulk stats recording for lookups the caller already resolved as
  /// cache hits (via Contains): equivalent to `count` cache-hit Authorize
  /// calls, without paying per-call atomic traffic on the hot admission
  /// path.
  void RecordCacheHits(uint64_t count) {
    if (count == 0) return;
    lookups_.fetch_add(count, std::memory_order_relaxed);
    cache_hits_.fetch_add(count, std::memory_order_relaxed);
  }

  /// True if `vertex` has an authorized or materialized view.
  bool Contains(LayeredVertex vertex) const;

  /// Materializes every authorized-but-unbuilt view, fanning the RR
  /// sampling across `pool`.
  void MaterializeAuthorized(ThreadPool& pool);

  /// Returns the view of `vertex`, authorizing and materializing it on
  /// first access; nullptr if the ledger rejects the release. The pointer
  /// stays valid for the store's lifetime. Standalone-store use only: the
  /// lazy first-touch charge is NOT write-ahead journaled, so a service
  /// with persistence must admit through Authorize (which the query
  /// service journals) and read through View — a Get-first-touch on a
  /// persistent service would spend budget that recovery forgets.
  const NoisyNeighborSet* Get(LayeredVertex vertex);

  /// Returns the already-materialized view of `vertex`; fatal check if it
  /// was never authorized or not yet materialized.
  const NoisyNeighborSet& View(LayeredVertex vertex) const;

  /// Randomized-response budget of each release.
  double epsilon() const { return epsilon_; }

  /// Installs a per-view build-latency histogram (nanoseconds per RR
  /// generation; null disables, the default). Set before views start
  /// materializing — the pointer is read without synchronization.
  void set_build_histogram(obs::LatencyHistogram* histogram) {
    build_histogram_ = histogram;
  }

  /// Installs a build-latency exemplar reservoir: the slowest view builds
  /// are retained with the released vertex (exemplar u == w == vertex id),
  /// the built representation/size, and the SIMD level. Only effective
  /// when a build histogram is also installed (exemplars ride the same
  /// clocked samples). Same set-before-use contract as the histogram.
  void set_build_exemplars(obs::ExemplarReservoir* exemplars) {
    build_exemplars_ = exemplars;
  }

  /// Stamps subsequent build exemplars with the current submit sequence
  /// number. Called by the query service at each Submit; not synchronized
  /// against in-flight builds (builds happen inside the same Submit).
  void set_build_submit(uint64_t submit_id) { build_submit_ = submit_id; }

  Stats stats() const;

  // ---- persistence hooks (store/snapshot_format.h) ----
  //
  // A vertex's view is *public the moment it is released*: regenerating
  // it with fresh randomness after a restart would be a second release —
  // a privacy violation the ledger can no longer see. Save/Restore move
  // every touched vertex through a snapshot's views section in its native
  // sorted-or-bitmap representation, together with its ε and the RNG
  // stream it was drawn from, so a restored store serves byte-identical
  // views without drawing a single new bit. Neither may race with
  // concurrent store access — persistence runs between submissions.

  /// Writes a views section: the store's ε, its cumulative stats, and
  /// every authorized or materialized vertex in (layer, id) order.
  void Save(ByteWriter& out) const;

  /// Restores a Save()d views section into this store, which must be
  /// freshly constructed over the same graph with the same ε. Installs
  /// materialized views verbatim (no RNG draws, no ledger charges — the
  /// ledger is restored separately) and re-queues authorized-but-unbuilt
  /// vertices for materialization.
  void Restore(ByteReader& in);

  /// Marks `vertex` authorized without charging the ledger — the WAL
  /// replay path, where the ε charge replays as its own record. The view
  /// itself needs no payload: it regenerates byte-identically from the
  /// vertex's substream on the next materialization pass.
  void RestoreAuthorized(LayeredVertex vertex);

  /// Rolls back an Authorize whose journal record never became durable
  /// (the query service's unsealed-submit recovery): `vertex` must still
  /// be authorized-pending — revocation happens before any release phase
  /// runs, so no noise was drawn for it. Reverses Authorize's bookkeeping
  /// (lookup/release counters, the pending entry, the state byte); the
  /// ledger charge is restored separately. Must not race with concurrent
  /// store access.
  void RevokeAuthorized(LayeredVertex vertex);

 private:
  /// Per-vertex lifecycle, stored release-ordered so a reader seeing
  /// kMaterialized also sees the view pointer.
  enum VertexState : uint8_t {
    kUntouched = 0,
    kAuthorizedPending = 1,  ///< ε charged, view not built yet
    kMaterialized = 2,
  };

  /// Dense per-vertex state of one layer.
  struct LayerTable {
    std::vector<std::atomic<uint8_t>> state;
    std::vector<std::atomic<NoisyNeighborSet*>> view;  ///< owned
  };

  LayerTable& Table(Layer layer) {
    return tables_[static_cast<size_t>(layer)];
  }
  const LayerTable& Table(Layer layer) const {
    return tables_[static_cast<size_t>(layer)];
  }

  /// Generates vertex's noisy view from its dedicated substream.
  std::unique_ptr<NoisyNeighborSet> Generate(LayeredVertex vertex) const;

  /// Publishes a freshly built view (slow_mutex_ must be held) and
  /// records its upload.
  void Publish(LayeredVertex vertex, std::unique_ptr<NoisyNeighborSet> view);

  /// Offers one clocked build to the exemplar reservoir (no-op when none
  /// is installed or the build is faster than the admission floor).
  void OfferBuildExemplar(LayeredVertex vertex, const NoisyNeighborSet& view,
                          uint64_t nanos) const;

  const BipartiteGraph& graph_;
  const double epsilon_;
  const Rng base_rng_;
  BudgetLedger& ledger_;

  LayerTable tables_[2];  ///< indexed by Layer

  /// Serializes state transitions: first authorization, lazy builds, and
  /// the pending list. Never taken on the read fast paths.
  std::mutex slow_mutex_;
  std::vector<LayeredVertex> pending_;  ///< authorized, not yet built

  obs::LatencyHistogram* build_histogram_ = nullptr;  ///< null = off
  obs::ExemplarReservoir* build_exemplars_ = nullptr;  ///< null = off
  uint64_t build_submit_ = 0;  ///< submit id stamped on build exemplars

  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> releases_{0};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> rejections_{0};
  std::atomic<uint64_t> uploaded_edges_{0};
};

}  // namespace cne

#endif  // CNE_SERVICE_NOISY_VIEW_STORE_H_
