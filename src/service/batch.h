// Batch query answering. A production deployment rarely asks for a single
// pair: once a vertex's randomized response has been released, the noisy
// graph is public and *every* estimate computed from it is privacy-free
// post-processing. This module answers a whole workload of same-layer
// query pairs with one ε-RR release per distinct vertex involved, instead
// of re-running the protocol per pair.
//
// Privacy: each vertex perturbs its neighbor list exactly once with the
// full budget ε, so the batch satisfies ε-edge LDP by parallel composition
// across vertices — a strictly better privacy/utility point than running
// Q independent per-pair protocols (which would cost a vertex appearing in
// k pairs a k·ε budget under sequential composition).
//
// These functions are thin single-threaded wrappers over the service
// layer: QueryService + NoisyViewStore + BudgetLedger own the one sharing
// implementation (query_service.h); this header keeps the simple
// functional API and adds the historical same-layer restriction.

#ifndef CNE_SERVICE_BATCH_H_
#define CNE_SERVICE_BATCH_H_

#include <vector>

#include "core/estimator.h"
#include "ldp/budget_ledger.h"

namespace cne {

/// One answered query of a batch.
struct BatchAnswer {
  QueryPair query;
  double estimate = 0.0;
};

/// Result of a batch execution.
struct BatchResult {
  std::vector<BatchAnswer> answers;
  uint64_t vertices_released = 0;  ///< distinct vertices that ran RR
  uint64_t cache_hits = 0;         ///< vertex lookups served by the store
  double cache_hit_rate = 0.0;     ///< cache_hits / vertex lookups
  double uploaded_bytes = 0.0;     ///< total noisy edges uploaded
  /// Residual lifetime budget of every vertex the batch touched, sorted
  /// by (layer, id). Under the batch lifetime budget ε each released
  /// vertex ends at 0 — the accounting proves no vertex can be released
  /// twice.
  std::vector<VertexBudget> residual_budget;
};

/// Answers every query with the OneR estimator over a single shared noisy
/// graph: each distinct query vertex releases one ε-RR noisy neighbor
/// set; every pair estimate is post-processing on those sets. All queries
/// must target the same layer.
BatchResult BatchOneR(const BipartiteGraph& graph,
                      const std::vector<QueryPair>& queries, double epsilon,
                      Rng& rng);

/// Same sharing idea for the Naive count (biased; included for parity
/// with the per-pair roster).
BatchResult BatchNaive(const BipartiteGraph& graph,
                       const std::vector<QueryPair>& queries, double epsilon,
                       Rng& rng);

}  // namespace cne

#endif  // CNE_SERVICE_BATCH_H_
