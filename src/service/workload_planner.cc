#include "service/workload_planner.h"

#include <algorithm>

#include "graph/set_ops.h"
#include "ldp/laplace_mechanism.h"
#include "util/cpu_features.h"
#include "util/logging.h"

namespace cne {

WorkloadPlanner::WorkloadPlanner(const BipartiteGraph& graph) {
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    LayerScratch& scratch = Scratch(layer);
    const size_t n = graph.NumVertices(layer);
    scratch.frequency.resize(n);
    scratch.group.resize(n);
    scratch.freq_stamp.resize(n, 0);
    scratch.group_stamp.resize(n, 0);
  }
}

const WorkloadPlan& WorkloadPlanner::Plan(
    std::span<const PlannedQueryRef> queries) {
  plan_.groups.clear();
  plan_.items.clear();
  plan_.num_queries = queries.size();
  if (queries.empty()) return plan_;
  ++epoch_;

  // Pass 1 — endpoint frequencies over the submission: the busier
  // endpoint of each pair becomes its group source, so a 1×N top-k
  // workload collapses into a single group around the shared source. The
  // epoch stamp makes stale scratch from earlier submissions read as zero
  // without clearing.
  const auto bump = [&](Layer layer, VertexId v) {
    LayerScratch& scratch = Scratch(layer);
    if (scratch.freq_stamp[v] != epoch_) {
      scratch.freq_stamp[v] = epoch_;
      scratch.frequency[v] = 0;
    }
    ++scratch.frequency[v];
  };
  for (const PlannedQueryRef& ref : queries) {
    bump(ref.query.layer, ref.query.u);
    if (ref.query.u != ref.query.w) bump(ref.query.layer, ref.query.w);
  }

  // A query's source and role; ties and self-pairs stay with u.
  const auto source_role = [&](const PlannedQueryRef& ref) {
    LayerScratch& scratch = Scratch(ref.query.layer);
    const bool source_is_u =
        ref.query.u == ref.query.w ||
        scratch.frequency[ref.query.u] >= scratch.frequency[ref.query.w];
    return std::pair<bool, VertexId>(
        source_is_u, source_is_u ? ref.query.u : ref.query.w);
  };

  // Pass 2 — count group sizes per role in first-touch order (the plan is
  // deterministic: no hashing, no thread interleaving).
  for (const PlannedQueryRef& ref : queries) {
    const auto [source_is_u, source] = source_role(ref);
    LayerScratch& scratch = Scratch(ref.query.layer);
    if (scratch.group_stamp[source] != epoch_) {
      scratch.group_stamp[source] = epoch_;
      scratch.group[source] = static_cast<uint32_t>(plan_.groups.size());
      plan_.groups.push_back({{ref.query.layer, source}, 0, 0, 0});
    }
    QueryGroup& group = plan_.groups[scratch.group[source]];
    ++group.end;  // size accumulator until the prefix pass
    if (source_is_u) ++group.num_source_as_u;
  }

  // Prefix pass — carve the flat item buffer into group ranges, each
  // role-partitioned (source-as-u items first).
  u_cursor_.resize(plan_.groups.size());
  w_cursor_.resize(plan_.groups.size());
  uint32_t offset = 0;
  for (size_t g = 0; g < plan_.groups.size(); ++g) {
    QueryGroup& group = plan_.groups[g];
    const uint32_t size = group.end;
    group.begin = offset;
    group.end = offset + size;
    u_cursor_[g] = group.begin;
    w_cursor_[g] = group.begin + group.num_source_as_u;
    offset = group.end;
  }
  plan_.items.resize(queries.size());

  // Pass 3 — place the items; within a role, submission order.
  for (const PlannedQueryRef& ref : queries) {
    const auto [source_is_u, source] = source_role(ref);
    const uint32_t g = Scratch(ref.query.layer).group[source];
    const uint32_t index = source_is_u ? u_cursor_[g]++ : w_cursor_[g]++;
    plan_.items[index] = {source_is_u ? ref.query.w : ref.query.u, ref.slot,
                          ref.noise_stream, source_is_u};
  }

  // Largest groups first, so the shared rows that pay for reuse run while
  // the pool is fullest; source id breaks ties for a deterministic plan.
  std::sort(plan_.groups.begin(), plan_.groups.end(),
            [](const QueryGroup& a, const QueryGroup& b) {
              if (a.Size() != b.Size()) return a.Size() > b.Size();
              return PackLayeredVertex(a.source) <
                     PackLayeredVertex(b.source);
            });
  return plan_;
}

GroupExecutor::GroupExecutor(const BipartiteGraph& graph,
                             const ProtocolPlan& plan,
                             const DebiasConstants& debias,
                             const NoisyViewStore& store,
                             const Rng& noise_root,
                             obs::LatencyHistogram* post_process,
                             obs::ExemplarReservoir* exemplars,
                             uint64_t submit_id)
    : graph_(graph),
      plan_(plan),
      debias_(debias),
      store_(store),
      noise_root_(noise_root),
      post_process_(post_process),
      exemplars_(exemplars),
      submit_(submit_id) {}

void GroupExecutor::Execute(const WorkloadPlan& plan,
                            const QueryGroup& group,
                            std::span<double> estimates) {
  const std::span<const GroupItem> items = plan.Items(group);
  if (plan_.kind == ProtocolKind::kNaive ||
      plan_.kind == ProtocolKind::kOneR) {
    // Symmetric protocols: the u/w roles are interchangeable, one run
    // covers the whole group.
    ExecuteRun(group, items, /*source_as_u=*/true, estimates);
    return;
  }
  ExecuteRun(group, items.subspan(0, group.num_source_as_u),
             /*source_as_u=*/true, estimates);
  ExecuteRun(group, items.subspan(group.num_source_as_u),
             /*source_as_u=*/false, estimates);
}

void GroupExecutor::ExecuteRun(const QueryGroup& group,
                               std::span<const GroupItem> items,
                               bool source_as_u,
                               std::span<double> estimates) {
  if (items.empty()) return;
  const Layer layer = group.source.layer;

  // Exemplar hook for a clocked sample: builds the full context — the
  // reconstructed query pair, the batch kernel that the operand shapes
  // dispatch to, both operand representations/sizes, the SIMD level —
  // but only when the sample is slow enough to displace a kept exemplar
  // (one relaxed load otherwise). `a` is the source-side operand of the
  // batch pass, `b` the candidate-side one.
  const auto offer = [&](std::span<const GroupItem> run_items, size_t i,
                         uint64_t dt, const SetView& a, const SetView& b,
                         bool run_source_as_u) {
    if (exemplars_ == nullptr || !exemplars_->WouldAccept(dt)) return;
    obs::Exemplar e;
    e.seconds = static_cast<double>(dt) * 1e-9;
    e.submit = submit_;
    e.has_query = true;
    e.layer = static_cast<uint8_t>(layer);
    e.u = run_source_as_u ? group.source.id : run_items[i].candidate;
    e.w = run_source_as_u ? run_items[i].candidate : group.source.id;
    e.kernel = DispatchedKernelName(a, b);
    const char* repr_a = a.IsBitmap() ? "bitmap" : "sorted";
    const char* repr_b = b.IsBitmap() ? "bitmap" : "sorted";
    e.repr_u = run_source_as_u ? repr_a : repr_b;
    e.size_u = run_source_as_u ? a.Size() : b.Size();
    e.repr_w = run_source_as_u ? repr_b : repr_a;
    e.size_w = run_source_as_u ? b.Size() : a.Size();
    e.simd = SimdLevelName(ActiveSimdLevel());
    exemplars_->Offer(dt, e);
  };

  switch (plan_.kind) {
    case ProtocolKind::kNaive:
    case ProtocolKind::kOneR: {
      // Per-source reuse: the source's released view is resolved once and
      // every candidate view streams past it in one batch pass.
      const NoisyNeighborSet& source_view = store_.View(group.source);
      const VertexId opposite = graph_.NumVertices(Opposite(layer));
      candidate_views_.clear();
      candidate_views_.reserve(items.size());
      for (const GroupItem& item : items) {
        candidate_views_.push_back(
            store_.View({layer, item.candidate}).View());
        // Start each view's backing storage toward cache while the rest
        // of the group is still being resolved from the store; the batch
        // kernel's own N-ahead prefetch takes over from there.
        PrefetchSetView(candidate_views_.back());
      }
      counts_.resize(items.size());
      BatchIntersectionSize(source_view.View(), candidate_views_, counts_);
      const auto on_sample = [&](size_t i, uint64_t dt) {
        offer(items, i, dt, source_view.View(), candidate_views_[i], true);
      };
      if (plan_.kind == ProtocolKind::kNaive) {
        ForEachSampled(
            items.size(),
            [&](size_t i) {
              estimates[items[i].slot] = static_cast<double>(counts_[i]);
            },
            on_sample);
      } else {
        ForEachSampled(
            items.size(),
            [&](size_t i) {
              const uint64_t n1 = counts_[i];
              const uint64_t n2 =
                  source_view.Size() + candidate_views_[i].Size() - n1;
              estimates[items[i].slot] =
                  OneRFromCounts(debias_, n1, n2, opposite);
            },
            on_sample);
      }
      return;
    }

    case ProtocolKind::kMultiRSS: {
      if (source_as_u) {
        // f_source against every candidate's view: the source's true
        // neighbor list and degree are fetched once.
        const auto neighbors = graph_.Neighbors(group.source);
        candidate_views_.clear();
        candidate_views_.reserve(items.size());
        for (const GroupItem& item : items) {
          candidate_views_.push_back(
              store_.View({layer, item.candidate}).View());
          PrefetchSetView(candidate_views_.back());
        }
        counts_.resize(items.size());
        BatchIntersectionSize(SetView::Sorted(neighbors), candidate_views_,
                              counts_);
        ForEachSampled(
            items.size(),
            [&](size_t i) {
              const double f_u = SingleSourceFromCounts(debias_, counts_[i],
                                                        neighbors.size());
              Rng rng = noise_root_.Fork(items[i].noise_stream);
              estimates[items[i].slot] =
                  LaplaceMechanism(f_u, debias_.stay, plan_.epsilon2, rng);
            },
            [&](size_t i, uint64_t dt) {
              offer(items, i, dt, SetView::Sorted(neighbors),
                    candidate_views_[i], true);
            });
      } else {
        // The source is the released side: its view is resolved once and
        // every candidate's true neighbor list probes into it.
        const NoisyNeighborSet& source_view = store_.View(group.source);
        candidate_sorted_.clear();
        candidate_sorted_.reserve(items.size());
        for (const GroupItem& item : items) {
          candidate_sorted_.push_back(
              SetView::Sorted(graph_.Neighbors(layer, item.candidate)));
        }
        counts_.resize(items.size());
        BatchIntersectionSize(source_view.View(), candidate_sorted_,
                              counts_);
        ForEachSampled(
            items.size(),
            [&](size_t i) {
              const double f_u = SingleSourceFromCounts(
                  debias_, counts_[i], candidate_sorted_[i].Size());
              Rng rng = noise_root_.Fork(items[i].noise_stream);
              estimates[items[i].slot] =
                  LaplaceMechanism(f_u, debias_.stay, plan_.epsilon2, rng);
            },
            [&](size_t i, uint64_t dt) {
              offer(items, i, dt, source_view.View(), candidate_sorted_[i],
                    false);
            });
      }
      return;
    }

    case ProtocolKind::kMultiRDS: {
      // Both directions batched against the source: the source's true
      // neighbors sweep the candidate views, and the candidates' true
      // neighbors sweep the source's view.
      const auto source_neighbors = graph_.Neighbors(group.source);
      const NoisyNeighborSet& source_view = store_.View(group.source);
      candidate_views_.clear();
      candidate_sorted_.clear();
      candidate_views_.reserve(items.size());
      candidate_sorted_.reserve(items.size());
      for (const GroupItem& item : items) {
        candidate_views_.push_back(
            store_.View({layer, item.candidate}).View());
        PrefetchSetView(candidate_views_.back());
        candidate_sorted_.push_back(
            SetView::Sorted(graph_.Neighbors(layer, item.candidate)));
      }
      counts_.resize(items.size());
      reverse_counts_.resize(items.size());
      BatchIntersectionSize(SetView::Sorted(source_neighbors),
                            candidate_views_, counts_);
      BatchIntersectionSize(source_view.View(), candidate_sorted_,
                            reverse_counts_);
      // counts_[i] pairs the source's neighbors with the candidate's
      // view; reverse_counts_[i] the other way around. Map them onto the
      // protocol's (u, w) roles and draw f_u's noise before f_w's,
      // exactly as the per-query path does.
      ForEachSampled(
          items.size(),
          [&](size_t i) {
            const double f_source = SingleSourceFromCounts(
                debias_, counts_[i], source_neighbors.size());
            const double f_candidate = SingleSourceFromCounts(
                debias_, reverse_counts_[i], candidate_sorted_[i].Size());
            Rng rng = noise_root_.Fork(items[i].noise_stream);
            const double first = source_as_u ? f_source : f_candidate;
            const double second = source_as_u ? f_candidate : f_source;
            const double f_u =
                LaplaceMechanism(first, debias_.stay, plan_.epsilon2, rng);
            const double f_w =
                LaplaceMechanism(second, debias_.stay, plan_.epsilon2, rng);
            estimates[items[i].slot] =
                CombineDoubleSource(plan_.alpha, f_u, f_w);
          },
          [&](size_t i, uint64_t dt) {
            offer(items, i, dt, SetView::Sorted(source_neighbors),
                  candidate_views_[i], source_as_u);
          });
      return;
    }
  }
  CNE_CHECK(false) << "unreachable";
}

}  // namespace cne
