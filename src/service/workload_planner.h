// Vertex-grouped batch planning for service submissions.
//
// The paper's applications — private similarity search, top-k, graph
// projection — are one-vs-many workloads: one source vertex queried
// against hundreds of candidates. Executing such a submission query by
// query pays N store lookups of the same source view, N de-bias setups,
// and N uncoordinated intersections. The planner instead groups a
// submission's admitted queries by their most-shared endpoint and executes
// each group with per-source reused state:
//
//   * the source's view (or true neighbor list) is resolved once,
//   * the de-bias constants are applied from one precomputed set,
//   * all candidates stream past the source row in one
//     BatchIntersectionSize pass (graph/set_ops.h).
//
// Answers are byte-identical to the per-query path: intersection counts
// are exact integers from the same kernels, the arithmetic runs through
// the same core/protocol_pipeline.h helpers, and each query's Laplace
// noise comes from its own admission-assigned substream — execution order
// never touches the noise.

#ifndef CNE_SERVICE_WORKLOAD_PLANNER_H_
#define CNE_SERVICE_WORKLOAD_PLANNER_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/protocol_pipeline.h"
#include "obs/trace.h"
#include "service/noisy_view_store.h"
#include "util/rng.h"

namespace cne {

/// One admitted query, as handed to the planner.
struct PlannedQueryRef {
  QueryPair query;
  size_t slot = 0;            ///< index into the submission's answers
  uint64_t noise_stream = 0;  ///< Laplace substream (MultiR family)
};

/// One query of a group: the endpoint that is not the group source, plus
/// the role the source plays in the pair (the MultiR protocols are
/// asymmetric in u and w).
struct GroupItem {
  VertexId candidate = 0;
  size_t slot = 0;
  uint64_t noise_stream = 0;
  bool source_is_u = false;
};

/// Admitted queries sharing one endpoint: the half-open range
/// [begin, end) of WorkloadPlan::items, role-partitioned so that the
/// source plays u in items[begin .. begin + num_source_as_u) and w in the
/// rest (within a role, submission order).
struct QueryGroup {
  LayeredVertex source{Layer::kLower, 0};
  uint32_t begin = 0;
  uint32_t end = 0;
  uint32_t num_source_as_u = 0;

  uint32_t Size() const { return end - begin; }
};

/// A planned submission: all items in one flat buffer (CSR-style, so a
/// plan costs two passes and zero per-group allocations) with groups
/// ordered largest first — the shared rows that pay for reuse execute
/// while the pool is fullest, singletons last.
struct WorkloadPlan {
  std::vector<QueryGroup> groups;
  std::vector<GroupItem> items;
  uint64_t num_queries = 0;

  std::span<const GroupItem> Items(const QueryGroup& group) const {
    return std::span<const GroupItem>(items).subspan(group.begin,
                                                     group.Size());
  }

  double AvgGroupSize() const {
    return groups.empty() ? 0.0
                          : static_cast<double>(num_queries) /
                                static_cast<double>(groups.size());
  }
};

/// Builds workload plans: each query joins the group of whichever of its
/// endpoints occurs more often in the submission (ties and self-pairs go
/// to u). Deterministic — a plan depends only on the query list, never on
/// hashing or thread count.
///
/// The planner keeps dense per-layer scratch (an epoch-stamped frequency
/// and group slot per vertex, sized to the graph once), so planning costs
/// two linear passes and no hashing — cheap enough to run on every
/// submission of a long-lived service.
class WorkloadPlanner {
 public:
  explicit WorkloadPlanner(const BipartiteGraph& graph);

  /// Plans `queries`. The returned reference stays valid until the next
  /// Plan call — the plan's buffers are reused across submissions.
  const WorkloadPlan& Plan(std::span<const PlannedQueryRef> queries);

 private:
  struct LayerScratch {
    std::vector<uint32_t> frequency;    ///< endpoint occurrences
    std::vector<uint32_t> group;        ///< group index of a source vertex
    std::vector<uint64_t> freq_stamp;   ///< epoch when `frequency` is valid
    std::vector<uint64_t> group_stamp;  ///< epoch when `group` is valid
  };

  LayerScratch& Scratch(Layer layer) {
    return scratch_[static_cast<size_t>(layer)];
  }

  LayerScratch scratch_[2];  ///< indexed by Layer
  std::vector<uint32_t> u_cursor_;  ///< per-group placement cursors
  std::vector<uint32_t> w_cursor_;
  WorkloadPlan plan_;
  uint64_t epoch_ = 0;
};

/// Executes planned groups against the shared store. One executor per
/// worker; Execute may be called for any subset of groups in any order
/// (scratch is reused across calls, results only touch each item's slot).
class GroupExecutor {
 public:
  /// All referenced views must already be materialized. `noise_root` is
  /// the parent of the per-query Laplace substreams. `post_process`, when
  /// non-null, receives chunk-sampled per-query post-processing latencies
  /// (one item per kSampleStride is clocked; see ForEachSampled).
  /// `exemplars`, when non-null, additionally retains the slowest sampled
  /// items with their kernel/operand context, tagged `submit_id`.
  GroupExecutor(const BipartiteGraph& graph, const ProtocolPlan& plan,
                const DebiasConstants& debias, const NoisyViewStore& store,
                const Rng& noise_root,
                obs::LatencyHistogram* post_process = nullptr,
                obs::ExemplarReservoir* exemplars = nullptr,
                uint64_t submit_id = 0);

  /// Computes every item's estimate into estimates[item.slot].
  void Execute(const WorkloadPlan& plan, const QueryGroup& group,
               std::span<double> estimates);

 private:
  /// One item per stride gets the clock pair; the estimate loops run a few
  /// ns per item (post-SIMD), so the stride must amortize two ~40 ns clock
  /// reads to a centi-ns per-item cost.
  static constexpr size_t kSampleStride = 512;

  /// Runs one role-homogeneous span of items (`source_as_u` tells which
  /// role the source plays in all of them).
  void ExecuteRun(const QueryGroup& group, std::span<const GroupItem> items,
                  bool source_as_u, std::span<double> estimates);

  /// Calls body(i) for i in [0, n). With post-process timing enabled, one
  /// item per kSampleStride is clocked and recorded; the rest run in a
  /// tight inner loop with no per-item branch, so the compiler optimizes
  /// the common path exactly as if timing were off. The countdown persists
  /// across calls: groups are often far smaller than the stride, and
  /// restarting per call would clock every group's first item — at tens of
  /// ns per clock pair that alone would dominate a ~60 ns/query submit.
  template <typename Body, typename OnSample>
  void ForEachSampled(size_t n, Body&& body, OnSample&& on_sample) {
    if (post_process_ == nullptr) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    size_t i = 0;
    while (i < n) {
      const size_t burn = std::min(n - i, sample_countdown_);
      sample_countdown_ -= burn;
      for (const size_t chunk_end = i + burn; i < chunk_end; ++i) body(i);
      if (i < n) {
        const uint64_t t0 = obs::NowNanos();
        body(i);
        const uint64_t dt = obs::NowNanos() - t0;
        post_process_->Record(dt);
        // Exemplar hook, on already-clocked samples only: the call site
        // builds the context (kernel, operands) when the sample is slow
        // enough to displace a kept exemplar.
        on_sample(i, dt);
        ++i;
        sample_countdown_ = kSampleStride - 1;
      }
    }
  }

  template <typename Body>
  void ForEachSampled(size_t n, Body&& body) {
    ForEachSampled(n, std::forward<Body>(body), [](size_t, uint64_t) {});
  }

  const BipartiteGraph& graph_;
  const ProtocolPlan& plan_;
  const DebiasConstants& debias_;
  const NoisyViewStore& store_;
  const Rng& noise_root_;
  obs::LatencyHistogram* post_process_;
  obs::ExemplarReservoir* exemplars_;
  uint64_t submit_;              ///< submit id stamped on exemplars
  size_t sample_countdown_ = 0;  ///< items until the next clocked sample

  // Scratch reused across groups.
  std::vector<SetView> candidate_views_;
  std::vector<SetView> candidate_sorted_;
  std::vector<uint64_t> counts_;
  std::vector<uint64_t> reverse_counts_;
};

}  // namespace cne

#endif  // CNE_SERVICE_WORKLOAD_PLANNER_H_
