// Concurrent common-neighborhood query service.
//
// The per-pair estimators (core/) simulate one protocol execution per
// query; real deployments issue huge same-graph workloads where the same
// vertices recur constantly. The service turns the roster into a
// high-throughput engine built on three parts:
//
//   * a NoisyViewStore releasing each vertex's noisy neighbor list at
//     most once per service lifetime (shared post-processing),
//   * a BudgetLedger enforcing per-vertex edge-LDP composition across
//     every release the service ever makes, and
//   * a ThreadPool + Rng::Fork substreams making execution byte-identical
//     to sequential for any thread count.
//
// Algorithms and their per-query budget charges (lifetime budget B,
// default B = ε):
//
//   kNaive / kOneR   one ε-RR release per distinct vertex, then pure
//                    post-processing — unlimited queries per vertex.
//   kMultiRSS        w's ε1-RR release is shared; each query additionally
//                    releases f_u through Laplace, charging ε2 to u.
//   kMultiRDS        both ε1-RR releases shared; each query charges ε2 to
//                    u and to w for the two Laplace releases (the
//                    basic α = 1/2 combination — the per-query degree
//                    round would cost every vertex ε0 per query, which a
//                    lifetime ledger immediately exposes as unaffordable).
//
// A query whose charges do not fit in every participant's residual budget
// is rejected (deterministically: admission runs in submission order)
// and reported as such — never silently answered over budget.

#ifndef CNE_SERVICE_QUERY_SERVICE_H_
#define CNE_SERVICE_QUERY_SERVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/protocol_pipeline.h"
#include "ldp/budget_ledger.h"
#include "obs/metrics.h"
#include "service/noisy_view_store.h"
#include "service/workload_planner.h"
#include "store/snapshot_format.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cne {

/// The estimators the service can run over the shared store — the four
/// protocols of the shared pipeline (core/protocol_pipeline.h).
using ServiceAlgorithm = ProtocolKind;

/// Parses a display name ("Naive", "OneR", "MultiR-SS", "MultiR-DS").
inline std::optional<ServiceAlgorithm> ParseServiceAlgorithm(
    const std::string& name) {
  return ParseProtocolKind(name);
}

/// The service's durability health (see docs/ARCHITECTURE.md, "Failure
/// model & degradation"). Transitions are one-way within a process except
/// kDegradedReadOnly -> kHealthy via a successful Checkpoint(), which
/// re-establishes a journal; a restart always recovers to kHealthy from
/// the last durable state.
enum class ServiceHealth : uint8_t {
  /// Journaling (when persistent) and serving normally.
  kHealthy = 0,
  /// The WAL failed (append/fsync, or restart after a checkpoint).
  /// In-memory state is intact — every failed batch was rolled back — but
  /// new charges cannot be made durable, so anything needing one is
  /// refused. Queries over already-released views still answer: they are
  /// pure post-processing of public data, no new budget, no new noise.
  kDegradedReadOnly = 1,
  /// An unexpected failure mid-release/execute left in-memory state
  /// untrusted; the service refuses everything. Restart to recover.
  kFailed = 2,
};

const char* ServiceHealthName(ServiceHealth health);

/// Why a query was rejected (ServiceAnswer::reason).
enum class RejectReason : uint8_t {
  kNone = 0,        ///< not rejected
  kBudget = 1,      ///< the ledger could not afford the query's releases
  kReadOnly = 2,    ///< degraded mode refused a query needing a new charge
  /// The batch's WAL seal failed: every charge was rolled back, no noise
  /// was drawn, and the whole submission reports this reason.
  kDurability = 3,
  kServiceFailed = 4,  ///< the service is in ServiceHealth::kFailed
};

const char* RejectReasonName(RejectReason reason);

/// Service configuration, fixed for the service lifetime.
struct ServiceOptions {
  ServiceAlgorithm algorithm = ServiceAlgorithm::kOneR;

  /// Per-query protocol budget ε (split ε1/ε2 for the MultiR family).
  double epsilon = 2.0;

  /// Lifetime ε each vertex may spend across every release the service
  /// makes; 0 means "equal to epsilon". Raising it above epsilon lets a
  /// vertex source multiple MultiR releases at a correspondingly weaker
  /// whole-lifetime guarantee.
  double lifetime_budget = 0.0;

  /// Share of ε spent on randomized response by kMultiRSS/kMultiRDS.
  double epsilon1_fraction = 0.5;

  /// Threads executing each Submit (<= 0: hardware concurrency).
  int num_threads = 1;

  /// Master seed; with everything else equal, answers are byte-identical
  /// across runs and thread counts.
  uint64_t seed = 7;

  /// Execute submissions through the WorkloadPlanner: admitted queries are
  /// grouped by shared endpoint and each group runs with per-source reused
  /// state (service/workload_planner.h). Answers are byte-identical to the
  /// per-query path; disable only to measure the planner's benefit.
  bool enable_planner = true;

  /// Directory for crash-safe persistence (snapshot + budget write-ahead
  /// log, store/). Empty disables persistence. When set, the service
  /// recovers any existing state at construction (snapshot load + WAL
  /// replay — throws std::runtime_error if the on-disk state was produced
  /// under different options or a different graph), journals every budget
  /// charge and view authorization ahead of acting on it, and persists
  /// full state on Checkpoint(). A killed service reconstructed over the
  /// same directory restarts byte-identical: same answers, same residual
  /// budgets, zero re-randomized views.
  std::string snapshot_dir;

  /// Snapshot-commit attempts per Checkpoint() (>= 1). A transient IO
  /// failure is retried with exponential backoff; the last good snapshot
  /// stays in place throughout (atomic rename-on-commit) and each failed
  /// attempt's temp file is quarantined for inspection.
  int checkpoint_attempts = 3;

  /// Base of the exponential backoff between checkpoint attempts
  /// (attempt k sleeps base * 2^k milliseconds). 0 disables sleeping —
  /// tests inject deterministic faults and need no wall-clock delay.
  double checkpoint_backoff_ms = 10.0;

  /// Observability level (obs/metrics.h). kFull records per-phase latency
  /// histograms (admission, wal_fsync, release, plan, execute,
  /// post_process, checkpoint) plus counters; kCounters keeps only the
  /// counters; kOff registers nothing and reduces every recording site to
  /// a null-pointer branch. Never affects answers.
  obs::MetricsLevel metrics_level = obs::MetricsLevel::kFull;
};

/// What recovery found when a persistent service opened its directory.
struct RecoveryStats {
  bool snapshot_loaded = false;
  double snapshot_load_seconds = 0.0;  ///< snapshot read + WAL replay
  uint64_t wal_replay_records = 0;     ///< committed records re-applied
  /// Complete records after the last commit barrier — an admission batch
  /// whose fsync never finished; the service never acted on them.
  uint64_t wal_discarded_records = 0;
  bool wal_torn_tail = false;          ///< file ended in a torn record
  uint64_t wal_dropped_bytes = 0;      ///< torn bytes discarded
};

/// One answered (or rejected) query.
struct ServiceAnswer {
  QueryPair query;
  double estimate = 0.0;
  /// True when the query was not answered; `estimate` is meaningless then
  /// and `reason` says why (budget, degraded mode, a failed seal, ...).
  bool rejected = false;
  RejectReason reason = RejectReason::kNone;
};

/// Outcome of one Submit: answers plus service-lifetime accounting.
struct ServiceReport {
  std::vector<ServiceAnswer> answers;

  // This submission.
  uint64_t answered = 0;
  uint64_t rejected = 0;
  uint64_t rejected_budget = 0;       ///< RejectReason::kBudget
  uint64_t rejected_unavailable = 0;  ///< kReadOnly/kDurability/kServiceFailed
  double seconds = 0.0;

  /// Service health after this submission.
  ServiceHealth health = ServiceHealth::kHealthy;

  /// True when this submission's admissions are durable (or persistence
  /// is off). False when the WAL seal failed — the batch was rolled back
  /// and every answer carries RejectReason::kDurability — or when a
  /// degraded service answered read-only queries with no journal at all.
  bool sealed = true;

  // Planner accounting for this submission (zero when the planner was
  // disabled or nothing was admitted).
  uint64_t groups_formed = 0;
  double avg_group_size = 0.0;
  double planner_seconds = 0.0;  ///< plan construction only, not execution

  // Cumulative over the service lifetime.
  NoisyViewStore::Stats store;
  uint64_t budget_vertices_charged = 0;
  double budget_total_spent = 0.0;
  double budget_min_remaining = 0.0;

  // Persistence accounting (all zero when persistence is disabled).
  double snapshot_load_seconds = 0.0;  ///< recovery cost at service open
  uint64_t wal_replay_records = 0;     ///< WAL records replayed at open
  double checkpoint_seconds = 0.0;     ///< duration of the last Checkpoint()

  /// Service-lifetime metrics (counters + per-phase latency quantiles,
  /// obs/metrics.h). Submit leaves this EMPTY — a registry snapshot is
  /// too expensive for the per-batch hot path — so callers that want it
  /// fill it from QueryService::SnapshotMetrics() at their own cadence.
  /// Cumulative, so the latest snapshot supersedes earlier ones.
  obs::MetricsSnapshot metrics;

  /// Answered queries per second. Rejections are excluded — they take
  /// only the admission fast path, so counting them would inflate
  /// throughput for budget-constrained workloads.
  double QueriesPerSecond() const {
    return seconds > 0.0 ? static_cast<double>(answered) / seconds : 0.0;
  }
};

/// A long-lived query engine over one graph. Submit may be called
/// repeatedly — privacy accounting accumulates across calls — but from
/// one caller at a time: the service parallelizes internally rather than
/// supporting reentrant Submits.
class QueryService {
 public:
  /// The graph must outlive the service. With options.snapshot_dir set,
  /// opens (and if state exists, recovers) the persistent service there;
  /// throws std::runtime_error when the on-disk state does not match the
  /// options or the graph.
  QueryService(const BipartiteGraph& graph, ServiceOptions options);

  ~QueryService();

  /// Answers `queries` (any mix of layers) and returns answers in input
  /// order. Deterministic: depends only on the graph, options, and the
  /// submission history — never on num_threads, scheduling, or whether the
  /// planner is enabled.
  ServiceReport Submit(const std::vector<QueryPair>& queries);

  /// Raises the lifetime budget every vertex may spend (see
  /// BudgetLedger::RaiseLifetimeBudget): queries rejected earlier may be
  /// resubmitted and admitted against the new bound. Must not race with a
  /// concurrent Submit.
  void RaiseLifetimeBudget(double new_budget);

  /// Writes a crash-consistent snapshot of the full service state (graph,
  /// views, ledger, substream counter) to the snapshot directory with
  /// atomic rename-on-commit, then starts a fresh WAL epoch. Requires
  /// persistence; must not race with a concurrent Submit. Returns the
  /// checkpoint duration in seconds.
  double Checkpoint();

  /// True when the service journals to a snapshot directory.
  bool persistent() const { return persist_ != nullptr; }

  /// Current durability health (see ServiceHealth). A WAL failure flips a
  /// persistent service to kDegradedReadOnly; a successful Checkpoint()
  /// heals it back to kHealthy.
  ServiceHealth health() const { return health_; }

  /// The Laplace substream counter after the last sealed submission — in
  /// effect, the number of queries whose admission is durable. Exposed for
  /// recovery harnesses that need to know how much of a workload a killed
  /// service had committed.
  uint64_t next_noise_stream() const { return next_noise_stream_; }

  /// Recovery accounting from construction (all zero when persistence is
  /// disabled or the directory was empty).
  const RecoveryStats& recovery() const { return recovery_; }

  const ServiceOptions& options() const { return options_; }
  const BudgetLedger& ledger() const { return ledger_; }
  const NoisyViewStore& store() const { return store_; }

  /// Current cumulative metrics without submitting anything (the same
  /// snapshot every ServiceReport carries): counters, gauges, per-phase
  /// quantiles, tail exemplars, and the ledger's budget burn-down
  /// (BudgetBurnDown). Empty at kOff.
  obs::MetricsSnapshot SnapshotMetrics() const;

 private:
  struct Persistence;  // snapshot paths + WAL handle (query_service.cc)
  struct PlannedQuery {
    QueryPair query;
    bool admitted = false;
    RejectReason reason = RejectReason::kNone;
    uint64_t noise_stream = 0;  ///< Laplace substream (MultiR family)
  };

  /// Sequential, deterministic admission of one query: checks that every
  /// charge fits, then commits them all (or none). Committed charges and
  /// view authorizations are journaled ahead of the release phase when
  /// persistence is on, and recorded in the rollback scratch so a failed
  /// seal can revoke them. kNone means admitted.
  RejectReason Admit(const QueryPair& query);

  /// Seal-failure recovery: restores the ledger rows, revokes the store
  /// authorizations, and rewinds the substream counter recorded during
  /// this submission's admission pass, then marks every answer rejected
  /// with RejectReason::kDurability. After it returns, in-memory state is
  /// exactly what it was before Submit.
  void RollbackUnsealedSubmit(uint64_t noise_stream_mark,
                              const std::vector<PlannedQuery>& plan,
                              ServiceReport& report);

  /// Flips health to kDegradedReadOnly (from kHealthy) and records the
  /// transition (counter, gauge, warning log).
  void EnterDegraded(const std::string& why);

  /// Fills the per-submission tallies, lifetime accounting, and metrics
  /// snapshot of `report` — the common tail of every Submit outcome.
  void FinalizeReport(ServiceReport& report, double seconds);

  /// Opens the snapshot directory: recovers snapshot + WAL state when
  /// present, then leaves a WAL handle ready for appending.
  void OpenPersistent();

  /// The service configuration as a snapshot config section.
  SnapshotConfig CurrentConfig() const;

  /// Post-processing / release phase for one admitted query — the
  /// per-query driver over the shared pipeline's PostProcess.
  double Answer(const PlannedQuery& planned) const;

  /// Planner path of phase 3: groups the admitted queries by shared
  /// endpoint and executes each group with per-source reused state.
  /// Byte-identical to the per-query path.
  void ExecutePlanned(const std::vector<PlannedQuery>& plan,
                      ServiceReport& report);

  /// Registers metric handles per options_.metrics_level (constructor
  /// helper). Null handles keep every recording site a branch.
  void InitMetrics();

  const BipartiteGraph& graph_;
  const ServiceOptions options_;
  const ProtocolPlan plan_;        ///< the protocol's release structure
  const DebiasConstants debias_;   ///< φ constants of an ε1 release
  BudgetLedger ledger_;
  const Rng root_;
  NoisyViewStore store_;
  Rng noise_root_;  ///< parent of the per-query Laplace substreams
  ThreadPool pool_;
  WorkloadPlanner planner_;
  uint64_t next_noise_stream_ = 0;

  std::unique_ptr<Persistence> persist_;  ///< null without snapshot_dir
  RecoveryStats recovery_;
  ServiceHealth health_ = ServiceHealth::kHealthy;

  // Observability (obs/). The registry owns the metrics; the raw pointers
  // are the hot-path handles, null whenever the metrics level (or the
  // compile-time switch) disables them.
  obs::MetricsRegistry metrics_;
  obs::Counter* c_queries_ = nullptr;     ///< queries submitted
  obs::Counter* c_answered_ = nullptr;    ///< queries answered
  obs::Counter* c_rejected_ = nullptr;    ///< queries rejected at admission
  obs::Counter* c_submits_ = nullptr;     ///< Submit calls
  obs::Counter* c_checkpoints_ = nullptr; ///< Checkpoint calls
  // Fault / degradation accounting (all zero in a healthy lifetime).
  obs::Counter* c_rejected_budget_ = nullptr;       ///< kBudget rejections
  obs::Counter* c_rejected_unavailable_ = nullptr;  ///< degraded rejections
  obs::Counter* c_wal_failures_ = nullptr;          ///< failed seals/raises
  obs::Counter* c_submit_rollbacks_ = nullptr;      ///< unsealed rollbacks
  obs::Counter* c_checkpoint_failures_ = nullptr;   ///< failed commit tries
  obs::Counter* c_checkpoint_retries_ = nullptr;    ///< commit re-attempts
  obs::Counter* c_health_transitions_ = nullptr;    ///< state changes
  obs::Gauge* g_health_ = nullptr;                  ///< ServiceHealth value
  obs::LatencyHistogram* h_admission_ = nullptr;     ///< per query
  obs::LatencyHistogram* h_wal_fsync_ = nullptr;     ///< per submit seal
  obs::LatencyHistogram* h_release_ = nullptr;       ///< per submit barrier
  obs::LatencyHistogram* h_plan_ = nullptr;          ///< per planned submit
  obs::LatencyHistogram* h_execute_ = nullptr;       ///< per group / chunk
  obs::LatencyHistogram* h_post_process_ = nullptr;  ///< per query, sampled
  obs::LatencyHistogram* h_checkpoint_ = nullptr;    ///< per checkpoint
  // Budget burn-down telemetry (≥ kCounters): per-protocol ε spend in
  // integer micro-ε (counters are u64) and the exhausted-vertex gauge.
  obs::Counter* c_spend_rr_ = nullptr;       ///< RR ε spent, micro-ε
  obs::Counter* c_spend_laplace_ = nullptr;  ///< Laplace ε spent, micro-ε
  obs::Gauge* g_budget_exhausted_ = nullptr; ///< ledger NumExhausted
  // Tail exemplar reservoirs (kFull): slowest clocked samples per phase,
  // with kernel/operand context (obs/exemplar.h).
  obs::ExemplarReservoir* ex_admission_ = nullptr;
  obs::ExemplarReservoir* ex_post_process_ = nullptr;
  obs::ExemplarReservoir* ex_release_build_ = nullptr;

  // Submit-level scratch, reused across submissions (Submit is not
  // reentrant by contract).
  std::vector<PlannedQueryRef> refs_;
  std::vector<double> estimates_;
  uint64_t cache_hit_lookups_ = 0;  ///< flushed to the store per Submit
  uint64_t submit_seq_ = 0;         ///< 1-based id of the current Submit
  // Per-mechanism ε spent by the current submission, flushed to the
  // micro-ε counters only once the batch seals — a rolled-back batch must
  // leave the burn-down counters exactly as found.
  double submit_spend_rr_ = 0.0;
  double submit_spend_laplace_ = 0.0;

  // Rollback scratch for the current submission (persistent + healthy
  // only): each ledger mutation's prior spend, recorded *before* the
  // charge, and each vertex authorized. A failed seal replays charges in
  // reverse — exact doubles, no refund arithmetic — and revokes the
  // authorizations.
  std::vector<std::pair<LayeredVertex, double>> rollback_charges_;
  std::vector<LayeredVertex> rollback_authorized_;
};

}  // namespace cne

#endif  // CNE_SERVICE_QUERY_SERVICE_H_
