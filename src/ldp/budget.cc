#include "ldp/budget.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/logging.h"

namespace cne {

void BudgetAccountant::ChargeSequential(const std::string& mechanism,
                                        double epsilon) {
  CNE_CHECK(epsilon >= 0.0) << "negative budget charge";
  charges_.push_back({mechanism, epsilon, 0});
}

void BudgetAccountant::ChargeParallel(const std::string& mechanism,
                                      double epsilon, int group) {
  CNE_CHECK(epsilon >= 0.0) << "negative budget charge";
  CNE_CHECK(group >= 1) << "parallel group ids start at 1";
  charges_.push_back({mechanism, epsilon, group});
}

double BudgetAccountant::TotalEpsilon() const {
  double sequential = 0.0;
  std::map<int, double> group_max;
  for (const BudgetCharge& c : charges_) {
    if (c.parallel_group == 0) {
      sequential += c.epsilon;
    } else {
      auto [it, inserted] = group_max.emplace(c.parallel_group, c.epsilon);
      if (!inserted) it->second = std::max(it->second, c.epsilon);
    }
  }
  for (const auto& [group, eps] : group_max) sequential += eps;
  return sequential;
}

BudgetSplit EvenTwoWaySplit(double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  return {0.0, epsilon / 2.0, epsilon / 2.0};
}

void ValidateSplit(const BudgetSplit& split, double epsilon) {
  CNE_CHECK(split.epsilon0 >= 0.0 && split.epsilon1 > 0.0 &&
            split.epsilon2 > 0.0)
      << "budget split parts must be positive (ε0 may be zero)";
  CNE_CHECK(std::abs(split.Total() - epsilon) < 1e-9)
      << "budget split sums to " << split.Total() << ", expected " << epsilon;
}

}  // namespace cne
