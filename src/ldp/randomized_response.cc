#include "ldp/randomized_response.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "util/logging.h"

namespace cne {

double FlipProbability(double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  return 1.0 / (1.0 + std::exp(epsilon));
}

NoisyNeighborSet::NoisyNeighborSet(std::vector<VertexId> members,
                                   VertexId domain_size,
                                   double flip_probability)
    : members_(std::move(members)),
      domain_size_(domain_size),
      flip_probability_(flip_probability) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  size_ = members_.size();
  CNE_CHECK(members_.empty() || members_.back() < domain_size_)
      << "noisy member outside domain";
}

NoisyNeighborSet::NoisyNeighborSet(DenseBitset bits, double flip_probability)
    : bits_(std::move(bits)),
      size_(bits_.Count()),
      domain_size_(bits_.NumBits()),
      flip_probability_(flip_probability),
      is_bitmap_(true) {}

NoisyNeighborSet NoisyNeighborSet::FromSortedUnique(
    std::vector<VertexId> members, VertexId domain_size,
    double flip_probability) {
#ifndef NDEBUG
  assert(std::is_sorted(members.begin(), members.end()));
  assert(std::adjacent_find(members.begin(), members.end()) ==
         members.end());
#endif
  NoisyNeighborSet set;
  set.members_ = std::move(members);
  set.size_ = set.members_.size();
  set.domain_size_ = domain_size;
  set.flip_probability_ = flip_probability;
  CNE_CHECK(set.members_.empty() || set.members_.back() < domain_size)
      << "noisy member outside domain";
  return set;
}

bool NoisyNeighborSet::Contains(VertexId v) const {
  if (is_bitmap_) return v < bits_.NumBits() && bits_.Test(v);
  return std::binary_search(members_.begin(), members_.end(), v);
}

SetView NoisyNeighborSet::View() const {
  if (is_bitmap_) return SetView::Bitmap(bits_, size_);
  return SetView::Sorted(members_);
}

const std::vector<VertexId>& NoisyNeighborSet::SortedMembers() const {
  CNE_CHECK(!is_bitmap_)
      << "SortedMembers() on a bitmap-mode set; use ToSortedVector()";
  return members_;
}

std::vector<VertexId> NoisyNeighborSet::ToSortedVector() const {
  if (is_bitmap_) return bits_.ToSortedVector(size_);
  return members_;
}

bool UseBitmapStorage(uint64_t degree, VertexId domain, double epsilon) {
  if (domain < kBitmapMinDomain) return false;
  const double expected = ExpectedNoisyDegree(
      static_cast<double>(degree), static_cast<double>(domain), epsilon);
  return expected >= kBitmapDensityThreshold * static_cast<double>(domain);
}

namespace {

// Sparse-regime sampler: sorted-vector release in O(d + pn) expected.
NoisyNeighborSet SampleSorted(std::span<const VertexId> neighbors,
                              VertexId domain, double p, double epsilon,
                              Rng& rng) {
  const uint64_t degree = neighbors.size();
  std::vector<VertexId> members;
  members.reserve(NoisyDegreeReserveHint(degree, domain, epsilon));

  // True neighbors survive independently with probability 1 - p; the
  // adjacency list is sorted, so the survivors come out sorted.
  for (VertexId v : neighbors) {
    if (!rng.Bernoulli(p)) members.push_back(v);
  }
  const auto survivors_end =
      static_cast<std::vector<VertexId>::difference_type>(members.size());

  // Non-neighbors flip in independently with probability p. Visit the
  // flipped positions of [0, n - d) in increasing order directly:
  // successive gaps of a Bernoulli(p) process are iid Geometric(p), so
  // skip sampling emits the positions as sorted order statistics — no
  // post-hoc sort, and the count is Binomial(n - d, p) by construction.
  const uint64_t num_non_neighbors = static_cast<uint64_t>(domain) - degree;
  if (num_non_neighbors > 0) {
    size_t ni = 0;  // index into sorted true neighbors
    uint64_t q = rng.Geometric(p);
    while (q < num_non_neighbors) {
      // Map the q-th non-neighbor position to a vertex id: adding the
      // neighbors below shifts the candidate upward. Positions only grow,
      // so the cursor sweep is a single linear merge overall.
      VertexId candidate = static_cast<VertexId>(q + ni);
      while (ni < neighbors.size() && neighbors[ni] <= candidate) {
        ++ni;
        ++candidate;
      }
      members.push_back(candidate);
      // Advance to the next flipped position; the window check before the
      // addition keeps a near-p-0 gap (up to UINT64_MAX) from overflowing.
      const uint64_t gap = rng.Geometric(p);
      if (gap >= num_non_neighbors - q - 1) break;
      q += 1 + gap;
    }
  }

  // Survivors and flipped-in ids are two sorted disjoint runs.
  std::inplace_merge(members.begin(), members.begin() + survivors_end,
                     members.end());
  return NoisyNeighborSet::FromSortedUnique(std::move(members), domain, p);
}

// Dense-regime sampler: writes the release directly into bitmap words.
// Same output distribution as SampleSorted (and as bit-by-bit RR), at
// O(d + pn + n/64) with no sorted vector ever materialized.
NoisyNeighborSet SampleBitmap(std::span<const VertexId> neighbors,
                              VertexId domain, double p, Rng& rng) {
  const uint64_t degree = neighbors.size();
  DenseBitset bits(domain);
  for (VertexId v : neighbors) {
    if (!rng.Bernoulli(p)) bits.Set(v);
  }

  const uint64_t num_non_neighbors = static_cast<uint64_t>(domain) - degree;
  uint64_t flips = rng.Binomial(num_non_neighbors, p);
  if (flips == 0) return NoisyNeighborSet(std::move(bits), p);

  if ((num_non_neighbors - flips) * 8 >= domain) {
    // Rejection sampling draws a uniform flips-subset of the non-neighbors:
    // reject survivors and earlier flip-ins via the bitmap (O(1)) and
    // non-surviving true neighbors via binary search. The gate keeps the
    // acceptance rate at ≥ 1/8, so expected trials stay O(flips).
    while (flips > 0) {
      const VertexId v = static_cast<VertexId>(rng.UniformInt(domain));
      if (bits.Test(v) ||
          std::binary_search(neighbors.begin(), neighbors.end(), v)) {
        continue;
      }
      bits.Set(v);
      --flips;
    }
  } else {
    // Nearly every non-neighbor flips in (or nearly everything is a
    // neighbor): enumerate the complement once and Floyd-sample among it.
    std::vector<VertexId> complement;
    complement.reserve(num_non_neighbors);
    size_t ni = 0;
    for (VertexId v = 0; v < domain; ++v) {
      if (ni < neighbors.size() && neighbors[ni] == v) {
        ++ni;
        continue;
      }
      complement.push_back(v);
    }
    for (uint64_t idx : rng.SampleWithoutReplacement(num_non_neighbors,
                                                     flips)) {
      bits.Set(complement[idx]);
    }
  }
  return NoisyNeighborSet(std::move(bits), p);
}

}  // namespace

NoisyNeighborSet ApplyRandomizedResponse(const BipartiteGraph& graph,
                                         LayeredVertex vertex, double epsilon,
                                         Rng& rng, RrStorage storage) {
  const double p = FlipProbability(epsilon);
  const auto neighbors = graph.Neighbors(vertex);
  const VertexId domain = graph.NumVertices(Opposite(vertex.layer));
  const bool bitmap =
      storage == RrStorage::kAuto
          ? UseBitmapStorage(neighbors.size(), domain, epsilon)
          : storage == RrStorage::kBitmap;
  return bitmap ? SampleBitmap(neighbors, domain, p, rng)
                : SampleSorted(neighbors, domain, p, epsilon, rng);
}

NoisyNeighborSet ApplyRandomizedResponseDense(const BipartiteGraph& graph,
                                              LayeredVertex vertex,
                                              double epsilon, Rng& rng) {
  const double p = FlipProbability(epsilon);
  const VertexId domain = graph.NumVertices(Opposite(vertex.layer));
  const auto neighbors = graph.Neighbors(vertex);
  std::unordered_set<VertexId> neighbor_set(neighbors.begin(),
                                            neighbors.end());
  std::vector<VertexId> members;
  members.reserve(NoisyDegreeReserveHint(neighbors.size(), domain, epsilon));
  for (VertexId v = 0; v < domain; ++v) {
    const bool bit = neighbor_set.count(v) > 0;
    const bool noisy_bit = rng.Bernoulli(p) ? !bit : bit;
    if (noisy_bit) members.push_back(v);
  }
  return NoisyNeighborSet(std::move(members), domain, p);
}

double ExpectedNoisyDegree(double degree, double opposite_size,
                           double epsilon) {
  const double p = FlipProbability(epsilon);
  return degree * (1.0 - p) + (opposite_size - degree) * p;
}

size_t NoisyDegreeReserveHint(uint64_t degree, VertexId domain,
                              double epsilon) {
  const double expected = ExpectedNoisyDegree(
      static_cast<double>(degree), static_cast<double>(domain), epsilon);
  return static_cast<size_t>(
      std::min(expected * 1.2 + 16.0, static_cast<double>(domain)));
}

}  // namespace cne
