#include "ldp/randomized_response.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/logging.h"

namespace cne {

double FlipProbability(double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  return 1.0 / (1.0 + std::exp(epsilon));
}

NoisyNeighborSet::NoisyNeighborSet(std::vector<VertexId> members,
                                   VertexId domain_size,
                                   double flip_probability)
    : members_(std::move(members)),
      domain_size_(domain_size),
      flip_probability_(flip_probability) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()),
                 members_.end());
  CNE_CHECK(members_.empty() || members_.back() < domain_size_)
      << "noisy member outside domain";
}

bool NoisyNeighborSet::Contains(VertexId v) const {
  return std::binary_search(members_.begin(), members_.end(), v);
}

NoisyNeighborSet ApplyRandomizedResponse(const BipartiteGraph& graph,
                                         LayeredVertex vertex, double epsilon,
                                         Rng& rng) {
  const double p = FlipProbability(epsilon);
  const auto neighbors = graph.Neighbors(vertex);
  const VertexId domain = graph.NumVertices(Opposite(vertex.layer));
  const uint64_t degree = neighbors.size();

  std::vector<VertexId> members;
  members.reserve(static_cast<size_t>(
      ExpectedNoisyDegree(static_cast<double>(degree),
                          static_cast<double>(domain), epsilon) *
          1.2 +
      16));

  // True neighbors survive independently with probability 1 - p.
  for (VertexId v : neighbors) {
    if (!rng.Bernoulli(p)) members.push_back(v);
  }

  // Non-neighbors flip in: their count is Binomial(n - d, p), identities
  // uniform without replacement among the non-neighbors. Sample positions
  // in [0, n - d) and map them around the sorted true-neighbor list.
  const uint64_t num_non_neighbors = static_cast<uint64_t>(domain) - degree;
  const uint64_t flipped_in = rng.Binomial(num_non_neighbors, p);
  if (flipped_in > 0) {
    std::vector<uint64_t> positions =
        rng.SampleWithoutReplacement(num_non_neighbors, flipped_in);
    // Map the k-th non-neighbor position to an actual vertex id: for each
    // position q, the vertex id is q plus the number of true neighbors with
    // id <= mapped value. Sorting positions makes the mapping a single
    // linear merge.
    std::sort(positions.begin(), positions.end());
    size_t ni = 0;  // index into sorted true neighbors
    for (uint64_t q : positions) {
      // Advance: vertex id candidate = q + ni, but adding neighbors below
      // shifts the candidate upward.
      VertexId candidate = static_cast<VertexId>(q + ni);
      while (ni < neighbors.size() && neighbors[ni] <= candidate) {
        ++ni;
        ++candidate;
      }
      members.push_back(candidate);
    }
  }
  return NoisyNeighborSet(std::move(members), domain, p);
}

NoisyNeighborSet ApplyRandomizedResponseDense(const BipartiteGraph& graph,
                                              LayeredVertex vertex,
                                              double epsilon, Rng& rng) {
  const double p = FlipProbability(epsilon);
  const VertexId domain = graph.NumVertices(Opposite(vertex.layer));
  const auto neighbors = graph.Neighbors(vertex);
  std::unordered_set<VertexId> neighbor_set(neighbors.begin(),
                                            neighbors.end());
  std::vector<VertexId> members;
  for (VertexId v = 0; v < domain; ++v) {
    const bool bit = neighbor_set.count(v) > 0;
    const bool noisy_bit = rng.Bernoulli(p) ? !bit : bit;
    if (noisy_bit) members.push_back(v);
  }
  return NoisyNeighborSet(std::move(members), domain, p);
}

double ExpectedNoisyDegree(double degree, double opposite_size,
                           double epsilon) {
  const double p = FlipProbability(epsilon);
  return degree * (1.0 - p) + (opposite_size - degree) * p;
}

}  // namespace cne
