#include "ldp/laplace_mechanism.h"

#include "ldp/randomized_response.h"
#include "util/logging.h"

namespace cne {

double LaplaceScale(double sensitivity, double epsilon) {
  CNE_CHECK(sensitivity > 0.0) << "sensitivity must be positive";
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  return sensitivity / epsilon;
}

double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng) {
  return value + rng.Laplace(LaplaceScale(sensitivity, epsilon));
}

double LaplaceVariance(double sensitivity, double epsilon) {
  const double b = LaplaceScale(sensitivity, epsilon);
  return 2.0 * b * b;
}

double SingleSourceSensitivity(double epsilon_rr) {
  const double p = FlipProbability(epsilon_rr);
  return (1.0 - p) / (1.0 - 2.0 * p);
}

}  // namespace cne
