// Privacy-budget bookkeeping.
//
// Edge LDP composes: sequential composition sums the budgets of successive
// mechanisms applied to the same neighbor lists; parallel composition over
// disjoint data takes the maximum (Section 2.2 of the paper). The
// accountant records each mechanism invocation so tests — and callers who
// care — can assert that a protocol's total consumption equals the budget
// the user granted.

#ifndef CNE_LDP_BUDGET_H_
#define CNE_LDP_BUDGET_H_

#include <string>
#include <vector>

namespace cne {

/// One recorded mechanism application.
struct BudgetCharge {
  std::string mechanism;  ///< e.g. "randomized_response", "laplace"
  double epsilon = 0.0;
  /// Charges in the same parallel group (> 0) compose by max; group 0 means
  /// a plain sequential charge.
  int parallel_group = 0;
};

/// Records budget charges and computes the total consumed budget under
/// sequential + parallel composition.
class BudgetAccountant {
 public:
  /// Records a sequential charge of `epsilon`.
  void ChargeSequential(const std::string& mechanism, double epsilon);

  /// Records a charge inside parallel group `group` (>= 1). All charges in
  /// the same group cover disjoint data and compose by max.
  void ChargeParallel(const std::string& mechanism, double epsilon,
                      int group);

  /// Total ε consumed: sum of sequential charges plus, per parallel group,
  /// the maximum charge in the group.
  double TotalEpsilon() const;

  const std::vector<BudgetCharge>& charges() const { return charges_; }

  void Reset() { charges_.clear(); }

 private:
  std::vector<BudgetCharge> charges_;
};

/// An (ε0, ε1, ε2) split of a total budget: ε0 for degree estimation,
/// ε1 for randomized response, ε2 for the Laplace mechanism. Invariant:
/// all parts non-negative and summing to `total`.
struct BudgetSplit {
  double epsilon0 = 0.0;
  double epsilon1 = 0.0;
  double epsilon2 = 0.0;

  double Total() const { return epsilon0 + epsilon1 + epsilon2; }
};

/// Even two-way split used by MultiR-SS: ε1 = ε2 = ε / 2, ε0 = 0.
BudgetSplit EvenTwoWaySplit(double epsilon);

/// Validates a split against a total budget within floating tolerance;
/// fatal check on violation.
void ValidateSplit(const BudgetSplit& split, double epsilon);

}  // namespace cne

#endif  // CNE_LDP_BUDGET_H_
