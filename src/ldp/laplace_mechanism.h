// The Laplace mechanism (Definition 5): releases f + Lap(Δf / ε), where Δf
// is the global sensitivity of f over neighbor lists differing in one bit.

#ifndef CNE_LDP_LAPLACE_MECHANISM_H_
#define CNE_LDP_LAPLACE_MECHANISM_H_

#include "util/rng.h"

namespace cne {

/// Releases `value` with Laplace noise scaled to sensitivity / epsilon.
/// Requires sensitivity > 0 and epsilon > 0.
double LaplaceMechanism(double value, double sensitivity, double epsilon,
                        Rng& rng);

/// Scale parameter b = sensitivity / epsilon of the injected noise.
double LaplaceScale(double sensitivity, double epsilon);

/// Variance 2 b^2 of Laplace noise with scale b = sensitivity / epsilon.
double LaplaceVariance(double sensitivity, double epsilon);

/// Global sensitivity of the single-source estimator f_u (Section 4.1):
/// (1 - p) / (1 - 2p), where p = FlipProbability(epsilon_rr). One changed
/// bit in N(u) adds or removes one phi term whose magnitude is at most
/// (1 - p) / (1 - 2p).
double SingleSourceSensitivity(double epsilon_rr);

/// Global sensitivity of a vertex degree: 1 (one bit changes the degree by
/// exactly one).
constexpr double kDegreeSensitivity = 1.0;

}  // namespace cne

#endif  // CNE_LDP_LAPLACE_MECHANISM_H_
