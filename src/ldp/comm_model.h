// Communication-cost accounting for the simulated vertex/curator protocol.
//
// The paper's Fig. 10 reports per-query-pair communication in megabytes.
// We model each transmitted noisy edge as one 4-byte vertex id (the sender
// is implicit in the upload), each scalar (estimator value, noisy degree)
// as 8 bytes, and count both uploads to the curator and downloads to the
// query vertices.

#ifndef CNE_LDP_COMM_MODEL_H_
#define CNE_LDP_COMM_MODEL_H_

#include <cstdint>

namespace cne {

/// Byte sizes of protocol messages.
struct CommModel {
  double bytes_per_edge = 4.0;    ///< one opposite-layer vertex id
  double bytes_per_scalar = 8.0;  ///< a double (estimate, noisy degree)
};

/// Accumulates the bytes moved during one protocol execution.
class CommLedger {
 public:
  explicit CommLedger(CommModel model = CommModel{}) : model_(model) {}

  /// Vertex uploads `count` noisy edges to the curator.
  void UploadEdges(uint64_t count) {
    uploaded_ += model_.bytes_per_edge * static_cast<double>(count);
  }

  /// Query vertex downloads `count` noisy edges from the curator.
  void DownloadEdges(uint64_t count) {
    downloaded_ += model_.bytes_per_edge * static_cast<double>(count);
  }

  /// Vertex uploads `count` scalars (estimators, noisy degrees).
  void UploadScalars(uint64_t count) {
    uploaded_ += model_.bytes_per_scalar * static_cast<double>(count);
  }

  double UploadedBytes() const { return uploaded_; }
  double DownloadedBytes() const { return downloaded_; }
  double TotalBytes() const { return uploaded_ + downloaded_; }

 private:
  CommModel model_;
  double uploaded_ = 0.0;
  double downloaded_ = 0.0;
};

/// Closed-form expected communication (bytes) of ε-RR on one vertex of
/// degree d against an opposite layer of size n (upload only).
double ExpectedRrUploadBytes(double degree, double opposite_size,
                             double epsilon, CommModel model = CommModel{});

}  // namespace cne

#endif  // CNE_LDP_COMM_MODEL_H_
