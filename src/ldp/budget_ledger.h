// Per-vertex privacy-budget ledger for long-lived services.
//
// The BudgetAccountant (budget.h) audits one protocol execution; this
// ledger enforces composition across an *entire service lifetime*. Every
// mechanism application to a vertex's neighbor list — a randomized
// response release, a Laplace release of an estimator computed from that
// list — sequentially composes on that vertex, while charges to different
// vertices compose in parallel (disjoint neighbor lists). The ledger
// therefore keeps one running ε total per (layer, vertex) and refuses any
// charge that would push a vertex past the lifetime budget: an
// over-budget release is rejected *before* noise is drawn, so nothing
// private ever leaves the vertex.
//
// Thread safety: all methods may be called concurrently; the map is
// sharded to keep contention low. Admission decisions that must be
// deterministic across thread counts (the query service's) are made in a
// sequential pass by the caller — the ledger itself only guarantees
// atomicity of each charge.

#ifndef CNE_LDP_BUDGET_LEDGER_H_
#define CNE_LDP_BUDGET_LEDGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/binary_io.h"

namespace cne {

/// A vertex's entry in a ledger snapshot.
struct VertexBudget {
  LayeredVertex vertex;
  double spent = 0.0;
  double remaining = 0.0;
};

/// Aggregate spend telemetry over all charged vertices, extracted in one
/// sharded walk (see BudgetLedger::GetTelemetry). Budget exhaustion is
/// this service's disk-full: the burn-down fields exist so an operator
/// sees it coming instead of discovering it as rejects.
struct BudgetLedgerTelemetry {
  double lifetime_budget = 0.0;
  uint64_t charged_vertices = 0;
  uint64_t exhausted_vertices = 0;  ///< remaining ≤ tolerance
  double total_spent = 0.0;
  double min_remaining = 0.0;  ///< lifetime budget when nothing charged
  double sum_remaining = 0.0;  ///< Σ remaining over charged vertices

  /// Bin i counts charged vertices with remaining ε in
  /// [i, i+1) * lifetime_budget / bins (last bin closed above).
  std::vector<uint64_t> residual_histogram;
};

/// Tracks per-vertex ε consumption against a fixed lifetime budget.
class BudgetLedger {
 public:
  /// Every vertex may spend at most `lifetime_budget` total ε.
  explicit BudgetLedger(double lifetime_budget);

  double lifetime_budget() const { return lifetime_budget_; }

  /// Raises the lifetime budget to `new_budget` (a service-operator
  /// "top-up": every vertex's privacy guarantee weakens to the new bound
  /// and previously rejected charges may now fit). Must not be lower than
  /// the current budget, and must not race with concurrent charges — top
  /// up between submissions.
  void RaiseLifetimeBudget(double new_budget);

  /// Atomically charges `epsilon` to `vertex` if its remaining budget
  /// allows it (within a tiny floating-point tolerance); returns whether
  /// the charge was recorded. A rejected charge records nothing.
  bool TryCharge(LayeredVertex vertex, double epsilon);

  /// Total ε charged to `vertex` so far (0 if never charged).
  double Spent(LayeredVertex vertex) const;

  /// Budget `vertex` can still spend.
  double Remaining(LayeredVertex vertex) const {
    return lifetime_budget_ - Spent(vertex);
  }

  /// Number of distinct vertices with at least one recorded charge.
  uint64_t NumChargedVertices() const;

  /// Sum of ε across all vertices (parallel composition makes the
  /// service-wide guarantee max over vertices, but the sum is useful for
  /// reporting).
  double TotalSpent() const;

  /// Smallest remaining budget over charged vertices; the full lifetime
  /// budget when nothing was charged.
  double MinRemaining() const;

  /// Number of vertices whose remaining budget is (approximately) zero —
  /// any further charge to them will be rejected. O(1): maintained as an
  /// atomic alongside the spend table, so it is safe to export as a gauge
  /// after every submission without walking the shards.
  uint64_t NumExhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// All burn-down aggregates plus a `bins`-bucket residual-ε histogram in
  /// a single walk over the shards. Heavier than NumExhausted (touches
  /// every charged row); intended for report finalization and snapshot
  /// tooling, not per-submit paths.
  BudgetLedgerTelemetry GetTelemetry(size_t bins = 8) const;

  /// Every charged vertex with its spent/remaining budget, sorted by
  /// (layer, id) so reports are deterministic.
  std::vector<VertexBudget> Snapshot() const;

  // ---- persistence hooks (store/snapshot_format + store/budget_wal) ----
  //
  // The ledger is the service's lifetime privacy accounting: losing it on
  // a crash means either refusing all future traffic or double-spending
  // budget that was already released. Serialize/Deserialize move the full
  // table through a snapshot section; Replay applies one recorded charge
  // during write-ahead-log recovery. None of these may race with
  // concurrent charges — persistence runs between submissions.

  /// Writes the current lifetime budget and the full per-vertex spend
  /// table to `out`, rows sorted by (layer, id) so equal ledgers always
  /// serialize to equal bytes.
  void Serialize(ByteWriter& out) const;

  /// Restores a table written by Serialize into this ledger. The ledger
  /// must be freshly constructed (no recorded charges); the serialized
  /// lifetime budget must be at least the constructed one — it may be
  /// higher when RaiseLifetimeBudget top-ups preceded the snapshot.
  void Deserialize(ByteReader& in);

  /// Re-applies one recorded charge unconditionally — recovery replays
  /// decisions that already passed admission, so a charge that no longer
  /// fits the lifetime budget means corrupt or mismatched recovery input
  /// and is a fatal check, not a rejection.
  void Replay(LayeredVertex vertex, double epsilon);

  /// Rollback hook for the query service's unsealed-submit recovery: sets
  /// `vertex`'s recorded spend back to `spent`, a value previously read
  /// via Spent(). An exact restore, not a subtraction — (x + ε) - ε can
  /// drift in floating point, and the rolled-back ledger must serialize
  /// byte-identically to one that never saw the batch. `spent` == 0
  /// erases the row so NumChargedVertices stays exact. Must not race with
  /// concurrent charges.
  void RestoreSpent(LayeredVertex vertex, double spent);

 private:
  static constexpr size_t kNumShards = 64;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<uint64_t, double> spent;  // key: packed vertex
  };

  Shard& ShardFor(uint64_t key) { return shards_[key % kNumShards]; }
  const Shard& ShardFor(uint64_t key) const { return shards_[key % kNumShards]; }

  double lifetime_budget_;
  Shard shards_[kNumShards];
  /// Vertices with remaining ≤ tolerance; updated on every transition a
  /// charge/replay/restore makes across the exhaustion boundary.
  std::atomic<uint64_t> exhausted_{0};
};

}  // namespace cne

#endif  // CNE_LDP_BUDGET_LEDGER_H_
