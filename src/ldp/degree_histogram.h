// Degree-histogram release under edge LDP — supporting substrate for the
// degree-driven optimizations (MultiR-DS corrects negative degree
// estimates with the layer's average; analysts also want the degree
// distribution itself, a classic LDP graph statistic the paper cites).
//
// Protocol: every vertex of the layer reports deg + Lap(1/ε); the reports
// cover disjoint neighbor lists, so the round satisfies ε-edge LDP by
// parallel composition. The curator bins the noisy reports (binning and
// the consistency fix-ups are post-processing, which is privacy-free).

#ifndef CNE_LDP_DEGREE_HISTOGRAM_H_
#define CNE_LDP_DEGREE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// A (noisy) degree histogram: counts[d] estimates the number of vertices
/// with degree d; the last bucket aggregates degrees >= counts.size()-1.
struct DegreeHistogramEstimate {
  std::vector<double> counts;
  double epsilon = 0.0;
  uint64_t num_vertices = 0;
};

/// Runs the ε-edge-LDP degree-histogram protocol on `layer` with
/// `num_buckets` buckets (bucket b = degree b, last bucket = overflow).
/// Post-processing: noisy reports are rounded and clamped into the bucket
/// range; bucket totals are then non-negative and sum to the number of
/// vertices (which is public).
DegreeHistogramEstimate EstimateDegreeHistogram(const BipartiteGraph& graph,
                                                Layer layer, double epsilon,
                                                size_t num_buckets,
                                                Rng& rng);

/// Exact histogram with the same bucketing, for error reporting.
std::vector<double> ExactDegreeHistogram(const BipartiteGraph& graph,
                                         Layer layer, size_t num_buckets);

/// Total variation distance between two histograms over the same buckets
/// (normalized to probability vectors; 0 when both are empty).
double HistogramTotalVariation(const std::vector<double>& a,
                               const std::vector<double>& b);

}  // namespace cne

#endif  // CNE_LDP_DEGREE_HISTOGRAM_H_
