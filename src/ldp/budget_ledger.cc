#include "ldp/budget_ledger.h"

#include <algorithm>

#include "util/logging.h"

namespace cne {

namespace {
// Absorbs float drift when a split (ε1 + ε2) is meant to sum exactly to
// the lifetime budget; far below any meaningful privacy increment.
constexpr double kTolerance = 1e-9;
}  // namespace

BudgetLedger::BudgetLedger(double lifetime_budget)
    : lifetime_budget_(lifetime_budget) {
  CNE_CHECK(lifetime_budget > 0.0) << "lifetime budget must be positive";
}

void BudgetLedger::RaiseLifetimeBudget(double new_budget) {
  CNE_CHECK(new_budget >= lifetime_budget_)
      << "lifetime budgets only go up: recorded charges cannot be undone";
  lifetime_budget_ = new_budget;
}

bool BudgetLedger::TryCharge(LayeredVertex vertex, double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "charges must be positive";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  double& spent = shard.spent[key];  // inserts 0 on first touch
  if (spent + epsilon > lifetime_budget_ + kTolerance) {
    if (spent == 0.0) shard.spent.erase(key);  // keep "charged" exact
    return false;
  }
  spent += epsilon;
  return true;
}

double BudgetLedger::Spent(LayeredVertex vertex) const {
  const uint64_t key = PackLayeredVertex(vertex);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.spent.find(key);
  return it == shard.spent.end() ? 0.0 : it->second;
}

uint64_t BudgetLedger::NumChargedVertices() const {
  uint64_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.spent.size();
  }
  return count;
}

double BudgetLedger::TotalSpent() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) total += spent;
  }
  return total;
}

double BudgetLedger::MinRemaining() const {
  double max_spent = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      max_spent = std::max(max_spent, spent);
    }
  }
  return lifetime_budget_ - max_spent;
}

void BudgetLedger::Serialize(ByteWriter& out) const {
  const std::vector<VertexBudget> entries = Snapshot();
  out.F64(lifetime_budget_);
  out.U64(entries.size());
  for (const VertexBudget& entry : entries) {
    out.U64(PackLayeredVertex(entry.vertex));
    out.F64(entry.spent);
  }
}

void BudgetLedger::Deserialize(ByteReader& in) {
  CNE_CHECK(NumChargedVertices() == 0)
      << "ledger restore requires a fresh ledger";
  const double budget = in.F64();
  CNE_CHECK(budget >= lifetime_budget_)
      << "serialized lifetime budget " << budget
      << " is below the constructed budget " << lifetime_budget_;
  lifetime_budget_ = budget;
  const uint64_t count = in.U64();
  for (uint64_t i = 0; i < count; ++i) {
    const LayeredVertex vertex = UnpackLayeredVertex(in.U64());
    Replay(vertex, in.F64());
  }
}

void BudgetLedger::Replay(LayeredVertex vertex, double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "replayed charges must be positive";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  double& spent = shard.spent[key];
  spent += epsilon;
  CNE_CHECK(spent <= lifetime_budget_ + kTolerance)
      << "replayed charge overdraws " << LayerName(vertex.layer)
      << " vertex " << vertex.id << ": " << spent << " of "
      << lifetime_budget_ << " — corrupt recovery input";
}

void BudgetLedger::RestoreSpent(LayeredVertex vertex, double spent) {
  CNE_CHECK(spent >= 0.0) << "spent budgets cannot be negative";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (spent == 0.0) {
    shard.spent.erase(key);
  } else {
    shard.spent[key] = spent;
  }
}

std::vector<VertexBudget> BudgetLedger::Snapshot() const {
  std::vector<VertexBudget> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      entries.push_back(
          {UnpackLayeredVertex(key), spent, lifetime_budget_ - spent});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const VertexBudget& a, const VertexBudget& b) {
              if (a.vertex.layer != b.vertex.layer) {
                return a.vertex.layer < b.vertex.layer;
              }
              return a.vertex.id < b.vertex.id;
            });
  return entries;
}

}  // namespace cne
