#include "ldp/budget_ledger.h"

#include <algorithm>

#include "util/logging.h"

namespace cne {

namespace {
// Absorbs float drift when a split (ε1 + ε2) is meant to sum exactly to
// the lifetime budget; far below any meaningful privacy increment.
constexpr double kTolerance = 1e-9;
}  // namespace

BudgetLedger::BudgetLedger(double lifetime_budget)
    : lifetime_budget_(lifetime_budget) {
  CNE_CHECK(lifetime_budget > 0.0) << "lifetime budget must be positive";
}

void BudgetLedger::RaiseLifetimeBudget(double new_budget) {
  CNE_CHECK(new_budget >= lifetime_budget_)
      << "lifetime budgets only go up: recorded charges cannot be undone";
  lifetime_budget_ = new_budget;
  // A top-up can un-exhaust vertices; recount against the new bound. The
  // caller guarantees no concurrent charges, so the walk is consistent.
  uint64_t exhausted = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      if (lifetime_budget_ - spent <= kTolerance) ++exhausted;
    }
  }
  exhausted_.store(exhausted, std::memory_order_relaxed);
}

bool BudgetLedger::TryCharge(LayeredVertex vertex, double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "charges must be positive";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  double& spent = shard.spent[key];  // inserts 0 on first touch
  if (spent + epsilon > lifetime_budget_ + kTolerance) {
    if (spent == 0.0) shard.spent.erase(key);  // keep "charged" exact
    return false;
  }
  const bool was_exhausted = lifetime_budget_ - spent <= kTolerance;
  spent += epsilon;
  if (!was_exhausted && lifetime_budget_ - spent <= kTolerance) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

double BudgetLedger::Spent(LayeredVertex vertex) const {
  const uint64_t key = PackLayeredVertex(vertex);
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.spent.find(key);
  return it == shard.spent.end() ? 0.0 : it->second;
}

uint64_t BudgetLedger::NumChargedVertices() const {
  uint64_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    count += shard.spent.size();
  }
  return count;
}

double BudgetLedger::TotalSpent() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) total += spent;
  }
  return total;
}

double BudgetLedger::MinRemaining() const {
  double max_spent = 0.0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      max_spent = std::max(max_spent, spent);
    }
  }
  return lifetime_budget_ - max_spent;
}

BudgetLedgerTelemetry BudgetLedger::GetTelemetry(size_t bins) const {
  BudgetLedgerTelemetry t;
  t.lifetime_budget = lifetime_budget_;
  if (bins == 0) bins = 1;
  t.residual_histogram.assign(bins, 0);
  double max_spent = 0.0;
  const double bin_width = lifetime_budget_ / static_cast<double>(bins);
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      ++t.charged_vertices;
      t.total_spent += spent;
      const double remaining = lifetime_budget_ - spent;
      t.sum_remaining += remaining;
      if (remaining <= kTolerance) ++t.exhausted_vertices;
      max_spent = std::max(max_spent, spent);
      size_t bin = remaining <= 0.0
                       ? 0
                       : static_cast<size_t>(remaining / bin_width);
      if (bin >= bins) bin = bins - 1;  // remaining == lifetime lands here
      ++t.residual_histogram[bin];
    }
  }
  t.min_remaining = lifetime_budget_ - max_spent;
  return t;
}

void BudgetLedger::Serialize(ByteWriter& out) const {
  const std::vector<VertexBudget> entries = Snapshot();
  out.F64(lifetime_budget_);
  out.U64(entries.size());
  for (const VertexBudget& entry : entries) {
    out.U64(PackLayeredVertex(entry.vertex));
    out.F64(entry.spent);
  }
}

void BudgetLedger::Deserialize(ByteReader& in) {
  CNE_CHECK(NumChargedVertices() == 0)
      << "ledger restore requires a fresh ledger";
  const double budget = in.F64();
  CNE_CHECK(budget >= lifetime_budget_)
      << "serialized lifetime budget " << budget
      << " is below the constructed budget " << lifetime_budget_;
  lifetime_budget_ = budget;
  const uint64_t count = in.U64();
  for (uint64_t i = 0; i < count; ++i) {
    const LayeredVertex vertex = UnpackLayeredVertex(in.U64());
    Replay(vertex, in.F64());
  }
}

void BudgetLedger::Replay(LayeredVertex vertex, double epsilon) {
  CNE_CHECK(epsilon > 0.0) << "replayed charges must be positive";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  double& spent = shard.spent[key];
  const bool was_exhausted = lifetime_budget_ - spent <= kTolerance;
  spent += epsilon;
  if (!was_exhausted && lifetime_budget_ - spent <= kTolerance) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
  CNE_CHECK(spent <= lifetime_budget_ + kTolerance)
      << "replayed charge overdraws " << LayerName(vertex.layer)
      << " vertex " << vertex.id << ": " << spent << " of "
      << lifetime_budget_ << " — corrupt recovery input";
}

void BudgetLedger::RestoreSpent(LayeredVertex vertex, double spent) {
  CNE_CHECK(spent >= 0.0) << "spent budgets cannot be negative";
  const uint64_t key = PackLayeredVertex(vertex);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.spent.find(key);
  const bool was_exhausted =
      it != shard.spent.end() && lifetime_budget_ - it->second <= kTolerance;
  const bool now_exhausted =
      spent != 0.0 && lifetime_budget_ - spent <= kTolerance;
  if (spent == 0.0) {
    shard.spent.erase(key);
  } else {
    shard.spent[key] = spent;
  }
  if (was_exhausted && !now_exhausted) {
    exhausted_.fetch_sub(1, std::memory_order_relaxed);
  } else if (!was_exhausted && now_exhausted) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<VertexBudget> BudgetLedger::Snapshot() const {
  std::vector<VertexBudget> entries;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, spent] : shard.spent) {
      entries.push_back(
          {UnpackLayeredVertex(key), spent, lifetime_budget_ - spent});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const VertexBudget& a, const VertexBudget& b) {
              if (a.vertex.layer != b.vertex.layer) {
                return a.vertex.layer < b.vertex.layer;
              }
              return a.vertex.id < b.vertex.id;
            });
  return entries;
}

}  // namespace cne
