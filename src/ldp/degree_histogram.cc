#include "ldp/degree_histogram.h"

#include <algorithm>
#include <cmath>

#include "ldp/laplace_mechanism.h"
#include "util/logging.h"

namespace cne {

DegreeHistogramEstimate EstimateDegreeHistogram(const BipartiteGraph& graph,
                                                Layer layer, double epsilon,
                                                size_t num_buckets,
                                                Rng& rng) {
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  CNE_CHECK(num_buckets >= 2) << "need at least two buckets";
  DegreeHistogramEstimate estimate;
  estimate.epsilon = epsilon;
  estimate.num_vertices = graph.NumVertices(layer);
  estimate.counts.assign(num_buckets, 0.0);
  const long max_bucket = static_cast<long>(num_buckets) - 1;
  const VertexId n = graph.NumVertices(layer);
  for (VertexId v = 0; v < n; ++v) {
    // Vertex side: one Laplace-noised degree report (sensitivity 1).
    const double noisy = LaplaceMechanism(
        static_cast<double>(graph.Degree(layer, v)), kDegreeSensitivity,
        epsilon, rng);
    // Curator side (post-processing): round and clamp into the buckets.
    const long bucket =
        std::clamp(std::lround(noisy), 0L, max_bucket);
    estimate.counts[static_cast<size_t>(bucket)] += 1.0;
  }
  return estimate;
}

std::vector<double> ExactDegreeHistogram(const BipartiteGraph& graph,
                                         Layer layer, size_t num_buckets) {
  CNE_CHECK(num_buckets >= 2) << "need at least two buckets";
  std::vector<double> counts(num_buckets, 0.0);
  const VertexId n = graph.NumVertices(layer);
  for (VertexId v = 0; v < n; ++v) {
    const size_t bucket = std::min<size_t>(graph.Degree(layer, v),
                                           num_buckets - 1);
    counts[bucket] += 1.0;
  }
  return counts;
}

double HistogramTotalVariation(const std::vector<double>& a,
                               const std::vector<double>& b) {
  CNE_CHECK(a.size() == b.size()) << "histogram sizes differ";
  double total_a = 0.0, total_b = 0.0;
  for (double x : a) total_a += x;
  for (double x : b) total_b += x;
  if (total_a <= 0.0 && total_b <= 0.0) return 0.0;
  if (total_a <= 0.0 || total_b <= 0.0) return 1.0;
  double tv = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    tv += std::abs(a[i] / total_a - b[i] / total_b);
  }
  return tv / 2.0;
}

}  // namespace cne
