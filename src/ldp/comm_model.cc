#include "ldp/comm_model.h"

#include "ldp/randomized_response.h"

namespace cne {

double ExpectedRrUploadBytes(double degree, double opposite_size,
                             double epsilon, CommModel model) {
  return model.bytes_per_edge *
         ExpectedNoisyDegree(degree, opposite_size, epsilon);
}

}  // namespace cne
