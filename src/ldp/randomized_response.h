// Warner randomized response over bipartite neighbor lists (Section 2.2).
//
// Given privacy budget ε, every bit of a vertex's neighbor list is flipped
// independently with probability p = 1 / (1 + e^ε). Materializing the
// length-n noisy row is O(n); instead we sample the *noisy neighbor set*
// sparsely and exactly:
//   * each true neighbor stays with probability 1 - p,
//   * the number of flipped-in non-neighbors is Binomial(n - d, p) and
//     their identities are uniform without replacement.
// The resulting set has exactly the distribution of bit-by-bit RR at cost
// O(d + pn) expected.

#ifndef CNE_LDP_RANDOMIZED_RESPONSE_H_
#define CNE_LDP_RANDOMIZED_RESPONSE_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Flip probability p = 1 / (1 + e^ε) of Warner's randomized response.
double FlipProbability(double epsilon);

/// The noisy neighbor set of one vertex after randomized response: the set
/// of opposite-layer vertices whose noisy adjacency bit is 1.
class NoisyNeighborSet {
 public:
  NoisyNeighborSet() = default;

  /// `members` need not be sorted; `domain_size` is the size of the
  /// opposite layer (the length of the perturbed neighbor list).
  NoisyNeighborSet(std::vector<VertexId> members, VertexId domain_size,
                   double flip_probability);

  /// True if the noisy bit A'[v] is 1. O(log size).
  bool Contains(VertexId v) const;

  /// Number of 1-bits in the noisy row (the vertex's noisy degree).
  size_t Size() const { return members_.size(); }

  /// Size of the perturbed domain (opposite-layer vertex count).
  VertexId DomainSize() const { return domain_size_; }

  /// The flip probability the set was generated with.
  double flip_probability() const { return flip_probability_; }

  /// Sorted members, for set algebra (intersection/union) by the curator.
  const std::vector<VertexId>& SortedMembers() const { return members_; }

 private:
  std::vector<VertexId> members_;  // sorted
  VertexId domain_size_ = 0;
  double flip_probability_ = 0.0;
};

/// Applies ε-randomized response to the neighbor list of `vertex` and
/// returns its noisy neighbor set. Exactly distributed as bit-by-bit RR.
NoisyNeighborSet ApplyRandomizedResponse(const BipartiteGraph& graph,
                                         LayeredVertex vertex, double epsilon,
                                         Rng& rng);

/// Reference O(n) implementation that flips every bit explicitly. Used by
/// tests to validate the sparse sampler; do not call on large layers.
NoisyNeighborSet ApplyRandomizedResponseDense(const BipartiteGraph& graph,
                                              LayeredVertex vertex,
                                              double epsilon, Rng& rng);

/// Expected number of noisy edges produced by ε-RR on a vertex of degree d
/// with opposite layer size n: d(1-p) + (n-d)p.
double ExpectedNoisyDegree(double degree, double opposite_size,
                           double epsilon);

}  // namespace cne

#endif  // CNE_LDP_RANDOMIZED_RESPONSE_H_
