// Warner randomized response over bipartite neighbor lists (Section 2.2).
//
// Given privacy budget ε, every bit of a vertex's neighbor list is flipped
// independently with probability p = 1 / (1 + e^ε). Materializing the
// length-n noisy row bit by bit is O(n) RNG draws; instead we sample the
// *noisy neighbor set* sparsely and exactly:
//   * each true neighbor stays with probability 1 - p,
//   * flipped-in non-neighbors are the successes of a Bernoulli(p) process
//     over the n - d non-neighbor positions, generated in sorted order by
//     Geometric(p) skip sampling.
// The resulting set has exactly the distribution of bit-by-bit RR at cost
// O(d + pn) expected.
//
// Storage is hybrid: at practical ε the noisy row is *dense* (expected
// density d/n (1-p) + (1-d/n) p ≥ p, i.e. ~27% at ε = 1), so the release
// is packed into a 64-bit-word bitmap (DenseBitset) written directly —
// no sorted vector, no sort — and intersections run through the word-AND
// and probe kernels of graph/set_ops.h. In the sparse regime (large ε
// and/or low degree) the sorted-vector representation is kept. The choice
// is a pure function of (degree, domain, ε), so a release's representation
// is deterministic and identical across threads.

#ifndef CNE_LDP_RANDOMIZED_RESPONSE_H_
#define CNE_LDP_RANDOMIZED_RESPONSE_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/set_ops.h"
#include "util/rng.h"

namespace cne {

/// Flip probability p = 1 / (1 + e^ε) of Warner's randomized response.
double FlipProbability(double epsilon);

/// The noisy neighbor set of one vertex after randomized response: the set
/// of opposite-layer vertices whose noisy adjacency bit is 1. Stored either
/// as a sorted id vector (sparse regime) or a packed bitmap (dense regime);
/// consumers should intersect through View() and the set_ops dispatcher,
/// which picks the kernel from the representations.
class NoisyNeighborSet {
 public:
  NoisyNeighborSet() = default;

  /// Sorted-vector mode. `members` need not be sorted; `domain_size` is the
  /// size of the opposite layer (the length of the perturbed neighbor list).
  NoisyNeighborSet(std::vector<VertexId> members, VertexId domain_size,
                   double flip_probability);

  /// Bitmap mode; the domain is `bits.NumBits()`.
  NoisyNeighborSet(DenseBitset bits, double flip_probability);

  /// Sorted-vector mode from members already sorted and deduplicated
  /// (skips the O(k log k) sort of the general constructor).
  static NoisyNeighborSet FromSortedUnique(std::vector<VertexId> members,
                                           VertexId domain_size,
                                           double flip_probability);

  /// True if the noisy bit A'[v] is 1. O(1) in bitmap mode, O(log size)
  /// in sorted mode.
  bool Contains(VertexId v) const;

  /// Number of 1-bits in the noisy row (the vertex's noisy degree).
  size_t Size() const { return size_; }

  /// Size of the perturbed domain (opposite-layer vertex count).
  VertexId DomainSize() const { return domain_size_; }

  /// The flip probability the set was generated with.
  double flip_probability() const { return flip_probability_; }

  /// True when the set is stored as a packed bitmap.
  bool IsBitmap() const { return is_bitmap_; }

  /// Representation-agnostic view for the set_ops intersection dispatcher.
  SetView View() const;

  /// Sorted members of a sorted-mode set; fatal check in bitmap mode
  /// (use ToSortedVector there). Kept for the sparse-regime consumers and
  /// tests that want zero-copy access.
  const std::vector<VertexId>& SortedMembers() const;

  /// Materializes the sorted member list in either mode (decoding a bitmap
  /// yields ascending ids without sorting).
  std::vector<VertexId> ToSortedVector() const;

 private:
  std::vector<VertexId> members_;  // sorted; empty in bitmap mode
  DenseBitset bits_;               // empty in sorted mode
  uint64_t size_ = 0;
  VertexId domain_size_ = 0;
  double flip_probability_ = 0.0;
  bool is_bitmap_ = false;
};

/// Storage-mode override for ApplyRandomizedResponse. kAuto picks the
/// bitmap when the expected noisy row is dense (UseBitmapStorage); the
/// explicit hints pin a representation, for tests and benchmarks.
enum class RrStorage { kAuto, kSorted, kBitmap };

/// Expected-density threshold at and above which kAuto packs the release
/// into a bitmap. Set at the intersection-cost crossover (near density
/// 1/128, where the word kernels overtake the merge family): the old
/// 1/16 memory-halving threshold left mid-density releases (e.g. 0.01 at
/// ε≈3) in sorted vectors, forcing the dispatcher through a 2.4×-slower
/// merge where the bitmap kernels — now SIMD — win outright
/// (BENCH_intersect.json, 0.01×0.01 cell). Memory still favors the
/// bitmap here: n/8 bytes vs 4 bytes/id breaks even at density 1/32,
/// and below that the bitmap costs at most 4× the sorted row — bounded,
/// and bought back many times over on the query path.
inline constexpr double kBitmapDensityThreshold = 1.0 / 128.0;

/// Domains smaller than one bitmap word stay sorted under kAuto: there is
/// nothing to win and the sorted path keeps the tiny-domain distribution
/// tests on the code path their name promises.
inline constexpr VertexId kBitmapMinDomain = 64;

/// True when kAuto stores the ε-release of a degree-`degree` vertex over
/// `domain` opposite vertices as a bitmap. Pure function of its arguments:
/// representation choice is deterministic across threads and runs.
bool UseBitmapStorage(uint64_t degree, VertexId domain, double epsilon);

/// Applies ε-randomized response to the neighbor list of `vertex` and
/// returns its noisy neighbor set. Exactly distributed as bit-by-bit RR in
/// both storage modes; `storage` only changes the representation (and the
/// RNG draw sequence), never the output distribution.
NoisyNeighborSet ApplyRandomizedResponse(const BipartiteGraph& graph,
                                         LayeredVertex vertex, double epsilon,
                                         Rng& rng,
                                         RrStorage storage = RrStorage::kAuto);

/// Reference O(n) implementation that flips every bit explicitly. Used by
/// tests to validate the sparse and bitmap samplers; do not call on large
/// layers.
NoisyNeighborSet ApplyRandomizedResponseDense(const BipartiteGraph& graph,
                                              LayeredVertex vertex,
                                              double epsilon, Rng& rng);

/// Expected number of noisy edges produced by ε-RR on a vertex of degree d
/// with opposite layer size n: d(1-p) + (n-d)p.
double ExpectedNoisyDegree(double degree, double opposite_size,
                           double epsilon);

/// Shared reserve() sizing for noisy-member vectors: the expected noisy
/// degree plus slack, capped at the domain.
size_t NoisyDegreeReserveHint(uint64_t degree, VertexId domain,
                              double epsilon);

}  // namespace cne

#endif  // CNE_LDP_RANDOMIZED_RESPONSE_H_
