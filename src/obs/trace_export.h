// Per-thread trace-event capture behind the TraceSpan stack, exported as
// Chrome-trace-event JSON (opens directly in Perfetto / chrome://tracing).
//
// A TraceSink owns one lock-light ring buffer per emitting thread. Named
// TraceSpans publish complete ("X") events — name, start, total duration,
// the current submit id — into their own thread's ring; the ring
// overwrites its oldest events when full, so capture never blocks or
// allocates on the hot path (the per-event cost is a thread-local cache
// check plus one slot write and a release store).
//
// Capture is scoped to submissions: the query service opens a
// SubmitTraceScope around each Submit, and the sink samples one scope in
// every `sample_period`. Outside a sampled scope the armed flag
// (obs/trace.h) is down and named spans collapse to no-ops, which is how
// the <5% observability overhead contract survives tracing: an idle sink
// costs exactly one relaxed load per named span.
//
// Serialization: ToChromeJson() drains every ring into one JSON document
// sorted by timestamp. Nesting is implicit in the format — viewers (and
// scripts/check_trace_json.py) reconstruct span trees from interval
// containment per tid, which holds by construction because spans on one
// thread strictly nest.
//
// Thread-safety: Emit is safe from any thread; Install/Uninstall,
// Begin/EndSubmitScope, and ToChromeJson are control-plane calls expected
// from one coordinating thread (the service owner) with no Submit in
// flight during ToChromeJson.

#ifndef CNE_OBS_TRACE_EXPORT_H_
#define CNE_OBS_TRACE_EXPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace cne::obs {

/// One captured span, as stored in a thread ring.
struct TraceEvent {
  const char* name = nullptr;  ///< static string from the TraceSpan site
  uint64_t start_nanos = 0;    ///< NowNanos() at span entry
  uint64_t dur_nanos = 0;      ///< total (inclusive) span duration
  uint64_t submit = 0;         ///< submit scope the span belongs to
};

struct TraceSinkOptions {
  /// Events retained per emitting thread; the ring overwrites its oldest
  /// event when full. Power of two recommended (the index math is a mod).
  size_t ring_capacity = 4096;

  /// Capture every Nth submit scope (1 = every submit). Sampling whole
  /// scopes rather than individual events keeps retained span trees
  /// complete — a partial tree is useless for drill-down.
  uint64_t sample_period = 1;
};

/// Installable trace-event collector. At most one sink is installed at a
/// time; the destructor uninstalls automatically.
class TraceSink {
 public:
  explicit TraceSink(TraceSinkOptions options = {});
  ~TraceSink();

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  /// Makes this sink the process-wide capture target. Fatal check if
  /// another sink is already installed.
  void Install();

  /// Detaches this sink (no-op when not installed). Buffered events stay
  /// readable through ToChromeJson().
  void Uninstall();

  /// The installed sink, or nullptr. One relaxed atomic load.
  static TraceSink* Current();

  /// Opens a submit capture scope: decides whether this scope is sampled
  /// and arms named-span capture accordingly. Must be balanced with
  /// EndSubmitScope (use SubmitTraceScope).
  void BeginSubmitScope(uint64_t submit_id);
  void EndSubmitScope();

  /// Appends one event to the calling thread's ring (registering the ring
  /// on the thread's first emit). Called by the TraceSpan destructor via
  /// trace_internal::EmitSpanEvent; safe from any thread.
  void Emit(const char* name, uint64_t start_nanos, uint64_t dur_nanos);

  /// Events currently retained across all rings / dropped to overwrite.
  uint64_t EventsRetained() const;
  uint64_t EventsDropped() const;

  /// All retained events as a Chrome-trace-event JSON document:
  /// {"traceEvents": [{"name", "ph": "X", "ts", "dur", "pid", "tid",
  /// "args": {"submit"}}, ...]} with ts/dur in microseconds relative to
  /// the earliest retained event, sorted by ts (ties: longest first, so
  /// parents precede their children).
  std::string ToChromeJson() const;

 private:
  struct ThreadBuffer {
    explicit ThreadBuffer(size_t capacity, uint32_t tid)
        : ring(capacity), tid(tid) {}
    std::vector<TraceEvent> ring;
    /// Total events ever emitted; ring[i % capacity] holds the live tail.
    /// Release store after the slot write so a drain on another thread
    /// sees initialized slots.
    std::atomic<uint64_t> count{0};
    uint32_t tid;
  };

  ThreadBuffer* BufferForThisThread();

  const TraceSinkOptions options_;
  const uint64_t generation_;  ///< distinguishes sinks across lifetimes

  std::atomic<uint64_t> scope_submit_{0};
  uint64_t scopes_begun_ = 0;  ///< drives 1-in-sample_period selection
  bool installed_ = false;

  mutable std::mutex mutex_;  ///< guards buffers_ registration and drains
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII submit scope: inert when disabled or when no sink is installed.
class SubmitTraceScope {
 public:
  SubmitTraceScope(bool enabled, uint64_t submit_id) {
#if CNE_OBS_ENABLED
    if (!enabled) return;
    sink_ = TraceSink::Current();
    if (sink_ != nullptr) sink_->BeginSubmitScope(submit_id);
#else
    (void)enabled;
    (void)submit_id;
#endif
  }
  ~SubmitTraceScope() {
    if (sink_ != nullptr) sink_->EndSubmitScope();
  }

  SubmitTraceScope(const SubmitTraceScope&) = delete;
  SubmitTraceScope& operator=(const SubmitTraceScope&) = delete;

 private:
  TraceSink* sink_ = nullptr;
};

}  // namespace cne::obs

#endif  // CNE_OBS_TRACE_EXPORT_H_
