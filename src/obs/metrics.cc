#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cne::obs {

namespace {

// floor(log2(v)) for v >= 1.
inline int FloorLog2(uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  return 63 - __builtin_clzll(v);
#else
  int e = 0;
  while (v >>= 1) ++e;
  return e;
#endif
}

std::string FormatDuration(double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

std::string FormatSecondsJson(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", seconds);
  return buf;
}

}  // namespace

const char* MetricsLevelName(MetricsLevel level) {
  switch (level) {
    case MetricsLevel::kOff:
      return "off";
    case MetricsLevel::kCounters:
      return "counters";
    case MetricsLevel::kFull:
      return "full";
  }
  return "full";
}

MetricsLevel ParseMetricsLevel(const std::string& name) {
  if (name == "off") return MetricsLevel::kOff;
  if (name == "counters") return MetricsLevel::kCounters;
  return MetricsLevel::kFull;
}

// ---- LatencyHistogram ----

LatencyHistogram::LatencyHistogram() : shards_(kShards) {
  for (Shard& shard : shards_) {
    for (auto& bucket : shard.buckets) {
      bucket.store(0, std::memory_order_relaxed);
    }
  }
}

size_t LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < 2 * kSubBuckets) return static_cast<size_t>(nanos);
  const int e = FloorLog2(nanos);
  if (e > kMaxExponent) return kNumBuckets - 1;
  const uint64_t mantissa = nanos >> (e - kSubBits);  // in [32, 64)
  return kSubBuckets * static_cast<size_t>(e - kSubBits) +
         static_cast<size_t>(mantissa);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < 2 * kSubBuckets) return index;
  const uint64_t mantissa = index % kSubBuckets + kSubBuckets;
  const int shift = static_cast<int>(index / kSubBuckets) - 1;
  return mantissa << shift;
}

size_t LatencyHistogram::ShardIndex() {
  static std::atomic<uint32_t> next_thread{0};
  thread_local uint32_t id =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot out;
  // The shard count gates the scan and the high-water mark bounds it:
  // snapshots run per submission, and sub-microsecond phases only ever
  // touch the first ~200 of the 1216 buckets, so scanning (and zeroing)
  // past the highest touched bucket would dominate Snapshot's cost.
  // Count and high water are read before the buckets — records landing
  // mid-scan are picked up by a later snapshot, never lost.
  size_t needed = 0;
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    const size_t top = static_cast<size_t>(
        shard.high_water.load(std::memory_order_relaxed));
    needed = std::max(needed, top + 1);
  }
  out.buckets.assign(needed, 0);
  for (const Shard& shard : shards_) {
    if (shard.count.load(std::memory_order_relaxed) == 0) continue;
    out.sum_nanos += shard.sum_nanos.load(std::memory_order_relaxed);
    for (size_t i = 0; i < needed; ++i) {
      const uint64_t c = shard.buckets[i].load(std::memory_order_relaxed);
      out.buckets[i] += c;
      out.count += c;
    }
  }
  if (out.count == 0) out.buckets.clear();
  return out;
}

// ---- HistogramSnapshot ----

namespace {

// Representative value of a bucket: exact for the unit buckets, midpoint
// of [lower, upper) otherwise — worst-case relative error 1/64.
double BucketRepresentative(size_t index) {
  if (index < 2 * LatencyHistogram::kSubBuckets) {
    return static_cast<double>(index);
  }
  const double lo =
      static_cast<double>(LatencyHistogram::BucketLowerBound(index));
  const double hi =
      static_cast<double>(LatencyHistogram::BucketLowerBound(index + 1));
  return (lo + hi) / 2.0;
}

}  // namespace

double HistogramSnapshot::QuantileNanos(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count - 1);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) > target) {
      return BucketRepresentative(i);
    }
  }
  return BucketRepresentative(buckets.empty() ? 0 : buckets.size() - 1);
}

uint64_t HistogramSnapshot::MaxNanos() const {
  for (size_t i = buckets.size(); i-- > 0;) {
    if (buckets[i] == 0) continue;
    if (i < 2 * LatencyHistogram::kSubBuckets) return i;
    return LatencyHistogram::BucketLowerBound(i + 1) - 1;
  }
  return 0;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (buckets.size() < other.buckets.size()) {
    buckets.resize(other.buckets.size(), 0);
  }
  for (size_t i = 0; i < other.buckets.size(); ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum_nanos += other.sum_nanos;
}

// ---- MetricsSnapshot ----

PhaseStats MakePhaseStats(const std::string& name,
                          const HistogramSnapshot& snapshot) {
  PhaseStats s;
  s.name = name;
  s.count = snapshot.count;
  s.total_seconds = snapshot.TotalSeconds();
  s.mean_seconds = snapshot.MeanNanos() * 1e-9;
  if (snapshot.count == 0) return s;
  // All four quantiles and the max in ONE cumulative walk (phase stats
  // are extracted per submission, so five separate 1216-bucket walks
  // would show up in the overhead guard).
  const double n = static_cast<double>(snapshot.count - 1);
  const double targets[4] = {0.50 * n, 0.90 * n, 0.99 * n, 0.999 * n};
  double* outputs[4] = {&s.p50_seconds, &s.p90_seconds, &s.p99_seconds,
                        &s.p999_seconds};
  size_t next = 0;
  uint64_t cumulative = 0;
  size_t last_nonempty = 0;
  for (size_t i = 0; i < snapshot.buckets.size() && next < 4; ++i) {
    if (snapshot.buckets[i] == 0) continue;
    last_nonempty = i;
    cumulative += snapshot.buckets[i];
    while (next < 4 && static_cast<double>(cumulative) > targets[next]) {
      *outputs[next] = BucketRepresentative(i) * 1e-9;
      ++next;
    }
  }
  for (; next < 4; ++next) {
    *outputs[next] = BucketRepresentative(last_nonempty) * 1e-9;
  }
  s.max_seconds = static_cast<double>(snapshot.MaxNanos()) * 1e-9;
  return s;
}

const PhaseStats* MetricsSnapshot::Phase(const std::string& name) const {
  for (const PhaseStats& p : phases) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const auto& [counter_name, value] : counters) {
    if (counter_name == name) return value;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson(int indent) const {
  const std::string pad(static_cast<size_t>(indent), ' ');
  std::ostringstream out;
  out << "{\n" << pad << "  \"metrics_version\": " << kVersion << ",\n";
  out << pad << "  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    if (i) out << ", ";
    out << "\"" << counters[i].first << "\": " << counters[i].second;
  }
  out << "},\n" << pad << "  \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    if (i) out << ", ";
    out << "\"" << gauges[i].first << "\": " << gauges[i].second;
  }
  out << "},\n" << pad << "  \"phases\": [";
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseStats& p = phases[i];
    if (i) out << ",";
    out << "\n"
        << pad << "    {\"name\": \"" << p.name << "\", \"count\": " << p.count
        << ", \"total_seconds\": " << FormatSecondsJson(p.total_seconds)
        << ", \"mean_seconds\": " << FormatSecondsJson(p.mean_seconds)
        << ", \"p50_seconds\": " << FormatSecondsJson(p.p50_seconds)
        << ", \"p90_seconds\": " << FormatSecondsJson(p.p90_seconds)
        << ", \"p99_seconds\": " << FormatSecondsJson(p.p99_seconds)
        << ", \"p999_seconds\": " << FormatSecondsJson(p.p999_seconds)
        << ", \"max_seconds\": " << FormatSecondsJson(p.max_seconds) << "}";
  }
  if (!phases.empty()) out << "\n" << pad << "  ";
  out << "]";
  if (!exemplars.empty()) {
    out << ",\n" << pad << "  \"exemplars\": {";
    for (size_t i = 0; i < exemplars.size(); ++i) {
      const PhaseExemplars& pe = exemplars[i];
      if (i) out << ",";
      out << "\n" << pad << "    \"" << pe.phase << "\": [";
      for (size_t j = 0; j < pe.exemplars.size(); ++j) {
        const Exemplar& e = pe.exemplars[j];
        if (j) out << ",";
        out << "\n"
            << pad << "      {\"seconds\": " << FormatSecondsJson(e.seconds)
            << ", \"submit\": " << e.submit;
        if (e.has_query) {
          out << ", \"layer\": " << static_cast<unsigned>(e.layer)
              << ", \"u\": " << e.u << ", \"w\": " << e.w;
        }
        if (e.kernel != nullptr) out << ", \"kernel\": \"" << e.kernel << "\"";
        if (e.repr_u != nullptr) {
          out << ", \"repr_u\": \"" << e.repr_u << "\", \"size_u\": " << e.size_u;
        }
        if (e.repr_w != nullptr) {
          out << ", \"repr_w\": \"" << e.repr_w << "\", \"size_w\": " << e.size_w;
        }
        if (e.simd != nullptr) out << ", \"simd\": \"" << e.simd << "\"";
        out << "}";
      }
      out << "\n" << pad << "    ]";
    }
    out << "\n" << pad << "  }";
  }
  if (budget.present) {
    out << ",\n"
        << pad << "  \"budget\": {\"lifetime_budget\": "
        << FormatSecondsJson(budget.lifetime_budget)
        << ", \"charged_vertices\": " << budget.charged_vertices
        << ", \"exhausted_vertices\": " << budget.exhausted_vertices
        << ", \"total_spent\": " << FormatSecondsJson(budget.total_spent)
        << ", \"min_remaining\": " << FormatSecondsJson(budget.min_remaining)
        << ", \"sum_remaining\": " << FormatSecondsJson(budget.sum_remaining)
        << ", \"spent_rr\": " << FormatSecondsJson(budget.spent_rr)
        << ", \"spent_laplace\": " << FormatSecondsJson(budget.spent_laplace)
        << ", \"projected_submits_to_exhaustion\": "
        << FormatSecondsJson(budget.projected_submits_to_exhaustion)
        << ", \"residual_histogram\": [";
    for (size_t i = 0; i < budget.residual_histogram.size(); ++i) {
      if (i) out << ", ";
      out << budget.residual_histogram[i];
    }
    out << "]}";
  }
  out << "\n" << pad << "}";
  return out.str();
}

std::string MetricsSnapshot::ToTable() const {
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-14s %10s %10s %9s %9s %9s %9s %9s\n",
                "phase", "count", "total", "mean", "p50", "p99", "p999",
                "max");
  out << line;
  for (const PhaseStats& p : phases) {
    std::snprintf(line, sizeof(line),
                  "%-14s %10llu %10s %9s %9s %9s %9s %9s\n", p.name.c_str(),
                  static_cast<unsigned long long>(p.count),
                  FormatDuration(p.total_seconds).c_str(),
                  FormatDuration(p.mean_seconds).c_str(),
                  FormatDuration(p.p50_seconds).c_str(),
                  FormatDuration(p.p99_seconds).c_str(),
                  FormatDuration(p.p999_seconds).c_str(),
                  FormatDuration(p.max_seconds).c_str());
    out << line;
  }
  if (!counters.empty()) {
    out << "counters:";
    for (const auto& [name, value] : counters) {
      out << " " << name << "=" << value;
    }
    out << "\n";
  }
  for (const PhaseExemplars& pe : exemplars) {
    out << "exemplars[" << pe.phase << "]:\n";
    for (const Exemplar& e : pe.exemplars) {
      out << "  " << FormatDuration(e.seconds) << " submit=" << e.submit;
      if (e.has_query) {
        out << " layer=" << static_cast<unsigned>(e.layer) << " u=" << e.u
            << " w=" << e.w;
      }
      if (e.kernel != nullptr) out << " kernel=" << e.kernel;
      if (e.repr_u != nullptr) {
        out << " " << e.repr_u << "[" << e.size_u << "]";
      }
      if (e.repr_w != nullptr) {
        out << "x" << e.repr_w << "[" << e.size_w << "]";
      }
      if (e.simd != nullptr) out << " simd=" << e.simd;
      out << "\n";
    }
  }
  if (budget.present) {
    char line[224];
    std::snprintf(line, sizeof(line),
                  "budget: lifetime=%.4g charged=%llu exhausted=%llu "
                  "spent=%.4g (rr=%.4g lap=%.4g) min_rem=%.4g "
                  "proj_submits=%.4g\n",
                  budget.lifetime_budget,
                  static_cast<unsigned long long>(budget.charged_vertices),
                  static_cast<unsigned long long>(budget.exhausted_vertices),
                  budget.total_spent, budget.spent_rr, budget.spent_laplace,
                  budget.min_remaining,
                  budget.projected_submits_to_exhaustion);
    out << line;
  }
  return out.str();
}

// ---- MetricsRegistry ----

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

ExemplarReservoir* MetricsRegistry::GetExemplars(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = exemplars_[name];
  if (!slot) slot = std::make_unique<ExemplarReservoir>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    out.phases.push_back(MakePhaseStats(name, histogram->Snapshot()));
  }
  for (const auto& [name, reservoir] : exemplars_) {
    std::vector<Exemplar> kept = reservoir->Snapshot();
    if (kept.empty()) continue;
    out.exemplars.push_back(PhaseExemplars{name, std::move(kept)});
  }
  return out;
}

}  // namespace cne::obs
