// Tail-latency exemplars: per-phase reservoirs retaining the K slowest
// samples *with context* — which kernel ran, operand representations and
// sizes, SIMD level, submit/query ids — so a p999 spike in a phase table
// resolves to a named cause without re-running under a profiler.
//
// The hot-path contract mirrors the rest of cne_obs: callers that already
// decided to time a sample (the 1-in-N sampled paths) ask WouldAccept()
// first — one relaxed load against the reservoir's current admission
// floor — and only build the context struct and take the mutex when the
// sample would actually displace a kept exemplar. Under a steady workload
// the floor converges to the Kth-slowest latency, so offers become
// vanishingly rare.

#ifndef CNE_OBS_EXEMPLAR_H_
#define CNE_OBS_EXEMPLAR_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace cne::obs {

/// One retained slow sample. Pointer fields reference static strings
/// (kernel dispatch names, SIMD level names) — never owned.
struct Exemplar {
  double seconds = 0.0;  ///< the sampled latency
  uint64_t submit = 0;   ///< submit sequence number it occurred in

  bool has_query = false;  ///< true when layer/u/w identify a query pair
  uint8_t layer = 0;       ///< CommonNeighborLayer as uint8_t
  uint32_t u = 0;
  uint32_t w = 0;

  const char* kernel = nullptr;  ///< dispatched set-ops kernel, if any
  const char* repr_u = nullptr;  ///< operand representation ("sorted"/"bitmap")
  const char* repr_w = nullptr;
  uint64_t size_u = 0;  ///< operand cardinalities
  uint64_t size_w = 0;
  const char* simd = nullptr;  ///< active SIMD level name
};

/// Fixed-capacity K-slowest reservoir. WouldAccept is wait-free; Offer
/// takes a small mutex and is expected to be rare (see header comment).
class ExemplarReservoir {
 public:
  static constexpr size_t kCapacity = 4;

  /// True when a sample of this duration would enter the reservoir.
  /// Always true until the reservoir first fills.
  bool WouldAccept(uint64_t nanos) const {
    return nanos > floor_nanos_.load(std::memory_order_relaxed);
  }

  /// Inserts the exemplar if it is still slower than the current floor
  /// (the floor may have risen since WouldAccept).
  void Offer(uint64_t nanos, const Exemplar& exemplar);

  /// Retained exemplars, slowest first.
  std::vector<Exemplar> Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Exemplar> kept_;  ///< unsorted; at most kCapacity
  /// Admission floor: 0 until kept_ is full, then the smallest kept
  /// latency in nanoseconds.
  std::atomic<uint64_t> floor_nanos_{0};
};

/// A named reservoir snapshot, as carried by MetricsSnapshot.
struct PhaseExemplars {
  std::string phase;
  std::vector<Exemplar> exemplars;
};

}  // namespace cne::obs

#endif  // CNE_OBS_EXEMPLAR_H_
