// RAII latency spans over obs::LatencyHistogram, with nesting-aware
// exclusive time and a compile-time kill switch.
//
// A TraceSpan constructed with a null histogram is a complete no-op (no
// clock read). With a histogram it records, on destruction, the span's
// *exclusive* time — wall time minus the wall time of spans nested inside
// it on the same thread — so a phase table sums to the pipeline total
// instead of double-counting parents and children.
//
// Compiling with -DCNE_OBS_ENABLED=0 reduces every span to an empty object
// and NowNanos stays available for manual timing.

#ifndef CNE_OBS_TRACE_H_
#define CNE_OBS_TRACE_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

#ifndef CNE_OBS_ENABLED
#define CNE_OBS_ENABLED 1
#endif

namespace cne::obs {

/// Monotonic nanosecond clock (steady_clock; ~20-25 ns per read).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if CNE_OBS_ENABLED

class TraceSpan {
 public:
  /// Null histogram => no-op span (no clock read, no thread-local touch).
  explicit TraceSpan(LatencyHistogram* histogram) : histogram_(histogram) {
    if (histogram_ == nullptr) return;
    parent_ = current_;
    current_ = this;
    start_nanos_ = NowNanos();
  }

  ~TraceSpan() {
    if (histogram_ == nullptr) return;
    const uint64_t total = NowNanos() - start_nanos_;
    const uint64_t exclusive = total > child_nanos_ ? total - child_nanos_ : 0;
    histogram_->Record(exclusive);
    if (parent_ != nullptr) parent_->child_nanos_ += total;
    current_ = parent_;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  LatencyHistogram* histogram_;
  TraceSpan* parent_ = nullptr;
  uint64_t start_nanos_ = 0;
  uint64_t child_nanos_ = 0;

  static thread_local TraceSpan* current_;
};

#else  // !CNE_OBS_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(LatencyHistogram*) {}
};

#endif  // CNE_OBS_ENABLED

/// Deterministic 1-in-N sampler for per-item spans on paths too hot to
/// time every iteration. Not thread-safe; keep one per worker scope.
class SampledRecorder {
 public:
  /// `shift`: sample every 2^shift-th call (default 1 in 8).
  explicit SampledRecorder(LatencyHistogram* histogram, unsigned shift = 3)
      : histogram_(histogram), mask_((1u << shift) - 1) {}

  /// True when this iteration should be timed. Always false when disabled.
  bool ShouldSample() {
    if (histogram_ == nullptr) return false;
    return (ticks_++ & mask_) == 0;
  }

  void Record(uint64_t nanos) {
    if (histogram_ != nullptr) histogram_->Record(nanos);
  }

 private:
  LatencyHistogram* histogram_;
  uint32_t mask_;
  uint32_t ticks_ = 0;
};

}  // namespace cne::obs

#endif  // CNE_OBS_TRACE_H_
