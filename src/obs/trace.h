// RAII latency spans over obs::LatencyHistogram, with nesting-aware
// exclusive time, optional trace-event capture, and a compile-time kill
// switch.
//
// A TraceSpan constructed with a null histogram and no name is a complete
// no-op (no clock read). With a histogram it records, on destruction, the
// span's *exclusive* time — wall time minus the wall time of spans nested
// inside it on the same thread — so a phase table sums to the pipeline
// total instead of double-counting parents and children.
//
// A *named* span additionally publishes a complete trace event (name,
// start, total duration) to the installed TraceSink (obs/trace_export.h)
// whenever capture is armed — i.e. a sink is installed and the current
// submit scope is sampled. A named span with a null histogram exists only
// for the trace: it joins the nesting stack and emits an event, but
// records nowhere, and collapses back to a no-op the moment capture is
// off — so pipeline-shaped wrapper spans cost nothing outside a sampled
// trace scope.
//
// Compiling with -DCNE_OBS_ENABLED=0 reduces every span to an empty object
// and NowNanos stays available for manual timing.

#ifndef CNE_OBS_TRACE_H_
#define CNE_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

#ifndef CNE_OBS_ENABLED
#define CNE_OBS_ENABLED 1
#endif

namespace cne::obs {

namespace trace_internal {

/// True while a TraceSink is installed AND the current submit scope is
/// sampled (obs/trace_export.h flips it). Named spans read it with one
/// relaxed load; everything else never touches it.
extern std::atomic<bool> g_capture_armed;

/// Forwards one finished span to the installed sink (trace_export.cc).
void EmitSpanEvent(const char* name, uint64_t start_nanos,
                   uint64_t end_nanos);

}  // namespace trace_internal

/// Monotonic nanosecond clock (steady_clock; ~20-25 ns per read).
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if CNE_OBS_ENABLED

class TraceSpan {
 public:
  /// Null histogram and null name => no-op span (no clock read, no
  /// thread-local touch). A name alone activates the span only while
  /// trace capture is armed.
  explicit TraceSpan(LatencyHistogram* histogram,
                     const char* name = nullptr)
      : histogram_(histogram) {
    if (histogram_ == nullptr &&
        (name == nullptr ||
         !trace_internal::g_capture_armed.load(std::memory_order_relaxed))) {
      return;
    }
    name_ = name;
    active_ = true;
    parent_ = current_;
    current_ = this;
    start_nanos_ = NowNanos();
  }

  ~TraceSpan() {
    if (!active_) return;
    const uint64_t end_nanos = NowNanos();
    const uint64_t total = end_nanos - start_nanos_;
    if (histogram_ != nullptr) {
      const uint64_t exclusive =
          total > child_nanos_ ? total - child_nanos_ : 0;
      histogram_->Record(exclusive);
    }
    if (name_ != nullptr &&
        trace_internal::g_capture_armed.load(std::memory_order_relaxed)) {
      trace_internal::EmitSpanEvent(name_, start_nanos_, end_nanos);
    }
    if (parent_ != nullptr) parent_->child_nanos_ += total;
    current_ = parent_;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  LatencyHistogram* histogram_;
  const char* name_ = nullptr;
  bool active_ = false;
  TraceSpan* parent_ = nullptr;
  uint64_t start_nanos_ = 0;
  uint64_t child_nanos_ = 0;

  static thread_local TraceSpan* current_;
};

#else  // !CNE_OBS_ENABLED

class TraceSpan {
 public:
  explicit TraceSpan(LatencyHistogram*, const char* = nullptr) {}
};

#endif  // CNE_OBS_ENABLED

/// Deterministic 1-in-N sampler for per-item spans on paths too hot to
/// time every iteration. Not thread-safe; keep one per worker scope.
class SampledRecorder {
 public:
  /// `shift`: sample every 2^shift-th call (default 1 in 8).
  explicit SampledRecorder(LatencyHistogram* histogram, unsigned shift = 3)
      : histogram_(histogram), mask_((1u << shift) - 1) {}

  /// True when this iteration should be timed. Always false when disabled.
  bool ShouldSample() {
    if (histogram_ == nullptr) return false;
    return (ticks_++ & mask_) == 0;
  }

  void Record(uint64_t nanos) {
    if (histogram_ != nullptr) histogram_->Record(nanos);
  }

 private:
  LatencyHistogram* histogram_;
  uint32_t mask_;
  uint32_t ticks_ = 0;
};

}  // namespace cne::obs

#endif  // CNE_OBS_TRACE_H_
