// Lock-free service metrics: named counters, gauges, and HDR-style
// log-bucketed latency histograms with per-thread sharded recorders.
//
// Design (see docs/ARCHITECTURE.md "Observability"):
//  - `LatencyHistogram` buckets nanosecond values logarithmically with 32
//    sub-buckets per octave, so the relative width of any bucket is at most
//    1/32 and the midpoint representative is within ~1.6% (< 2%) of any
//    value in the bucket. Values below 64 ns land in exact unit buckets.
//  - Recording is lock-free and allocation-free: relaxed fetch_adds into a
//    bucket picked by arithmetic on the value, a running nanosecond sum,
//    and a shard count, plus a rarely-taken high-water CAS that bounds how
//    far Snapshot must scan.
//  - Buckets are sharded `kShards` ways by a per-thread index so concurrent
//    recorders do not contend on the same cache lines; `Snapshot()` merges
//    the shards into a plain `HistogramSnapshot` for quantile extraction.
//  - `MetricsRegistry` owns metrics by name and hands out stable pointers;
//    a null metric pointer is the runtime kill switch (recording sites all
//    accept and ignore nullptr).

#ifndef CNE_OBS_METRICS_H_
#define CNE_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/exemplar.h"

namespace cne::obs {

/// Runtime kill switch for the whole subsystem.
///  - kOff: no metric is registered; every recording site sees nullptr and
///    pays one predicted-not-taken branch.
///  - kCounters: counters and gauges only; histograms (and the clock reads
///    that feed them) stay off.
///  - kFull: everything, including per-phase latency histograms.
enum class MetricsLevel { kOff = 0, kCounters = 1, kFull = 2 };

const char* MetricsLevelName(MetricsLevel level);

/// Parses "off" / "counters" / "full"; returns kFull on unknown input.
MetricsLevel ParseMetricsLevel(const std::string& name);

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (thread counts, sizes, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Mergeable point-in-time copy of one histogram's buckets. All quantile
/// math happens here, off the hot path.
struct HistogramSnapshot {
  /// Bucket counts, trimmed to the highest touched bucket (empty when
  /// count == 0); index i corresponds to LatencyHistogram bucket i.
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum_nanos = 0;

  /// Quantile in nanoseconds, q in [0, 1]; 0 when empty. Uses the bucket
  /// midpoint, so the result is within ~1.6% of the exact order statistic.
  double QuantileNanos(double q) const;
  double QuantileSeconds(double q) const { return QuantileNanos(q) * 1e-9; }

  double MeanNanos() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_nanos) /
                            static_cast<double>(count);
  }
  double TotalSeconds() const { return static_cast<double>(sum_nanos) * 1e-9; }

  /// Largest recorded value's bucket upper bound (nanoseconds); 0 if empty.
  uint64_t MaxNanos() const;

  /// Element-wise accumulation; associative and commutative, so shard and
  /// cross-thread merges compose in any order.
  void Merge(const HistogramSnapshot& other);
};

/// Log-bucketed latency histogram over nanoseconds, u64 atomic buckets,
/// sharded per thread. ~2% worst-case relative quantile error.
class LatencyHistogram {
 public:
  // 32 sub-buckets per octave: bucket relative width 2^-5.
  static constexpr int kSubBits = 5;
  static constexpr uint64_t kSubBuckets = 1ull << kSubBits;  // 32
  // Largest bucketed exponent: values at or above 2^(kMaxExponent+1) ns
  // (~73 minutes) clamp into the top bucket.
  static constexpr int kMaxExponent = 41;
  // Exact unit buckets for v < 2*kSubBuckets, then kSubBuckets per octave.
  static constexpr size_t kNumBuckets =
      kSubBuckets * static_cast<size_t>(kMaxExponent - kSubBits) +
      2 * kSubBuckets;  // 1216
  static constexpr size_t kShards = 8;

  LatencyHistogram();

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Wait-free; safe from any thread. Three relaxed fetch_adds (bucket,
  /// sum, shard count — the count lets Snapshot skip untouched shards)
  /// plus a high-water check that bounds Snapshot's bucket scan; the CAS
  /// only runs when a record lands above every previous one.
  void Record(uint64_t nanos) {
    Shard& shard = shards_[ShardIndex()];
    const uint64_t index = BucketIndex(nanos);
    shard.buckets[index].fetch_add(1, std::memory_order_relaxed);
    shard.sum_nanos.fetch_add(nanos, std::memory_order_relaxed);
    shard.count.fetch_add(1, std::memory_order_relaxed);
    uint64_t seen = shard.high_water.load(std::memory_order_relaxed);
    while (index > seen &&
           !shard.high_water.compare_exchange_weak(
               seen, index, std::memory_order_relaxed)) {
    }
  }

  void RecordSeconds(double seconds) {
    if (seconds < 0) seconds = 0;
    Record(static_cast<uint64_t>(seconds * 1e9));
  }

  /// Merges all shards into one snapshot. Concurrent-safe (values recorded
  /// while snapshotting may or may not be included).
  HistogramSnapshot Snapshot() const;

  /// Maps a nanosecond value to its bucket.
  static size_t BucketIndex(uint64_t nanos);

  /// Inclusive lower bound (ns) of bucket `index`; the bucket's upper bound
  /// is BucketLowerBound(index + 1).
  static uint64_t BucketLowerBound(size_t index);

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<uint64_t>> buckets;
    std::atomic<uint64_t> sum_nanos{0};
    std::atomic<uint64_t> count{0};       ///< total records in this shard
    std::atomic<uint64_t> high_water{0};  ///< highest touched bucket index
    Shard() : buckets(kNumBuckets) {}
  };

  static size_t ShardIndex();

  std::vector<Shard> shards_;
};

/// One phase's latency distribution, extracted for reports. All latency
/// fields are seconds.
struct PhaseStats {
  std::string name;
  uint64_t count = 0;
  double total_seconds = 0.0;
  double mean_seconds = 0.0;
  double p50_seconds = 0.0;
  double p90_seconds = 0.0;
  double p99_seconds = 0.0;
  double p999_seconds = 0.0;
  double max_seconds = 0.0;
};

/// Privacy-budget burn-down telemetry, filled from BudgetLedger spend
/// telemetry plus the service's per-protocol spend counters. The ledger is
/// this system's disk: `exhausted_vertices` is the "disk full" gauge, and
/// `projected_submits_to_exhaustion` extrapolates the observed per-submit
/// spend rate over the remaining budget.
struct BudgetBurnDown {
  bool present = false;  ///< false when the service runs without a ledger

  double lifetime_budget = 0.0;     ///< per-vertex lifetime ε
  uint64_t charged_vertices = 0;    ///< vertices with any recorded spend
  uint64_t exhausted_vertices = 0;  ///< vertices with ~0 remaining ε
  double total_spent = 0.0;         ///< Σ spent over charged vertices
  double min_remaining = 0.0;       ///< tightest surviving vertex budget
  double sum_remaining = 0.0;       ///< Σ remaining over charged vertices
  double spent_rr = 0.0;            ///< ε spent via randomized response
  double spent_laplace = 0.0;       ///< ε spent via Laplace releases

  /// Residual-ε histogram: bin i counts charged vertices whose remaining
  /// budget falls in [i, i+1) * lifetime_budget / bins.size().
  std::vector<uint64_t> residual_histogram;

  /// Submits until the first vertex class exhausts at the observed spend
  /// rate; -1 when no spend has been observed yet.
  double projected_submits_to_exhaustion = -1.0;
};

/// Point-in-time export of a registry: cumulative counters, gauges,
/// per-phase quantiles, tail exemplars, and budget burn-down. Plain data,
/// safe to copy into reports.
struct MetricsSnapshot {
  /// Schema version of ToJson(); bump on any field change.
  /// v2: added "exemplars" and "budget" sections.
  static constexpr int kVersion = 2;

  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<PhaseStats> phases;
  std::vector<PhaseExemplars> exemplars;
  BudgetBurnDown budget;

  /// Phase lookup by name; nullptr when absent.
  const PhaseStats* Phase(const std::string& name) const;

  /// Counter lookup by name; 0 when absent.
  uint64_t CounterValue(const std::string& name) const;

  /// Versioned JSON object ({"metrics_version": 1, ...}). `indent` spaces
  /// of leading indentation on every line after the first.
  std::string ToJson(int indent = 0) const;

  /// Aligned human-readable phase table (one line per phase).
  std::string ToTable() const;
};

/// Owns named metrics and hands out stable pointers. Registration takes a
/// lock; recording through the returned pointers never does.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencyHistogram* GetHistogram(const std::string& name);
  ExemplarReservoir* GetExemplars(const std::string& name);

  /// Snapshot of every registered metric, names sorted. Empty exemplar
  /// reservoirs are omitted from `exemplars`.
  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  std::map<std::string, std::unique_ptr<ExemplarReservoir>> exemplars_;
};

/// Extracts PhaseStats from a histogram snapshot.
PhaseStats MakePhaseStats(const std::string& name,
                          const HistogramSnapshot& snapshot);

}  // namespace cne::obs

#endif  // CNE_OBS_METRICS_H_
