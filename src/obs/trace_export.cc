#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <sstream>

namespace cne::obs {
namespace {

/// The installed sink. Emitters read it with one relaxed load; install and
/// uninstall are control-plane stores from the owning thread.
std::atomic<TraceSink*> g_sink{nullptr};

/// Monotonic sink generation counter. Each TraceSink takes a fresh id at
/// construction, and the thread-local buffer cache keys on it, so a stale
/// cache from a destroyed sink can never alias a new sink that happens to
/// reuse the same address.
std::atomic<uint64_t> g_generation{0};

struct ThreadCache {
  uint64_t generation = 0;
  void* buffer = nullptr;  // TraceSink::ThreadBuffer*, typed at use site
};

thread_local ThreadCache t_cache;

}  // namespace

namespace trace_internal {

void EmitSpanEvent(const char* name, uint64_t start_nanos,
                   uint64_t end_nanos) {
  TraceSink* sink = g_sink.load(std::memory_order_relaxed);
  if (sink == nullptr) return;
  sink->Emit(name, start_nanos, end_nanos - start_nanos);
}

}  // namespace trace_internal

TraceSink::TraceSink(TraceSinkOptions options)
    : options_([&options] {
        if (options.ring_capacity == 0) options.ring_capacity = 1;
        if (options.sample_period == 0) options.sample_period = 1;
        return options;
      }()),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1) {}

TraceSink::~TraceSink() { Uninstall(); }

void TraceSink::Install() {
  TraceSink* expected = nullptr;
  if (!g_sink.compare_exchange_strong(expected, this,
                                      std::memory_order_release,
                                      std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "TraceSink::Install: another sink is already installed\n");
    std::abort();
  }
  installed_ = true;
}

void TraceSink::Uninstall() {
  if (!installed_) return;
  trace_internal::g_capture_armed.store(false, std::memory_order_relaxed);
  g_sink.store(nullptr, std::memory_order_release);
  installed_ = false;
}

TraceSink* TraceSink::Current() {
  return g_sink.load(std::memory_order_relaxed);
}

void TraceSink::BeginSubmitScope(uint64_t submit_id) {
  scope_submit_.store(submit_id, std::memory_order_relaxed);
  const bool sampled = (scopes_begun_++ % options_.sample_period) == 0;
  trace_internal::g_capture_armed.store(sampled, std::memory_order_relaxed);
}

void TraceSink::EndSubmitScope() {
  trace_internal::g_capture_armed.store(false, std::memory_order_relaxed);
}

TraceSink::ThreadBuffer* TraceSink::BufferForThisThread() {
  if (t_cache.generation == generation_) {
    return static_cast<ThreadBuffer*>(t_cache.buffer);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto buffer = std::make_unique<ThreadBuffer>(
      options_.ring_capacity, static_cast<uint32_t>(buffers_.size() + 1));
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  t_cache.generation = generation_;
  t_cache.buffer = raw;
  return raw;
}

void TraceSink::Emit(const char* name, uint64_t start_nanos,
                     uint64_t dur_nanos) {
  ThreadBuffer* buffer = BufferForThisThread();
  const uint64_t n = buffer->count.load(std::memory_order_relaxed);
  TraceEvent& slot = buffer->ring[n % buffer->ring.size()];
  slot.name = name;
  slot.start_nanos = start_nanos;
  slot.dur_nanos = dur_nanos;
  slot.submit = scope_submit_.load(std::memory_order_relaxed);
  buffer->count.store(n + 1, std::memory_order_release);
}

uint64_t TraceSink::EventsRetained() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t retained = 0;
  for (const auto& buffer : buffers_) {
    retained += std::min<uint64_t>(
        buffer->count.load(std::memory_order_acquire), buffer->ring.size());
  }
  return retained;
}

uint64_t TraceSink::EventsDropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const uint64_t count = buffer->count.load(std::memory_order_acquire);
    if (count > buffer->ring.size()) dropped += count - buffer->ring.size();
  }
  return dropped;
}

std::string TraceSink::ToChromeJson() const {
  struct Drained {
    TraceEvent event;
    uint32_t tid;
  };
  std::vector<Drained> events;
  uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buffer : buffers_) {
      const uint64_t count = buffer->count.load(std::memory_order_acquire);
      const uint64_t capacity = buffer->ring.size();
      if (count > capacity) dropped += count - capacity;
      const uint64_t retained = std::min<uint64_t>(count, capacity);
      const uint64_t first = count - retained;
      for (uint64_t i = first; i < count; ++i) {
        events.push_back({buffer->ring[i % capacity], buffer->tid});
      }
    }
  }

  // Chrome trace viewers tolerate any order, but sorted output lets the
  // checker verify nesting with a simple per-tid stack: ts ascending, and
  // on ties the longer (outer) span first.
  std::sort(events.begin(), events.end(),
            [](const Drained& a, const Drained& b) {
              if (a.event.start_nanos != b.event.start_nanos) {
                return a.event.start_nanos < b.event.start_nanos;
              }
              return a.event.dur_nanos > b.event.dur_nanos;
            });

  uint64_t base = 0;
  if (!events.empty()) base = events.front().event.start_nanos;

  // Microseconds with sub-microsecond resolution preserved; Perfetto
  // accepts fractional ts/dur. Span names are static C identifiers from
  // TraceSpan sites, so no string escaping is needed.
  const auto micros = [](uint64_t nanos) {
    return static_cast<double>(nanos) / 1000.0;
  };

  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "{\n  \"displayTimeUnit\": \"ms\",\n";
  out << "  \"otherData\": {\"events_retained\": " << events.size()
      << ", \"events_dropped\": " << dropped << "},\n";
  out << "  \"traceEvents\": [";
  bool first = true;
  for (const Drained& d : events) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "    {\"name\": \""
        << (d.event.name != nullptr ? d.event.name : "(unnamed)")
        << "\", \"ph\": \"X\", \"ts\": " << micros(d.event.start_nanos - base)
        << ", \"dur\": " << micros(d.event.dur_nanos)
        << ", \"pid\": 1, \"tid\": " << d.tid
        << ", \"args\": {\"submit\": " << d.event.submit << "}}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

}  // namespace cne::obs
