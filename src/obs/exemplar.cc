#include "obs/exemplar.h"

#include <algorithm>

namespace cne::obs {

void ExemplarReservoir::Offer(uint64_t nanos, const Exemplar& exemplar) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (kept_.size() < kCapacity) {
    kept_.push_back(exemplar);
    if (kept_.size() == kCapacity) {
      uint64_t floor = UINT64_MAX;
      for (const Exemplar& e : kept_) {
        floor = std::min(floor,
                         static_cast<uint64_t>(e.seconds * 1e9));
      }
      floor_nanos_.store(floor, std::memory_order_relaxed);
    }
    return;
  }
  if (nanos <= floor_nanos_.load(std::memory_order_relaxed)) return;
  // Replace the smallest kept exemplar, then recompute the floor.
  size_t smallest = 0;
  for (size_t i = 1; i < kept_.size(); ++i) {
    if (kept_[i].seconds < kept_[smallest].seconds) smallest = i;
  }
  kept_[smallest] = exemplar;
  uint64_t floor = UINT64_MAX;
  for (const Exemplar& e : kept_) {
    floor = std::min(floor, static_cast<uint64_t>(e.seconds * 1e9));
  }
  floor_nanos_.store(floor, std::memory_order_relaxed);
}

std::vector<Exemplar> ExemplarReservoir::Snapshot() const {
  std::vector<Exemplar> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out = kept_;
  }
  std::sort(out.begin(), out.end(), [](const Exemplar& a, const Exemplar& b) {
    return a.seconds > b.seconds;
  });
  return out;
}

}  // namespace cne::obs
