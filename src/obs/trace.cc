#include "obs/trace.h"

namespace cne::obs {

#if CNE_OBS_ENABLED
thread_local TraceSpan* TraceSpan::current_ = nullptr;
#endif

}  // namespace cne::obs
