#include "obs/trace.h"

namespace cne::obs {

namespace trace_internal {
std::atomic<bool> g_capture_armed{false};
}  // namespace trace_internal

#if CNE_OBS_ENABLED
thread_local TraceSpan* TraceSpan::current_ = nullptr;
#endif

}  // namespace cne::obs
