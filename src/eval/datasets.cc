#include "eval/datasets.h"

#include <algorithm>
#include <cctype>

#include "graph/generators.h"
#include "util/logging.h"

namespace cne {

namespace {

// Builds a spec. Paper sizes come straight from Table 2; generated sizes
// are either identical (small graphs) or down-scaled as documented in the
// header. Seeds are fixed per dataset so all benches agree on the graph.
DatasetSpec Spec(const char* code, const char* name, uint64_t pu, uint64_t pl,
                 uint64_t pe, uint64_t gu, uint64_t gl, uint64_t ge,
                 uint64_t seed) {
  DatasetSpec s;
  s.code = code;
  s.name = name;
  s.paper_upper = pu;
  s.paper_lower = pl;
  s.paper_edges = pe;
  s.gen_upper = gu;
  s.gen_lower = gl;
  s.gen_edges = ge;
  s.seed = seed;
  return s;
}

std::vector<DatasetSpec> BuildRegistry() {
  std::vector<DatasetSpec> all;
  // Full-size analogs (<= ~2M edges).
  all.push_back(Spec("RM", "Rmwiki", 1'200, 8'100, 58'000,  //
                     1'200, 8'100, 58'000, 101));
  all.push_back(Spec("AC", "Collaboration", 16'700, 22'000, 58'600,  //
                     16'700, 22'000, 58'600, 102));
  all.push_back(Spec("OC", "Occupation", 127'600, 101'700, 250'900,  //
                     127'600, 101'700, 250'900, 103));
  all.push_back(Spec("DA", "Bag-kos", 3'400, 6'900, 353'200,  //
                     3'400, 6'900, 353'200, 104));
  all.push_back(Spec("BP", "Bpywiki", 1'300, 57'900, 399'700,  //
                     1'300, 57'900, 399'700, 105));
  all.push_back(Spec("MT", "Tewiktionary", 495, 121'500, 529'600,  //
                     495, 121'500, 529'600, 106));
  all.push_back(Spec("BX", "Bookcrossing", 105'300, 340'500, 1'100'000,  //
                     105'300, 340'500, 1'100'000, 107));
  all.push_back(Spec("SO", "Stackoverflow", 545'200, 96'700, 1'300'000,  //
                     545'200, 96'700, 1'300'000, 108));
  all.push_back(Spec("TM", "Team", 901'200, 34'500, 1'400'000,  //
                     901'200, 34'500, 1'400'000, 109));
  // Scaled analogs: edges ~2M, vertices scaled by sqrt(edge scale) so the
  // density (and with it the degree structure) matches the original.
  all.push_back(Spec("WC", "Wiki-en-cat", 1'900'000, 182'900, 3'800'000,
                     1'343'500, 129'300, 1'900'000, 110));  // scale 0.50
  all.push_back(Spec("ML", "Movielens", 69'900, 10'700, 10'000'000,  //
                     31'260, 4'785, 2'000'000, 111));       // scale 0.20
  all.push_back(Spec("ER", "Epinions", 120'500, 755'800, 13'700'000,  //
                     46'660, 292'680, 2'055'000, 112));     // scale 0.15
  all.push_back(Spec("NX", "Netflix", 480'200, 17'800, 100'500'000,  //
                     67'910, 2'517, 2'010'000, 113));       // scale 0.02
  // DUI and OG would keep multi-million lower layers even after sqrt
  // scaling; their lower layers are capped explicitly (ratios preserved in
  // spirit: lower stays the far larger side).
  all.push_back(Spec("DUI", "Delicious-ui", 833'100, 33'800'000, 101'800'000,
                     166'600, 1'500'000, 2'000'000, 114));  // scale 0.02
  all.push_back(Spec("OG", "Orkut", 2'800'000, 8'700'000, 327'000'000,  //
                     280'000, 870'000, 2'000'000, 115));    // scale 0.006
  return all;
}

}  // namespace

const std::vector<DatasetSpec>& AllDatasets() {
  static const std::vector<DatasetSpec>* registry =
      new std::vector<DatasetSpec>(BuildRegistry());
  return *registry;
}

std::optional<DatasetSpec> FindDataset(const std::string& code) {
  std::string upper = code;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  // "DU" is the Fig. 6 axis label for Delicious-ui; accept it as an alias.
  if (upper == "DU") upper = "DUI";
  for (const DatasetSpec& spec : AllDatasets()) {
    if (spec.code == upper) return spec;
  }
  return std::nullopt;
}

BipartiteGraph MakeDataset(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  return ChungLuPowerLaw(static_cast<VertexId>(spec.gen_upper),
                         static_cast<VertexId>(spec.gen_lower),
                         spec.gen_edges, spec.exponent, rng);
}

std::vector<DatasetSpec> ResolveDatasets(
    const std::vector<std::string>& codes) {
  if (codes.empty()) return AllDatasets();
  std::vector<DatasetSpec> specs;
  for (const std::string& code : codes) {
    auto spec = FindDataset(code);
    CNE_CHECK(spec.has_value()) << "unknown dataset code: " << code;
    specs.push_back(*spec);
  }
  return specs;
}

}  // namespace cne
