// Experiment runner: executes estimators over query workloads and
// aggregates the paper's metrics.

#ifndef CNE_EVAL_EXPERIMENT_H_
#define CNE_EVAL_EXPERIMENT_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "eval/metrics.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Parameters of one experiment run.
struct ExperimentConfig {
  double epsilon = 2.0;        ///< total privacy budget per query
  size_t trials_per_pair = 1;  ///< protocol executions averaged per pair
};

/// Runs `estimator` on every query pair and aggregates the error metrics
/// against the exact C2 values. Each (pair, trial) uses fresh randomness
/// from `rng`.
EstimatorMetrics RunEstimator(const BipartiteGraph& graph,
                              const CommonNeighborEstimator& estimator,
                              const std::vector<QueryPair>& pairs,
                              const ExperimentConfig& config, Rng& rng);

/// Runs every estimator in the roster on the same workload. Each
/// estimator receives an independent RNG stream split from `rng`, so
/// adding or removing an estimator does not perturb the others' draws.
std::vector<EstimatorMetrics> RunAllEstimators(
    const BipartiteGraph& graph,
    const std::vector<std::unique_ptr<CommonNeighborEstimator>>& estimators,
    const std::vector<QueryPair>& pairs, const ExperimentConfig& config,
    Rng& rng);

}  // namespace cne

#endif  // CNE_EVAL_EXPERIMENT_H_
