#include "eval/query_sampler.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

namespace cne {

std::vector<QueryPair> SampleUniformPairs(const BipartiteGraph& graph,
                                          Layer layer, size_t count,
                                          Rng& rng) {
  const VertexId n = graph.NumVertices(layer);
  CNE_CHECK(n >= 2) << "layer has fewer than two vertices";
  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const VertexId u = static_cast<VertexId>(rng.UniformInt(n));
    VertexId w = static_cast<VertexId>(rng.UniformInt(n - 1));
    if (w >= u) ++w;  // uniform over distinct pairs
    pairs.push_back({layer, u, w});
  }
  return pairs;
}

std::vector<QueryPair> SampleImbalancedPairs(const BipartiteGraph& graph,
                                             Layer layer, double kappa,
                                             size_t count, Rng& rng) {
  CNE_CHECK(kappa >= 1.0) << "kappa must be >= 1";
  const VertexId n = graph.NumVertices(layer);
  // Split non-isolated vertices into candidates by degree.
  std::vector<VertexId> vertices;
  vertices.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (graph.Degree(layer, v) >= 1) vertices.push_back(v);
  }
  if (vertices.size() < 2) return {};
  // Sort by degree so low/high candidates can be found by position.
  std::sort(vertices.begin(), vertices.end(), [&](VertexId a, VertexId b) {
    return graph.Degree(layer, a) < graph.Degree(layer, b);
  });
  auto degree_at = [&](size_t i) {
    return static_cast<double>(graph.Degree(layer, vertices[i]));
  };

  std::vector<QueryPair> pairs;
  pairs.reserve(count);
  const size_t max_attempts = count * 200 + 1000;
  size_t attempts = 0;
  while (pairs.size() < count && attempts < max_attempts) {
    ++attempts;
    // Draw a low-degree vertex from the lower half and find the boundary
    // above which partners satisfy the imbalance constraint.
    const size_t lo_idx = rng.UniformInt(vertices.size() / 2 + 1);
    const double lo_deg = degree_at(lo_idx);
    const double threshold = kappa * lo_deg;
    // First index with degree > threshold.
    size_t first = std::upper_bound(
                       vertices.begin(), vertices.end(), threshold,
                       [&](double value, VertexId v) {
                         return value <
                                static_cast<double>(graph.Degree(layer, v));
                       }) -
                   vertices.begin();
    if (first >= vertices.size()) continue;  // no partner big enough
    const size_t hi_idx =
        first + rng.UniformInt(vertices.size() - first);
    if (hi_idx == lo_idx) continue;
    // Randomize the (u, w) orientation: the querier does not know which
    // vertex has the smaller degree, and single-source estimators are
    // sensitive to the roles.
    if (rng.Bernoulli(0.5)) {
      pairs.push_back({layer, vertices[lo_idx], vertices[hi_idx]});
    } else {
      pairs.push_back({layer, vertices[hi_idx], vertices[lo_idx]});
    }
  }
  if (pairs.size() < count) {
    CNE_LOG(kWarning) << "imbalance sampler produced " << pairs.size()
                      << " of " << count << " pairs at kappa=" << kappa;
  }
  return pairs;
}

QueryPair FindPairWithDegrees(const BipartiteGraph& graph, Layer layer,
                              VertexId target_deg_u, VertexId target_deg_w) {
  const VertexId n = graph.NumVertices(layer);
  CNE_CHECK(n >= 2) << "layer has fewer than two vertices";
  VertexId best_u = 0;
  VertexId best_w = 1;
  long best_u_gap = -1;
  long best_w_gap = -1;
  for (VertexId v = 0; v < n; ++v) {
    const long deg = graph.Degree(layer, v);
    const long u_gap = std::labs(deg - static_cast<long>(target_deg_u));
    const long w_gap = std::labs(deg - static_cast<long>(target_deg_w));
    // Assign v to whichever role it fits better, keeping roles distinct.
    if (best_u_gap < 0 || u_gap < best_u_gap) {
      if (v != best_w) {
        best_u = v;
        best_u_gap = u_gap;
      }
    }
    if (best_w_gap < 0 || w_gap < best_w_gap) {
      if (v != best_u) {
        best_w = v;
        best_w_gap = w_gap;
      }
    }
  }
  return {layer, best_u, best_w};
}

}  // namespace cne
