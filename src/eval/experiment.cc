#include "eval/experiment.h"

#include "util/statistics.h"
#include "util/timer.h"

namespace cne {

EstimatorMetrics RunEstimator(const BipartiteGraph& graph,
                              const CommonNeighborEstimator& estimator,
                              const std::vector<QueryPair>& pairs,
                              const ExperimentConfig& config, Rng& rng) {
  EstimatorMetrics metrics;
  metrics.estimator = estimator.Name();
  metrics.num_queries = pairs.size() * config.trials_per_pair;

  std::vector<double> estimates;
  std::vector<double> truths;
  estimates.reserve(metrics.num_queries);
  truths.reserve(metrics.num_queries);
  RunningStats upload, download;

  Timer timer;
  for (const QueryPair& pair : pairs) {
    const double truth = static_cast<double>(
        graph.CountCommonNeighbors(pair.layer, pair.u, pair.w));
    for (size_t t = 0; t < config.trials_per_pair; ++t) {
      const EstimateResult r =
          estimator.Estimate(graph, pair, config.epsilon, rng);
      estimates.push_back(r.estimate);
      truths.push_back(truth);
      upload.Add(r.uploaded_bytes);
      download.Add(r.downloaded_bytes);
    }
  }
  metrics.total_seconds = timer.Seconds();

  metrics.mean_absolute_error = MeanAbsoluteError(estimates, truths);
  metrics.mean_relative_error = MeanRelativeError(estimates, truths);
  metrics.mean_squared_error = MeanSquaredError(estimates, truths);
  metrics.mean_upload_bytes = upload.Mean();
  metrics.mean_download_bytes = download.Mean();
  metrics.mean_comm_bytes = upload.Mean() + download.Mean();
  RunningStats est_stats, truth_stats;
  for (double e : estimates) est_stats.Add(e);
  for (double t : truths) truth_stats.Add(t);
  metrics.mean_estimate = est_stats.Mean();
  metrics.mean_truth = truth_stats.Mean();
  return metrics;
}

std::vector<EstimatorMetrics> RunAllEstimators(
    const BipartiteGraph& graph,
    const std::vector<std::unique_ptr<CommonNeighborEstimator>>& estimators,
    const std::vector<QueryPair>& pairs, const ExperimentConfig& config,
    Rng& rng) {
  std::vector<EstimatorMetrics> all;
  all.reserve(estimators.size());
  for (const auto& estimator : estimators) {
    Rng stream = rng.Split();
    all.push_back(RunEstimator(graph, *estimator, pairs, config, stream));
  }
  return all;
}

}  // namespace cne
