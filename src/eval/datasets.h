// Registry of the paper's 15 KONECT datasets (Table 2) as synthetic
// power-law analogs.
//
// KONECT downloads are unavailable offline, so each dataset is generated
// as a bipartite Chung–Lu graph. Graphs up to ~2M edges use the paper's
// exact |U|, |L|, |E|; the six larger graphs are scaled down with edges
// scaled by `edge_scale` and vertices by sqrt(edge_scale) (which preserves
// density and hence the degree structure), with two extra-large lower
// layers capped explicitly. The substitution and its effect on each figure
// are documented in docs/ARCHITECTURE.md and docs/BENCHMARKS.md.
// Generation is deterministic given the per-dataset seed, so every bench
// sees identical graphs.

#ifndef CNE_EVAL_DATASETS_H_
#define CNE_EVAL_DATASETS_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace cne {

/// Description of one dataset analog.
struct DatasetSpec {
  std::string code;      ///< short code used in the paper, e.g. "RM"
  std::string name;      ///< full KONECT name, e.g. "Rmwiki"
  uint64_t paper_upper;  ///< |U| reported in Table 2
  uint64_t paper_lower;  ///< |L| reported in Table 2
  uint64_t paper_edges;  ///< |E| reported in Table 2
  uint64_t gen_upper;    ///< |U| of the generated analog
  uint64_t gen_lower;    ///< |L| of the generated analog
  uint64_t gen_edges;    ///< |E| of the generated analog
  /// Query pairs are sampled from this layer (the "user"-like side listed
  /// first in Table 2); the opposite layer is the candidate pool of size n1.
  Layer query_layer = Layer::kUpper;
  double exponent = 2.1;  ///< power-law exponent of the Chung–Lu weights
  uint64_t seed = 0;      ///< generation seed

  /// Size of the candidate pool n1 (the layer opposite the queries).
  uint64_t CandidatePoolSize() const {
    return query_layer == Layer::kUpper ? gen_lower : gen_upper;
  }
};

/// All 15 dataset analogs in Table 2 order (RM ... OG).
const std::vector<DatasetSpec>& AllDatasets();

/// Looks up a dataset by its short code (case-insensitive); nullopt when
/// unknown.
std::optional<DatasetSpec> FindDataset(const std::string& code);

/// Deterministically generates the analog graph for `spec`.
BipartiteGraph MakeDataset(const DatasetSpec& spec);

/// Resolves a list of codes to specs (fatal on unknown codes), or all
/// datasets when `codes` is empty.
std::vector<DatasetSpec> ResolveDatasets(
    const std::vector<std::string>& codes);

}  // namespace cne

#endif  // CNE_EVAL_DATASETS_H_
