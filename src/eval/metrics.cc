#include "eval/metrics.h"

// EstimatorMetrics is a plain aggregate; aggregation logic lives in
// eval/experiment.cc. This translation unit exists so the header has a
// home in the cne_eval library.
