// Error metrics aggregated over a set of query pairs, mirroring the
// paper's reporting: mean absolute error across 100 sampled pairs, plus
// the mean relative error, empirical L2, timing, and communication.

#ifndef CNE_EVAL_METRICS_H_
#define CNE_EVAL_METRICS_H_

#include <string>

namespace cne {

/// Aggregated result of running one estimator over a query workload.
struct EstimatorMetrics {
  std::string estimator;
  size_t num_queries = 0;
  double mean_absolute_error = 0.0;
  double mean_relative_error = 0.0;
  double mean_squared_error = 0.0;   ///< empirical L2 loss
  double total_seconds = 0.0;        ///< wall-clock over all queries
  double mean_upload_bytes = 0.0;    ///< per query pair
  double mean_download_bytes = 0.0;  ///< per query pair
  double mean_comm_bytes = 0.0;      ///< upload + download per pair
  double mean_estimate = 0.0;
  double mean_truth = 0.0;
};

}  // namespace cne

#endif  // CNE_EVAL_METRICS_H_
