// Query-pair sampling. The paper's experiments sample 100 uniform
// same-layer pairs per dataset (Fig. 6, 7, 10, 11), one hand-picked
// imbalanced pair (Fig. 2), and pairs whose degree ratio exceeds a given
// κ (Fig. 9).

#ifndef CNE_EVAL_QUERY_SAMPLER_H_
#define CNE_EVAL_QUERY_SAMPLER_H_

#include <vector>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Samples `count` uniform pairs of distinct vertices from `layer`.
/// Requires the layer to have at least two vertices.
std::vector<QueryPair> SampleUniformPairs(const BipartiteGraph& graph,
                                          Layer layer, size_t count,
                                          Rng& rng);

/// Samples `count` pairs with max(deg) > kappa * min(deg) and min(deg) >= 1
/// (the Fig. 9 imbalance workload). Vertices are bucketed by degree so the
/// sampler stays cheap even at kappa = 1000. Returns fewer pairs when the
/// graph cannot supply them; emits a warning in that case.
std::vector<QueryPair> SampleImbalancedPairs(const BipartiteGraph& graph,
                                             Layer layer, double kappa,
                                             size_t count, Rng& rng);

/// Finds a pair whose degrees are as close as possible to the requested
/// values (the Fig. 2 workload uses degrees 556 and 2). Deterministic:
/// scans the layer once.
QueryPair FindPairWithDegrees(const BipartiteGraph& graph, Layer layer,
                              VertexId target_deg_u, VertexId target_deg_w);

}  // namespace cne

#endif  // CNE_EVAL_QUERY_SAMPLER_H_
