// Internal: per-ISA word-kernel entry points behind graph/set_ops.
//
// Each ISA tier lives in its own translation unit compiled with that
// tier's arch flags (src/CMakeLists.txt sets them per file), so the
// vector instructions can never leak into code that runs before the
// CPUID dispatch picks a level:
//
//   set_ops.cc        — the scalar reference kernels (std::popcount),
//                       always compiled with the base arch flags.
//   set_ops_avx2.cc   — 256-bit AND/OR + nibble-LUT vpshufb popcount
//                       (Mula's algorithm; AVX2 has no vector popcount).
//   set_ops_avx512.cc — 512-bit vpandq/vporq + native vpopcntq
//                       (VPOPCNTDQ), masked loads for the ragged tail
//                       when the word count is not a multiple of 8
//                       (domain % 512 != 0).
//
// All three agree bit-for-bit on every input; tests/graph/simd_parity
// and the ext_intersect --self-check sweep enforce it at every level.
// The function-pointer table is resolved per call from
// ActiveSimdLevel() — one relaxed atomic load — so tests and benches
// can re-point it mid-process via ForceSimdLevel().
//
// Contract: `a`, `b`, `w` point at readable uint64_t ranges of length
// `n`. DenseBitset word storage is 64-byte aligned (alignment contract
// in set_ops.h), so vector loads from word 0 never split a cache line;
// the kernels still use unaligned load encodings, which cost nothing on
// aligned addresses and keep subspan callers legal.

#ifndef CNE_GRAPH_SET_OPS_KERNELS_H_
#define CNE_GRAPH_SET_OPS_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

// The vector TUs exist only on x86-64; elsewhere WordKernelsFor returns
// scalar for every level (and cpu_features never detects above scalar).
#if defined(__x86_64__) || defined(_M_X64)
#define CNE_HAVE_X86_SIMD 1
#else
#define CNE_HAVE_X86_SIMD 0
#endif

namespace cne {
namespace simd {

/// popcount(a[i] & b[i]), popcount(a[i] | b[i]), popcount(w[i]) summed
/// over i in [0, n).
struct WordKernels {
  uint64_t (*and_popcount)(const uint64_t* a, const uint64_t* b, size_t n);
  uint64_t (*or_popcount)(const uint64_t* a, const uint64_t* b, size_t n);
  uint64_t (*popcount)(const uint64_t* w, size_t n);
};

uint64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t OrPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t PopcountScalar(const uint64_t* w, size_t n);

#if CNE_HAVE_X86_SIMD
uint64_t AndPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t OrPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t PopcountAvx2(const uint64_t* w, size_t n);

uint64_t AndPopcountAvx512(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t OrPopcountAvx512(const uint64_t* a, const uint64_t* b, size_t n);
uint64_t PopcountAvx512(const uint64_t* w, size_t n);
#endif

/// The kernel table for one ISA tier; `level` must not exceed
/// DetectedSimdLevel() (guaranteed by ActiveSimdLevel()/ForceSimdLevel).
const WordKernels& WordKernelsFor(SimdLevel level);

/// Table for the level the process is currently dispatching on.
inline const WordKernels& ActiveWordKernels() {
  return WordKernelsFor(ActiveSimdLevel());
}

}  // namespace simd
}  // namespace cne

#endif  // CNE_GRAPH_SET_OPS_KERNELS_H_
