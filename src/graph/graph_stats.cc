#include "graph/graph_stats.h"

#include <algorithm>
#include <sstream>

namespace cne {

std::vector<uint64_t> DegreeHistogram(const BipartiteGraph& graph,
                                      Layer layer) {
  std::vector<uint64_t> counts(graph.MaxDegree(layer) + 1, 0);
  const VertexId n = graph.NumVertices(layer);
  for (VertexId v = 0; v < n; ++v) ++counts[graph.Degree(layer, v)];
  return counts;
}

LayerDegreeStats ComputeLayerDegreeStats(const BipartiteGraph& graph,
                                         Layer layer) {
  LayerDegreeStats stats;
  stats.num_vertices = graph.NumVertices(layer);
  if (stats.num_vertices == 0) return stats;
  std::vector<VertexId> degrees(stats.num_vertices);
  for (VertexId v = 0; v < stats.num_vertices; ++v) {
    degrees[v] = graph.Degree(layer, v);
    if (degrees[v] == 0) ++stats.isolated;
  }
  stats.max_degree = *std::max_element(degrees.begin(), degrees.end());
  stats.average_degree = graph.AverageDegree(layer);
  std::nth_element(degrees.begin(), degrees.begin() + degrees.size() / 2,
                   degrees.end());
  stats.median_degree = degrees[degrees.size() / 2];
  return stats;
}

GraphStats ComputeGraphStats(const BipartiteGraph& graph) {
  GraphStats stats;
  stats.num_edges = graph.NumEdges();
  stats.upper = ComputeLayerDegreeStats(graph, Layer::kUpper);
  stats.lower = ComputeLayerDegreeStats(graph, Layer::kLower);
  const double grid = static_cast<double>(graph.NumUpper()) *
                      static_cast<double>(graph.NumLower());
  stats.density = grid > 0 ? static_cast<double>(stats.num_edges) / grid : 0;
  return stats;
}

std::string ToString(const GraphStats& stats) {
  std::ostringstream os;
  os << "|U|=" << stats.upper.num_vertices
     << " |L|=" << stats.lower.num_vertices << " m=" << stats.num_edges
     << " d_max(U)=" << stats.upper.max_degree
     << " d_max(L)=" << stats.lower.max_degree << " d_avg(U)="
     << stats.upper.average_degree << " d_avg(L)="
     << stats.lower.average_degree;
  return os.str();
}

}  // namespace cne
