// Adaptive set-intersection kernels over vertex-id sets.
//
// Every protocol in the paper bottoms out in set intersection over
// randomized-response releases, and at practical ε those releases are
// *dense*: the expected noisy degree is d(1-p) + (n-d)p, so at ε = 1
// (p ≈ 0.269) a noisy row covers ~27% of the opposite layer. One scalar
// sorted merge cannot serve that whole density range well, so this module
// provides two set representations and five kernels, plus a dispatcher
// that picks the kernel from the operand representations and a
// *calibrated* per-kernel cost model (set_ops_cost.h):
//
//   representation      kernel                    regime
//   ------------------  ------------------------  --------------------------
//   sorted × sorted     IntersectScalarMerge      comparable sizes
//   sorted × sorted     IntersectGalloping        skewed sizes
//   bitmap × bitmap     IntersectBitmapAnd        dense × dense (word AND +
//                                                 popcount; SIMD below)
//   bitmap × bitmap     IntersectBitmapProbe      sparse × dense bitmaps
//                                                 (skip-zero word AND)
//   sorted × bitmap     IntersectProbeBitmap      sparse × dense (O(1) probes)
//
// The word kernels (AND/OR + popcount, DenseBitset::Count) dispatch at
// runtime onto per-ISA implementations — portable scalar, AVX2
// nibble-LUT popcount, AVX-512 vpopcntq — probed via CPUID in
// util/cpu_features and overridable with CNE_SIMD_LEVEL for tests and
// benches (see set_ops_kernels.h).
//
// Alignment contract: DenseBitset word storage is 64-byte aligned, so a
// 512-bit vector load of words [8k, 8k+8) never splits a cache line and
// the AVX-512 kernels need no peeling prologue. SetView::Bitmap operands
// inherit the contract from the DenseBitset they borrow.
//
// All kernels return exactly the same count on equivalent inputs at every
// ISA level; the property tests (tests/graph/set_ops_test.cc,
// tests/graph/simd_parity_test.cc) and the every-run self-check in
// bench/ext_intersect.cc enforce this.

#ifndef CNE_GRAPH_SET_OPS_H_
#define CNE_GRAPH_SET_OPS_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace cne {

namespace detail {

/// Minimal over-aligning allocator: storage for DenseBitset words. The
/// 64-byte alignment is a correctness-adjacent perf contract (see the
/// header comment), not an optimization a future refactor may drop.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  explicit AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

}  // namespace detail

/// 64-byte-aligned word storage — the representation behind DenseBitset.
using AlignedWordVector =
    std::vector<uint64_t, detail::AlignedAllocator<uint64_t, 64>>;

/// Packed bitmap over the id domain [0, NumBits()): bit i is stored in word
/// i/64. The dense-set representation behind NoisyNeighborSet's bitmap
/// storage mode and the bitmap intersection kernels. Word storage is
/// 64-byte aligned (alignment contract above).
class DenseBitset {
 public:
  DenseBitset() = default;

  /// An all-zero bitset over `num_bits` ids. The trailing partial word (when
  /// num_bits is not a multiple of 64) is kept zero beyond bit num_bits.
  explicit DenseBitset(VertexId num_bits)
      : words_((static_cast<size_t>(num_bits) + 63) / 64, 0),
        num_bits_(num_bits) {}

  /// Rebuilds a bitset from its packed words — the snapshot-restore path
  /// for bitmap-mode noisy views. `words` must be exactly
  /// (num_bits + 63) / 64 long with every bit at or beyond num_bits zero
  /// (fatal check otherwise: trailing garbage would corrupt popcounts).
  /// Copies into aligned storage; serialized snapshots carry plain words.
  static DenseBitset FromWords(std::vector<uint64_t> words,
                               VertexId num_bits);

  VertexId NumBits() const { return num_bits_; }

  void Set(VertexId i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  bool Test(VertexId i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Number of set bits (popcount over all words, SIMD-dispatched).
  uint64_t Count() const;

  std::span<const uint64_t> Words() const { return words_; }

  /// Set bits in ascending id order; no sort needed, bit iteration is
  /// naturally ordered. `hint` pre-reserves the output.
  std::vector<VertexId> ToSortedVector(size_t hint = 0) const;

 private:
  AlignedWordVector words_;
  VertexId num_bits_ = 0;
};

/// A borrowed, read-only view of a vertex-id set in either representation.
/// The dispatcher's operand type: build one with SetView::Sorted (over any
/// sorted unique span, e.g. a CSR adjacency list) or SetView::Bitmap, and
/// the viewed storage must outlive the view.
class SetView {
 public:
  static SetView Sorted(std::span<const VertexId> ids) {
    SetView v;
    v.sorted_ = ids;
    v.size_ = ids.size();
    return v;
  }

  /// `size` is the number of set bits; pass it when cached (NoisyNeighborSet
  /// caches it) to avoid a popcount pass.
  static SetView Bitmap(const DenseBitset& bits, uint64_t size) {
    SetView v;
    v.bitmap_ = &bits;
    v.size_ = size;
    return v;
  }

  bool IsBitmap() const { return bitmap_ != nullptr; }
  uint64_t Size() const { return size_; }
  std::span<const VertexId> sorted() const { return sorted_; }
  const DenseBitset& bitmap() const { return *bitmap_; }

 private:
  std::span<const VertexId> sorted_{};
  const DenseBitset* bitmap_ = nullptr;
  uint64_t size_ = 0;
};

/// Sorted × sorted size ratio beyond which the *union* dispatcher (and the
/// cost-model fallback, when a calibration entry is absent) switches from
/// the scalar merge to galloping search. The intersection dispatcher
/// itself prices merge vs galloping from the calibrated table.
inline constexpr uint64_t kGallopRatio = 32;

/// Scalar two-pointer merge over two sorted unique id ranges. The baseline
/// every other kernel must agree with.
uint64_t IntersectScalarMerge(std::span<const VertexId> a,
                              std::span<const VertexId> b);

/// Galloping (exponential-then-binary search) intersection for skewed
/// sorted × sorted sizes: each element of the smaller range is located in
/// the larger one in O(log gap). Swaps internally so argument order does
/// not matter.
uint64_t IntersectGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b);

/// Dense × dense kernel: word AND + popcount, SIMD-dispatched (AVX2
/// nibble-LUT / AVX-512 vpopcntq). The bitsets may cover different
/// domains; bits beyond the shorter domain cannot intersect.
uint64_t IntersectBitmapAnd(const DenseBitset& a, const DenseBitset& b);

/// Sparse × dense bitmap kernel: walk `sparse`'s words, skip zero words,
/// AND+popcount the rest against `dense`. Loads only half the data of
/// IntersectBitmapAnd when `sparse` is mostly zero words; same count.
uint64_t IntersectBitmapProbe(const DenseBitset& sparse,
                              const DenseBitset& dense);

/// Sparse × dense kernel: probe each sorted id into the bitmap, O(1) per
/// probe. Ids at or beyond the bitmap's domain count as absent.
uint64_t IntersectProbeBitmap(std::span<const VertexId> probes,
                              const DenseBitset& bits);

/// Adaptive dispatcher. Representations fix the candidate set (bitmap ×
/// bitmap → {word AND, skip-zero probe}, sorted × bitmap → probe, sorted ×
/// sorted → {merge, galloping}); within it, the calibrated cost model
/// (set_ops_cost.h) predicts each kernel's ns from the operand sizes and
/// the active SIMD level and runs the argmin. Always equals
/// IntersectScalarMerge on the equivalent sorted inputs.
uint64_t IntersectionSize(const SetView& a, const SetView& b);

/// One-vs-many intersection: writes |base ∩ candidates[i]| into out[i] for
/// every candidate. Same counts as calling IntersectionSize per pair — the
/// point is the execution shape: the base operand's representation is
/// resolved once outside the loop (its words or its sorted span stay hot in
/// cache while every candidate streams past it), and each candidate's
/// backing storage is software-prefetched a fixed distance ahead of its
/// turn, so the per-candidate loads the hardware prefetcher cannot predict
/// (they hop between unrelated view allocations) are already in flight.
/// This is the kernel under the workload planner's grouped execution and
/// the shared-source loops of apps/topk and apps/projection. Requires
/// out.size() == candidates.size().
void BatchIntersectionSize(const SetView& base,
                           std::span<const SetView> candidates,
                           std::span<uint64_t> out);

/// Issues a prefetch for the first cache lines of `view`'s backing storage
/// (bitmap words or sorted ids). Used by BatchIntersectionSize and the
/// service GroupExecutor to overlap candidate-view loads with compute.
void PrefetchSetView(const SetView& view);

/// Name of the kernel the dispatcher would run for (a, b); for logs and the
/// ext_intersect bench.
const char* DispatchedKernelName(const SetView& a, const SetView& b);

// ---- union kernels (mirror of the intersection family) ----

/// Scalar two-pointer merge counting |a ∪ b| over two sorted unique id
/// ranges. The baseline every other union kernel must agree with.
uint64_t UnionScalarMerge(std::span<const VertexId> a,
                          std::span<const VertexId> b);

/// Dense × dense union: word OR + popcount over the overlapping words
/// (SIMD-dispatched), plus the popcount of the longer operand's tail.
uint64_t UnionBitmapOr(const DenseBitset& a, const DenseBitset& b);

/// Adaptive union dispatcher: bitmap × bitmap → word OR + popcount; any
/// mixed pair → |a| + |b| − |a ∩ b| through the intersection dispatcher
/// (probe / galloping, inclusion–exclusion is exact on unique sets);
/// sorted × sorted of comparable sizes → scalar merge. Always equals
/// UnionScalarMerge on the equivalent sorted inputs.
uint64_t UnionSize(const SetView& a, const SetView& b);

/// Name of the kernel UnionSize would run for (a, b); for parity tests and
/// logs.
const char* DispatchedUnionKernelName(const SetView& a, const SetView& b);

}  // namespace cne

#endif  // CNE_GRAPH_SET_OPS_H_
