// Adaptive set-intersection kernels over vertex-id sets.
//
// Every protocol in the paper bottoms out in set intersection over
// randomized-response releases, and at practical ε those releases are
// *dense*: the expected noisy degree is d(1-p) + (n-d)p, so at ε = 1
// (p ≈ 0.269) a noisy row covers ~27% of the opposite layer. One scalar
// sorted merge cannot serve that whole density range well, so this module
// provides two set representations and four kernels, plus a dispatcher
// that picks the kernel from the operand representations and sizes:
//
//   representation      kernel                    regime
//   ------------------  ------------------------  --------------------------
//   sorted × sorted     IntersectScalarMerge      comparable sizes
//   sorted × sorted     IntersectGalloping        size ratio ≥ kGallopRatio
//   bitmap × bitmap     IntersectBitmapAnd        dense × dense (word AND +
//                                                 popcount, 64 ids/cycle-ish)
//   sorted × bitmap     IntersectProbeBitmap      sparse × dense (O(1) probes)
//
// All four kernels return exactly the same count on equivalent inputs; the
// property test (tests/graph/set_ops_test.cc) and the every-run self-check
// in bench/ext_intersect.cc enforce this.

#ifndef CNE_GRAPH_SET_OPS_H_
#define CNE_GRAPH_SET_OPS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/bipartite_graph.h"

namespace cne {

/// Packed bitmap over the id domain [0, NumBits()): bit i is stored in word
/// i/64. The dense-set representation behind NoisyNeighborSet's bitmap
/// storage mode and the bitmap intersection kernels.
class DenseBitset {
 public:
  DenseBitset() = default;

  /// An all-zero bitset over `num_bits` ids. The trailing partial word (when
  /// num_bits is not a multiple of 64) is kept zero beyond bit num_bits.
  explicit DenseBitset(VertexId num_bits)
      : words_((static_cast<size_t>(num_bits) + 63) / 64, 0),
        num_bits_(num_bits) {}

  /// Rebuilds a bitset from its packed words — the snapshot-restore path
  /// for bitmap-mode noisy views. `words` must be exactly
  /// (num_bits + 63) / 64 long with every bit at or beyond num_bits zero
  /// (fatal check otherwise: trailing garbage would corrupt popcounts).
  static DenseBitset FromWords(std::vector<uint64_t> words,
                               VertexId num_bits);

  VertexId NumBits() const { return num_bits_; }

  void Set(VertexId i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }

  bool Test(VertexId i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  /// Number of set bits (popcount over all words).
  uint64_t Count() const;

  std::span<const uint64_t> Words() const { return words_; }

  /// Set bits in ascending id order; no sort needed, bit iteration is
  /// naturally ordered. `hint` pre-reserves the output.
  std::vector<VertexId> ToSortedVector(size_t hint = 0) const;

 private:
  std::vector<uint64_t> words_;
  VertexId num_bits_ = 0;
};

/// A borrowed, read-only view of a vertex-id set in either representation.
/// The dispatcher's operand type: build one with SetView::Sorted (over any
/// sorted unique span, e.g. a CSR adjacency list) or SetView::Bitmap, and
/// the viewed storage must outlive the view.
class SetView {
 public:
  static SetView Sorted(std::span<const VertexId> ids) {
    SetView v;
    v.sorted_ = ids;
    v.size_ = ids.size();
    return v;
  }

  /// `size` is the number of set bits; pass it when cached (NoisyNeighborSet
  /// caches it) to avoid a popcount pass.
  static SetView Bitmap(const DenseBitset& bits, uint64_t size) {
    SetView v;
    v.bitmap_ = &bits;
    v.size_ = size;
    return v;
  }

  bool IsBitmap() const { return bitmap_ != nullptr; }
  uint64_t Size() const { return size_; }
  std::span<const VertexId> sorted() const { return sorted_; }
  const DenseBitset& bitmap() const { return *bitmap_; }

 private:
  std::span<const VertexId> sorted_{};
  const DenseBitset* bitmap_ = nullptr;
  uint64_t size_ = 0;
};

/// Sorted × sorted size ratio beyond which the dispatcher switches from the
/// scalar merge to galloping search.
inline constexpr uint64_t kGallopRatio = 32;

/// Scalar two-pointer merge over two sorted unique id ranges. The baseline
/// every other kernel must agree with.
uint64_t IntersectScalarMerge(std::span<const VertexId> a,
                              std::span<const VertexId> b);

/// Galloping (exponential-then-binary search) intersection for skewed
/// sorted × sorted sizes: each element of the smaller range is located in
/// the larger one in O(log gap). Swaps internally so argument order does
/// not matter.
uint64_t IntersectGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b);

/// Dense × dense kernel: 64-bit word AND + popcount. The bitsets may cover
/// different domains; bits beyond the shorter domain cannot intersect.
uint64_t IntersectBitmapAnd(const DenseBitset& a, const DenseBitset& b);

/// Sparse × dense kernel: probe each sorted id into the bitmap, O(1) per
/// probe. Ids at or beyond the bitmap's domain count as absent.
uint64_t IntersectProbeBitmap(std::span<const VertexId> probes,
                              const DenseBitset& bits);

/// Adaptive dispatcher: picks the kernel from the operand representations
/// (bitmap × bitmap → word AND, sorted × bitmap → probe) and, for
/// sorted × sorted, from the size ratio (galloping past kGallopRatio,
/// scalar merge otherwise). Always equals IntersectScalarMerge on the
/// equivalent sorted inputs.
uint64_t IntersectionSize(const SetView& a, const SetView& b);

/// One-vs-many intersection: writes |base ∩ candidates[i]| into out[i] for
/// every candidate. Same counts as calling IntersectionSize per pair — the
/// point is the execution shape: the base operand's representation is
/// resolved once outside the loop (its words or its sorted span stay hot in
/// cache while every candidate streams past it), instead of re-dispatching
/// and re-loading the shared row N times. This is the kernel under the
/// workload planner's grouped execution and the shared-source loops of
/// apps/topk and apps/projection. Requires out.size() == candidates.size().
void BatchIntersectionSize(const SetView& base,
                           std::span<const SetView> candidates,
                           std::span<uint64_t> out);

/// Name of the kernel the dispatcher would run for (a, b); for logs and the
/// ext_intersect bench.
const char* DispatchedKernelName(const SetView& a, const SetView& b);

// ---- union kernels (mirror of the intersection family) ----

/// Scalar two-pointer merge counting |a ∪ b| over two sorted unique id
/// ranges. The baseline every other union kernel must agree with.
uint64_t UnionScalarMerge(std::span<const VertexId> a,
                          std::span<const VertexId> b);

/// Dense × dense union: 64-bit word OR + popcount over the overlapping
/// words, plus the popcount of the longer operand's tail.
uint64_t UnionBitmapOr(const DenseBitset& a, const DenseBitset& b);

/// Adaptive union dispatcher: bitmap × bitmap → word OR + popcount; any
/// mixed pair → |a| + |b| − |a ∩ b| through the intersection dispatcher
/// (probe / galloping, inclusion–exclusion is exact on unique sets);
/// sorted × sorted of comparable sizes → scalar merge. Always equals
/// UnionScalarMerge on the equivalent sorted inputs.
uint64_t UnionSize(const SetView& a, const SetView& b);

/// Name of the kernel UnionSize would run for (a, b); for parity tests and
/// logs.
const char* DispatchedUnionKernelName(const SetView& a, const SetView& b);

}  // namespace cne

#endif  // CNE_GRAPH_SET_OPS_H_
