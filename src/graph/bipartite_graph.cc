#include "graph/bipartite_graph.h"

#include <algorithm>
#include <cassert>

#include "graph/set_ops.h"
#include "util/logging.h"

namespace cne {

const char* LayerName(Layer layer) {
  return layer == Layer::kUpper ? "upper" : "lower";
}

BipartiteGraph::BipartiteGraph() = default;

void CountsToOffsets(std::span<uint64_t> counts) {
  uint64_t running = 0;
  for (uint64_t& slot : counts) {
    running += slot;
    slot = running;
  }
}

BipartiteGraph::BipartiteGraph(VertexId num_upper, VertexId num_lower,
                               const std::vector<Edge>& sorted_edges)
    : num_upper_(num_upper), num_lower_(num_lower) {
  upper_offsets_.assign(static_cast<size_t>(num_upper) + 1, 0);
  lower_offsets_.assign(static_cast<size_t>(num_lower) + 1, 0);
  upper_adj_.resize(sorted_edges.size());
  lower_adj_.resize(sorted_edges.size());

  for (const Edge& e : sorted_edges) {
    CNE_CHECK(e.upper < num_upper && e.lower < num_lower)
        << "edge (" << e.upper << ", " << e.lower << ") out of range";
    ++upper_offsets_[e.upper + 1];
    ++lower_offsets_[e.lower + 1];
  }
  CountsToOffsets(upper_offsets_);
  CountsToOffsets(lower_offsets_);

  // Edges are sorted by (upper, lower), so filling upper_adj_ in order keeps
  // each upper adjacency list sorted. Lower lists are filled with a cursor
  // and are also sorted because within a lower vertex the upper ids arrive
  // in increasing order.
  std::vector<uint64_t> lower_cursor(lower_offsets_.begin(),
                                     lower_offsets_.end() - 1);
  uint64_t pos = 0;
  for (const Edge& e : sorted_edges) {
    upper_adj_[pos++] = e.lower;
    lower_adj_[lower_cursor[e.lower]++] = e.upper;
  }
#ifndef NDEBUG
  for (VertexId u = 0; u < num_upper_; ++u) {
    auto nb = Neighbors(Layer::kUpper, u);
    assert(std::is_sorted(nb.begin(), nb.end()));
    assert(std::adjacent_find(nb.begin(), nb.end()) == nb.end());
  }
#endif
}

BipartiteGraph BipartiteGraph::FromEdgeStream(VertexId num_upper,
                                              VertexId num_lower,
                                              const EdgeScan& scan) {
  BipartiteGraph graph;
  graph.num_upper_ = num_upper;
  graph.num_lower_ = num_lower;

  // Pass 1: per-upper-vertex emission counts (duplicates included).
  graph.upper_offsets_.assign(static_cast<size_t>(num_upper) + 1, 0);
  uint64_t emitted = 0;
  scan([&](VertexId u, VertexId l) {
    CNE_CHECK(u < num_upper && l < num_lower)
        << "streamed edge (" << u << ", " << l << ") out of range";
    ++graph.upper_offsets_[u + 1];
    ++emitted;
  });
  CountsToOffsets(graph.upper_offsets_);

  // Pass 2: fill the upper adjacency in emission order. The scan must
  // replay the same sequence; the cursor check below catches producers
  // that do not.
  graph.upper_adj_.resize(emitted);
  std::vector<uint64_t> cursor(graph.upper_offsets_.begin(),
                               graph.upper_offsets_.end() - 1);
  uint64_t refilled = 0;
  scan([&](VertexId u, VertexId l) {
    CNE_CHECK(u < num_upper && cursor[u] < graph.upper_offsets_[u + 1])
        << "edge stream did not replay identically (vertex " << u << ")";
    graph.upper_adj_[cursor[u]++] = l;
    ++refilled;
  });
  CNE_CHECK(refilled == emitted)
      << "edge stream emitted " << refilled << " edges on the fill pass, "
      << emitted << " on the count pass";

  // Sort + dedup each upper list, compacting in place. The write cursor
  // never passes the read position (dedup only shrinks runs), so no
  // second adjacency buffer is needed. Old offsets are consumed from
  // `read_begin`/`upper_offsets_[u + 1]` one step ahead of the rewrite.
  uint64_t write = 0;
  uint64_t read_begin = 0;
  for (VertexId u = 0; u < num_upper; ++u) {
    const uint64_t read_end = graph.upper_offsets_[u + 1];
    const auto first =
        graph.upper_adj_.begin() + static_cast<ptrdiff_t>(read_begin);
    const auto last =
        graph.upper_adj_.begin() + static_cast<ptrdiff_t>(read_end);
    std::sort(first, last);
    const auto unique_end = std::unique(first, last);
    const uint64_t kept = static_cast<uint64_t>(unique_end - first);
    std::move(first, unique_end,
              graph.upper_adj_.begin() + static_cast<ptrdiff_t>(write));
    graph.upper_offsets_[u] = write;
    write += kept;
    read_begin = read_end;
  }
  graph.upper_offsets_[num_upper] = write;
  graph.upper_adj_.resize(write);
  graph.upper_adj_.shrink_to_fit();

  // Transpose into the lower direction. Upper ids arrive in increasing
  // order per lower vertex, so the lower lists come out sorted-unique.
  graph.lower_offsets_.assign(static_cast<size_t>(num_lower) + 1, 0);
  for (VertexId l : graph.upper_adj_) ++graph.lower_offsets_[l + 1];
  CountsToOffsets(graph.lower_offsets_);
  graph.lower_adj_.resize(write);
  std::vector<uint64_t> lower_cursor(graph.lower_offsets_.begin(),
                                     graph.lower_offsets_.end() - 1);
  for (VertexId u = 0; u < num_upper; ++u) {
    for (uint64_t i = graph.upper_offsets_[u]; i < graph.upper_offsets_[u + 1];
         ++i) {
      graph.lower_adj_[lower_cursor[graph.upper_adj_[i]]++] = u;
    }
  }
  return graph;
}

BipartiteGraph::CsrParts BipartiteGraph::Csr(Layer layer) const {
  if (layer == Layer::kUpper) return {upper_offsets_, upper_adj_};
  return {lower_offsets_, lower_adj_};
}

namespace {

void ValidateCsrDirection(const char* name,
                          const std::vector<uint64_t>& offsets,
                          const std::vector<VertexId>& adj,
                          VertexId num_vertices, VertexId opposite_size) {
  CNE_CHECK(offsets.size() == static_cast<size_t>(num_vertices) + 1)
      << name << " offsets size " << offsets.size() << " for "
      << num_vertices << " vertices";
  CNE_CHECK(offsets.front() == 0 && offsets.back() == adj.size())
      << name << " offsets do not span the adjacency array";
  for (VertexId v = 0; v < num_vertices; ++v) {
    CNE_CHECK(offsets[v] <= offsets[v + 1])
        << name << " offsets not monotone at vertex " << v;
    for (uint64_t i = offsets[v]; i < offsets[v + 1]; ++i) {
      CNE_CHECK(adj[i] < opposite_size)
          << name << " neighbor " << adj[i] << " out of range";
      CNE_CHECK(i == offsets[v] || adj[i - 1] < adj[i])
          << name << " adjacency of vertex " << v << " not sorted-unique";
    }
  }
}

}  // namespace

BipartiteGraph BipartiteGraph::FromCsr(VertexId num_upper, VertexId num_lower,
                                       std::vector<uint64_t> upper_offsets,
                                       std::vector<VertexId> upper_adj,
                                       std::vector<uint64_t> lower_offsets,
                                       std::vector<VertexId> lower_adj) {
  CNE_CHECK(upper_adj.size() == lower_adj.size())
      << "CSR directions disagree on edge count: " << upper_adj.size()
      << " vs " << lower_adj.size();
  ValidateCsrDirection("upper", upper_offsets, upper_adj, num_upper,
                       num_lower);
  ValidateCsrDirection("lower", lower_offsets, lower_adj, num_lower,
                       num_upper);
  BipartiteGraph graph;
  graph.num_upper_ = num_upper;
  graph.num_lower_ = num_lower;
  graph.upper_offsets_ = std::move(upper_offsets);
  graph.upper_adj_ = std::move(upper_adj);
  graph.lower_offsets_ = std::move(lower_offsets);
  graph.lower_adj_ = std::move(lower_adj);
  return graph;
}

std::span<const VertexId> BipartiteGraph::Neighbors(Layer layer,
                                                    VertexId v) const {
  if (layer == Layer::kUpper) {
    CNE_CHECK(v < num_upper_) << "upper vertex " << v << " out of range";
    return {upper_adj_.data() + upper_offsets_[v],
            upper_adj_.data() + upper_offsets_[v + 1]};
  }
  CNE_CHECK(v < num_lower_) << "lower vertex " << v << " out of range";
  return {lower_adj_.data() + lower_offsets_[v],
          lower_adj_.data() + lower_offsets_[v + 1]};
}

VertexId BipartiteGraph::Degree(Layer layer, VertexId v) const {
  return static_cast<VertexId>(Neighbors(layer, v).size());
}

bool BipartiteGraph::HasEdge(VertexId upper, VertexId lower) const {
  auto nb = Neighbors(Layer::kUpper, upper);
  return std::binary_search(nb.begin(), nb.end(), lower);
}

uint64_t SortedIntersectionSize(std::span<const VertexId> a,
                                std::span<const VertexId> b) {
  // The adaptive sorted × sorted path: scalar merge for comparable sizes,
  // galloping search past kGallopRatio (set_ops.h).
  return IntersectionSize(SetView::Sorted(a), SetView::Sorted(b));
}

uint64_t SortedUnionSize(std::span<const VertexId> a,
                         std::span<const VertexId> b) {
  // The adaptive sorted × sorted union path (merge, or inclusion–exclusion
  // over the galloping intersection for skewed sizes; set_ops.h).
  return UnionSize(SetView::Sorted(a), SetView::Sorted(b));
}

uint64_t BipartiteGraph::CountCommonNeighbors(Layer layer, VertexId a,
                                              VertexId b) const {
  return SortedIntersectionSize(Neighbors(layer, a), Neighbors(layer, b));
}

uint64_t BipartiteGraph::CountUnionNeighbors(Layer layer, VertexId a,
                                             VertexId b) const {
  return SortedUnionSize(Neighbors(layer, a), Neighbors(layer, b));
}

VertexId BipartiteGraph::MaxDegree(Layer layer) const {
  VertexId best = 0;
  const VertexId n = NumVertices(layer);
  for (VertexId v = 0; v < n; ++v) best = std::max(best, Degree(layer, v));
  return best;
}

double BipartiteGraph::AverageDegree(Layer layer) const {
  const VertexId n = NumVertices(layer);
  if (n == 0) return 0.0;
  return static_cast<double>(NumEdges()) / static_cast<double>(n);
}

std::vector<Edge> BipartiteGraph::EdgeList() const {
  std::vector<Edge> edges;
  edges.reserve(NumEdges());
  for (VertexId u = 0; u < num_upper_; ++u) {
    for (VertexId l : Neighbors(Layer::kUpper, u)) {
      edges.push_back({u, l});
    }
  }
  return edges;
}

uint64_t BipartiteGraph::MemoryBytes() const {
  return upper_offsets_.size() * sizeof(uint64_t) +
         lower_offsets_.size() * sizeof(uint64_t) +
         upper_adj_.size() * sizeof(VertexId) +
         lower_adj_.size() * sizeof(VertexId);
}

std::string BipartiteGraph::ToString() const {
  return "BipartiteGraph(|U|=" + std::to_string(num_upper_) +
         ", |L|=" + std::to_string(num_lower_) +
         ", m=" + std::to_string(NumEdges()) + ")";
}

}  // namespace cne
