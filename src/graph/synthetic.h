// Seeded, streamed Chung–Lu bipartite generator for the million-edge
// scale harness, with an on-disk edge cache.
//
// The paper (journals_pacmmod_HeWZLZ24) evaluates on KONECT bipartite
// graphs of 10⁶–10⁸ edges with heavy power-law degree skew (Table 2);
// reproducing that regime needs graphs far too large to regenerate per
// bench run or to hold twice in memory while building. This module
// provides:
//
//   SyntheticSpec      the generator parameters — layer sizes, edge-draw
//                      count, per-layer power-law exponents, seed —
//                      mirroring the paper's Table 2 shape statistics;
//   SyntheticSampler   deterministic chunked edge-draw stream: draws are
//                      partitioned into fixed chunks, chunk c is seeded
//                      from Rng(seed).Fork(c), so the stream is a pure
//                      function of the spec and identical no matter how
//                      many threads consume or regenerate chunks;
//   edge cache         draws persisted to `<cache_dir>/cne_gen_<key>.edges`
//                      keyed by (format version, every spec field), with a
//                      CRC-32 footer; CI and benches regenerate a dataset
//                      at most once per (params, seed, version);
//   BuildSyntheticGraph cache-backed streamed CSR build through
//                      BipartiteGraph::FromEdgeStream — the edge list is
//                      never materialized; peak memory stays under twice
//                      the final CSR size.
//
// `num_edges` counts *draws*: the built graph deduplicates, so its edge
// count is slightly below num_edges (collisions concentrate on hot
// hub×hub pairs under power-law weights). The statistical test suite
// (tests/graph/synthetic_test.cc) pins the collision loss and the degree
// moments to analytic bounds.

#ifndef CNE_GRAPH_SYNTHETIC_H_
#define CNE_GRAPH_SYNTHETIC_H_

#include <functional>
#include <string>

#include "graph/alias_table.h"
#include "graph/bipartite_graph.h"

namespace cne {

/// Version of the on-disk edge-cache format. Part of the cache key: bump
/// it whenever the draw algorithm or the file layout changes, and every
/// stale cache entry is ignored rather than misread.
inline constexpr uint32_t kSyntheticCacheVersion = 1;

/// Edge draws per deterministic chunk. Each chunk is an independent RNG
/// substream (Rng(seed).Fork(chunk)), so regeneration, parallel fills,
/// and partial scans all see byte-identical draws.
inline constexpr uint64_t kSyntheticDrawsPerChunk = uint64_t{1} << 16;

/// Parameters of one synthetic dataset, shaped like a paper Table 2 row.
struct SyntheticSpec {
  VertexId num_upper = 0;  ///< |U| (users-like layer in Table 2)
  VertexId num_lower = 0;  ///< |L|
  /// Edge *draws*; the deduplicated graph has slightly fewer edges.
  uint64_t num_edges = 0;
  double exponent_upper = 2.1;  ///< power-law exponent of the U weights
  double exponent_lower = 2.1;  ///< power-law exponent of the L weights
  uint64_t seed = 1;

  friend bool operator==(const SyntheticSpec&, const SyntheticSpec&) = default;

  /// One-line description, e.g. "chung_lu(|U|=1200, |L|=8100, draws=58000,
  /// exp=2.1/2.1, seed=1)".
  std::string Describe() const;
};

/// Scales a Table 2 shape (base_upper × base_lower, base_edges) to
/// `target_edges` draws: edges scale linearly, vertices by sqrt of the
/// edge ratio, which preserves density and with it the degree structure —
/// the same rule eval/datasets.cc applies to the >2M-edge KONECT graphs.
/// Layers are floored at 2 vertices.
SyntheticSpec ScaledShapeSpec(uint64_t base_upper, uint64_t base_lower,
                              uint64_t base_edges, uint64_t target_edges,
                              double exponent = 2.1, uint64_t seed = 1);

/// 64-bit cache key covering kSyntheticCacheVersion and every spec field.
uint64_t SyntheticCacheKey(const SyntheticSpec& spec);

/// File name of the cache entry for `spec`: "cne_gen_<key-hex>.edges".
std::string SyntheticCacheFileName(const SyntheticSpec& spec);

/// Cache directory resolution: $CNE_DATASET_CACHE when set, else
/// ".cne-cache" under the current working directory (what CI persists
/// between runs via actions/cache).
std::string DefaultSyntheticCacheDir();

/// Deterministic chunked edge-draw stream over a spec. Construction cost
/// is O(|U| + |L|) (power-law weights + alias tables); each draw is O(1).
class SyntheticSampler {
 public:
  explicit SyntheticSampler(const SyntheticSpec& spec);

  const SyntheticSpec& spec() const { return spec_; }

  /// Number of draw chunks, ceil(num_edges / kSyntheticDrawsPerChunk).
  uint64_t NumChunks() const;

  /// Emits the draws of chunk `chunk` in order. Independent of every
  /// other chunk: safe to call from any thread, in any order, repeatedly.
  void EmitChunk(uint64_t chunk,
                 const std::function<void(VertexId, VertexId)>& emit) const;

  /// Emits all draws in chunk order — the canonical stream.
  void EmitAll(const std::function<void(VertexId, VertexId)>& emit) const;

 private:
  SyntheticSpec spec_;
  AliasTable upper_table_;
  AliasTable lower_table_;
};

/// Result of EnsureEdgeCache: where the cache entry lives and whether
/// this call generated it.
struct EdgeCacheEntry {
  std::string path;
  bool generated = false;   ///< false: a valid entry already existed
  uint64_t file_bytes = 0;
};

/// Ensures `<cache_dir>/cne_gen_<key>.edges` exists and is valid for
/// `spec`, generating it atomically (tmp + rename) on a miss or on a
/// corrupt/mismatched entry. Creates the directory if needed. Throws
/// std::runtime_error on IO failure.
EdgeCacheEntry EnsureEdgeCache(const SyntheticSpec& spec,
                               const std::string& cache_dir);

/// Streams every cached draw to `emit`, validating the header against
/// `spec` and the payload CRC-32 footer along the way. Throws
/// std::runtime_error on any mismatch, truncation, or IO failure.
void ForEachCachedEdge(const std::string& path, const SyntheticSpec& spec,
                       const std::function<void(VertexId, VertexId)>& emit);

/// Cache-backed streamed build: ensures the edge cache for `spec`, then
/// two-pass builds the CSR via BipartiteGraph::FromEdgeStream, scanning
/// the cache file twice instead of holding an edge list in memory.
/// `cache_dir` empty means DefaultSyntheticCacheDir(). If `out_entry` is
/// non-null it receives the cache entry the build used.
BipartiteGraph BuildSyntheticGraph(const SyntheticSpec& spec,
                                   const std::string& cache_dir = "",
                                   EdgeCacheEntry* out_entry = nullptr);

}  // namespace cne

#endif  // CNE_GRAPH_SYNTHETIC_H_
