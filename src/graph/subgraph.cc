#include "graph/subgraph.h"

#include <algorithm>
#include <limits>

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace cne {

namespace {

constexpr VertexId kAbsent = std::numeric_limits<VertexId>::max();

// Maps old ids to compact new ids; kAbsent for dropped vertices.
std::vector<VertexId> BuildRemap(VertexId n, const std::vector<VertexId>& keep) {
  std::vector<VertexId> remap(n, kAbsent);
  VertexId next = 0;
  for (VertexId v : keep) {
    CNE_CHECK(v < n) << "keep-list vertex " << v << " out of range";
    if (remap[v] == kAbsent) remap[v] = next++;
  }
  return remap;
}

}  // namespace

BipartiteGraph InducedSubgraph(const BipartiteGraph& graph,
                               std::vector<VertexId> keep_upper,
                               std::vector<VertexId> keep_lower) {
  std::sort(keep_upper.begin(), keep_upper.end());
  keep_upper.erase(std::unique(keep_upper.begin(), keep_upper.end()),
                   keep_upper.end());
  std::sort(keep_lower.begin(), keep_lower.end());
  keep_lower.erase(std::unique(keep_lower.begin(), keep_lower.end()),
                   keep_lower.end());

  const std::vector<VertexId> upper_map =
      BuildRemap(graph.NumUpper(), keep_upper);
  const std::vector<VertexId> lower_map =
      BuildRemap(graph.NumLower(), keep_lower);

  GraphBuilder builder(static_cast<VertexId>(keep_upper.size()),
                       static_cast<VertexId>(keep_lower.size()));
  for (VertexId u : keep_upper) {
    for (VertexId l : graph.Neighbors(Layer::kUpper, u)) {
      if (lower_map[l] != kAbsent) {
        builder.AddEdge(upper_map[u], lower_map[l]);
      }
    }
  }
  return builder.Build();
}

BipartiteGraph InducedSubgraphByVertexFraction(const BipartiteGraph& graph,
                                               double fraction, Rng& rng) {
  CNE_CHECK(fraction > 0.0 && fraction <= 1.0)
      << "fraction must be in (0, 1], got " << fraction;
  auto sample_layer = [&](VertexId n) {
    const uint64_t k = std::max<uint64_t>(
        1, static_cast<uint64_t>(fraction * static_cast<double>(n)));
    std::vector<VertexId> keep;
    keep.reserve(k);
    for (uint64_t v : rng.SampleWithoutReplacement(n, std::min<uint64_t>(k, n))) {
      keep.push_back(static_cast<VertexId>(v));
    }
    return keep;
  };
  return InducedSubgraph(graph, sample_layer(graph.NumUpper()),
                         sample_layer(graph.NumLower()));
}

}  // namespace cne
