// Text and binary serialization of bipartite graphs.
//
// The text format is KONECT-style: one `upper lower` pair per line,
// whitespace separated, with `%` or `#` comment lines. Vertex ids in text
// files are 1-based or 0-based (auto-detected: the minimum id seen maps to
// 0 when it is 1).
//
// The binary format is a fixed little-endian layout with a magic header,
// used to cache generated datasets between bench runs.

#ifndef CNE_GRAPH_GRAPH_IO_H_
#define CNE_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "graph/bipartite_graph.h"

namespace cne {

/// Parses a KONECT-style edge-list stream. Throws std::runtime_error on
/// malformed input.
BipartiteGraph ReadEdgeListStream(std::istream& in);

/// Reads a KONECT-style edge-list file. Throws std::runtime_error if the
/// file cannot be opened or parsed.
BipartiteGraph ReadEdgeListFile(const std::string& path);

/// Writes the graph as `upper lower` lines (0-based ids) with a header
/// comment.
void WriteEdgeListStream(const BipartiteGraph& graph, std::ostream& out);
void WriteEdgeListFile(const BipartiteGraph& graph, const std::string& path);

/// Writes the graph in the libcne binary format.
void WriteBinaryFile(const BipartiteGraph& graph, const std::string& path);

/// Reads a libcne binary graph file. Throws std::runtime_error on a bad
/// magic number, version, or truncated file.
BipartiteGraph ReadBinaryFile(const std::string& path);

/// Reads a graph file, dispatching on the extension: `.bin` uses the
/// binary format, anything else the KONECT text format.
BipartiteGraph ReadGraphFile(const std::string& path);

}  // namespace cne

#endif  // CNE_GRAPH_GRAPH_IO_H_
