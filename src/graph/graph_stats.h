// Descriptive statistics over bipartite graphs: degree distributions and
// the Table 2-style dataset summary used by the bench harnesses.

#ifndef CNE_GRAPH_GRAPH_STATS_H_
#define CNE_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace cne {

/// Degree histogram of one layer: counts[d] = number of vertices of degree d.
std::vector<uint64_t> DegreeHistogram(const BipartiteGraph& graph,
                                      Layer layer);

/// Per-layer degree summary.
struct LayerDegreeStats {
  VertexId num_vertices = 0;
  VertexId max_degree = 0;
  double average_degree = 0.0;
  double median_degree = 0.0;
  uint64_t isolated = 0;  ///< vertices of degree 0
};

LayerDegreeStats ComputeLayerDegreeStats(const BipartiteGraph& graph,
                                         Layer layer);

/// Whole-graph summary (Table 2 row).
struct GraphStats {
  uint64_t num_edges = 0;
  LayerDegreeStats upper;
  LayerDegreeStats lower;
  double density = 0.0;  ///< m / (|U| * |L|)
};

GraphStats ComputeGraphStats(const BipartiteGraph& graph);

/// Formats GraphStats as a one-line summary.
std::string ToString(const GraphStats& stats);

}  // namespace cne

#endif  // CNE_GRAPH_GRAPH_STATS_H_
