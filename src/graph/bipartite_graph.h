// Immutable CSR bipartite graph. This is the substrate every estimator in
// the paper runs on: vertices live in two layers (upper U and lower L),
// edges connect layers, and adjacency lists are sorted so membership tests
// and common-neighbor counting are logarithmic / linear-merge.

#ifndef CNE_GRAPH_BIPARTITE_GRAPH_H_
#define CNE_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace cne {

/// Vertex identifier, local to its layer: upper vertices are
/// [0, NumUpper()) and lower vertices are [0, NumLower()).
///
/// 32 bits covers every layer of the paper's Table 2 (the largest is
/// Delicious-ui's 33.8M-vertex lower layer); *edge* quantities — CSR
/// offsets, adjacency positions, edge counts, uploaded-edge accounting —
/// must be 64-bit, because Table 2 reaches 3.3×10⁸ edges and the scale
/// harness targets 10⁸. tests/store/wide_index_test.cc pins the index
/// arithmetic past the 2³² boundary.
using VertexId = uint32_t;

/// Largest usable vertex id. The all-ones value is reserved so that
/// `id + 1` (layer-size discovery, offset slots) can never wrap.
inline constexpr VertexId kMaxVertexId = 0xfffffffeU;

/// The two vertex layers of a bipartite graph.
enum class Layer : uint8_t { kUpper = 0, kLower = 1 };

/// The layer opposite to `layer`.
constexpr Layer Opposite(Layer layer) {
  return layer == Layer::kUpper ? Layer::kLower : Layer::kUpper;
}

/// Human-readable layer name ("upper"/"lower").
const char* LayerName(Layer layer);

/// A vertex qualified by its layer, e.g. a query vertex.
struct LayeredVertex {
  Layer layer;
  VertexId id;

  friend bool operator==(const LayeredVertex&, const LayeredVertex&) = default;
};

/// Packs a layered vertex into one 64-bit hash-map key: layer in the
/// high half, id in the low half. The single definition of this layout —
/// anything keying per-vertex state (budget ledgers, view stores) must
/// use it so the maps agree if VertexId ever widens.
constexpr uint64_t PackLayeredVertex(LayeredVertex v) {
  return (static_cast<uint64_t>(v.layer) << 32) | v.id;
}

/// Inverse of PackLayeredVertex.
constexpr LayeredVertex UnpackLayeredVertex(uint64_t key) {
  return {static_cast<Layer>(key >> 32),
          static_cast<VertexId>(key & 0xffffffffULL)};
}

/// An undirected bipartite edge (upper endpoint, lower endpoint).
struct Edge {
  VertexId upper;
  VertexId lower;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge& a, const Edge& b) {
    if (auto c = a.upper <=> b.upper; c != 0) return c;
    return a.lower <=> b.lower;
  }
};

/// Immutable bipartite graph in compressed sparse row form, stored in both
/// directions (upper->lower and lower->upper) with sorted adjacency.
///
/// Construction goes through `GraphBuilder` (graph_builder.h) or the
/// generators (generators.h); this class only exposes queries.
class BipartiteGraph {
 public:
  /// Builds from per-layer counts and a *sorted, deduplicated* edge list.
  /// Most callers should use GraphBuilder instead, which sorts and dedups.
  BipartiteGraph(VertexId num_upper, VertexId num_lower,
                 const std::vector<Edge>& sorted_edges);

  /// A replayable edge producer: invoked with an emit callback and
  /// expected to call emit(upper, lower) once per edge. FromEdgeStream
  /// invokes the scan twice (count pass, fill pass); both invocations
  /// must emit the identical sequence — e.g. re-reading a file or
  /// re-running a seeded generator.
  using EdgeEmit = std::function<void(VertexId, VertexId)>;
  using EdgeScan = std::function<void(const EdgeEmit&)>;

  /// Streamed two-pass CSR build for graphs whose edge list must never be
  /// held twice in memory: pass 1 counts per-vertex degrees, pass 2 fills
  /// the upper adjacency in place, which is then sorted, deduplicated and
  /// compacted per vertex, and finally transposed into the lower
  /// direction. Duplicate and unsorted emissions are fine (deduplication
  /// matches GraphBuilder exactly, so the result is byte-identical to the
  /// in-memory build of the same edge multiset). Peak memory is the
  /// emitted-edge adjacency plus both offset arrays — strictly under
  /// twice the final two-direction CSR for any duplicate rate below 2×.
  static BipartiteGraph FromEdgeStream(VertexId num_upper, VertexId num_lower,
                                       const EdgeScan& scan);

  /// An empty graph with no vertices and no edges.
  BipartiteGraph();

  /// Number of vertices in the upper layer (n1 when queries are lower).
  VertexId NumUpper() const { return num_upper_; }

  /// Number of vertices in the lower layer.
  VertexId NumLower() const { return num_lower_; }

  /// Number of vertices in `layer`.
  VertexId NumVertices(Layer layer) const {
    return layer == Layer::kUpper ? num_upper_ : num_lower_;
  }

  /// Total number of vertices |U| + |L|.
  uint64_t TotalVertices() const {
    return static_cast<uint64_t>(num_upper_) + num_lower_;
  }

  /// Number of edges m.
  uint64_t NumEdges() const { return upper_adj_.size(); }

  /// Sorted neighbors (opposite-layer ids) of vertex `v` in `layer`.
  std::span<const VertexId> Neighbors(Layer layer, VertexId v) const;

  /// Convenience overload for a layered vertex.
  std::span<const VertexId> Neighbors(LayeredVertex v) const {
    return Neighbors(v.layer, v.id);
  }

  /// Degree of vertex `v` in `layer`.
  VertexId Degree(Layer layer, VertexId v) const;

  VertexId Degree(LayeredVertex v) const { return Degree(v.layer, v.id); }

  /// True if the edge (upper, lower) exists. O(log deg).
  bool HasEdge(VertexId upper, VertexId lower) const;

  /// Exact number of common neighbors C2(a, b) for two vertices on the
  /// same layer. Linear merge over the two sorted adjacency lists.
  uint64_t CountCommonNeighbors(Layer layer, VertexId a, VertexId b) const;

  /// Exact size of N(a) ∪ N(b) for two same-layer vertices.
  uint64_t CountUnionNeighbors(Layer layer, VertexId a, VertexId b) const;

  /// Maximum degree within `layer`.
  VertexId MaxDegree(Layer layer) const;

  /// Average degree within `layer` (0 for an empty layer).
  double AverageDegree(Layer layer) const;

  /// Materializes the (sorted) edge list.
  std::vector<Edge> EdgeList() const;

  /// The raw CSR arrays of one direction, borrowed: neighbors of vertex v
  /// are adj[offsets[v] .. offsets[v+1]). The serialization surface for
  /// the snapshot store's block-CSR graph section — offsets.size() is
  /// NumVertices(layer) + 1 and adj.size() is NumEdges().
  struct CsrParts {
    std::span<const uint64_t> offsets;
    std::span<const VertexId> adj;
  };
  CsrParts Csr(Layer layer) const;

  /// Rebuilds a graph directly from its two CSR directions, as exported
  /// by Csr() — the fast restore path of the snapshot store: no edge-list
  /// rebuild, no re-sort, no cross-direction transpose. Validates shape,
  /// offset monotonicity, id ranges, per-list sorted-unique order, and
  /// that both directions carry the same edge count (fatal check on any
  /// violation: a snapshot that passed its CRC but fails here is corrupt
  /// in a way checksums cannot see).
  static BipartiteGraph FromCsr(VertexId num_upper, VertexId num_lower,
                                std::vector<uint64_t> upper_offsets,
                                std::vector<VertexId> upper_adj,
                                std::vector<uint64_t> lower_offsets,
                                std::vector<VertexId> lower_adj);

  /// Approximate resident memory in bytes (CSR arrays only).
  uint64_t MemoryBytes() const;

  /// One-line description, e.g. "BipartiteGraph(|U|=3, |L|=4, m=6)".
  std::string ToString() const;

 private:
  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  // CSR from the upper layer: neighbors of upper vertex u are
  // upper_adj_[upper_offsets_[u] .. upper_offsets_[u+1]).
  std::vector<uint64_t> upper_offsets_;
  std::vector<VertexId> upper_adj_;
  // CSR from the lower layer.
  std::vector<uint64_t> lower_offsets_;
  std::vector<VertexId> lower_adj_;
};

/// In-place conversion of per-vertex counts into CSR offsets: on entry
/// `counts[v + 1]` holds the degree of vertex v and `counts[0]` is 0; on
/// exit `counts[v]` is the CSR offset of vertex v's adjacency. The one
/// definition of the prefix-sum every CSR build uses — 64-bit throughout,
/// so degree sums past 2³² (10⁸-edge graphs) cannot truncate
/// (tests/store/wide_index_test.cc exercises the boundary).
void CountsToOffsets(std::span<uint64_t> counts);

/// Counts the size of the intersection of two sorted id ranges.
uint64_t SortedIntersectionSize(std::span<const VertexId> a,
                                std::span<const VertexId> b);

/// Counts the size of the union of two sorted id ranges.
uint64_t SortedUnionSize(std::span<const VertexId> a,
                         std::span<const VertexId> b);

}  // namespace cne

#endif  // CNE_GRAPH_BIPARTITE_GRAPH_H_
