#include "graph/graph_builder.h"

#include <algorithm>

#include "util/logging.h"

namespace cne {

GraphBuilder::GraphBuilder(VertexId num_upper, VertexId num_lower)
    : fixed_(true), num_upper_(num_upper), num_lower_(num_lower) {}

GraphBuilder::GraphBuilder() = default;

GraphBuilder& GraphBuilder::AddEdge(VertexId upper, VertexId lower) {
  if (fixed_) {
    CNE_CHECK(upper < num_upper_ && lower < num_lower_)
        << "edge (" << upper << ", " << lower << ") outside fixed layers ("
        << num_upper_ << ", " << num_lower_ << ")";
  } else {
    CNE_CHECK(upper <= kMaxVertexId && lower <= kMaxVertexId)
        << "vertex id " << std::max(upper, lower)
        << " exceeds kMaxVertexId; layer-size discovery would wrap";
    num_upper_ = std::max(num_upper_, upper + 1);
    num_lower_ = std::max(num_lower_, lower + 1);
  }
  edges_.push_back({upper, lower});
  return *this;
}

GraphBuilder& GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  for (const Edge& e : edges) AddEdge(e.upper, e.lower);
  return *this;
}

BipartiteGraph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  BipartiteGraph graph(num_upper_, num_lower_, edges_);
  edges_.clear();
  if (!fixed_) {
    num_upper_ = 0;
    num_lower_ = 0;
  }
  return graph;
}

}  // namespace cne
