// AVX2 word kernels (see set_ops_kernels.h). This TU alone is compiled
// with -mavx2; nothing here may be called before the CPUID dispatch in
// util/cpu_features confirms AVX2 (WordKernelsFor enforces that).
//
// AVX2 has no vector popcount, so the 256-bit popcount is Mula's
// nibble-LUT algorithm: split each byte into two nibbles, look both up
// in a 16-entry per-lane vpshufb table of nibble popcounts, add, then
// horizontally sum bytes into 64-bit lanes with vpsadbw against zero.
// The u64 accumulator lanes cannot overflow: each vpsadbw result is
// ≤ 2048, far below 2^64 even over the largest graph domains.

#include "graph/set_ops_kernels.h"

#if CNE_HAVE_X86_SIMD

#include <immintrin.h>

#include <bit>

namespace cne {
namespace simd {

namespace {

// Per-byte popcount of v via two 16-entry nibble lookups.
inline __m256i PopcountBytes(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,  //
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

// Byte counts -> four u64 partial sums.
inline __m256i SumBytesToQwords(__m256i bytes) {
  return _mm256_sad_epu8(bytes, _mm256_setzero_si256());
}

inline uint64_t HorizontalSum(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<uint64_t>(_mm_extract_epi64(sum, 0)) +
         static_cast<uint64_t>(_mm_extract_epi64(sum, 1));
}

// Shared shape of the three kernels: combine four words at a time with
// `combine`, popcount, and fall back to scalar for the <4-word tail.
template <typename Combine, typename CombineScalar>
inline uint64_t Sweep(const uint64_t* a, const uint64_t* b, size_t n,
                      Combine combine, CombineScalar combine_scalar) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi64(acc, SumBytesToQwords(PopcountBytes(
                                    combine(va, vb))));
  }
  uint64_t total = HorizontalSum(acc);
  for (; i < n; ++i) {
    total += static_cast<uint64_t>(std::popcount(combine_scalar(a[i], b[i])));
  }
  return total;
}

}  // namespace

uint64_t AndPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  return Sweep(
      a, b, n, [](__m256i x, __m256i y) { return _mm256_and_si256(x, y); },
      [](uint64_t x, uint64_t y) { return x & y; });
}

uint64_t OrPopcountAvx2(const uint64_t* a, const uint64_t* b, size_t n) {
  return Sweep(
      a, b, n, [](__m256i x, __m256i y) { return _mm256_or_si256(x, y); },
      [](uint64_t x, uint64_t y) { return x | y; });
}

uint64_t PopcountAvx2(const uint64_t* w, size_t n) {
  return Sweep(
      w, w, n, [](__m256i x, __m256i) { return x; },
      [](uint64_t x, uint64_t) { return x; });
}

}  // namespace simd
}  // namespace cne

#endif  // CNE_HAVE_X86_SIMD
