// Walker alias method for O(1) sampling from a fixed discrete
// distribution. Shared by the in-memory Chung–Lu generators
// (generators.cc) and the streamed scale-harness generator
// (synthetic.cc); construction is a pure function of the weight vector,
// so two tables built from equal weights sample identically given equal
// RNG streams — the property the deterministic dataset cache relies on.

#ifndef CNE_GRAPH_ALIAS_TABLE_H_
#define CNE_GRAPH_ALIAS_TABLE_H_

#include <numeric>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace cne {

/// Alias table over weights[0..n): Sample() returns index i with
/// probability weights[i] / sum(weights) using one uniform integer and one
/// uniform double per draw.
class AliasTable {
 public:
  explicit AliasTable(const std::vector<double>& weights) {
    const size_t n = weights.size();
    CNE_CHECK(n > 0) << "alias table needs at least one weight";
    prob_.resize(n);
    alias_.resize(n);
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    CNE_CHECK(total > 0) << "alias table needs positive total weight";
    std::vector<double> scaled(n);
    for (size_t i = 0; i < n; ++i) {
      scaled[i] = weights[i] * static_cast<double>(n) / total;
    }
    std::vector<size_t> small, large;
    small.reserve(n);
    large.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      (scaled[i] < 1.0 ? small : large).push_back(i);
    }
    while (!small.empty() && !large.empty()) {
      const size_t s = small.back();
      small.pop_back();
      const size_t l = large.back();
      prob_[s] = scaled[s];
      alias_[s] = l;
      scaled[l] = (scaled[l] + scaled[s]) - 1.0;
      if (scaled[l] < 1.0) {
        large.pop_back();
        small.push_back(l);
      }
    }
    for (size_t l : large) {
      prob_[l] = 1.0;
      alias_[l] = l;
    }
    for (size_t s : small) {
      prob_[s] = 1.0;
      alias_[s] = s;
    }
  }

  size_t Sample(Rng& rng) const {
    const size_t i = rng.UniformInt(prob_.size());
    return rng.NextDouble() < prob_[i] ? i : alias_[i];
  }

 private:
  std::vector<double> prob_;
  std::vector<size_t> alias_;
};

}  // namespace cne

#endif  // CNE_GRAPH_ALIAS_TABLE_H_
