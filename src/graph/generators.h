// Synthetic bipartite graph generators.
//
// The evaluation harness cannot download the paper's 15 KONECT datasets in
// an offline environment, so `eval/datasets` builds power-law Chung–Lu
// analogs with matched vertex and edge counts using these generators (the
// substitution is documented in docs/ARCHITECTURE.md). The remaining
// generators exist for tests and examples.

#ifndef CNE_GRAPH_GENERATORS_H_
#define CNE_GRAPH_GENERATORS_H_

#include <vector>

#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// G(n1, n2, m): m distinct edges sampled uniformly from the n1 x n2 grid.
/// Requires m <= n1 * n2.
BipartiteGraph ErdosRenyiBipartite(VertexId num_upper, VertexId num_lower,
                                   uint64_t num_edges, Rng& rng);

/// Bipartite Chung–Lu model: vertex v is endpoint of an edge with
/// probability proportional to weights[v]; approximately `num_edges` edges
/// after deduplication. Weights follow a power law with the given exponent
/// (heavier tail for smaller exponents; typical social graphs are ~2.1).
BipartiteGraph ChungLuPowerLaw(VertexId num_upper, VertexId num_lower,
                               uint64_t num_edges, double exponent, Rng& rng);

/// Chung–Lu with explicit expected-degree weights per vertex.
BipartiteGraph ChungLuFromWeights(const std::vector<double>& upper_weights,
                                  const std::vector<double>& lower_weights,
                                  uint64_t num_edges, Rng& rng);

/// Complete bipartite graph K(n1, n2).
BipartiteGraph CompleteBipartite(VertexId num_upper, VertexId num_lower);

/// A star: one lower-layer hub connected to every upper vertex.
BipartiteGraph Star(VertexId num_upper);

/// Fixture for estimator tests: two lower-layer query vertices (ids 0, 1)
/// with exactly `common` shared upper neighbors, `only_u` neighbors
/// exclusive to vertex 0, `only_w` exclusive to vertex 1, and
/// `num_isolated_upper` extra upper vertices adjacent to neither. The upper
/// layer has common + only_u + only_w + num_isolated_upper vertices; the
/// lower layer has exactly the two query vertices plus `extra_lower`
/// vertices of degree 0.
BipartiteGraph PlantedCommonNeighbors(VertexId common, VertexId only_u,
                                      VertexId only_w,
                                      VertexId num_isolated_upper,
                                      VertexId extra_lower = 0);

/// Power-law weights w_i proportional to (i + 1)^(-1/(exponent - 1)),
/// normalized to sum to 1. Exposed for tests of the Chung–Lu generator.
std::vector<double> PowerLawWeights(VertexId n, double exponent);

}  // namespace cne

#endif  // CNE_GRAPH_GENERATORS_H_
