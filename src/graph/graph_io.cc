#include "graph/graph_io.h"

#include <cstdint>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/graph_builder.h"

namespace cne {

namespace {

constexpr uint64_t kBinaryMagic = 0x434e45475250481ULL;  // "CNEGRPH" + v1
constexpr uint32_t kBinaryVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ReadPod(std::istream& in) {
  T value;
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("truncated binary graph file");
  return value;
}

}  // namespace

BipartiteGraph ReadEdgeListStream(std::istream& in) {
  std::vector<std::pair<uint64_t, uint64_t>> raw;
  uint64_t min_upper = std::numeric_limits<uint64_t>::max();
  uint64_t min_lower = std::numeric_limits<uint64_t>::max();
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '%' || line[first] == '#') continue;
    std::istringstream ls(line);
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      throw std::runtime_error("malformed edge at line " +
                               std::to_string(lineno) + ": '" + line + "'");
    }
    raw.emplace_back(a, b);
    min_upper = std::min(min_upper, a);
    min_lower = std::min(min_lower, b);
  }
  GraphBuilder builder;
  if (!raw.empty()) {
    // Map 1-based ids to 0-based when no 0 id appears.
    const uint64_t upper_base = (min_upper >= 1) ? min_upper : 0;
    const uint64_t lower_base = (min_lower >= 1) ? min_lower : 0;
    for (const auto& [a, b] : raw) {
      builder.AddEdge(static_cast<VertexId>(a - upper_base),
                      static_cast<VertexId>(b - lower_base));
    }
  }
  return builder.Build();
}

BipartiteGraph ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return ReadEdgeListStream(in);
}

void WriteEdgeListStream(const BipartiteGraph& graph, std::ostream& out) {
  out << "% bipartite edge list: " << graph.ToString() << "\n";
  for (VertexId u = 0; u < graph.NumUpper(); ++u) {
    for (VertexId l : graph.Neighbors(Layer::kUpper, u)) {
      out << u << ' ' << l << '\n';
    }
  }
}

void WriteEdgeListFile(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  WriteEdgeListStream(graph, out);
}

void WriteBinaryFile(const BipartiteGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  WritePod(out, kBinaryMagic);
  WritePod(out, kBinaryVersion);
  WritePod(out, graph.NumUpper());
  WritePod(out, graph.NumLower());
  WritePod(out, graph.NumEdges());
  for (VertexId u = 0; u < graph.NumUpper(); ++u) {
    for (VertexId l : graph.Neighbors(Layer::kUpper, u)) {
      WritePod(out, u);
      WritePod(out, l);
    }
  }
  if (!out) throw std::runtime_error("write failed for " + path);
}

BipartiteGraph ReadBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  if (ReadPod<uint64_t>(in) != kBinaryMagic) {
    throw std::runtime_error(path + ": bad magic number");
  }
  if (ReadPod<uint32_t>(in) != kBinaryVersion) {
    throw std::runtime_error(path + ": unsupported version");
  }
  const VertexId num_upper = ReadPod<VertexId>(in);
  const VertexId num_lower = ReadPod<VertexId>(in);
  const uint64_t num_edges = ReadPod<uint64_t>(in);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    const VertexId u = ReadPod<VertexId>(in);
    const VertexId l = ReadPod<VertexId>(in);
    edges.push_back({u, l});
  }
  // Binary files are written in sorted order, so no re-sort is needed; the
  // BipartiteGraph constructor validates ranges.
  return BipartiteGraph(num_upper, num_lower, edges);
}

BipartiteGraph ReadGraphFile(const std::string& path) {
  return path.ends_with(".bin") ? ReadBinaryFile(path)
                                : ReadEdgeListFile(path);
}

}  // namespace cne
