// AVX-512 word kernels (see set_ops_kernels.h). This TU alone is
// compiled with -mavx512f -mavx512bw -mavx512vl -mavx512vpopcntdq;
// nothing here may be called before the CPUID dispatch in
// util/cpu_features confirms the whole tier (WordKernelsFor enforces
// that).
//
// The body is the natural form the instruction set was built for:
// vpandq/vporq + native vpopcntq (VPOPCNTDQ), eight words per
// iteration. The ragged tail — word counts not divisible by 8, i.e.
// domain % 512 != 0 — is handled with a masked zero-fill load
// (_mm512_maskz_loadu_epi64) instead of a scalar epilogue, so even a
// 1-word bitset takes the vector path and the parity tests cover the
// mask arithmetic.

#include "graph/set_ops_kernels.h"

#if CNE_HAVE_X86_SIMD

#include <immintrin.h>

namespace cne {
namespace simd {

namespace {

template <typename Combine>
inline uint64_t Sweep(const uint64_t* a, const uint64_t* b, size_t n,
                      Combine combine) {
  __m512i acc = _mm512_setzero_si512();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i va = _mm512_loadu_si512(a + i);
    const __m512i vb = _mm512_loadu_si512(b + i);
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(combine(va, vb)));
  }
  if (i < n) {
    const __mmask8 tail =
        static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512i va = _mm512_maskz_loadu_epi64(tail, a + i);
    const __m512i vb = _mm512_maskz_loadu_epi64(tail, b + i);
    // Zero-filled lanes contribute popcount 0 whatever `combine` is
    // (AND, OR, and identity all map 0,0 -> 0).
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(combine(va, vb)));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

}  // namespace

uint64_t AndPopcountAvx512(const uint64_t* a, const uint64_t* b, size_t n) {
  return Sweep(a, b, n,
               [](__m512i x, __m512i y) { return _mm512_and_si512(x, y); });
}

uint64_t OrPopcountAvx512(const uint64_t* a, const uint64_t* b, size_t n) {
  return Sweep(a, b, n,
               [](__m512i x, __m512i y) { return _mm512_or_si512(x, y); });
}

uint64_t PopcountAvx512(const uint64_t* w, size_t n) {
  return Sweep(w, w, n, [](__m512i x, __m512i) { return x; });
}

}  // namespace simd
}  // namespace cne

#endif  // CNE_HAVE_X86_SIMD
