// Calibrated kernel-choice cost model for the set-operation dispatcher.
//
// The old dispatcher picked kernels from hard-coded representation and
// size-ratio heuristics, and BENCH_intersect.json showed what that
// costs: dispatch_auto reached 54x over scalar where the best kernel
// per cell reaches 65x, with outright mispicks at mid density. This
// model replaces the heuristics with measured numbers.
//
// Every kernel's running time is (to first order) linear in a kernel-
// specific *work* count computable from the operand sizes alone:
//
//   scalar_merge  |a| + |b|              two-pointer sweep
//   galloping     s * (1 + log2(l/s+1))  s needles, log-cost lookups
//   bitmap_and    min(words_a, words_b)  word AND + popcount
//   probe_bitmap  |probes|               O(1) bitmap tests
//   bitmap_probe  words_s + |s|          skip-zero word AND (sparse side)
//
// What is NOT constant is the cost *per unit of work*: it moves with
// fixed call overhead at tiny sizes and with the cache level the
// operands stream from at large ones — and for the word kernels it
// moves with the active SIMD tier. So the table is per (ISA level,
// kernel, log2-work bucket): ns-per-unit measured by tools/cne_calibrate
// on a density x size grid and baked in as a checked-in default
// (set_ops_calibration.inc). The dispatcher predicts each applicable
// kernel's ns as ns_per_unit[kernel][bucket(work)] * work and runs the
// argmin; the ext_intersect bench records how far the pick lands from
// the best applicable kernel per grid cell.
//
// Regenerate the default table with:
//   build/tools/cne_calibrate --emit-inc > src/graph/set_ops_calibration.inc

#ifndef CNE_GRAPH_SET_OPS_COST_H_
#define CNE_GRAPH_SET_OPS_COST_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "util/cpu_features.h"

namespace cne {

/// The intersection kernels the calibrated chooser prices. (Union
/// kernels reuse the same unit costs: or+popcount has the same shape as
/// and+popcount, and the merge/galloping structure is shared.)
enum class SetKernel : int {
  kScalarMerge = 0,
  kGalloping = 1,
  kBitmapAnd = 2,
  kProbeBitmap = 3,
  kBitmapProbe = 4,
};

inline constexpr int kNumSetKernels = 5;

/// log2-work buckets: bucket b holds work in [2^(b-1), 2^b), bucket 0
/// holds work <= 1. 22 buckets cover work up to 2^21 (2M units — a
/// 128Mi-bit bitmap's word count); larger work clamps into the top
/// bucket, where cost-per-unit has flattened to DRAM bandwidth anyway.
inline constexpr int kNumWorkBuckets = 22;

/// ns-per-work-unit for each (kernel, bucket) at one ISA level.
struct KernelCostTable {
  double ns_per_unit[kNumSetKernels][kNumWorkBuckets];
};

inline int WorkBucket(uint64_t work) {
  const int b = std::bit_width(work);  // 0 for work == 0
  return b >= kNumWorkBuckets ? kNumWorkBuckets - 1 : b;
}

// ---- work counts (shared by the dispatcher and the calibration tool) ----

inline uint64_t MergeWork(uint64_t size_a, uint64_t size_b) {
  return size_a + size_b;
}

inline uint64_t GallopWork(uint64_t small, uint64_t large) {
  if (small == 0) return 1;
  if (large < small) {
    const uint64_t t = small;
    small = large;
    large = t;
  }
  return small * (1 + std::bit_width(large / small + 1));
}

inline uint64_t BitmapAndWork(size_t words_a, size_t words_b) {
  const size_t w = words_a < words_b ? words_a : words_b;
  return w == 0 ? 1 : w;
}

inline uint64_t ProbeWork(uint64_t probes) { return probes == 0 ? 1 : probes; }

inline uint64_t BitmapProbeWork(size_t sparse_words, uint64_t sparse_size) {
  const uint64_t w = sparse_words + sparse_size;
  return w == 0 ? 1 : w;
}

/// Predicted nanoseconds for running `kernel` over `work` units.
double PredictKernelNs(SetKernel kernel, uint64_t work,
                       const KernelCostTable& table);

/// The checked-in calibration for one ISA level (set_ops_calibration.inc).
const KernelCostTable& CostTableFor(SimdLevel level);

/// Table for the currently active level — what the dispatcher prices with.
inline const KernelCostTable& ActiveCostTable() {
  return CostTableFor(ActiveSimdLevel());
}

/// Canonical kernel name ("scalar_merge", "galloping", "bitmap_and",
/// "probe_bitmap", "bitmap_probe") — matches DispatchedKernelName and the
/// BENCH_intersect.json kernel rows.
const char* SetKernelName(SetKernel kernel);

}  // namespace cne

#endif  // CNE_GRAPH_SET_OPS_COST_H_
