#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "graph/alias_table.h"
#include "graph/graph_builder.h"
#include "util/logging.h"

namespace cne {

namespace {

uint64_t EdgeKey(VertexId upper, VertexId lower) {
  return (static_cast<uint64_t>(upper) << 32) | lower;
}

}  // namespace

BipartiteGraph ErdosRenyiBipartite(VertexId num_upper, VertexId num_lower,
                                   uint64_t num_edges, Rng& rng) {
  const uint64_t grid =
      static_cast<uint64_t>(num_upper) * static_cast<uint64_t>(num_lower);
  CNE_CHECK(num_edges <= grid)
      << "cannot place " << num_edges << " edges in a " << num_upper << "x"
      << num_lower << " grid";
  GraphBuilder builder(num_upper, num_lower);
  if (num_edges > grid / 2) {
    // Dense regime: Floyd sampling over the flattened grid.
    for (uint64_t cell : rng.SampleWithoutReplacement(grid, num_edges)) {
      builder.AddEdge(static_cast<VertexId>(cell / num_lower),
                      static_cast<VertexId>(cell % num_lower));
    }
  } else {
    // Sparse regime: rejection sampling of fresh cells.
    std::unordered_set<uint64_t> seen;
    seen.reserve(num_edges * 2);
    while (seen.size() < num_edges) {
      const VertexId u = static_cast<VertexId>(rng.UniformInt(num_upper));
      const VertexId l = static_cast<VertexId>(rng.UniformInt(num_lower));
      if (seen.insert(EdgeKey(u, l)).second) builder.AddEdge(u, l);
    }
  }
  return builder.Build();
}

std::vector<double> PowerLawWeights(VertexId n, double exponent) {
  CNE_CHECK(exponent > 1.0) << "power-law exponent must exceed 1";
  std::vector<double> weights(n);
  const double gamma = 1.0 / (exponent - 1.0);
  double total = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weights[i] = std::pow(static_cast<double>(i) + 1.0, -gamma);
    total += weights[i];
  }
  for (double& w : weights) w /= total;
  return weights;
}

BipartiteGraph ChungLuFromWeights(const std::vector<double>& upper_weights,
                                  const std::vector<double>& lower_weights,
                                  uint64_t num_edges, Rng& rng) {
  CNE_CHECK(!upper_weights.empty() && !lower_weights.empty());
  AliasTable upper_table(upper_weights);
  AliasTable lower_table(lower_weights);
  GraphBuilder builder(static_cast<VertexId>(upper_weights.size()),
                       static_cast<VertexId>(lower_weights.size()));
  std::unordered_set<uint64_t> seen;
  seen.reserve(num_edges * 2);
  // Draw until num_edges distinct pairs are found, but cap the attempts so
  // that adversarial weight vectors (e.g. a single hot pair) terminate.
  const uint64_t max_attempts = num_edges * 50 + 1000;
  uint64_t attempts = 0;
  while (seen.size() < num_edges && attempts < max_attempts) {
    ++attempts;
    const VertexId u = static_cast<VertexId>(upper_table.Sample(rng));
    const VertexId l = static_cast<VertexId>(lower_table.Sample(rng));
    if (seen.insert(EdgeKey(u, l)).second) builder.AddEdge(u, l);
  }
  if (seen.size() < num_edges) {
    CNE_LOG(kWarning) << "ChungLu: placed " << seen.size() << " of "
                      << num_edges << " requested edges (duplicate cap hit)";
  }
  return builder.Build();
}

BipartiteGraph ChungLuPowerLaw(VertexId num_upper, VertexId num_lower,
                               uint64_t num_edges, double exponent,
                               Rng& rng) {
  return ChungLuFromWeights(PowerLawWeights(num_upper, exponent),
                            PowerLawWeights(num_lower, exponent), num_edges,
                            rng);
}

BipartiteGraph CompleteBipartite(VertexId num_upper, VertexId num_lower) {
  GraphBuilder builder(num_upper, num_lower);
  for (VertexId u = 0; u < num_upper; ++u) {
    for (VertexId l = 0; l < num_lower; ++l) builder.AddEdge(u, l);
  }
  return builder.Build();
}

BipartiteGraph Star(VertexId num_upper) {
  GraphBuilder builder(num_upper, 1);
  for (VertexId u = 0; u < num_upper; ++u) builder.AddEdge(u, 0);
  return builder.Build();
}

BipartiteGraph PlantedCommonNeighbors(VertexId common, VertexId only_u,
                                      VertexId only_w,
                                      VertexId num_isolated_upper,
                                      VertexId extra_lower) {
  const VertexId num_upper = common + only_u + only_w + num_isolated_upper;
  const VertexId num_lower = 2 + extra_lower;
  GraphBuilder builder(std::max<VertexId>(num_upper, 1), num_lower);
  VertexId next = 0;
  for (VertexId i = 0; i < common; ++i, ++next) {
    builder.AddEdge(next, 0);
    builder.AddEdge(next, 1);
  }
  for (VertexId i = 0; i < only_u; ++i, ++next) builder.AddEdge(next, 0);
  for (VertexId i = 0; i < only_w; ++i, ++next) builder.AddEdge(next, 1);
  return builder.Build();
}

}  // namespace cne
