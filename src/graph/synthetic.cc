#include "graph/synthetic.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/generators.h"
#include "util/crc32.h"
#include "util/logging.h"

namespace cne {

namespace {

// Cache-file header, little-endian:
//   magic "CNEGEN01" (8 bytes) | cache_version u32 | num_upper u32 |
//   num_lower u32 | num_edges u64 | exponent_upper f64 |
//   exponent_lower f64 | seed u64 | draws_per_chunk u64
// followed by num_edges (upper u32, lower u32) pairs and a CRC-32 footer
// (u32) over the pair payload.
constexpr char kCacheMagic[8] = {'C', 'N', 'E', 'G', 'E', 'N', '0', '1'};
constexpr size_t kHeaderBytes = 8 + 4 + 4 + 4 + 8 + 8 + 8 + 8 + 8;
constexpr size_t kPairBytes = 8;
constexpr size_t kIoBufferPairs = 1 << 16;  // 512 KiB buffered IO

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixIn(uint64_t h, uint64_t v) { return SplitMix64(h ^ v); }

uint64_t DoubleBits(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void PutU32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

void PutU64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

void EncodeHeader(const SyntheticSpec& spec, uint8_t* out) {
  std::memcpy(out, kCacheMagic, 8);
  PutU32(out + 8, kSyntheticCacheVersion);
  PutU32(out + 12, spec.num_upper);
  PutU32(out + 16, spec.num_lower);
  PutU64(out + 20, spec.num_edges);
  PutU64(out + 28, DoubleBits(spec.exponent_upper));
  PutU64(out + 36, DoubleBits(spec.exponent_lower));
  PutU64(out + 44, spec.seed);
  PutU64(out + 52, kSyntheticDrawsPerChunk);
}

// True when `header` (kHeaderBytes long) matches `spec` bit for bit.
bool HeaderMatches(const SyntheticSpec& spec, const uint8_t* header) {
  uint8_t want[kHeaderBytes];
  EncodeHeader(spec, want);
  return std::memcmp(header, want, kHeaderBytes) == 0;
}

uint64_t ExpectedFileBytes(const SyntheticSpec& spec) {
  return kHeaderBytes + spec.num_edges * kPairBytes + 4;
}

}  // namespace

std::string SyntheticSpec::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "chung_lu(|U|=%u, |L|=%u, draws=%llu, exp=%.3g/%.3g, "
                "seed=%llu)",
                num_upper, num_lower,
                static_cast<unsigned long long>(num_edges), exponent_upper,
                exponent_lower, static_cast<unsigned long long>(seed));
  return buf;
}

SyntheticSpec ScaledShapeSpec(uint64_t base_upper, uint64_t base_lower,
                              uint64_t base_edges, uint64_t target_edges,
                              double exponent, uint64_t seed) {
  CNE_CHECK(base_upper > 0 && base_lower > 0 && base_edges > 0)
      << "scaling needs a non-degenerate base shape";
  const double ratio = static_cast<double>(target_edges) /
                       static_cast<double>(base_edges);
  const double vertex_scale = std::sqrt(ratio);
  SyntheticSpec spec;
  spec.num_upper = static_cast<VertexId>(std::max<uint64_t>(
      2, static_cast<uint64_t>(
             std::llround(static_cast<double>(base_upper) * vertex_scale))));
  spec.num_lower = static_cast<VertexId>(std::max<uint64_t>(
      2, static_cast<uint64_t>(
             std::llround(static_cast<double>(base_lower) * vertex_scale))));
  spec.num_edges = target_edges;
  spec.exponent_upper = exponent;
  spec.exponent_lower = exponent;
  spec.seed = seed;
  return spec;
}

uint64_t SyntheticCacheKey(const SyntheticSpec& spec) {
  uint64_t h = MixIn(0x636e655f67656eULL, kSyntheticCacheVersion);
  h = MixIn(h, spec.num_upper);
  h = MixIn(h, spec.num_lower);
  h = MixIn(h, spec.num_edges);
  h = MixIn(h, DoubleBits(spec.exponent_upper));
  h = MixIn(h, DoubleBits(spec.exponent_lower));
  h = MixIn(h, spec.seed);
  h = MixIn(h, kSyntheticDrawsPerChunk);
  return h;
}

std::string SyntheticCacheFileName(const SyntheticSpec& spec) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "cne_gen_%016llx.edges",
                static_cast<unsigned long long>(SyntheticCacheKey(spec)));
  return buf;
}

std::string DefaultSyntheticCacheDir() {
  if (const char* env = std::getenv("CNE_DATASET_CACHE");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".cne-cache";
}

SyntheticSampler::SyntheticSampler(const SyntheticSpec& spec)
    : spec_(spec),
      upper_table_(PowerLawWeights(spec.num_upper, spec.exponent_upper)),
      lower_table_(PowerLawWeights(spec.num_lower, spec.exponent_lower)) {
  CNE_CHECK(spec.num_upper > 0 && spec.num_lower > 0)
      << "synthetic graph needs non-empty layers";
}

uint64_t SyntheticSampler::NumChunks() const {
  return (spec_.num_edges + kSyntheticDrawsPerChunk - 1) /
         kSyntheticDrawsPerChunk;
}

void SyntheticSampler::EmitChunk(
    uint64_t chunk,
    const std::function<void(VertexId, VertexId)>& emit) const {
  const uint64_t first = chunk * kSyntheticDrawsPerChunk;
  CNE_CHECK(first < spec_.num_edges) << "chunk " << chunk << " out of range";
  const uint64_t count =
      std::min(kSyntheticDrawsPerChunk, spec_.num_edges - first);
  // The chunk substream depends only on (seed, chunk index), never on
  // which chunks were emitted before — the whole determinism story.
  Rng rng = Rng(spec_.seed).Fork(chunk);
  for (uint64_t i = 0; i < count; ++i) {
    const VertexId u = static_cast<VertexId>(upper_table_.Sample(rng));
    const VertexId l = static_cast<VertexId>(lower_table_.Sample(rng));
    emit(u, l);
  }
}

void SyntheticSampler::EmitAll(
    const std::function<void(VertexId, VertexId)>& emit) const {
  const uint64_t chunks = NumChunks();
  for (uint64_t c = 0; c < chunks; ++c) EmitChunk(c, emit);
}

EdgeCacheEntry EnsureEdgeCache(const SyntheticSpec& spec,
                               const std::string& cache_dir) {
  namespace fs = std::filesystem;
  const fs::path dir =
      cache_dir.empty() ? fs::path(DefaultSyntheticCacheDir())
                        : fs::path(cache_dir);
  fs::create_directories(dir);
  const fs::path path = dir / SyntheticCacheFileName(spec);

  EdgeCacheEntry entry;
  entry.path = path.string();

  // A hit needs a bit-exact header and the exact expected length; the
  // payload CRC footer is verified by every ForEachCachedEdge scan.
  std::error_code ec;
  if (fs::file_size(path, ec) == ExpectedFileBytes(spec) && !ec) {
    std::ifstream in(path, std::ios::binary);
    uint8_t header[kHeaderBytes];
    if (in.read(reinterpret_cast<char*>(header), kHeaderBytes) &&
        HeaderMatches(spec, header)) {
      entry.file_bytes = ExpectedFileBytes(spec);
      return entry;
    }
  }

  // Miss (or corrupt/mismatched entry): regenerate atomically.
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("cannot open " + tmp.string() +
                               " for writing");
    }
    uint8_t header[kHeaderBytes];
    EncodeHeader(spec, header);
    out.write(reinterpret_cast<const char*>(header), kHeaderBytes);

    const SyntheticSampler sampler(spec);
    std::vector<uint8_t> buffer(kIoBufferPairs * kPairBytes);
    size_t filled = 0;
    uint32_t crc = 0;
    const auto flush = [&] {
      crc = Crc32(buffer.data(), filled, crc);
      out.write(reinterpret_cast<const char*>(buffer.data()),
                static_cast<std::streamsize>(filled));
      filled = 0;
    };
    sampler.EmitAll([&](VertexId u, VertexId l) {
      PutU32(buffer.data() + filled, u);
      PutU32(buffer.data() + filled + 4, l);
      filled += kPairBytes;
      if (filled == buffer.size()) flush();
    });
    if (filled > 0) flush();
    uint8_t footer[4];
    PutU32(footer, crc);
    out.write(reinterpret_cast<const char*>(footer), 4);
    if (!out) throw std::runtime_error("write failed for " + tmp.string());
  }
  fs::rename(tmp, path);
  entry.generated = true;
  entry.file_bytes = ExpectedFileBytes(spec);
  return entry;
}

void ForEachCachedEdge(const std::string& path, const SyntheticSpec& spec,
                       const std::function<void(VertexId, VertexId)>& emit) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open edge cache " + path);
  uint8_t header[kHeaderBytes];
  if (!in.read(reinterpret_cast<char*>(header), kHeaderBytes)) {
    throw std::runtime_error(path + ": truncated edge-cache header");
  }
  if (std::memcmp(header, kCacheMagic, 8) != 0) {
    throw std::runtime_error(path + ": bad edge-cache magic");
  }
  if (!HeaderMatches(spec, header)) {
    throw std::runtime_error(path + ": edge-cache header does not match " +
                             spec.Describe());
  }

  std::vector<uint8_t> buffer(kIoBufferPairs * kPairBytes);
  uint64_t remaining = spec.num_edges;
  uint32_t crc = 0;
  while (remaining > 0) {
    const uint64_t batch = std::min<uint64_t>(remaining, kIoBufferPairs);
    const size_t bytes = static_cast<size_t>(batch) * kPairBytes;
    if (!in.read(reinterpret_cast<char*>(buffer.data()),
                 static_cast<std::streamsize>(bytes))) {
      throw std::runtime_error(path + ": truncated edge-cache payload");
    }
    crc = Crc32(buffer.data(), bytes, crc);
    for (size_t i = 0; i < bytes; i += kPairBytes) {
      emit(GetU32(buffer.data() + i), GetU32(buffer.data() + i + 4));
    }
    remaining -= batch;
  }
  uint8_t footer[4];
  if (!in.read(reinterpret_cast<char*>(footer), 4)) {
    throw std::runtime_error(path + ": missing edge-cache CRC footer");
  }
  if (GetU32(footer) != crc) {
    throw std::runtime_error(path + ": edge-cache CRC mismatch");
  }
}

BipartiteGraph BuildSyntheticGraph(const SyntheticSpec& spec,
                                   const std::string& cache_dir,
                                   EdgeCacheEntry* out_entry) {
  const EdgeCacheEntry entry = EnsureEdgeCache(spec, cache_dir);
  if (out_entry != nullptr) *out_entry = entry;
  return BipartiteGraph::FromEdgeStream(
      spec.num_upper, spec.num_lower,
      [&](const std::function<void(VertexId, VertexId)>& emit) {
        ForEachCachedEdge(entry.path, spec, emit);
      });
}

}  // namespace cne
