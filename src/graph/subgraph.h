// Vertex-sampled induced subgraphs, used by the Fig. 11 scalability
// experiment (the paper runs every algorithm on subgraphs induced by 20%,
// 40%, ..., 100% of the vertices).

#ifndef CNE_GRAPH_SUBGRAPH_H_
#define CNE_GRAPH_SUBGRAPH_H_

#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Samples `fraction` of the vertices in each layer uniformly at random and
/// returns the induced subgraph with vertices re-labeled compactly
/// (preserving relative order). fraction must lie in (0, 1].
BipartiteGraph InducedSubgraphByVertexFraction(const BipartiteGraph& graph,
                                               double fraction, Rng& rng);

/// Returns the subgraph induced by explicit per-layer keep-lists (sorted,
/// deduplicated internally). Vertices are re-labeled compactly in the order
/// of the sorted keep-lists.
BipartiteGraph InducedSubgraph(const BipartiteGraph& graph,
                               std::vector<VertexId> keep_upper,
                               std::vector<VertexId> keep_lower);

}  // namespace cne

#endif  // CNE_GRAPH_SUBGRAPH_H_
