// Mutable edge accumulator that produces an immutable BipartiteGraph.
// Handles unsorted input, duplicate edges, and automatic vertex-count
// discovery.

#ifndef CNE_GRAPH_GRAPH_BUILDER_H_
#define CNE_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/bipartite_graph.h"

namespace cne {

/// Accumulates edges and builds a BipartiteGraph. Edges may be added in any
/// order and duplicates are removed at Build() time.
class GraphBuilder {
 public:
  /// Creates a builder with fixed layer sizes. Edges referencing vertices
  /// outside the layers are rejected with a fatal check.
  GraphBuilder(VertexId num_upper, VertexId num_lower);

  /// Creates a builder that grows layer sizes to fit the added edges.
  GraphBuilder();

  /// Adds the edge (upper, lower).
  GraphBuilder& AddEdge(VertexId upper, VertexId lower);

  /// Adds all edges in the list.
  GraphBuilder& AddEdges(const std::vector<Edge>& edges);

  /// Number of edges accumulated so far (before dedup).
  size_t PendingEdges() const { return edges_.size(); }

  /// Sorts, deduplicates, and produces the graph. The builder is left empty
  /// and reusable afterwards.
  BipartiteGraph Build();

 private:
  bool fixed_ = false;
  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace cne

#endif  // CNE_GRAPH_GRAPH_BUILDER_H_
