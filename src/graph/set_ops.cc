#include "graph/set_ops.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/logging.h"

namespace cne {

DenseBitset DenseBitset::FromWords(std::vector<uint64_t> words,
                                   VertexId num_bits) {
  CNE_CHECK(words.size() == (static_cast<size_t>(num_bits) + 63) / 64)
      << "word count " << words.size() << " does not match " << num_bits
      << " bits";
  if (num_bits % 64 != 0 && !words.empty()) {
    const uint64_t tail_mask = (uint64_t{1} << (num_bits % 64)) - 1;
    CNE_CHECK((words.back() & ~tail_mask) == 0)
        << "bits set beyond the domain in the trailing word";
  }
  DenseBitset bits;
  bits.words_ = std::move(words);
  bits.num_bits_ = num_bits;
  return bits;
}

uint64_t DenseBitset::Count() const {
  uint64_t count = 0;
  for (uint64_t word : words_) count += std::popcount(word);
  return count;
}

std::vector<VertexId> DenseBitset::ToSortedVector(size_t hint) const {
  std::vector<VertexId> out;
  out.reserve(hint);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<VertexId>(w * 64 + bit));
      word &= word - 1;  // clear lowest set bit
    }
  }
  return out;
}

uint64_t IntersectScalarMerge(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t IntersectGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  uint64_t count = 0;
  // For each needle, gallop from the current cursor: double the step until
  // overshooting, then binary-search the bracketed window. Needles are
  // sorted, so the cursor only moves forward and the total cost is
  // O(|a| log(|b|/|a|)).
  size_t lo = 0;
  for (VertexId x : a) {
    size_t step = 1;
    size_t hi = lo;
    while (hi < b.size() && b[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, b.size());
    const auto it = std::lower_bound(b.begin() + lo, b.begin() + hi, x);
    lo = static_cast<size_t>(it - b.begin());
    if (lo == b.size()) break;
    if (b[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

uint64_t IntersectBitmapAnd(const DenseBitset& a, const DenseBitset& b) {
  const std::span<const uint64_t> wa = a.Words();
  const std::span<const uint64_t> wb = b.Words();
  const size_t n = std::min(wa.size(), wb.size());
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += std::popcount(wa[i] & wb[i]);
  }
  return count;
}

uint64_t IntersectProbeBitmap(std::span<const VertexId> probes,
                              const DenseBitset& bits) {
  uint64_t count = 0;
  for (VertexId v : probes) {
    if (v < bits.NumBits() && bits.Test(v)) ++count;
  }
  return count;
}

uint64_t IntersectionSize(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) {
    return IntersectBitmapAnd(a.bitmap(), b.bitmap());
  }
  if (a.IsBitmap()) return IntersectProbeBitmap(b.sorted(), a.bitmap());
  if (b.IsBitmap()) return IntersectProbeBitmap(a.sorted(), b.bitmap());
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  if (large / (small + 1) >= kGallopRatio) {
    return IntersectGalloping(a.sorted(), b.sorted());
  }
  return IntersectScalarMerge(a.sorted(), b.sorted());
}

void BatchIntersectionSize(const SetView& base,
                           std::span<const SetView> candidates,
                           std::span<uint64_t> out) {
  if (base.IsBitmap()) {
    const DenseBitset& bits = base.bitmap();
    for (size_t i = 0; i < candidates.size(); ++i) {
      const SetView& c = candidates[i];
      out[i] = c.IsBitmap() ? IntersectBitmapAnd(bits, c.bitmap())
                            : IntersectProbeBitmap(c.sorted(), bits);
    }
    return;
  }
  const std::span<const VertexId> ids = base.sorted();
  for (size_t i = 0; i < candidates.size(); ++i) {
    const SetView& c = candidates[i];
    if (c.IsBitmap()) {
      out[i] = IntersectProbeBitmap(ids, c.bitmap());
      continue;
    }
    // Sorted × sorted falls back to the per-pair dispatcher so the
    // galloping/merge choice — and therefore the count's cost profile —
    // matches the unbatched path exactly.
    out[i] = IntersectionSize(base, c);
  }
}

const char* DispatchedKernelName(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) return "bitmap_and";
  if (a.IsBitmap() || b.IsBitmap()) return "probe_bitmap";
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  return large / (small + 1) >= kGallopRatio ? "galloping" : "scalar_merge";
}

uint64_t UnionScalarMerge(std::span<const VertexId> a,
                          std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    ++count;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return count + (a.size() - i) + (b.size() - j);
}

uint64_t UnionBitmapOr(const DenseBitset& a, const DenseBitset& b) {
  const std::span<const uint64_t> wa = a.Words();
  const std::span<const uint64_t> wb = b.Words();
  const std::span<const uint64_t> longer = wa.size() >= wb.size() ? wa : wb;
  const size_t n = std::min(wa.size(), wb.size());
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += std::popcount(wa[i] | wb[i]);
  }
  for (size_t i = n; i < longer.size(); ++i) {
    count += std::popcount(longer[i]);
  }
  return count;
}

uint64_t UnionSize(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) {
    return UnionBitmapOr(a.bitmap(), b.bitmap());
  }
  if (a.IsBitmap() || b.IsBitmap()) {
    return a.Size() + b.Size() - IntersectionSize(a, b);
  }
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  if (large / (small + 1) >= kGallopRatio) {
    // Skewed sorted × sorted: inclusion–exclusion over the galloping
    // intersection beats merging the large operand element by element.
    return a.Size() + b.Size() - IntersectGalloping(a.sorted(), b.sorted());
  }
  return UnionScalarMerge(a.sorted(), b.sorted());
}

const char* DispatchedUnionKernelName(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) return "bitmap_or";
  if (a.IsBitmap() || b.IsBitmap()) return "probe_complement";
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  return large / (small + 1) >= kGallopRatio ? "gallop_complement"
                                             : "scalar_merge";
}

}  // namespace cne
