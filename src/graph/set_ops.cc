#include "graph/set_ops.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "graph/set_ops_cost.h"
#include "graph/set_ops_kernels.h"
#include "util/logging.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <xmmintrin.h>
#endif

namespace cne {

namespace simd {

uint64_t AndPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] & b[i]));
  }
  return count;
}

uint64_t OrPopcountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(a[i] | b[i]));
  }
  return count;
}

uint64_t PopcountScalar(const uint64_t* w, size_t n) {
  uint64_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<uint64_t>(std::popcount(w[i]));
  }
  return count;
}

const WordKernels& WordKernelsFor(SimdLevel level) {
  static constexpr WordKernels kScalarKernels = {
      &AndPopcountScalar, &OrPopcountScalar, &PopcountScalar};
#if CNE_HAVE_X86_SIMD
  static constexpr WordKernels kAvx2Kernels = {
      &AndPopcountAvx2, &OrPopcountAvx2, &PopcountAvx2};
  static constexpr WordKernels kAvx512Kernels = {
      &AndPopcountAvx512, &OrPopcountAvx512, &PopcountAvx512};
  switch (level) {
    case SimdLevel::kAvx512:
      return kAvx512Kernels;
    case SimdLevel::kAvx2:
      return kAvx2Kernels;
    case SimdLevel::kScalar:
      break;
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

}  // namespace simd

// ---- calibrated cost model ----

namespace {
#include "graph/set_ops_calibration.inc"
}  // namespace

const KernelCostTable& CostTableFor(SimdLevel level) {
  return kDefaultCostTables[static_cast<int>(level)];
}

double PredictKernelNs(SetKernel kernel, uint64_t work,
                       const KernelCostTable& table) {
  const double per_unit =
      table.ns_per_unit[static_cast<int>(kernel)][WorkBucket(work)];
  return per_unit * static_cast<double>(work);
}

const char* SetKernelName(SetKernel kernel) {
  switch (kernel) {
    case SetKernel::kScalarMerge:
      return "scalar_merge";
    case SetKernel::kGalloping:
      return "galloping";
    case SetKernel::kBitmapAnd:
      return "bitmap_and";
    case SetKernel::kProbeBitmap:
      return "probe_bitmap";
    case SetKernel::kBitmapProbe:
      return "bitmap_probe";
  }
  return "unknown";
}

namespace {

// The chooser shared by IntersectionSize and DispatchedKernelName: the
// operand representations fix the applicable kernels, the calibrated
// table prices them, argmin wins. Falls back to the pre-calibration
// kGallopRatio rule if a table entry is unusable (<= 0).
SetKernel ChooseIntersectKernel(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) {
    const size_t words_a = a.bitmap().Words().size();
    const size_t words_b = b.bitmap().Words().size();
    const KernelCostTable& table = ActiveCostTable();
    const uint64_t and_work = BitmapAndWork(words_a, words_b);
    // The skip-zero probe walks the lower-popcount operand's words.
    const bool a_sparse = a.Size() <= b.Size();
    const uint64_t probe_work = BitmapProbeWork(
        a_sparse ? words_a : words_b, a_sparse ? a.Size() : b.Size());
    const double and_ns = PredictKernelNs(SetKernel::kBitmapAnd, and_work,
                                          table);
    const double probe_ns = PredictKernelNs(SetKernel::kBitmapProbe,
                                            probe_work, table);
    if (and_ns <= 0 || probe_ns <= 0) return SetKernel::kBitmapAnd;
    return probe_ns < and_ns ? SetKernel::kBitmapProbe : SetKernel::kBitmapAnd;
  }
  if (a.IsBitmap() || b.IsBitmap()) return SetKernel::kProbeBitmap;
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  const KernelCostTable& table = ActiveCostTable();
  const double merge_ns = PredictKernelNs(SetKernel::kScalarMerge,
                                          MergeWork(small, large), table);
  const double gallop_ns = PredictKernelNs(SetKernel::kGalloping,
                                           GallopWork(small, large), table);
  if (merge_ns <= 0 || gallop_ns <= 0) {
    return large / (small + 1) >= kGallopRatio ? SetKernel::kGalloping
                                               : SetKernel::kScalarMerge;
  }
  return gallop_ns < merge_ns ? SetKernel::kGalloping
                              : SetKernel::kScalarMerge;
}

inline void PrefetchLine(const void* p) {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_prefetch(static_cast<const char*>(p), _MM_HINT_T0);
#else
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#endif
}

// How many candidates ahead of the current one BatchIntersectionSize
// prefetches. Far enough to cover a DRAM miss (~100ns) at typical
// per-candidate kernel times, near enough not to thrash L1.
constexpr size_t kBatchPrefetchDistance = 8;

}  // namespace

void PrefetchSetView(const SetView& view) {
  if (view.IsBitmap()) {
    const std::span<const uint64_t> words = view.bitmap().Words();
    if (!words.empty()) {
      PrefetchLine(words.data());
      // Second line too: the first vector iteration of a 512-bit kernel
      // consumes a full 64-byte line, and most bitmaps span many lines.
      if (words.size() > 8) PrefetchLine(words.data() + 8);
    }
    return;
  }
  const std::span<const VertexId> ids = view.sorted();
  if (!ids.empty()) PrefetchLine(ids.data());
}

DenseBitset DenseBitset::FromWords(std::vector<uint64_t> words,
                                   VertexId num_bits) {
  CNE_CHECK(words.size() == (static_cast<size_t>(num_bits) + 63) / 64)
      << "word count " << words.size() << " does not match " << num_bits
      << " bits";
  if (num_bits % 64 != 0 && !words.empty()) {
    const uint64_t tail_mask = (uint64_t{1} << (num_bits % 64)) - 1;
    CNE_CHECK((words.back() & ~tail_mask) == 0)
        << "bits set beyond the domain in the trailing word";
  }
  DenseBitset bits;
  // Copy into the 64-byte-aligned storage; snapshot records deserialize
  // into a plain vector, which cannot be moved across allocators.
  bits.words_.assign(words.begin(), words.end());
  bits.num_bits_ = num_bits;
  return bits;
}

uint64_t DenseBitset::Count() const {
  return simd::ActiveWordKernels().popcount(words_.data(), words_.size());
}

std::vector<VertexId> DenseBitset::ToSortedVector(size_t hint) const {
  std::vector<VertexId> out;
  out.reserve(hint);
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = std::countr_zero(word);
      out.push_back(static_cast<VertexId>(w * 64 + bit));
      word &= word - 1;  // clear lowest set bit
    }
  }
  return out;
}

uint64_t IntersectScalarMerge(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

uint64_t IntersectGalloping(std::span<const VertexId> a,
                            std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  uint64_t count = 0;
  // For each needle, gallop from the current cursor: double the step until
  // overshooting, then binary-search the bracketed window. Needles are
  // sorted, so the cursor only moves forward and the total cost is
  // O(|a| log(|b|/|a|)).
  size_t lo = 0;
  for (VertexId x : a) {
    size_t step = 1;
    size_t hi = lo;
    while (hi < b.size() && b[hi] < x) {
      lo = hi + 1;
      hi += step;
      step <<= 1;
    }
    hi = std::min(hi, b.size());
    const auto it = std::lower_bound(b.begin() + lo, b.begin() + hi, x);
    lo = static_cast<size_t>(it - b.begin());
    if (lo == b.size()) break;
    if (b[lo] == x) {
      ++count;
      ++lo;
    }
  }
  return count;
}

uint64_t IntersectBitmapAnd(const DenseBitset& a, const DenseBitset& b) {
  const std::span<const uint64_t> wa = a.Words();
  const std::span<const uint64_t> wb = b.Words();
  const size_t n = std::min(wa.size(), wb.size());
  return simd::ActiveWordKernels().and_popcount(wa.data(), wb.data(), n);
}

uint64_t IntersectBitmapProbe(const DenseBitset& sparse,
                              const DenseBitset& dense) {
  const std::span<const uint64_t> ws = sparse.Words();
  const std::span<const uint64_t> wd = dense.Words();
  const size_t n = std::min(ws.size(), wd.size());
  uint64_t count = 0;
  // Deliberately scalar: the win over the vector AND is skipping the
  // dense-side load on every zero word of the sparse side, which a
  // branchless vector sweep cannot do.
  for (size_t i = 0; i < n; ++i) {
    const uint64_t w = ws[i];
    if (w == 0) continue;
    count += static_cast<uint64_t>(std::popcount(w & wd[i]));
  }
  return count;
}

uint64_t IntersectProbeBitmap(std::span<const VertexId> probes,
                              const DenseBitset& bits) {
  uint64_t count = 0;
  for (VertexId v : probes) {
    if (v < bits.NumBits() && bits.Test(v)) ++count;
  }
  return count;
}

uint64_t IntersectionSize(const SetView& a, const SetView& b) {
  switch (ChooseIntersectKernel(a, b)) {
    case SetKernel::kBitmapAnd:
      return IntersectBitmapAnd(a.bitmap(), b.bitmap());
    case SetKernel::kBitmapProbe:
      return a.Size() <= b.Size()
                 ? IntersectBitmapProbe(a.bitmap(), b.bitmap())
                 : IntersectBitmapProbe(b.bitmap(), a.bitmap());
    case SetKernel::kProbeBitmap:
      return a.IsBitmap() ? IntersectProbeBitmap(b.sorted(), a.bitmap())
                          : IntersectProbeBitmap(a.sorted(), b.bitmap());
    case SetKernel::kGalloping:
      return IntersectGalloping(a.sorted(), b.sorted());
    case SetKernel::kScalarMerge:
      break;
  }
  return IntersectScalarMerge(a.sorted(), b.sorted());
}

void BatchIntersectionSize(const SetView& base,
                           std::span<const SetView> candidates,
                           std::span<uint64_t> out) {
  CNE_CHECK(out.size() == candidates.size())
      << "output size " << out.size() << " does not match "
      << candidates.size() << " candidates";
  if (base.IsBitmap()) {
    const DenseBitset& bits = base.bitmap();
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (i + kBatchPrefetchDistance < candidates.size()) {
        PrefetchSetView(candidates[i + kBatchPrefetchDistance]);
      }
      const SetView& c = candidates[i];
      // Bitmap × bitmap goes through the calibrated chooser (bitmap_and
      // vs the skip-zero probe); sorted candidates always probe.
      out[i] = c.IsBitmap() ? IntersectionSize(base, c)
                            : IntersectProbeBitmap(c.sorted(), bits);
    }
    return;
  }
  const std::span<const VertexId> ids = base.sorted();
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + kBatchPrefetchDistance < candidates.size()) {
      PrefetchSetView(candidates[i + kBatchPrefetchDistance]);
    }
    const SetView& c = candidates[i];
    if (c.IsBitmap()) {
      out[i] = IntersectProbeBitmap(ids, c.bitmap());
      continue;
    }
    // Sorted × sorted falls back to the per-pair dispatcher so the
    // galloping/merge choice — and therefore the count's cost profile —
    // matches the unbatched path exactly.
    out[i] = IntersectionSize(base, c);
  }
}

const char* DispatchedKernelName(const SetView& a, const SetView& b) {
  return SetKernelName(ChooseIntersectKernel(a, b));
}

uint64_t UnionScalarMerge(std::span<const VertexId> a,
                          std::span<const VertexId> b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    ++count;
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return count + (a.size() - i) + (b.size() - j);
}

uint64_t UnionBitmapOr(const DenseBitset& a, const DenseBitset& b) {
  const std::span<const uint64_t> wa = a.Words();
  const std::span<const uint64_t> wb = b.Words();
  const std::span<const uint64_t> longer = wa.size() >= wb.size() ? wa : wb;
  const size_t n = std::min(wa.size(), wb.size());
  const simd::WordKernels& kernels = simd::ActiveWordKernels();
  return kernels.or_popcount(wa.data(), wb.data(), n) +
         kernels.popcount(longer.data() + n, longer.size() - n);
}

uint64_t UnionSize(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) {
    return UnionBitmapOr(a.bitmap(), b.bitmap());
  }
  if (a.IsBitmap() || b.IsBitmap()) {
    return a.Size() + b.Size() - IntersectionSize(a, b);
  }
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  if (large / (small + 1) >= kGallopRatio) {
    // Skewed sorted × sorted: inclusion–exclusion over the galloping
    // intersection beats merging the large operand element by element.
    return a.Size() + b.Size() - IntersectGalloping(a.sorted(), b.sorted());
  }
  return UnionScalarMerge(a.sorted(), b.sorted());
}

const char* DispatchedUnionKernelName(const SetView& a, const SetView& b) {
  if (a.IsBitmap() && b.IsBitmap()) return "bitmap_or";
  if (a.IsBitmap() || b.IsBitmap()) return "probe_complement";
  const uint64_t small = std::min(a.Size(), b.Size());
  const uint64_t large = std::max(a.Size(), b.Size());
  return large / (small + 1) >= kGallopRatio ? "gallop_complement"
                                             : "scalar_merge";
}

}  // namespace cne
