// Butterfly ((2,2)-biclique) counting — exact and under edge LDP.
//
// The paper positions common-neighborhood estimation as "the first step in
// addressing other problems under edge LDP, such as (p,q)-biclique
// counting". This module builds that step: the number of butterflies is
//
//   B = Σ_{u < w same layer} C(C2(u, w), 2),
//
// so an unbiased per-pair estimator of C(C2, 2), averaged over sampled
// pairs and scaled by the total number of pairs, estimates B. A single
// unbiased estimate f of C2 cannot produce an unbiased f² (it is inflated
// by Var(f)); instead each sampled pair runs the C2 protocol TWICE with
// budget ε/2 each (sequential composition keeps the total at ε). The two
// runs f1, f2 are independent and unbiased, so
//
//   E[f1·f2] = C2²  and  Ĉ(C2,2) = (f1·f2 − (f1+f2)/2) / 2
//
// is unbiased for C(C2, 2) with no knowledge of the estimator's variance.
//
// Also provides exact wedge/caterpillar counts and the bipartite global
// clustering coefficient 4B / W from the intro's motivating tasks.

#ifndef CNE_APPS_BUTTERFLY_H_
#define CNE_APPS_BUTTERFLY_H_

#include <cstdint>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Exact butterfly count of the graph. Enumerates wedges centered on the
/// layer whose wedge count is smaller; O(Σ_v deg(v)²) time.
uint64_t ExactButterflies(const BipartiteGraph& graph);

/// Exact number of wedges (paths of length 2) centered on vertices of
/// `center_layer`: Σ_v C(deg(v), 2).
uint64_t ExactWedges(const BipartiteGraph& graph, Layer center_layer);

/// Exact number of caterpillars (paths of length 3):
/// Σ_{(u,l) ∈ E} (deg(u) - 1)(deg(l) - 1).
uint64_t ExactCaterpillars(const BipartiteGraph& graph);

/// Bipartite global clustering coefficient 4B / W (W = caterpillars);
/// 0 when the graph has no caterpillars.
double BipartiteClusteringCoefficient(const BipartiteGraph& graph);

/// Result of a private butterfly estimate.
struct ButterflyEstimate {
  double butterflies = 0.0;       ///< estimated B
  size_t sampled_pairs = 0;       ///< pairs whose C2 protocol ran
  double epsilon_per_run = 0.0;   ///< budget of each of the two runs
};

/// Estimates the butterfly count under edge LDP: samples `num_pairs`
/// uniform same-layer pairs on `layer`, runs `estimator` twice per pair at
/// ε/2, de-biases the product, and scales the mean contribution by the
/// C(n, 2) total pairs. Requires an unbiased estimator (checked).
ButterflyEstimate EstimateButterflies(
    const BipartiteGraph& graph, Layer layer,
    const CommonNeighborEstimator& estimator, double epsilon,
    size_t num_pairs, Rng& rng);

}  // namespace cne

#endif  // CNE_APPS_BUTTERFLY_H_
