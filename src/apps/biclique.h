// (p,q)-biclique counting — exact counters with common-neighbor pruning
// and private estimation of K_{2,q} counts under edge LDP.
//
// The paper motivates common-neighborhood estimation as the pruning
// primitive for (p,q)-biclique counting and names private biclique
// counting as the follow-up problem. This module delivers both sides:
//
//  * Exact counts. K_{p,q} with the smaller side p on `layer`:
//      K_{2,q} = Σ_{u<w}           C(C2(u,w), q)
//      K_{3,q} = Σ_{u<w<x}         C(|N(u)∩N(w)∩N(x)|, q)
//    enumerated with exactly the pruning the paper describes: a pair
//    (triple) is expanded only while its running common-neighbor count
//    can still reach q.
//
//  * Private K_{2,q} estimation for q ∈ {1, 2, 3}. C(x, q) is a degree-q
//    polynomial in x, so q independent unbiased C2 estimates f1..fq (each
//    at ε/q — sequential composition) yield an unbiased estimate through
//    elementary symmetric polynomials:
//      E[e1] = q·x, E[e2] = C(q,2)·x², E[e3] = C(q,3)·x³,
//    giving unbiased x, x², x³ and hence any cubic in x.

#ifndef CNE_APPS_BICLIQUE_H_
#define CNE_APPS_BICLIQUE_H_

#include <cstdint>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Exact number of K_{2,q} bicliques whose 2-side lies on `layer`.
/// Wedge-based: O(Σ_v deg(v)²) over the opposite layer.
uint64_t ExactBicliques2q(const BipartiteGraph& graph, Layer layer, int q);

/// Exact number of K_{3,q} bicliques whose 3-side lies on `layer`.
/// Enumerates pairs via wedges, extends each surviving pair by a third
/// vertex through the pruned intersection of its common neighborhood.
/// Intended for small/medium graphs (tests, examples, benches).
uint64_t ExactBicliques3q(const BipartiteGraph& graph, Layer layer, int q);

/// Unbiased estimate of the polynomial C(x, q) at x = C2(u, w) from q
/// independent unbiased estimates (q ∈ {1, 2, 3}). Exposed for testing.
double UnbiasedChooseFromRuns(const double* runs, int q);

/// Result of a private K_{2,q} estimate.
struct BicliqueEstimate {
  double count = 0.0;
  int q = 2;
  size_t sampled_pairs = 0;
  double epsilon_per_run = 0.0;
};

/// Estimates the K_{2,q} count (q ∈ {1,2,3}) under edge LDP by sampling
/// `num_pairs` uniform pairs on `layer` and running the unbiased
/// `estimator` q times per pair at ε/q. q = 1 estimates the number of
/// wedges through the layer; q = 2 the butterflies.
BicliqueEstimate EstimateBicliques2q(const BipartiteGraph& graph,
                                     Layer layer,
                                     const CommonNeighborEstimator& estimator,
                                     int q, double epsilon, size_t num_pairs,
                                     Rng& rng);

}  // namespace cne

#endif  // CNE_APPS_BICLIQUE_H_
