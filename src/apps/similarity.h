// Privacy-preserving vertex similarity on top of common-neighborhood
// estimation — the first downstream task motivating the paper (Jaccard
// similarity is C2 / |N(u) ∪ N(w)|).
//
// The protocol spends a configurable slice of the budget on Laplace-noised
// degrees of both query vertices and the rest on a C2 estimate from any
// CommonNeighborEstimator, then post-processes (clamping into valid
// ranges, which is privacy-free).

#ifndef CNE_APPS_SIMILARITY_H_
#define CNE_APPS_SIMILARITY_H_

#include <memory>
#include <optional>

#include "core/estimator.h"
#include "service/query_service.h"

namespace cne {

/// Private similarity scores between two same-layer vertices.
struct SimilarityResult {
  double jaccard = 0.0;  ///< C2 / (deg_u + deg_w - C2), clamped to [0, 1]
  double cosine = 0.0;   ///< C2 / sqrt(deg_u * deg_w), clamped to [0, 1]
  double c2_estimate = 0.0;
  double deg_u_estimate = 0.0;
  double deg_w_estimate = 0.0;
};

/// Estimates Jaccard and cosine similarity under ε-edge LDP.
class PrivateSimilarityEstimator {
 public:
  /// `c2_estimator` supplies the common-neighbor estimate;
  /// `degree_fraction` of the budget goes to the two degree releases
  /// (parallel composition across u and w) and the rest to C2.
  PrivateSimilarityEstimator(
      std::shared_ptr<const CommonNeighborEstimator> c2_estimator,
      double degree_fraction = 0.2);

  SimilarityResult Estimate(const BipartiteGraph& graph,
                            const QueryPair& query, double epsilon,
                            Rng& rng) const;

 private:
  std::shared_ptr<const CommonNeighborEstimator> c2_estimator_;
  double degree_fraction_;
};

/// Service-backed similarity: the C2 estimate comes from one service
/// answer over the shared noisy views, and both degrees are de-biased from
/// the released view *sizes* — pure post-processing on releases that
/// already exist, so the whole similarity costs no budget beyond the
/// service's per-vertex release. Requires an algorithm that releases both
/// endpoints' views (Naive, OneR, MultiR-DS — fatal check for MultiR-SS,
/// whose u never releases randomized response). Returns nullopt when the
/// budget ledger rejects the query.
std::optional<SimilarityResult> ServiceSimilarity(QueryService& service,
                                                  const QueryPair& query);

/// Exact (non-private) Jaccard similarity, for error reporting.
double ExactJaccard(const BipartiteGraph& graph, const QueryPair& query);

/// Exact (non-private) cosine similarity.
double ExactCosine(const BipartiteGraph& graph, const QueryPair& query);

}  // namespace cne

#endif  // CNE_APPS_SIMILARITY_H_
