#include "apps/topk.h"

#include <algorithm>
#include <unordered_set>

#include "util/logging.h"

namespace cne {

namespace {

void SortAndTruncate(std::vector<ScoredVertex>& scored, size_t k) {
  std::sort(scored.begin(), scored.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vertex < b.vertex;  // deterministic tie-break
            });
  if (scored.size() > k) scored.resize(k);
}

}  // namespace

TopKResult PrivateTopKCommonNeighbors(
    const BipartiteGraph& graph, const CommonNeighborEstimator& estimator,
    LayeredVertex source, const std::vector<VertexId>& candidates, size_t k,
    double epsilon, Rng& rng) {
  CNE_CHECK(!candidates.empty()) << "no candidates";
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  TopKResult result;
  result.epsilon_per_candidate =
      epsilon / static_cast<double>(candidates.size());
  result.ranked.reserve(candidates.size());
  for (VertexId candidate : candidates) {
    if (candidate == source.id) continue;
    const QueryPair query{source.layer, source.id, candidate};
    const double score =
        estimator.Estimate(graph, query, result.epsilon_per_candidate, rng)
            .estimate;
    result.ranked.push_back({candidate, score});
  }
  SortAndTruncate(result.ranked, k);
  return result;
}

TopKResult ExactTopKCommonNeighbors(const BipartiteGraph& graph,
                                    LayeredVertex source,
                                    const std::vector<VertexId>& candidates,
                                    size_t k) {
  TopKResult result;
  result.ranked.reserve(candidates.size());
  for (VertexId candidate : candidates) {
    if (candidate == source.id) continue;
    result.ranked.push_back(
        {candidate, static_cast<double>(graph.CountCommonNeighbors(
                        source.layer, source.id, candidate))});
  }
  SortAndTruncate(result.ranked, k);
  return result;
}

double TopKRecall(const TopKResult& exact, const TopKResult& estimated) {
  if (exact.ranked.empty()) return 1.0;
  std::unordered_set<VertexId> truth;
  for (const ScoredVertex& sv : exact.ranked) truth.insert(sv.vertex);
  size_t hits = 0;
  for (const ScoredVertex& sv : estimated.ranked) {
    if (truth.count(sv.vertex)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace cne
