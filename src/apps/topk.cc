#include "apps/topk.h"

#include <algorithm>
#include <unordered_set>

#include "graph/set_ops.h"
#include "util/logging.h"

namespace cne {

namespace {

void SortAndTruncate(std::vector<ScoredVertex>& scored, size_t k) {
  std::sort(scored.begin(), scored.end(),
            [](const ScoredVertex& a, const ScoredVertex& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.vertex < b.vertex;  // deterministic tie-break
            });
  if (scored.size() > k) scored.resize(k);
}

}  // namespace

TopKResult PrivateTopKCommonNeighbors(
    const BipartiteGraph& graph, const CommonNeighborEstimator& estimator,
    LayeredVertex source, const std::vector<VertexId>& candidates, size_t k,
    double epsilon, Rng& rng) {
  CNE_CHECK(!candidates.empty()) << "no candidates";
  CNE_CHECK(epsilon > 0.0) << "privacy budget must be positive";
  TopKResult result;
  result.epsilon_per_candidate =
      epsilon / static_cast<double>(candidates.size());
  result.ranked.reserve(candidates.size());
  for (VertexId candidate : candidates) {
    if (candidate == source.id) continue;
    const QueryPair query{source.layer, source.id, candidate};
    const double score =
        estimator.Estimate(graph, query, result.epsilon_per_candidate, rng)
            .estimate;
    result.ranked.push_back({candidate, score});
  }
  SortAndTruncate(result.ranked, k);
  return result;
}

TopKResult ServiceTopKCommonNeighbors(QueryService& service,
                                      LayeredVertex source,
                                      const std::vector<VertexId>& candidates,
                                      size_t k) {
  CNE_CHECK(!candidates.empty()) << "no candidates";
  std::vector<QueryPair> workload;
  workload.reserve(candidates.size());
  for (VertexId candidate : candidates) {
    if (candidate == source.id) continue;
    workload.push_back({source.layer, source.id, candidate});
  }
  TopKResult result;
  result.epsilon_per_candidate = service.options().epsilon;
  if (workload.empty()) return result;
  const ServiceReport report = service.Submit(workload);
  result.ranked.reserve(report.answers.size());
  for (const ServiceAnswer& answer : report.answers) {
    if (answer.rejected) continue;
    result.ranked.push_back({answer.query.w, answer.estimate});
  }
  SortAndTruncate(result.ranked, k);
  return result;
}

TopKResult ExactTopKCommonNeighbors(const BipartiteGraph& graph,
                                    LayeredVertex source,
                                    const std::vector<VertexId>& candidates,
                                    size_t k) {
  TopKResult result;
  result.ranked.reserve(candidates.size());
  // The source row is intersected against every candidate: pack it into a
  // bitmap once and each candidate costs O(deg) O(1)-probes instead of a
  // merge over both rows. Falls back to the adaptive sorted kernels when
  // the one-off packing would dominate (short row, single candidate).
  const auto source_nb = graph.Neighbors(source);
  const VertexId domain = graph.NumVertices(Opposite(source.layer));
  DenseBitset source_bits;
  const bool pack = candidates.size() > 1 &&
                    source_nb.size() >= static_cast<size_t>(domain) / 64;
  if (pack) {
    source_bits = DenseBitset(domain);
    for (VertexId v : source_nb) source_bits.Set(v);
  }
  const SetView source_view =
      pack ? SetView::Bitmap(source_bits, source_nb.size())
           : SetView::Sorted(source_nb);
  for (VertexId candidate : candidates) {
    if (candidate == source.id) continue;
    const SetView candidate_view =
        SetView::Sorted(graph.Neighbors(source.layer, candidate));
    result.ranked.push_back(
        {candidate, static_cast<double>(
                        IntersectionSize(candidate_view, source_view))});
  }
  SortAndTruncate(result.ranked, k);
  return result;
}

double TopKRecall(const TopKResult& exact, const TopKResult& estimated) {
  if (exact.ranked.empty()) return 1.0;
  std::unordered_set<VertexId> truth;
  for (const ScoredVertex& sv : exact.ranked) truth.insert(sv.vertex);
  size_t hits = 0;
  for (const ScoredVertex& sv : estimated.ranked) {
    if (truth.count(sv.vertex)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace cne
