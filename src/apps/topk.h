// Private top-k common-neighbor search: given a source vertex, rank a set
// of same-layer candidates by their estimated common-neighbor count with
// the source under a total privacy budget (split evenly across the
// candidate protocols by sequential composition over the source's
// neighbor list).

#ifndef CNE_APPS_TOPK_H_
#define CNE_APPS_TOPK_H_

#include <memory>
#include <vector>

#include "core/estimator.h"

namespace cne {

/// One ranked candidate.
struct ScoredVertex {
  VertexId vertex = 0;
  double score = 0.0;  ///< estimated C2 with the source
};

/// Result of a top-k query.
struct TopKResult {
  std::vector<ScoredVertex> ranked;  ///< best k candidates, descending
  double epsilon_per_candidate = 0.0;
};

/// Runs the C2 protocol between `source` and every candidate with budget
/// ε / |candidates| each (sequential composition bounds the source's total
/// leakage by ε) and returns the k highest estimates.
TopKResult PrivateTopKCommonNeighbors(
    const BipartiteGraph& graph, const CommonNeighborEstimator& estimator,
    LayeredVertex source, const std::vector<VertexId>& candidates, size_t k,
    double epsilon, Rng& rng);

/// Exact (non-private) top-k, for precision/recall reporting in examples.
TopKResult ExactTopKCommonNeighbors(const BipartiteGraph& graph,
                                    LayeredVertex source,
                                    const std::vector<VertexId>& candidates,
                                    size_t k);

/// Fraction of the exact top-k recovered by the private top-k.
double TopKRecall(const TopKResult& exact, const TopKResult& estimated);

}  // namespace cne

#endif  // CNE_APPS_TOPK_H_
