// Private top-k common-neighbor search: given a source vertex, rank a set
// of same-layer candidates by their estimated common-neighbor count with
// the source under a total privacy budget (split evenly across the
// candidate protocols by sequential composition over the source's
// neighbor list).

#ifndef CNE_APPS_TOPK_H_
#define CNE_APPS_TOPK_H_

#include <memory>
#include <vector>

#include "core/estimator.h"
#include "service/query_service.h"

namespace cne {

/// One ranked candidate.
struct ScoredVertex {
  VertexId vertex = 0;
  double score = 0.0;  ///< estimated C2 with the source
};

/// Result of a top-k query.
struct TopKResult {
  std::vector<ScoredVertex> ranked;  ///< best k candidates, descending
  double epsilon_per_candidate = 0.0;
};

/// Runs the C2 protocol between `source` and every candidate with budget
/// ε / |candidates| each (sequential composition bounds the source's total
/// leakage by ε) and returns the k highest estimates.
///
/// This is the per-pair path: every candidate pays a full protocol
/// execution (fresh releases from both vertices). Prefer
/// ServiceTopKCommonNeighbors, which shares one release per distinct
/// vertex across the whole candidate set.
TopKResult PrivateTopKCommonNeighbors(
    const BipartiteGraph& graph, const CommonNeighborEstimator& estimator,
    LayeredVertex source, const std::vector<VertexId>& candidates, size_t k,
    double epsilon, Rng& rng);

/// Service-backed top-k: submits the 1×N workload (source vs every
/// candidate) to `service` and ranks the answers. Each distinct vertex
/// releases randomized response at most once per service lifetime — the
/// source's view is shared by all N protocols, and the workload planner
/// collapses the submission into one source group probed in a single
/// batch pass. Candidates equal to the source are skipped; candidates
/// rejected by the budget ledger are excluded from the ranking.
/// `result.epsilon_per_candidate` reports the service's per-release ε
/// (the whole workload costs each vertex one release, not N).
TopKResult ServiceTopKCommonNeighbors(QueryService& service,
                                      LayeredVertex source,
                                      const std::vector<VertexId>& candidates,
                                      size_t k);

/// Exact (non-private) top-k, for precision/recall reporting in examples.
TopKResult ExactTopKCommonNeighbors(const BipartiteGraph& graph,
                                    LayeredVertex source,
                                    const std::vector<VertexId>& candidates,
                                    size_t k);

/// Fraction of the exact top-k recovered by the private top-k.
double TopKRecall(const TopKResult& exact, const TopKResult& estimated);

}  // namespace cne

#endif  // CNE_APPS_TOPK_H_
