#include "apps/projection.h"

#include <unordered_map>
#include <unordered_set>

#include "graph/set_ops.h"
#include "util/logging.h"

namespace cne {

std::vector<ProjectionEdge> ExactProjection(
    const BipartiteGraph& graph, const std::vector<QueryPair>& candidates,
    double threshold) {
  std::vector<ProjectionEdge> edges;
  // Candidate lists are typically grouped by their first endpoint: once a
  // pair *repeats* the previous pair's u, pack that row into a bitmap (if
  // long enough to amortize the packing) and probe the rest of the run
  // against it. The first pair of a run — and therefore every pair of an
  // ungrouped list — takes the adaptive sorted kernels, so alternating
  // endpoints never re-pack per pair.
  DenseBitset u_bits;
  bool have_bits = false;
  bool have_prev = false;
  LayeredVertex prev{Layer::kUpper, 0};
  for (const QueryPair& pair : candidates) {
    const LayeredVertex u{pair.layer, pair.u};
    const auto nb_u = graph.Neighbors(u);
    if (!(have_prev && prev == u)) {
      have_bits = false;
    } else if (!have_bits) {
      const VertexId domain = graph.NumVertices(Opposite(pair.layer));
      if (nb_u.size() >= static_cast<size_t>(domain) / 64) {
        u_bits = DenseBitset(domain);
        for (VertexId v : nb_u) u_bits.Set(v);
        have_bits = true;
      }
    }
    have_prev = true;
    prev = u;
    const SetView u_view = have_bits ? SetView::Bitmap(u_bits, nb_u.size())
                                     : SetView::Sorted(nb_u);
    const double c2 = static_cast<double>(IntersectionSize(
        SetView::Sorted(graph.Neighbors(pair.layer, pair.w)), u_view));
    if (c2 >= threshold) {
      edges.push_back({pair.u, pair.w, c2});
    }
  }
  return edges;
}

std::vector<ProjectionEdge> ExactProjectionAllPairs(
    const BipartiteGraph& graph, Layer layer, double threshold) {
  // Wedge enumeration from the opposite layer: every center vertex
  // contributes one co-occurrence per pair of its neighbors.
  const Layer center = Opposite(layer);
  const VertexId n = graph.NumVertices(center);
  std::unordered_map<uint64_t, uint64_t> counts;
  for (VertexId c = 0; c < n; ++c) {
    const auto nb = graph.Neighbors(center, c);
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        const uint64_t key = (static_cast<uint64_t>(nb[i]) << 32) | nb[j];
        ++counts[key];
      }
    }
  }
  std::vector<ProjectionEdge> edges;
  for (const auto& [key, count] : counts) {
    if (static_cast<double>(count) >= threshold) {
      edges.push_back({static_cast<VertexId>(key >> 32),
                       static_cast<VertexId>(key & 0xffffffffu),
                       static_cast<double>(count)});
    }
  }
  return edges;
}

std::vector<ProjectionEdge> PrivateProjection(
    const BipartiteGraph& graph, const std::vector<QueryPair>& candidates,
    double threshold, const CommonNeighborEstimator& estimator,
    double epsilon_per_pair, Rng& rng) {
  CNE_CHECK(epsilon_per_pair > 0.0) << "privacy budget must be positive";
  std::vector<ProjectionEdge> edges;
  for (const QueryPair& pair : candidates) {
    const double estimate =
        estimator.Estimate(graph, pair, epsilon_per_pair, rng).estimate;
    if (estimate >= threshold) {
      edges.push_back({pair.u, pair.w, estimate});
    }
  }
  return edges;
}

std::vector<ProjectionEdge> ServiceProjection(
    QueryService& service, const std::vector<QueryPair>& candidates,
    double threshold) {
  std::vector<ProjectionEdge> edges;
  if (candidates.empty()) return edges;
  const ServiceReport report = service.Submit(candidates);
  for (const ServiceAnswer& answer : report.answers) {
    if (answer.rejected) continue;
    if (answer.estimate >= threshold) {
      edges.push_back({answer.query.u, answer.query.w, answer.estimate});
    }
  }
  return edges;
}

ProjectionQuality CompareProjections(
    const std::vector<ProjectionEdge>& exact,
    const std::vector<ProjectionEdge>& estimated) {
  auto key = [](const ProjectionEdge& e) {
    const VertexId lo = e.a < e.b ? e.a : e.b;
    const VertexId hi = e.a < e.b ? e.b : e.a;
    return (static_cast<uint64_t>(lo) << 32) | hi;
  };
  std::unordered_set<uint64_t> truth;
  for (const ProjectionEdge& e : exact) truth.insert(key(e));
  size_t hits = 0;
  for (const ProjectionEdge& e : estimated) hits += truth.count(key(e));

  ProjectionQuality q;
  q.precision = estimated.empty()
                    ? 1.0
                    : static_cast<double>(hits) / estimated.size();
  q.recall = truth.empty() ? 1.0 : static_cast<double>(hits) / truth.size();
  q.f1 = (q.precision + q.recall) > 0
             ? 2 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

}  // namespace cne
