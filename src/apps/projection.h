// Bipartite graph projection — another motivating task from the paper's
// introduction. The projection onto one layer connects two vertices when
// their common-neighbor count reaches a threshold; the private variant
// replaces the exact counts by LDP estimates.
//
// The private projection runs one C2 protocol per candidate pair with
// budget ε / (pairs involving a vertex); for the candidate lists used
// here (explicit pair sets), the caller controls each vertex's exposure.

#ifndef CNE_APPS_PROJECTION_H_
#define CNE_APPS_PROJECTION_H_

#include <vector>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "service/query_service.h"
#include "util/rng.h"

namespace cne {

/// A weighted projection edge: same-layer endpoints and their (estimated
/// or exact) common-neighbor count.
struct ProjectionEdge {
  VertexId a = 0;
  VertexId b = 0;
  double weight = 0.0;

  friend bool operator==(const ProjectionEdge&,
                         const ProjectionEdge&) = default;
};

/// Exact projection of `layer` restricted to the given candidate pairs:
/// keeps pairs with C2 >= threshold, weighted by C2.
std::vector<ProjectionEdge> ExactProjection(
    const BipartiteGraph& graph, const std::vector<QueryPair>& candidates,
    double threshold);

/// Exact projection over all same-layer pairs that share at least one
/// neighbor (wedge enumeration; O(Σ deg²) over the opposite layer).
/// Suitable for small-to-medium graphs.
std::vector<ProjectionEdge> ExactProjectionAllPairs(
    const BipartiteGraph& graph, Layer layer, double threshold);

/// Private projection: estimates C2 for each candidate pair with
/// `epsilon_per_pair` and keeps pairs whose estimate clears the threshold.
/// Thresholding is post-processing, so each pair's privacy cost is exactly
/// the estimator's.
std::vector<ProjectionEdge> PrivateProjection(
    const BipartiteGraph& graph, const std::vector<QueryPair>& candidates,
    double threshold, const CommonNeighborEstimator& estimator,
    double epsilon_per_pair, Rng& rng);

/// Service-backed private projection: answers every candidate pair through
/// `service` — one shared release per distinct vertex instead of one full
/// protocol per pair, with the workload planner grouping pairs around
/// their shared endpoints — and keeps pairs whose estimate clears the
/// threshold. Pairs rejected by the budget ledger produce no edge.
std::vector<ProjectionEdge> ServiceProjection(
    QueryService& service, const std::vector<QueryPair>& candidates,
    double threshold);

/// Precision/recall of an estimated projection against the exact one
/// (edges matched on endpoints, weights ignored).
struct ProjectionQuality {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
};

ProjectionQuality CompareProjections(
    const std::vector<ProjectionEdge>& exact,
    const std::vector<ProjectionEdge>& estimated);

}  // namespace cne

#endif  // CNE_APPS_PROJECTION_H_
