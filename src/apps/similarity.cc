#include "apps/similarity.h"

#include <algorithm>
#include <cmath>

#include "core/degree_estimation.h"
#include "core/protocol_pipeline.h"
#include "util/logging.h"

namespace cne {

namespace {

// Shared post-processing (privacy-free): clamp the raw estimates into
// feasible ranges and derive the similarity scores.
void FinishSimilarity(SimilarityResult& result) {
  const double du = std::max(result.deg_u_estimate, 1.0);
  const double dw = std::max(result.deg_w_estimate, 1.0);
  const double c2 =
      std::clamp(result.c2_estimate, 0.0, std::min(du, dw));
  const double union_size = std::max(du + dw - c2, 1.0);
  result.jaccard = std::clamp(c2 / union_size, 0.0, 1.0);
  result.cosine = std::clamp(c2 / std::sqrt(du * dw), 0.0, 1.0);
}

}  // namespace

PrivateSimilarityEstimator::PrivateSimilarityEstimator(
    std::shared_ptr<const CommonNeighborEstimator> c2_estimator,
    double degree_fraction)
    : c2_estimator_(std::move(c2_estimator)),
      degree_fraction_(degree_fraction) {
  CNE_CHECK(c2_estimator_ != nullptr);
  CNE_CHECK(degree_fraction > 0.0 && degree_fraction < 1.0)
      << "degree fraction must lie in (0, 1)";
}

SimilarityResult PrivateSimilarityEstimator::Estimate(
    const BipartiteGraph& graph, const QueryPair& query, double epsilon,
    Rng& rng) const {
  const double eps_deg = epsilon * degree_fraction_;
  const double eps_c2 = epsilon - eps_deg;

  SimilarityResult result;
  // The two degree releases act on disjoint neighbor lists, so they
  // compose in parallel at eps_deg; the C2 protocol follows sequentially.
  result.deg_u_estimate =
      EstimateDegree(graph, {query.layer, query.u}, eps_deg, rng);
  result.deg_w_estimate =
      EstimateDegree(graph, {query.layer, query.w}, eps_deg, rng);
  result.c2_estimate =
      c2_estimator_->Estimate(graph, query, eps_c2, rng).estimate;

  FinishSimilarity(result);
  return result;
}

std::optional<SimilarityResult> ServiceSimilarity(QueryService& service,
                                                  const QueryPair& query) {
  const ServiceReport report = service.Submit({query});
  const ServiceAnswer& answer = report.answers.front();
  if (answer.rejected) return std::nullopt;

  // Both endpoints' views exist now (fatal check for MultiR-SS, which
  // never releases u): their sizes de-bias into degree estimates for free.
  const NoisyNeighborSet& view_u =
      service.store().View({query.layer, query.u});
  const NoisyNeighborSet& view_w =
      service.store().View({query.layer, query.w});

  SimilarityResult result;
  result.c2_estimate = answer.estimate;
  const DebiasConstants debias =
      MakeDebiasConstants(view_u.flip_probability());
  result.deg_u_estimate = DebiasedDegreeFromViewSize(
      debias, view_u.Size(), view_u.DomainSize());
  result.deg_w_estimate = DebiasedDegreeFromViewSize(
      debias, view_w.Size(), view_w.DomainSize());
  FinishSimilarity(result);
  return result;
}

double ExactJaccard(const BipartiteGraph& graph, const QueryPair& query) {
  // One adaptive intersection; the union follows from the degrees.
  const double c2 = static_cast<double>(
      graph.CountCommonNeighbors(query.layer, query.u, query.w));
  const double uni = static_cast<double>(graph.Degree(query.layer, query.u)) +
                     static_cast<double>(graph.Degree(query.layer, query.w)) -
                     c2;
  return uni > 0.0 ? c2 / uni : 0.0;
}

double ExactCosine(const BipartiteGraph& graph, const QueryPair& query) {
  const double c2 = static_cast<double>(
      graph.CountCommonNeighbors(query.layer, query.u, query.w));
  const double du = graph.Degree(query.layer, query.u);
  const double dw = graph.Degree(query.layer, query.w);
  return (du > 0 && dw > 0) ? c2 / std::sqrt(du * dw) : 0.0;
}

}  // namespace cne
