#include "apps/butterfly.h"

#include <unordered_map>

#include "eval/query_sampler.h"
#include "util/logging.h"

namespace cne {

namespace {

uint64_t Choose2(uint64_t n) { return n < 2 ? 0 : n * (n - 1) / 2; }

}  // namespace

uint64_t ExactWedges(const BipartiteGraph& graph, Layer center_layer) {
  uint64_t wedges = 0;
  const VertexId n = graph.NumVertices(center_layer);
  for (VertexId v = 0; v < n; ++v) {
    wedges += Choose2(graph.Degree(center_layer, v));
  }
  return wedges;
}

uint64_t ExactButterflies(const BipartiteGraph& graph) {
  // Enumerate wedges centered on the layer with the smaller wedge count:
  // for every center c and ordered pair of its neighbors (a, b), bump a
  // counter for the endpoint pair; each endpoint pair seen k times closes
  // C(k, 2) butterflies.
  const Layer center =
      ExactWedges(graph, Layer::kUpper) <= ExactWedges(graph, Layer::kLower)
          ? Layer::kUpper
          : Layer::kLower;
  const VertexId n = graph.NumVertices(center);
  std::unordered_map<uint64_t, uint64_t> pair_counts;
  for (VertexId c = 0; c < n; ++c) {
    const auto nb = graph.Neighbors(center, c);
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        const uint64_t key =
            (static_cast<uint64_t>(nb[i]) << 32) | nb[j];
        ++pair_counts[key];
      }
    }
  }
  uint64_t butterflies = 0;
  for (const auto& [key, count] : pair_counts) {
    butterflies += Choose2(count);
  }
  return butterflies;
}

uint64_t ExactCaterpillars(const BipartiteGraph& graph) {
  uint64_t caterpillars = 0;
  for (VertexId u = 0; u < graph.NumUpper(); ++u) {
    const uint64_t du = graph.Degree(Layer::kUpper, u);
    if (du == 0) continue;
    for (VertexId l : graph.Neighbors(Layer::kUpper, u)) {
      const uint64_t dl = graph.Degree(Layer::kLower, l);
      caterpillars += (du - 1) * (dl - 1);
    }
  }
  return caterpillars;
}

double BipartiteClusteringCoefficient(const BipartiteGraph& graph) {
  const uint64_t caterpillars = ExactCaterpillars(graph);
  if (caterpillars == 0) return 0.0;
  return 4.0 * static_cast<double>(ExactButterflies(graph)) /
         static_cast<double>(caterpillars);
}

ButterflyEstimate EstimateButterflies(
    const BipartiteGraph& graph, Layer layer,
    const CommonNeighborEstimator& estimator, double epsilon,
    size_t num_pairs, Rng& rng) {
  CNE_CHECK(estimator.IsUnbiased())
      << "butterfly estimation requires an unbiased C2 estimator; "
      << estimator.Name() << " is biased";
  CNE_CHECK(num_pairs > 0) << "need at least one sampled pair";
  const uint64_t n = graph.NumVertices(layer);
  CNE_CHECK(n >= 2) << "layer has fewer than two vertices";

  const auto pairs = SampleUniformPairs(graph, layer, num_pairs, rng);
  const double eps_per_run = epsilon / 2.0;
  double contribution_sum = 0.0;
  for (const QueryPair& pair : pairs) {
    // Two independent runs at half budget: sequential composition keeps
    // the pair's total at epsilon.
    const double f1 = estimator.Estimate(graph, pair, eps_per_run, rng)
                          .estimate;
    const double f2 = estimator.Estimate(graph, pair, eps_per_run, rng)
                          .estimate;
    // E[f1 f2] = C2^2, E[(f1 + f2)/2] = C2 -> unbiased C(C2, 2).
    contribution_sum += (f1 * f2 - (f1 + f2) / 2.0) / 2.0;
  }
  ButterflyEstimate result;
  result.sampled_pairs = pairs.size();
  result.epsilon_per_run = eps_per_run;
  const double total_pairs = static_cast<double>(Choose2(n));
  result.butterflies =
      contribution_sum / static_cast<double>(pairs.size()) * total_pairs;
  return result;
}

}  // namespace cne
