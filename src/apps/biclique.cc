#include "apps/biclique.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "eval/query_sampler.h"
#include "util/logging.h"

namespace cne {

namespace {

double ChooseDouble(double n, int q) {
  double result = 1.0;
  for (int i = 0; i < q; ++i) result *= (n - i) / (i + 1);
  return result;
}

uint64_t ChooseExact(uint64_t n, int q) {
  if (n < static_cast<uint64_t>(q)) return 0;
  uint64_t result = 1;
  for (int i = 0; i < q; ++i) {
    result = result * (n - i) / (i + 1);
  }
  return result;
}

// Co-occurrence counts over same-layer pairs, built by wedge enumeration
// from the opposite layer. Key packs the (smaller, larger) vertex pair.
std::unordered_map<uint64_t, uint32_t> PairCooccurrence(
    const BipartiteGraph& graph, Layer layer) {
  const Layer center = Opposite(layer);
  std::unordered_map<uint64_t, uint32_t> counts;
  const VertexId n = graph.NumVertices(center);
  for (VertexId c = 0; c < n; ++c) {
    const auto nb = graph.Neighbors(center, c);
    for (size_t i = 0; i < nb.size(); ++i) {
      for (size_t j = i + 1; j < nb.size(); ++j) {
        ++counts[(static_cast<uint64_t>(nb[i]) << 32) | nb[j]];
      }
    }
  }
  return counts;
}

}  // namespace

uint64_t ExactBicliques2q(const BipartiteGraph& graph, Layer layer, int q) {
  CNE_CHECK(q >= 1) << "q must be positive";
  if (q == 1) {
    // K_{2,1} are exactly the wedges centered on the opposite layer.
    uint64_t wedges = 0;
    const Layer center = Opposite(layer);
    const VertexId n = graph.NumVertices(center);
    for (VertexId c = 0; c < n; ++c) {
      wedges += ChooseExact(graph.Degree(center, c), 2);
    }
    return wedges;
  }
  uint64_t total = 0;
  for (const auto& [key, count] : PairCooccurrence(graph, layer)) {
    total += ChooseExact(count, q);
  }
  return total;
}

uint64_t ExactBicliques3q(const BipartiteGraph& graph, Layer layer, int q) {
  CNE_CHECK(q >= 1) << "q must be positive";
  uint64_t total = 0;
  for (const auto& [key, count] : PairCooccurrence(graph, layer)) {
    // Pruning (paper, Section 1): a pair whose common-neighbor count
    // cannot reach q admits no K_{3,q} extension.
    if (count < static_cast<uint32_t>(q)) continue;
    const VertexId u = static_cast<VertexId>(key >> 32);
    const VertexId w = static_cast<VertexId>(key & 0xffffffffu);
    // Materialize I = N(u) ∩ N(w) on the opposite layer.
    const auto nu = graph.Neighbors(layer, u);
    const auto nw = graph.Neighbors(layer, w);
    std::vector<VertexId> common;
    std::set_intersection(nu.begin(), nu.end(), nw.begin(), nw.end(),
                          std::back_inserter(common));
    // For every third vertex x > w, t(x) = |N(x) ∩ I| by scanning the
    // layer-side neighbors of I's members.
    std::unordered_map<VertexId, uint32_t> t;
    const Layer opposite = Opposite(layer);
    for (VertexId c : common) {
      for (VertexId x : graph.Neighbors(opposite, c)) {
        if (x > w) ++t[x];
      }
    }
    for (const auto& [x, shared] : t) {
      total += ChooseExact(shared, q);
    }
  }
  return total;
}

double UnbiasedChooseFromRuns(const double* runs, int q) {
  switch (q) {
    case 1:
      return runs[0];
    case 2: {
      // C(x,2) = (x² - x)/2 with E[f1 f2] = x².
      return (runs[0] * runs[1] - (runs[0] + runs[1]) / 2.0) / 2.0;
    }
    case 3: {
      // C(x,3) = (x³ - 3x² + 2x)/6 via elementary symmetric polynomials:
      // E[e3] = x³, E[e2] = 3x², E[e1] = 3x.
      const double e1 = runs[0] + runs[1] + runs[2];
      const double e2 =
          runs[0] * runs[1] + runs[0] * runs[2] + runs[1] * runs[2];
      const double e3 = runs[0] * runs[1] * runs[2];
      return (e3 - e2 + 2.0 / 3.0 * e1) / 6.0;
    }
    default:
      CNE_CHECK(false) << "q must be 1, 2, or 3; got " << q;
      return 0.0;
  }
}

BicliqueEstimate EstimateBicliques2q(const BipartiteGraph& graph,
                                     Layer layer,
                                     const CommonNeighborEstimator& estimator,
                                     int q, double epsilon, size_t num_pairs,
                                     Rng& rng) {
  CNE_CHECK(q >= 1 && q <= 3) << "private estimation supports q in {1,2,3}";
  CNE_CHECK(estimator.IsUnbiased())
      << "biclique estimation requires an unbiased C2 estimator";
  CNE_CHECK(num_pairs > 0) << "need at least one sampled pair";
  const uint64_t n = graph.NumVertices(layer);
  CNE_CHECK(n >= 2) << "layer has fewer than two vertices";

  const auto pairs = SampleUniformPairs(graph, layer, num_pairs, rng);
  const double eps_per_run = epsilon / q;
  double contribution_sum = 0.0;
  double runs[3] = {0, 0, 0};
  for (const QueryPair& pair : pairs) {
    for (int r = 0; r < q; ++r) {
      runs[r] = estimator.Estimate(graph, pair, eps_per_run, rng).estimate;
    }
    contribution_sum += UnbiasedChooseFromRuns(runs, q);
  }
  BicliqueEstimate result;
  result.q = q;
  result.sampled_pairs = pairs.size();
  result.epsilon_per_run = eps_per_run;
  result.count = contribution_sum / static_cast<double>(pairs.size()) *
                 ChooseDouble(static_cast<double>(n), 2);
  return result;
}

}  // namespace cne
