// Closed-form expected-L2-loss expressions of every estimator (Theorems 1,
// 4, 6, 8 and the CentralDP baseline). These drive the Fig. 5 landscape
// bench, the Table 3 summary bench, and the variance property tests, which
// assert that the Monte-Carlo variance of each estimator matches these
// formulas.

#ifndef CNE_CORE_THEORY_H_
#define CNE_CORE_THEORY_H_

namespace cne {

/// Exact expected L2 loss of the Naive estimator (Alg. 1):
/// bias^2 + variance of |N(u,G') ∩ N(w,G')| where each candidate v is a
/// common noisy neighbor independently with probability q_v determined by
/// its true adjacency. Parameters: opposite-layer size n1, true degrees,
/// and the true common-neighbor count c2.
double NaiveExpectedL2(double n1, double deg_u, double deg_w, double c2,
                       double epsilon);

/// Expected value of the Naive estimator (shows the overcounting bias).
double NaiveExpectedValue(double n1, double deg_u, double deg_w, double c2,
                          double epsilon);

/// Exact expected L2 loss (= variance; unbiased) of OneR (Theorem 4,
/// tightened to the exact expression derived in its proof):
/// p²(1-p)²/(1-2p)⁴ · n1 + p(1-p)/(1-2p)² · (deg_u + deg_w).
double OneRExpectedL2(double n1, double deg_u, double deg_w, double epsilon);

/// Exact expected L2 loss (= variance) of the single-source estimator f̃_u
/// (Theorem 6): p(1-p)/(1-2p)² · deg_u + 2(1-p)²/((1-2p)² ε2²), with
/// p = FlipProbability(epsilon1).
double SingleSourceExpectedL2(double deg_u, double epsilon1, double epsilon2);

/// Exact expected L2 loss (= variance) of the double-source estimator
/// f* = α f̃_u + (1-α) f̃_w (Theorem 8).
double DoubleSourceExpectedL2(double deg_u, double deg_w, double alpha,
                              double epsilon1, double epsilon2);

/// Expected L2 loss of CentralDP: Var(Lap(1/ε)) = 2/ε².
double CentralDpExpectedL2(double epsilon);

/// Asymptotic (big-O constant dropped) L2-loss orders from Table 3, used
/// for cross-checking growth rates in tests.
double NaiveL2Order(double n1, double epsilon);
double OneRL2Order(double n1, double epsilon);

}  // namespace cne

#endif  // CNE_CORE_THEORY_H_
