#include "core/multir_ds.h"

#include "core/allocation.h"
#include "core/degree_estimation.h"
#include "core/protocol_pipeline.h"
#include "ldp/comm_model.h"
#include "util/logging.h"

namespace cne {

MultiRDSEstimator::MultiRDSEstimator(MultiRDSOptions options)
    : options_(options) {
  CNE_CHECK(options_.epsilon0_fraction > 0.0 &&
            options_.epsilon0_fraction < 1.0)
      << "epsilon0 fraction must lie in (0, 1)";
  CNE_CHECK(options_.basic_epsilon1_fraction > 0.0 &&
            options_.basic_epsilon1_fraction < 1.0)
      << "basic epsilon1 fraction must lie in (0, 1)";
}

std::string MultiRDSEstimator::Name() const {
  if (!options_.name.empty()) return options_.name;
  if (!options_.optimize) return "MultiR-DS-Basic";
  if (options_.public_degrees) return "MultiR-DS*";
  return "MultiR-DS";
}

EstimateResult MultiRDSEstimator::Estimate(const BipartiteGraph& graph,
                                           const QueryPair& query,
                                           double epsilon, Rng& rng) const {
  CommLedger ledger;
  EstimateResult result;

  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};

  // ---- Round 1: degree estimation and allocation optimization ----
  double epsilon0 = 0.0;
  double deg_u_est = 0.0;
  double deg_w_est = 0.0;
  int rounds = 0;
  if (options_.optimize && !options_.public_degrees) {
    epsilon0 = epsilon * options_.epsilon0_fraction;
    deg_u_est = EstimateDegree(graph, u, epsilon0, rng);
    deg_w_est = EstimateDegree(graph, w, epsilon0, rng);
    // Every vertex of the query layer reports its noisy degree so the
    // curator can form the average used to correct negative estimates
    // (parallel composition over disjoint neighbor lists: still ε0).
    const double avg =
        EstimateAverageDegree(graph, query.layer, epsilon0, rng);
    deg_u_est = CorrectDegreeEstimate(deg_u_est, avg);
    deg_w_est = CorrectDegreeEstimate(deg_w_est, avg);
    ledger.UploadScalars(graph.NumVertices(query.layer));
    ++rounds;
  } else {
    deg_u_est = static_cast<double>(graph.Degree(u));
    deg_w_est = static_cast<double>(graph.Degree(w));
    // Degenerate isolated vertices: keep the optimizer well-posed.
    deg_u_est = CorrectDegreeEstimate(deg_u_est, 1.0);
    deg_w_est = CorrectDegreeEstimate(deg_w_est, 1.0);
  }

  const double remaining = epsilon - epsilon0;
  double epsilon1 = 0.0;
  double alpha = 0.5;
  if (options_.optimize) {
    const AllocationResult allocation =
        OptimizeDoubleSource(remaining, deg_u_est, deg_w_est);
    epsilon1 = allocation.epsilon1;
    alpha = allocation.alpha;
  } else {
    epsilon1 = remaining * options_.basic_epsilon1_fraction;
    alpha = 0.5;
  }
  const double epsilon2 = remaining - epsilon1;

  // ---- Remaining rounds: the shared pipeline with the chosen split ----
  // Both vertices release ε1 randomized response and download each
  // other's noisy edges; the two de-biased single-source estimators are
  // released via Laplace at ε2 (disjoint neighbor lists: parallel
  // composition) and α-combined.
  const ProtocolPlan plan = MakeProtocolPlanSplit(
      ProtocolKind::kMultiRDS, epsilon1, epsilon2, alpha);
  const ProtocolOutcome outcome = ExecuteProtocol(graph, query, plan, rng);

  result.estimate = outcome.estimate;
  result.rounds = rounds + outcome.rounds;
  result.uploaded_bytes = ledger.UploadedBytes() + outcome.uploaded_bytes;
  result.downloaded_bytes =
      ledger.DownloadedBytes() + outcome.downloaded_bytes;
  result.epsilon0 = epsilon0;
  result.epsilon1 = epsilon1;
  result.epsilon2 = epsilon2;
  result.alpha = alpha;
  result.noisy_degree_u = deg_u_est;
  result.noisy_degree_w = deg_w_est;
  return result;
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDS() {
  return std::make_unique<MultiRDSEstimator>(MultiRDSOptions{});
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDSBasic(
    double epsilon1_fraction) {
  MultiRDSOptions options;
  options.optimize = false;
  options.basic_epsilon1_fraction = epsilon1_fraction;
  return std::make_unique<MultiRDSEstimator>(options);
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDSStar() {
  MultiRDSOptions options;
  options.public_degrees = true;
  return std::make_unique<MultiRDSEstimator>(options);
}

}  // namespace cne
