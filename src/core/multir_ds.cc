#include "core/multir_ds.h"

#include "core/allocation.h"
#include "core/degree_estimation.h"
#include "core/multir_ss.h"
#include "ldp/comm_model.h"
#include "ldp/laplace_mechanism.h"
#include "ldp/randomized_response.h"
#include "util/logging.h"

namespace cne {

MultiRDSEstimator::MultiRDSEstimator(MultiRDSOptions options)
    : options_(options) {
  CNE_CHECK(options_.epsilon0_fraction > 0.0 &&
            options_.epsilon0_fraction < 1.0)
      << "epsilon0 fraction must lie in (0, 1)";
  CNE_CHECK(options_.basic_epsilon1_fraction > 0.0 &&
            options_.basic_epsilon1_fraction < 1.0)
      << "basic epsilon1 fraction must lie in (0, 1)";
}

std::string MultiRDSEstimator::Name() const {
  if (!options_.name.empty()) return options_.name;
  if (!options_.optimize) return "MultiR-DS-Basic";
  if (options_.public_degrees) return "MultiR-DS*";
  return "MultiR-DS";
}

EstimateResult MultiRDSEstimator::Estimate(const BipartiteGraph& graph,
                                           const QueryPair& query,
                                           double epsilon, Rng& rng) const {
  CommLedger ledger;
  EstimateResult result;

  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};

  // ---- Round 1: degree estimation and allocation optimization ----
  double epsilon0 = 0.0;
  double deg_u_est = 0.0;
  double deg_w_est = 0.0;
  int rounds = 0;
  if (options_.optimize && !options_.public_degrees) {
    epsilon0 = epsilon * options_.epsilon0_fraction;
    deg_u_est = EstimateDegree(graph, u, epsilon0, rng);
    deg_w_est = EstimateDegree(graph, w, epsilon0, rng);
    // Every vertex of the query layer reports its noisy degree so the
    // curator can form the average used to correct negative estimates
    // (parallel composition over disjoint neighbor lists: still ε0).
    const double avg =
        EstimateAverageDegree(graph, query.layer, epsilon0, rng);
    deg_u_est = CorrectDegreeEstimate(deg_u_est, avg);
    deg_w_est = CorrectDegreeEstimate(deg_w_est, avg);
    ledger.UploadScalars(graph.NumVertices(query.layer));
    ++rounds;
  } else {
    deg_u_est = static_cast<double>(graph.Degree(u));
    deg_w_est = static_cast<double>(graph.Degree(w));
    // Degenerate isolated vertices: keep the optimizer well-posed.
    deg_u_est = CorrectDegreeEstimate(deg_u_est, 1.0);
    deg_w_est = CorrectDegreeEstimate(deg_w_est, 1.0);
  }

  const double remaining = epsilon - epsilon0;
  double epsilon1 = 0.0;
  double alpha = 0.5;
  if (options_.optimize) {
    const AllocationResult allocation =
        OptimizeDoubleSource(remaining, deg_u_est, deg_w_est);
    epsilon1 = allocation.epsilon1;
    alpha = allocation.alpha;
  } else {
    epsilon1 = remaining * options_.basic_epsilon1_fraction;
    alpha = 0.5;
  }
  const double epsilon2 = remaining - epsilon1;

  // ---- Round 2: randomized responses from both query vertices ----
  const NoisyNeighborSet noisy_u =
      ApplyRandomizedResponse(graph, u, epsilon1, rng);
  const NoisyNeighborSet noisy_w =
      ApplyRandomizedResponse(graph, w, epsilon1, rng);
  ledger.UploadEdges(noisy_u.Size());
  ledger.UploadEdges(noisy_w.Size());
  // u downloads w's noisy edges and vice versa.
  ledger.DownloadEdges(noisy_u.Size());
  ledger.DownloadEdges(noisy_w.Size());
  ++rounds;

  // ---- Round 3: single-source estimators, released via Laplace ----
  // f̃_u combines N(u, G) with w's noisy edges; f̃_w the reverse. They
  // depend on disjoint noisy edges and their Laplace releases are applied
  // to disjoint neighbor lists (u's and w's), so the round composes in
  // parallel at ε2.
  const double sensitivity = SingleSourceSensitivity(epsilon1);
  const double f_u = LaplaceMechanism(
      SingleSourceEstimate(graph, u, noisy_w), sensitivity, epsilon2, rng);
  const double f_w = LaplaceMechanism(
      SingleSourceEstimate(graph, w, noisy_u), sensitivity, epsilon2, rng);
  ledger.UploadScalars(2);
  ++rounds;

  result.estimate = alpha * f_u + (1.0 - alpha) * f_w;
  result.rounds = rounds;
  result.uploaded_bytes = ledger.UploadedBytes();
  result.downloaded_bytes = ledger.DownloadedBytes();
  result.epsilon0 = epsilon0;
  result.epsilon1 = epsilon1;
  result.epsilon2 = epsilon2;
  result.alpha = alpha;
  result.noisy_degree_u = deg_u_est;
  result.noisy_degree_w = deg_w_est;
  return result;
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDS() {
  return std::make_unique<MultiRDSEstimator>(MultiRDSOptions{});
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDSBasic(
    double epsilon1_fraction) {
  MultiRDSOptions options;
  options.optimize = false;
  options.basic_epsilon1_fraction = epsilon1_fraction;
  return std::make_unique<MultiRDSEstimator>(options);
}

std::unique_ptr<MultiRDSEstimator> MakeMultiRDSStar() {
  MultiRDSOptions options;
  options.public_degrees = true;
  return std::make_unique<MultiRDSEstimator>(options);
}

}  // namespace cne
