// Privacy-budget allocation optimization for the double-source estimator
// (Section 4.2). The loss
//   F(ε1, α) = A(ε1)·(α² d_u + (1-α)² d_w) + B(ε1, ε2)·(α² + (1-α)²),
// with ε2 = ε_available - ε1, is quadratic in α, so the inner problem has
// the closed form
//   α*(ε1) = (A d_w + B) / (A (d_u + d_w) + 2B).
// The outer problem over ε1 is transcendental (the paper resorts to
// Newton's method); we run safeguarded Newton with a golden-section
// fallback on G(ε1) = F(ε1, α*(ε1)).

#ifndef CNE_CORE_ALLOCATION_H_
#define CNE_CORE_ALLOCATION_H_

namespace cne {

/// Optimized budget split and estimator weighting.
struct AllocationResult {
  double epsilon1 = 0.0;  ///< budget for randomized response
  double epsilon2 = 0.0;  ///< budget for the Laplace mechanism
  double alpha = 0.5;     ///< weight of f̃_u in f* = α f̃_u + (1-α) f̃_w
  double predicted_loss = 0.0;
  int iterations = 0;
};

/// Closed-form minimizer of F(ε1, ·): the α that balances the RR error of
/// the two single-source estimators against the Laplace error.
double OptimalAlpha(double deg_u, double deg_w, double epsilon1,
                    double epsilon2);

/// Minimizes F over ε1 ∈ (margin, ε_available - margin) and α ∈ [0, 1].
/// `deg_u`, `deg_w` are (estimates of) the query degrees; they must be
/// positive — callers are expected to have corrected noisy estimates first
/// (see degree_estimation.h).
AllocationResult OptimizeDoubleSource(double epsilon_available, double deg_u,
                                      double deg_w);

/// Minimizes the single-source loss (α pinned to 1) over ε1 — the
/// "optimized MultiR-SS" special case discussed in Section 4.2.
AllocationResult OptimizeSingleSource(double epsilon_available, double deg_u);

}  // namespace cne

#endif  // CNE_CORE_ALLOCATION_H_
