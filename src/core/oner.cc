#include "core/oner.h"

#include "graph/set_ops.h"
#include "ldp/comm_model.h"
#include "ldp/randomized_response.h"

namespace cne {

double OneRClosedForm(uint64_t noisy_intersection, uint64_t noisy_union,
                      uint64_t opposite_size, double flip_probability) {
  const double p = flip_probability;
  const double q = 1.0 - 2.0 * p;
  const double n1 = static_cast<double>(noisy_intersection);
  const double n2 = static_cast<double>(noisy_union);
  const double n = static_cast<double>(opposite_size);
  return (n1 * (1.0 - p) * (1.0 - p) - (n2 - n1) * (1.0 - p) * p +
          (n - n2) * p * p) /
         (q * q);
}

EstimateResult OneREstimator::Estimate(const BipartiteGraph& graph,
                                       const QueryPair& query, double epsilon,
                                       Rng& rng) const {
  const NoisyNeighborSet noisy_u =
      ApplyRandomizedResponse(graph, {query.layer, query.u}, epsilon, rng);
  const NoisyNeighborSet noisy_w =
      ApplyRandomizedResponse(graph, {query.layer, query.w}, epsilon, rng);

  CommLedger ledger;
  ledger.UploadEdges(noisy_u.Size());
  ledger.UploadEdges(noisy_w.Size());

  const uint64_t intersection =
      IntersectionSize(noisy_u.View(), noisy_w.View());
  const uint64_t union_size =
      noisy_u.Size() + noisy_w.Size() - intersection;

  EstimateResult result;
  result.estimate =
      OneRClosedForm(intersection, union_size,
                     graph.NumVertices(Opposite(query.layer)),
                     noisy_u.flip_probability());
  result.rounds = 1;
  result.uploaded_bytes = ledger.UploadedBytes();
  result.downloaded_bytes = ledger.DownloadedBytes();
  result.epsilon1 = epsilon;
  return result;
}

}  // namespace cne
