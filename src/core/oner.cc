#include "core/oner.h"

#include "core/protocol_pipeline.h"

namespace cne {

double OneRClosedForm(uint64_t noisy_intersection, uint64_t noisy_union,
                      uint64_t opposite_size, double flip_probability) {
  return OneRFromCounts(MakeDebiasConstants(flip_probability),
                        noisy_intersection, noisy_union, opposite_size);
}

EstimateResult OneREstimator::Estimate(const BipartiteGraph& graph,
                                       const QueryPair& query, double epsilon,
                                       Rng& rng) const {
  // Thin driver: same releases as Naive, with the φ(i, j) de-biasing
  // applied by the shared pipeline.
  const ProtocolPlan plan =
      MakeProtocolPlan(ProtocolKind::kOneR, epsilon, 0.5);
  const ProtocolOutcome outcome = ExecuteProtocol(graph, query, plan, rng);

  EstimateResult result;
  result.estimate = outcome.estimate;
  result.rounds = outcome.rounds;
  result.uploaded_bytes = outcome.uploaded_bytes;
  result.downloaded_bytes = outcome.downloaded_bytes;
  result.epsilon1 = epsilon;
  return result;
}

}  // namespace cne
