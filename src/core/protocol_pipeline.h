// The shared protocol-execution pipeline.
//
// Naive (Alg. 1), OneR (Alg. 2), MultiR-SS (Alg. 3), and MultiR-DS
// (Alg. 4) all decompose into the same two phases:
//
//   release       each query vertex publishes an ε1-randomized response of
//                 its neighbor list, a Laplace-noised scalar estimator at
//                 ε2, or both;
//   post-process  privacy-free arithmetic on those releases — φ(i, j)
//                 de-biasing, Laplace noise injection, and the
//                 α-combination of the two single-source estimators.
//
// A `ProtocolPlan` captures the release structure (which vertices release
// what, at which ε); `DebiasConstants` holds the de-bias coefficients that
// depend only on the randomized-response budget; `PostProcess` is the one
// definition of the per-query arithmetic. The per-pair estimators
// (naive/oner/multir_ss/multir_ds.cc) are thin drivers over
// `ExecuteProtocol`, and the query service (service/query_service.cc) and
// the workload planner's grouped executor (service/workload_planner.cc)
// drive `PostProcess` and the *FromCounts helpers directly over the shared
// noisy-view store — one implementation, three consumers.

#ifndef CNE_CORE_PROTOCOL_PIPELINE_H_
#define CNE_CORE_PROTOCOL_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "core/estimator.h"
#include "graph/bipartite_graph.h"
#include "ldp/randomized_response.h"
#include "util/rng.h"

namespace cne {

/// The four protocols sharing the pipeline. The service layer aliases this
/// as `ServiceAlgorithm`.
enum class ProtocolKind { kNaive, kOneR, kMultiRSS, kMultiRDS };

/// Display name, e.g. "OneR".
const char* ToString(ProtocolKind kind);

/// Parses a display name ("Naive", "OneR", "MultiR-SS", "MultiR-DS").
std::optional<ProtocolKind> ParseProtocolKind(const std::string& name);

/// The release structure of one protocol execution: which query vertices
/// release what, at which budget. A plan is independent of the query pair —
/// one plan drives a whole workload.
struct ProtocolPlan {
  ProtocolKind kind = ProtocolKind::kOneR;

  /// Randomized-response budget of each released noisy view (the full ε
  /// for Naive/OneR, the ε1 share for the MultiR family).
  double epsilon1 = 0.0;

  /// Laplace budget of each released scalar estimator (0 when the protocol
  /// releases none).
  double epsilon2 = 0.0;

  /// Weight of f_u in the double-source combination (MultiR-DS only).
  double alpha = 0.5;

  /// True when the protocol consumes u's noisy view. MultiR-SS is the one
  /// protocol that does not: only w releases randomized response.
  bool UsesNoisyViewU() const { return kind != ProtocolKind::kMultiRSS; }

  /// True when the protocol consumes w's noisy view (all four do).
  bool UsesNoisyViewW() const { return true; }

  /// True when u releases a Laplace-noised single-source estimator.
  bool LaplaceFromU() const {
    return kind == ProtocolKind::kMultiRSS || kind == ProtocolKind::kMultiRDS;
  }

  /// True when w releases a Laplace-noised single-source estimator.
  bool LaplaceFromW() const { return kind == ProtocolKind::kMultiRDS; }

  int NumLaplaceReleases() const {
    return (LaplaceFromU() ? 1 : 0) + (LaplaceFromW() ? 1 : 0);
  }

  /// Interaction rounds of the release phase: one randomized-response
  /// round, plus one Laplace round when any scalar is released.
  int NumRounds() const { return 1 + (NumLaplaceReleases() > 0 ? 1 : 0); }
};

/// Builds the plan for `kind` under total budget `epsilon`, spending
/// `epsilon1_fraction` of it on randomized response for the MultiR family
/// (Naive/OneR spend everything on it). `alpha` only matters for
/// MultiR-DS.
ProtocolPlan MakeProtocolPlan(ProtocolKind kind, double epsilon,
                              double epsilon1_fraction, double alpha = 0.5);

/// Builds a plan from an explicit (ε1, ε2) split, e.g. one produced by the
/// allocation optimizer.
ProtocolPlan MakeProtocolPlanSplit(ProtocolKind kind, double epsilon1,
                                   double epsilon2, double alpha = 0.5);

/// The φ(i, j) de-bias coefficients of an ε1-randomized-response release.
/// Pure function of the flip probability; in batch execution they are
/// computed once per workload instead of once per query.
struct DebiasConstants {
  double flip_probability = 0.0;  ///< p
  double q = 1.0;                 ///< 1 - 2p

  // Single-source estimator: f = S1 · stay − S2 · flip.
  double stay = 1.0;  ///< (1-p)/q — also the Laplace sensitivity of f
  double flip = 0.0;  ///< p/q

  // OneR closed form: estimate = N1 · c11 − (N2 − N1) · c10 + (n − N2) · c00.
  double c11 = 1.0;  ///< (1-p)² / q²
  double c10 = 0.0;  ///< (1-p)p / q²
  double c00 = 0.0;  ///< p² / q²
};

/// Constants for a release made with flip probability `p`.
DebiasConstants MakeDebiasConstants(double flip_probability);

/// Constants for an ε1-randomized-response release.
DebiasConstants MakeDebiasConstantsForEpsilon(double epsilon1);

/// The OneR estimate from the noisy intersection N1, noisy union N2, and
/// the opposite-layer size n. The one definition of the closed form;
/// OneRClosedForm (oner.h) and every batch path delegate here.
inline double OneRFromCounts(const DebiasConstants& d, uint64_t n1,
                             uint64_t n2, uint64_t opposite_size) {
  return static_cast<double>(n1) * d.c11 -
         static_cast<double>(n2 - n1) * d.c10 +
         static_cast<double>(opposite_size - n2) * d.c00;
}

/// The noiseless single-source estimator f_u from S1 = |N(u) ∩ N'(w)| and
/// deg(u) (so S2 = deg(u) − S1).
inline double SingleSourceFromCounts(const DebiasConstants& d, uint64_t s1,
                                     uint64_t degree) {
  return static_cast<double>(s1) * d.stay -
         static_cast<double>(degree - s1) * d.flip;
}

/// The α-combination of the two Laplace-released single-source estimators.
inline double CombineDoubleSource(double alpha, double f_u, double f_w) {
  return alpha * f_u + (1.0 - alpha) * f_w;
}

/// Unbiased degree estimate from the *size* of a vertex's released noisy
/// view: E[size] = d(1-p) + (n-d)p, so d̂ = (size − p·n)/(1 − 2p). Pure
/// post-processing on an existing release — no extra budget.
inline double DebiasedDegreeFromViewSize(const DebiasConstants& d,
                                         uint64_t view_size,
                                         VertexId domain) {
  return (static_cast<double>(view_size) -
          d.flip_probability * static_cast<double>(domain)) /
         d.q;
}

/// The noiseless single-source estimator f_u built from u's true neighbors
/// and w's noisy neighbor set (before the Laplace release). Convenience
/// wrapper over SingleSourceFromCounts; exposed for MultiR-DS, the query
/// service, and tests.
double SingleSourceEstimate(const BipartiteGraph& graph, LayeredVertex u,
                            const NoisyNeighborSet& noisy_w);

/// The released material of one query, in borrowed form. Views must be
/// present exactly when the plan consumes them; the neighbor spans and
/// `opposite_size` are only read by the protocols that need them.
struct ReleasedInputs {
  const NoisyNeighborSet* view_u = nullptr;
  const NoisyNeighborSet* view_w = nullptr;
  std::span<const VertexId> neighbors_u;  ///< true list (MultiR family)
  std::span<const VertexId> neighbors_w;  ///< true list (MultiR-DS)
  VertexId opposite_size = 0;             ///< |opposite layer| (OneR)
};

/// Post-processes one query's releases into its estimate: the shared
/// definition of the per-query arithmetic. Draws exactly
/// plan.NumLaplaceReleases() Laplace variates from `rng`, f_u's before
/// f_w's; Naive/OneR draw nothing. `debias` must describe an ε1 release
/// (MakeDebiasConstantsForEpsilon(plan.epsilon1)).
double PostProcess(const ProtocolPlan& plan, const DebiasConstants& debias,
                   const ReleasedInputs& inputs, Rng& rng);

/// Outcome of one full per-pair protocol execution.
struct ProtocolOutcome {
  double estimate = 0.0;
  int rounds = 0;
  double uploaded_bytes = 0.0;
  double downloaded_bytes = 0.0;
};

/// Simulates one full protocol execution for `query`: draws the plan's
/// releases from `rng` (u's view, then w's, then the Laplace variates),
/// post-processes them, and accounts communication (each released view is
/// uploaded; the MultiR family additionally downloads every released view
/// to the counterpart vertex and uploads one scalar per Laplace release).
/// The per-pair estimators are thin drivers over this function.
ProtocolOutcome ExecuteProtocol(const BipartiteGraph& graph,
                                const QueryPair& query,
                                const ProtocolPlan& plan, Rng& rng);

}  // namespace cne

#endif  // CNE_CORE_PROTOCOL_PIPELINE_H_
