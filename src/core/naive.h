// Algorithm 1 (Naive): count common neighbors directly on the noisy graph
// built by ε-randomized response. Satisfies ε-edge LDP but overcounts
// severely because the noisy graph is much denser than the input.

#ifndef CNE_CORE_NAIVE_H_
#define CNE_CORE_NAIVE_H_

#include "core/estimator.h"

namespace cne {

/// The Naive estimator f̃1 = |N(u, G'_ε) ∩ N(w, G'_ε)|.
class NaiveEstimator : public CommonNeighborEstimator {
 public:
  std::string Name() const override { return "Naive"; }
  bool IsUnbiased() const override { return false; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;
};

}  // namespace cne

#endif  // CNE_CORE_NAIVE_H_
