// Confidence bounds for the unbiased estimators. The paper closes its
// analysis by noting that Chebyshev's inequality converts the expected L2
// losses into deviation bounds:
//   P(|f - C2| >= k sqrt(Var f)) <= 1/k².
// This module packages that into usable intervals, with the variance
// supplied by the closed forms in core/theory.h.

#ifndef CNE_CORE_BOUNDS_H_
#define CNE_CORE_BOUNDS_H_

namespace cne {

/// A two-sided interval around an estimate.
struct ConfidenceInterval {
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;  ///< at least this coverage probability

  double Width() const { return upper - lower; }
  bool Contains(double x) const { return lower <= x && x <= upper; }
};

/// Chebyshev interval: for an unbiased estimator with the given variance,
/// [estimate ± k·sqrt(variance)] with k = 1/sqrt(1 - confidence) covers
/// the true value with probability at least `confidence` ∈ (0, 1).
ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double confidence);

/// The deviation multiple k such that P(|f - C2| >= k·sigma) <= delta,
/// i.e. k = 1/sqrt(delta) for delta ∈ (0, 1].
double ChebyshevMultiple(double delta);

/// Exact two-sided interval for a pure Laplace release (CentralDP):
/// [estimate ± b·ln(1/(1-confidence))] with scale b — tighter than
/// Chebyshev because the noise law is known.
ConfidenceInterval LaplaceInterval(double estimate, double scale,
                                   double confidence);

}  // namespace cne

#endif  // CNE_CORE_BOUNDS_H_
