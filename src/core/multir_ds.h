// Algorithm 4 (MultiR-DS): three-round double-source estimation.
//
// Round 1 (ε0): u, w, and every vertex on the query layer report
// Laplace-noised degrees; negative reports for u/w are corrected with the
// layer's noisy average degree. The curator solves for the (ε1, α) pair
// minimizing the predicted loss of f* = α f̃_u + (1-α) f̃_w.
// Round 2 (ε1): both query vertices run randomized response; each
// downloads the other's noisy edges.
// Round 3 (ε2): each query vertex builds its single-source estimator and
// releases it via the Laplace mechanism; the curator returns the weighted
// average.
//
// Variants (paper, Section 5.1):
//  * MultiR-DS-Basic — fixed ε1 fraction, α = 1/2, no degree round.
//  * MultiR-DS*      — degrees public: optimization without the ε0 round.

#ifndef CNE_CORE_MULTIR_DS_H_
#define CNE_CORE_MULTIR_DS_H_

#include <memory>
#include <string>

#include "core/estimator.h"

namespace cne {

/// Configuration of the double-source family.
struct MultiRDSOptions {
  /// Fraction of ε reserved for the degree-estimation round (paper: 0.05).
  double epsilon0_fraction = 0.05;

  /// When true, skip the ε0 round and use the exact degrees (MultiR-DS*).
  bool public_degrees = false;

  /// When false, skip optimization: α = 1/2 and ε1 = basic_epsilon1_fraction
  /// of the post-ε0 budget (MultiR-DS-Basic, which also skips the ε0 round).
  bool optimize = true;

  /// RR budget share for the non-optimized variant.
  double basic_epsilon1_fraction = 0.5;

  /// Display name override; empty -> derived from the flags.
  std::string name;
};

/// The MultiR-DS estimator family.
class MultiRDSEstimator : public CommonNeighborEstimator {
 public:
  explicit MultiRDSEstimator(MultiRDSOptions options = {});

  std::string Name() const override;
  bool IsUnbiased() const override { return true; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;

  const MultiRDSOptions& options() const { return options_; }

 private:
  MultiRDSOptions options_;
};

/// Paper-default MultiR-DS (ε0 = 0.05ε, optimized ε1 and α).
std::unique_ptr<MultiRDSEstimator> MakeMultiRDS();

/// MultiR-DS-Basic: (f̃_u + f̃_w)/2 with a fixed ε1 fraction, no ε0 round.
std::unique_ptr<MultiRDSEstimator> MakeMultiRDSBasic(
    double epsilon1_fraction = 0.5);

/// MultiR-DS*: public degrees, optimized allocation, no ε0 round.
std::unique_ptr<MultiRDSEstimator> MakeMultiRDSStar();

}  // namespace cne

#endif  // CNE_CORE_MULTIR_DS_H_
