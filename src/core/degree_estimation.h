// Private degree estimation, the ε0 round of MultiR-DS (Alg. 4, lines 1-5):
// each vertex reports deg + Lap(1/ε0); negative reports are corrected with
// the (privately estimated) average degree of the query layer.

#ifndef CNE_CORE_DEGREE_ESTIMATION_H_
#define CNE_CORE_DEGREE_ESTIMATION_H_

#include "graph/bipartite_graph.h"
#include "util/rng.h"

namespace cne {

/// Releases deg(v) + Lap(1/epsilon0). Sensitivity of a degree is 1.
double EstimateDegree(const BipartiteGraph& graph, LayeredVertex v,
                      double epsilon0, Rng& rng);

/// Mean of the noisy degrees of every vertex in `layer`, each perturbed
/// with Lap(1/epsilon0). For layers larger than an internal threshold the
/// aggregate Laplace noise on the mean is drawn from its CLT Gaussian
/// approximation instead of summing n individual draws — statistically
/// equivalent at that scale and O(1) instead of O(n). (Communication is
/// still O(n) scalars; callers account for it.)
double EstimateAverageDegree(const BipartiteGraph& graph, Layer layer,
                             double epsilon0, Rng& rng);

/// Correction of Alg. 4 line 5: replaces a non-positive degree estimate by
/// the average-degree estimate (floored at `min_degree` so downstream
/// optimization stays well-posed).
double CorrectDegreeEstimate(double noisy_degree, double average_degree,
                             double min_degree = 1.0);

}  // namespace cne

#endif  // CNE_CORE_DEGREE_ESTIMATION_H_
