#include "core/protocol_pipeline.h"

#include "graph/set_ops.h"
#include "ldp/comm_model.h"
#include "ldp/laplace_mechanism.h"
#include "util/logging.h"

namespace cne {

const char* ToString(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kNaive:
      return "Naive";
    case ProtocolKind::kOneR:
      return "OneR";
    case ProtocolKind::kMultiRSS:
      return "MultiR-SS";
    case ProtocolKind::kMultiRDS:
      return "MultiR-DS";
  }
  return "?";
}

std::optional<ProtocolKind> ParseProtocolKind(const std::string& name) {
  for (ProtocolKind kind :
       {ProtocolKind::kNaive, ProtocolKind::kOneR, ProtocolKind::kMultiRSS,
        ProtocolKind::kMultiRDS}) {
    if (name == ToString(kind)) return kind;
  }
  return std::nullopt;
}

ProtocolPlan MakeProtocolPlan(ProtocolKind kind, double epsilon,
                              double epsilon1_fraction, double alpha) {
  CNE_CHECK(epsilon > 0.0) << "epsilon must be positive";
  if (kind == ProtocolKind::kNaive || kind == ProtocolKind::kOneR) {
    return MakeProtocolPlanSplit(kind, epsilon, 0.0, alpha);
  }
  CNE_CHECK(epsilon1_fraction > 0.0 && epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
  const double epsilon1 = epsilon * epsilon1_fraction;
  return MakeProtocolPlanSplit(kind, epsilon1, epsilon - epsilon1, alpha);
}

ProtocolPlan MakeProtocolPlanSplit(ProtocolKind kind, double epsilon1,
                                   double epsilon2, double alpha) {
  ProtocolPlan plan;
  plan.kind = kind;
  plan.epsilon1 = epsilon1;
  plan.epsilon2 = epsilon2;
  plan.alpha = alpha;
  CNE_CHECK(plan.epsilon1 > 0.0) << "epsilon1 must be positive";
  CNE_CHECK(plan.NumLaplaceReleases() == 0 || plan.epsilon2 > 0.0)
      << "the MultiR family needs a positive Laplace budget";
  return plan;
}

DebiasConstants MakeDebiasConstants(double flip_probability) {
  const double p = flip_probability;
  const double q = 1.0 - 2.0 * p;
  DebiasConstants d;
  d.flip_probability = p;
  d.q = q;
  d.stay = (1.0 - p) / q;
  d.flip = p / q;
  const double q2 = q * q;
  d.c11 = (1.0 - p) * (1.0 - p) / q2;
  d.c10 = (1.0 - p) * p / q2;
  d.c00 = p * p / q2;
  return d;
}

DebiasConstants MakeDebiasConstantsForEpsilon(double epsilon1) {
  return MakeDebiasConstants(FlipProbability(epsilon1));
}

double SingleSourceEstimate(const BipartiteGraph& graph, LayeredVertex u,
                            const NoisyNeighborSet& noisy_w) {
  const DebiasConstants d = MakeDebiasConstants(noisy_w.flip_probability());
  const auto neighbors = graph.Neighbors(u);
  // S1 = neighbors of u that are noisy neighbors of w; S2 = the rest.
  // The true list is small and the noisy row huge: the dispatcher probes
  // the bitmap directly, or gallops when w's release stayed sorted.
  const uint64_t s1 =
      IntersectionSize(SetView::Sorted(neighbors), noisy_w.View());
  return SingleSourceFromCounts(d, s1, neighbors.size());
}

double PostProcess(const ProtocolPlan& plan, const DebiasConstants& debias,
                   const ReleasedInputs& inputs, Rng& rng) {
  switch (plan.kind) {
    case ProtocolKind::kNaive: {
      return static_cast<double>(
          IntersectionSize(inputs.view_u->View(), inputs.view_w->View()));
    }
    case ProtocolKind::kOneR: {
      const uint64_t n1 =
          IntersectionSize(inputs.view_u->View(), inputs.view_w->View());
      const uint64_t n2 = inputs.view_u->Size() + inputs.view_w->Size() - n1;
      return OneRFromCounts(debias, n1, n2, inputs.opposite_size);
    }
    case ProtocolKind::kMultiRSS: {
      const uint64_t s1 = IntersectionSize(
          SetView::Sorted(inputs.neighbors_u), inputs.view_w->View());
      const double f_u =
          SingleSourceFromCounts(debias, s1, inputs.neighbors_u.size());
      // debias.stay is the single-source sensitivity (1-p)/(1-2p).
      return LaplaceMechanism(f_u, debias.stay, plan.epsilon2, rng);
    }
    case ProtocolKind::kMultiRDS: {
      const uint64_t s1_u = IntersectionSize(
          SetView::Sorted(inputs.neighbors_u), inputs.view_w->View());
      const uint64_t s1_w = IntersectionSize(
          SetView::Sorted(inputs.neighbors_w), inputs.view_u->View());
      const double f_u = LaplaceMechanism(
          SingleSourceFromCounts(debias, s1_u, inputs.neighbors_u.size()),
          debias.stay, plan.epsilon2, rng);
      const double f_w = LaplaceMechanism(
          SingleSourceFromCounts(debias, s1_w, inputs.neighbors_w.size()),
          debias.stay, plan.epsilon2, rng);
      return CombineDoubleSource(plan.alpha, f_u, f_w);
    }
  }
  CNE_CHECK(false) << "unreachable";
  return 0.0;
}

ProtocolOutcome ExecuteProtocol(const BipartiteGraph& graph,
                                const QueryPair& query,
                                const ProtocolPlan& plan, Rng& rng) {
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  CommLedger comm;

  // Release phase. Draw order is fixed — u's view, then w's, then the
  // Laplace variates inside PostProcess — so one protocol execution is one
  // deterministic function of (graph, query, plan, rng state).
  NoisyNeighborSet noisy_u, noisy_w;
  if (plan.UsesNoisyViewU()) {
    noisy_u = ApplyRandomizedResponse(graph, u, plan.epsilon1, rng);
  }
  noisy_w = ApplyRandomizedResponse(graph, w, plan.epsilon1, rng);

  const bool interactive = plan.NumLaplaceReleases() > 0;
  if (plan.UsesNoisyViewU()) {
    comm.UploadEdges(noisy_u.Size());
    if (interactive) comm.DownloadEdges(noisy_u.Size());
  }
  comm.UploadEdges(noisy_w.Size());
  if (interactive) comm.DownloadEdges(noisy_w.Size());
  comm.UploadScalars(plan.NumLaplaceReleases());

  ReleasedInputs inputs;
  inputs.view_u = plan.UsesNoisyViewU() ? &noisy_u : nullptr;
  inputs.view_w = &noisy_w;
  inputs.neighbors_u = graph.Neighbors(u);
  inputs.neighbors_w = graph.Neighbors(w);
  inputs.opposite_size = graph.NumVertices(Opposite(query.layer));

  ProtocolOutcome outcome;
  outcome.estimate = PostProcess(
      plan, MakeDebiasConstantsForEpsilon(plan.epsilon1), inputs, rng);
  outcome.rounds = plan.NumRounds();
  outcome.uploaded_bytes = comm.UploadedBytes();
  outcome.downloaded_bytes = comm.DownloadedBytes();
  return outcome;
}

}  // namespace cne
