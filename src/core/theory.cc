#include "core/theory.h"

#include <cmath>

#include "ldp/laplace_mechanism.h"
#include "ldp/randomized_response.h"

namespace cne {

namespace {

/// Success probabilities of the product bit A'[u,v]·A'[v,w] for the three
/// candidate classes: common neighbor, exclusive neighbor, non-neighbor.
struct CandidateClasses {
  double q_common;     ///< both true bits 1 -> (1-p)^2
  double q_exclusive;  ///< exactly one true bit 1 -> p(1-p)
  double q_neither;    ///< both true bits 0 -> p^2
  double n_common;
  double n_exclusive;
  double n_neither;
};

CandidateClasses Classify(double n1, double deg_u, double deg_w, double c2,
                          double p) {
  CandidateClasses c;
  c.q_common = (1.0 - p) * (1.0 - p);
  c.q_exclusive = p * (1.0 - p);
  c.q_neither = p * p;
  c.n_common = c2;
  c.n_exclusive = (deg_u - c2) + (deg_w - c2);
  c.n_neither = n1 - deg_u - deg_w + c2;
  return c;
}

}  // namespace

double NaiveExpectedValue(double n1, double deg_u, double deg_w, double c2,
                          double epsilon) {
  const double p = FlipProbability(epsilon);
  const CandidateClasses c = Classify(n1, deg_u, deg_w, c2, p);
  return c.n_common * c.q_common + c.n_exclusive * c.q_exclusive +
         c.n_neither * c.q_neither;
}

double NaiveExpectedL2(double n1, double deg_u, double deg_w, double c2,
                       double epsilon) {
  const double p = FlipProbability(epsilon);
  const CandidateClasses c = Classify(n1, deg_u, deg_w, c2, p);
  // The naive count is a sum of independent Bernoulli(q_v) bits, so its
  // variance is sum q_v (1 - q_v) and its bias is E - c2.
  const double variance = c.n_common * c.q_common * (1.0 - c.q_common) +
                          c.n_exclusive * c.q_exclusive * (1.0 - c.q_exclusive) +
                          c.n_neither * c.q_neither * (1.0 - c.q_neither);
  const double bias = NaiveExpectedValue(n1, deg_u, deg_w, c2, epsilon) - c2;
  return variance + bias * bias;
}

double OneRExpectedL2(double n1, double deg_u, double deg_w, double epsilon) {
  const double p = FlipProbability(epsilon);
  const double s = p * (1.0 - p);            // Var of a shifted RR bit
  const double q = 1.0 - 2.0 * p;            // de-biasing denominator
  return s * s / (q * q * q * q) * n1 + s / (q * q) * (deg_u + deg_w);
}

double SingleSourceExpectedL2(double deg_u, double epsilon1,
                              double epsilon2) {
  const double p = FlipProbability(epsilon1);
  const double q = 1.0 - 2.0 * p;
  const double rr_term = p * (1.0 - p) / (q * q) * deg_u;
  const double laplace_term =
      LaplaceVariance(SingleSourceSensitivity(epsilon1), epsilon2);
  return rr_term + laplace_term;
}

double DoubleSourceExpectedL2(double deg_u, double deg_w, double alpha,
                              double epsilon1, double epsilon2) {
  // f̃_u and f̃_w depend on disjoint noisy edges, so they are independent
  // and the variance of the weighted average is the weighted sum.
  const double beta = 1.0 - alpha;
  const double p = FlipProbability(epsilon1);
  const double q = 1.0 - 2.0 * p;
  const double a = p * (1.0 - p) / (q * q);
  const double b = LaplaceVariance(SingleSourceSensitivity(epsilon1),
                                   epsilon2);
  return a * (alpha * alpha * deg_u + beta * beta * deg_w) +
         b * (alpha * alpha + beta * beta);
}

double CentralDpExpectedL2(double epsilon) {
  return LaplaceVariance(/*sensitivity=*/1.0, epsilon);
}

double NaiveL2Order(double n1, double epsilon) {
  const double e = std::exp(epsilon);
  return n1 * n1 * e * e * e * e / std::pow(1.0 + e, 4.0);
}

double OneRL2Order(double n1, double epsilon) {
  const double e = std::exp(epsilon);
  return n1 * e * e / std::pow(1.0 - e, 4.0);
}

}  // namespace cne
