// Algorithm 2 (OneR): one-round unbiased estimation. Each candidate v on
// the opposite layer contributes φ(u,v)·φ(v,w) where
// φ(i,j) = (A'[i,j] - p) / (1 - 2p) is the unbiased de-biased bit
// (Section 3.1). Implemented with the closed-form expansion over the
// intersection/union sizes of the two noisy neighbor sets, so the curator
// never scans all n1 candidates.

#ifndef CNE_CORE_ONER_H_
#define CNE_CORE_ONER_H_

#include "core/estimator.h"

namespace cne {

/// The OneR estimator f̃2 of Theorem 3.
class OneREstimator : public CommonNeighborEstimator {
 public:
  std::string Name() const override { return "OneR"; }
  bool IsUnbiased() const override { return true; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;
};

/// The closed-form expansion of Equation 2:
///   f̃2 = N1 (1-p)²/(1-2p)² - (N2-N1)(1-p)p/(1-2p)² + (n1-N2) p²/(1-2p)²
/// where N1/N2 are the intersection/union sizes of the noisy neighbor sets
/// and n1 the opposite-layer size. Exposed for direct testing.
double OneRClosedForm(uint64_t noisy_intersection, uint64_t noisy_union,
                      uint64_t opposite_size, double flip_probability);

}  // namespace cne

#endif  // CNE_CORE_ONER_H_
