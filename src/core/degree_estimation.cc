#include "core/degree_estimation.h"

#include <algorithm>
#include <cmath>

#include "ldp/laplace_mechanism.h"
#include "util/logging.h"

namespace cne {

namespace {
// Above this layer size the mean of the per-vertex Laplace noises is drawn
// from its Gaussian CLT limit instead of being summed term by term.
constexpr VertexId kCltThreshold = 4096;
}  // namespace

double EstimateDegree(const BipartiteGraph& graph, LayeredVertex v,
                      double epsilon0, Rng& rng) {
  return LaplaceMechanism(static_cast<double>(graph.Degree(v)),
                          kDegreeSensitivity, epsilon0, rng);
}

double EstimateAverageDegree(const BipartiteGraph& graph, Layer layer,
                             double epsilon0, Rng& rng) {
  CNE_CHECK(epsilon0 > 0.0) << "privacy budget must be positive";
  const VertexId n = graph.NumVertices(layer);
  if (n == 0) return 0.0;
  const double true_average = graph.AverageDegree(layer);
  const double b = 1.0 / epsilon0;  // per-vertex Laplace scale
  if (n <= kCltThreshold) {
    double noise_sum = 0.0;
    for (VertexId v = 0; v < n; ++v) noise_sum += rng.Laplace(b);
    return true_average + noise_sum / static_cast<double>(n);
  }
  // Mean of n iid Laplace(b) noises: variance 2b²/n, CLT-normal at this n.
  const double sigma = std::sqrt(2.0 * b * b / static_cast<double>(n));
  return true_average + sigma * rng.Gaussian();
}

double CorrectDegreeEstimate(double noisy_degree, double average_degree,
                             double min_degree) {
  if (noisy_degree > 0.0) return noisy_degree;
  return std::max(average_degree, min_degree);
}

}  // namespace cne
