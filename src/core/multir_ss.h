// Algorithm 3 (MultiR-SS): two-round single-source estimation.
//
// Round 1: vertex w applies ε1-randomized response and uploads its noisy
// edges; vertex u downloads them. Round 2: u combines its *true* neighbor
// list with w's noisy edges into the unbiased estimator
//   f_u = S1 (1-p)/(1-2p) - S2 p/(1-2p),
// where S1 = |N(u,G) ∩ N(w,G'_ε1)| and S2 = |N(u,G) \ N(w,G'_ε1)|, and
// releases it through the Laplace mechanism with sensitivity
// (1-p)/(1-2p) and budget ε2.

#ifndef CNE_CORE_MULTIR_SS_H_
#define CNE_CORE_MULTIR_SS_H_

#include "core/estimator.h"
#include "core/protocol_pipeline.h"  // SingleSourceEstimate and the plan
#include "ldp/randomized_response.h"

namespace cne {

/// MultiR-SS with an even ε1 = ε2 = ε/2 split (the paper's default).
class MultiRSSEstimator : public CommonNeighborEstimator {
 public:
  /// `epsilon1_fraction` is the share of ε spent on randomized response.
  explicit MultiRSSEstimator(double epsilon1_fraction = 0.5);

  std::string Name() const override { return "MultiR-SS"; }
  bool IsUnbiased() const override { return true; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;

 private:
  double epsilon1_fraction_;
};

/// The "optimized MultiR-SS" discussed in Section 4.2: spends ε0 on a
/// noisy estimate of deg(u), then picks the (ε1, ε2) split minimizing the
/// predicted Theorem-6 loss with Newton's method. Equivalent to MultiR-DS
/// pinned at α = 1; only outperforms the even split when deg(u) is large.
class MultiRSSOptEstimator : public CommonNeighborEstimator {
 public:
  /// `epsilon0_fraction` is the degree-round share (paper's DS uses 0.05);
  /// with `public_degrees` the ε0 round is skipped and the true degree
  /// drives the optimization.
  explicit MultiRSSOptEstimator(double epsilon0_fraction = 0.05,
                                bool public_degrees = false);

  std::string Name() const override { return "MultiR-SS-Opt"; }
  bool IsUnbiased() const override { return true; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;

 private:
  double epsilon0_fraction_;
  bool public_degrees_;
};

}  // namespace cne

#endif  // CNE_CORE_MULTIR_SS_H_
