#include "core/estimator.h"

#include "core/central_dp.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"

namespace cne {

std::vector<std::unique_ptr<CommonNeighborEstimator>> MakeAllEstimators() {
  std::vector<std::unique_ptr<CommonNeighborEstimator>> estimators;
  estimators.push_back(std::make_unique<NaiveEstimator>());
  estimators.push_back(std::make_unique<OneREstimator>());
  estimators.push_back(std::make_unique<MultiRSSEstimator>());
  estimators.push_back(MakeMultiRDS());
  estimators.push_back(MakeMultiRDSStar());
  estimators.push_back(std::make_unique<CentralDpEstimator>());
  return estimators;
}

}  // namespace cne
