// Public interface of the common-neighborhood estimators.
//
// Every algorithm in the paper — Naive (Alg. 1), OneR (Alg. 2), MultiR-SS
// (Alg. 3), MultiR-DS (Alg. 4) and its variants, plus the CentralDP
// baseline — implements `CommonNeighborEstimator`. One call simulates a
// full protocol execution between the query vertices and the data curator
// for a single query pair and privacy budget, and reports the estimate
// together with the protocol's round count and communication volume.

#ifndef CNE_CORE_ESTIMATOR_H_
#define CNE_CORE_ESTIMATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "ldp/budget.h"
#include "util/rng.h"

namespace cne {

/// Outcome of one protocol execution.
struct EstimateResult {
  /// The (possibly noisy) estimate of C2(u, w).
  double estimate = 0.0;

  /// Number of interaction rounds between vertices and curator.
  int rounds = 0;

  /// Simulated communication volume (see ldp/comm_model.h).
  double uploaded_bytes = 0.0;
  double downloaded_bytes = 0.0;

  double TotalBytes() const { return uploaded_bytes + downloaded_bytes; }

  // --- diagnostics (filled by algorithms that use them, else 0) ---
  double epsilon0 = 0.0;  ///< budget spent on degree estimation
  double epsilon1 = 0.0;  ///< budget spent on randomized response
  double epsilon2 = 0.0;  ///< budget spent on the Laplace mechanism
  double alpha = 0.0;     ///< weighting of f_u in the double-source combo
  double noisy_degree_u = 0.0;  ///< degree estimate for u (MultiR-DS)
  double noisy_degree_w = 0.0;  ///< degree estimate for w (MultiR-DS)
};

/// A same-layer query pair.
struct QueryPair {
  Layer layer = Layer::kLower;
  VertexId u = 0;
  VertexId w = 0;
};

/// Interface of every common-neighborhood estimation protocol.
class CommonNeighborEstimator {
 public:
  virtual ~CommonNeighborEstimator() = default;

  /// Short display name, e.g. "MultiR-DS".
  virtual std::string Name() const = 0;

  /// Runs one protocol execution estimating C2(query.u, query.w) on
  /// `graph` under total privacy budget `epsilon`. Randomness is drawn
  /// exclusively from `rng` so runs are reproducible.
  virtual EstimateResult Estimate(const BipartiteGraph& graph,
                                  const QueryPair& query, double epsilon,
                                  Rng& rng) const = 0;

  /// True when E[estimate] = C2 for every graph/query/budget.
  virtual bool IsUnbiased() const = 0;

  /// True for protocols satisfying ε-edge LDP (everything except the
  /// CentralDP baseline, which assumes a trusted curator).
  virtual bool IsLocal() const { return true; }
};

/// Builds the full algorithm roster used across the paper's experiments:
/// Naive, OneR, MultiR-SS, MultiR-DS, MultiR-DS-Basic, MultiR-DS*,
/// CentralDP.
std::vector<std::unique_ptr<CommonNeighborEstimator>> MakeAllEstimators();

}  // namespace cne

#endif  // CNE_CORE_ESTIMATOR_H_
