#include "core/batch.h"

#include <unordered_map>

#include "core/oner.h"
#include "util/logging.h"

namespace cne {

namespace {

// Releases one noisy set per distinct query vertex and hands each pair's
// sets to `combine`.
template <typename Combine>
BatchResult RunBatch(const BipartiteGraph& graph,
                     const std::vector<QueryPair>& queries, double epsilon,
                     Rng& rng, Combine combine) {
  CNE_CHECK(!queries.empty()) << "empty batch";
  const Layer layer = queries.front().layer;
  for (const QueryPair& q : queries) {
    CNE_CHECK(q.layer == layer) << "batch mixes query layers";
  }

  BatchResult result;
  std::unordered_map<VertexId, NoisyNeighborSet> released;
  auto release = [&](VertexId v) -> const NoisyNeighborSet& {
    auto it = released.find(v);
    if (it == released.end()) {
      it = released
               .emplace(v, ApplyRandomizedResponse(graph, {layer, v},
                                                   epsilon, rng))
               .first;
      result.uploaded_bytes += 4.0 * static_cast<double>(it->second.Size());
      ++result.vertices_released;
    }
    return it->second;
  };

  result.answers.reserve(queries.size());
  for (const QueryPair& q : queries) {
    const NoisyNeighborSet& noisy_u = release(q.u);
    const NoisyNeighborSet& noisy_w = release(q.w);
    result.answers.push_back({q, combine(noisy_u, noisy_w)});
  }
  return result;
}

}  // namespace

BatchResult BatchOneR(const BipartiteGraph& graph,
                      const std::vector<QueryPair>& queries, double epsilon,
                      Rng& rng) {
  const VertexId opposite =
      graph.NumVertices(Opposite(queries.empty() ? Layer::kLower
                                                 : queries.front().layer));
  return RunBatch(
      graph, queries, epsilon, rng,
      [&](const NoisyNeighborSet& a, const NoisyNeighborSet& b) {
        const uint64_t n1 = SortedIntersectionSize(a.SortedMembers(),
                                                   b.SortedMembers());
        const uint64_t n2 = a.Size() + b.Size() - n1;
        return OneRClosedForm(n1, n2, opposite, a.flip_probability());
      });
}

BatchResult BatchNaive(const BipartiteGraph& graph,
                       const std::vector<QueryPair>& queries, double epsilon,
                       Rng& rng) {
  return RunBatch(graph, queries, epsilon, rng,
                  [](const NoisyNeighborSet& a, const NoisyNeighborSet& b) {
                    return static_cast<double>(SortedIntersectionSize(
                        a.SortedMembers(), b.SortedMembers()));
                  });
}

}  // namespace cne
