#include "core/central_dp.h"

#include "ldp/laplace_mechanism.h"

namespace cne {

EstimateResult CentralDpEstimator::Estimate(const BipartiteGraph& graph,
                                            const QueryPair& query,
                                            double epsilon, Rng& rng) const {
  const double c2 = static_cast<double>(
      graph.CountCommonNeighbors(query.layer, query.u, query.w));
  EstimateResult result;
  result.estimate = LaplaceMechanism(c2, /*sensitivity=*/1.0, epsilon, rng);
  result.rounds = 0;  // no vertex/curator interaction in the central model
  result.epsilon2 = epsilon;
  return result;
}

}  // namespace cne
