#include "core/allocation.h"

#include <algorithm>
#include <cmath>

#include "core/theory.h"
#include "ldp/laplace_mechanism.h"
#include "ldp/randomized_response.h"
#include "util/logging.h"
#include "util/newton.h"

namespace cne {

namespace {

// Variance coefficients of the double-source loss at a given split:
// A multiplies the degree terms (randomized-response error), B multiplies
// the α-mixing terms (Laplace error).
struct LossCoefficients {
  double a;
  double b;
};

LossCoefficients Coefficients(double epsilon1, double epsilon2) {
  const double p = FlipProbability(epsilon1);
  const double q = 1.0 - 2.0 * p;
  return {p * (1.0 - p) / (q * q),
          LaplaceVariance(SingleSourceSensitivity(epsilon1), epsilon2)};
}

// Keep ε1 and ε2 away from 0, where the loss diverges and FlipProbability
// degenerates.
constexpr double kMarginFraction = 0.02;

}  // namespace

double OptimalAlpha(double deg_u, double deg_w, double epsilon1,
                    double epsilon2) {
  const auto [a, b] = Coefficients(epsilon1, epsilon2);
  // dF/dα = 2A(α d_u - (1-α) d_w) + 2B(2α - 1) = 0.
  const double alpha = (a * deg_w + b) / (a * (deg_u + deg_w) + 2.0 * b);
  return std::clamp(alpha, 0.0, 1.0);
}

AllocationResult OptimizeDoubleSource(double epsilon_available, double deg_u,
                                      double deg_w) {
  CNE_CHECK(epsilon_available > 0.0) << "no budget available";
  CNE_CHECK(deg_u > 0.0 && deg_w > 0.0)
      << "degrees must be positive (correct noisy estimates first)";
  const double margin = epsilon_available * kMarginFraction;
  const double lo = margin;
  const double hi = epsilon_available - margin;

  auto loss_at = [&](double eps1) {
    const double eps2 = epsilon_available - eps1;
    const double alpha = OptimalAlpha(deg_u, deg_w, eps1, eps2);
    return DoubleSourceExpectedL2(deg_u, deg_w, alpha, eps1, eps2);
  };

  const MinimizeResult min = NewtonMinimize(loss_at, lo, hi, 1e-8);
  AllocationResult result;
  result.epsilon1 = min.x;
  result.epsilon2 = epsilon_available - min.x;
  result.alpha = OptimalAlpha(deg_u, deg_w, result.epsilon1, result.epsilon2);
  result.predicted_loss = min.value;
  result.iterations = min.iterations;
  return result;
}

AllocationResult OptimizeSingleSource(double epsilon_available,
                                      double deg_u) {
  CNE_CHECK(epsilon_available > 0.0) << "no budget available";
  CNE_CHECK(deg_u > 0.0) << "degree must be positive";
  const double margin = epsilon_available * kMarginFraction;
  auto loss_at = [&](double eps1) {
    return SingleSourceExpectedL2(deg_u, eps1, epsilon_available - eps1);
  };
  const MinimizeResult min =
      NewtonMinimize(loss_at, margin, epsilon_available - margin, 1e-8);
  AllocationResult result;
  result.epsilon1 = min.x;
  result.epsilon2 = epsilon_available - min.x;
  result.alpha = 1.0;
  result.predicted_loss = min.value;
  result.iterations = min.iterations;
  return result;
}

}  // namespace cne
