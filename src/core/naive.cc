#include "core/naive.h"

#include "graph/set_ops.h"
#include "ldp/comm_model.h"
#include "ldp/randomized_response.h"

namespace cne {

EstimateResult NaiveEstimator::Estimate(const BipartiteGraph& graph,
                                        const QueryPair& query,
                                        double epsilon, Rng& rng) const {
  // Vertex side: u and w perturb their neighbor lists with the full budget
  // and upload the noisy edges.
  const NoisyNeighborSet noisy_u =
      ApplyRandomizedResponse(graph, {query.layer, query.u}, epsilon, rng);
  const NoisyNeighborSet noisy_w =
      ApplyRandomizedResponse(graph, {query.layer, query.w}, epsilon, rng);

  CommLedger ledger;
  ledger.UploadEdges(noisy_u.Size());
  ledger.UploadEdges(noisy_w.Size());

  // Curator side: intersect the two noisy neighbor sets through the
  // adaptive dispatcher (word-AND when both releases are dense bitmaps).
  const uint64_t intersection =
      IntersectionSize(noisy_u.View(), noisy_w.View());

  EstimateResult result;
  result.estimate = static_cast<double>(intersection);
  result.rounds = 1;
  result.uploaded_bytes = ledger.UploadedBytes();
  result.downloaded_bytes = ledger.DownloadedBytes();
  result.epsilon1 = epsilon;  // everything goes to randomized response
  return result;
}

}  // namespace cne
