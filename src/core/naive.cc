#include "core/naive.h"

#include "core/protocol_pipeline.h"

namespace cne {

EstimateResult NaiveEstimator::Estimate(const BipartiteGraph& graph,
                                        const QueryPair& query,
                                        double epsilon, Rng& rng) const {
  // Thin driver: both vertices release randomized response with the full
  // budget and the curator counts the raw noisy intersection — the
  // pipeline with no de-biasing applied.
  const ProtocolPlan plan =
      MakeProtocolPlan(ProtocolKind::kNaive, epsilon, 0.5);
  const ProtocolOutcome outcome = ExecuteProtocol(graph, query, plan, rng);

  EstimateResult result;
  result.estimate = outcome.estimate;
  result.rounds = outcome.rounds;
  result.uploaded_bytes = outcome.uploaded_bytes;
  result.downloaded_bytes = outcome.downloaded_bytes;
  result.epsilon1 = epsilon;  // everything goes to randomized response
  return result;
}

}  // namespace cne
