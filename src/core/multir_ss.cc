#include "core/multir_ss.h"

#include "core/allocation.h"
#include "core/degree_estimation.h"
#include "core/protocol_pipeline.h"
#include "ldp/comm_model.h"
#include "util/logging.h"

namespace cne {

MultiRSSEstimator::MultiRSSEstimator(double epsilon1_fraction)
    : epsilon1_fraction_(epsilon1_fraction) {
  CNE_CHECK(epsilon1_fraction > 0.0 && epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
}

EstimateResult MultiRSSEstimator::Estimate(const BipartiteGraph& graph,
                                           const QueryPair& query,
                                           double epsilon, Rng& rng) const {
  // Thin driver: w's ε1 randomized response, downloaded by u; u releases
  // the de-biased single-source estimator through Laplace at ε2.
  const ProtocolPlan plan =
      MakeProtocolPlan(ProtocolKind::kMultiRSS, epsilon, epsilon1_fraction_);
  const ProtocolOutcome outcome = ExecuteProtocol(graph, query, plan, rng);

  EstimateResult result;
  result.estimate = outcome.estimate;
  result.rounds = outcome.rounds;
  result.uploaded_bytes = outcome.uploaded_bytes;
  result.downloaded_bytes = outcome.downloaded_bytes;
  result.epsilon1 = plan.epsilon1;
  result.epsilon2 = plan.epsilon2;
  result.alpha = 1.0;
  return result;
}

MultiRSSOptEstimator::MultiRSSOptEstimator(double epsilon0_fraction,
                                           bool public_degrees)
    : epsilon0_fraction_(epsilon0_fraction),
      public_degrees_(public_degrees) {
  CNE_CHECK(epsilon0_fraction > 0.0 && epsilon0_fraction < 1.0)
      << "epsilon0 fraction must lie in (0, 1)";
}

EstimateResult MultiRSSOptEstimator::Estimate(const BipartiteGraph& graph,
                                              const QueryPair& query,
                                              double epsilon,
                                              Rng& rng) const {
  CommLedger ledger;
  const LayeredVertex u{query.layer, query.u};
  int rounds = 0;

  // Optional ε0 round: estimate deg(u) to drive the split optimization.
  double epsilon0 = 0.0;
  double deg_u_est;
  if (public_degrees_) {
    deg_u_est =
        CorrectDegreeEstimate(static_cast<double>(graph.Degree(u)), 1.0);
  } else {
    epsilon0 = epsilon * epsilon0_fraction_;
    const double noisy = EstimateDegree(graph, u, epsilon0, rng);
    const double avg =
        EstimateAverageDegree(graph, query.layer, epsilon0, rng);
    deg_u_est = CorrectDegreeEstimate(noisy, avg);
    ledger.UploadScalars(graph.NumVertices(query.layer));
    ++rounds;
  }

  const AllocationResult allocation =
      OptimizeSingleSource(epsilon - epsilon0, deg_u_est);

  // Remaining rounds: the shared pipeline with the optimized split.
  const ProtocolPlan plan = MakeProtocolPlanSplit(
      ProtocolKind::kMultiRSS, allocation.epsilon1, allocation.epsilon2);
  const ProtocolOutcome outcome = ExecuteProtocol(graph, query, plan, rng);

  EstimateResult result;
  result.estimate = outcome.estimate;
  result.rounds = rounds + outcome.rounds;
  result.uploaded_bytes = ledger.UploadedBytes() + outcome.uploaded_bytes;
  result.downloaded_bytes =
      ledger.DownloadedBytes() + outcome.downloaded_bytes;
  result.epsilon0 = epsilon0;
  result.epsilon1 = allocation.epsilon1;
  result.epsilon2 = allocation.epsilon2;
  result.alpha = 1.0;
  result.noisy_degree_u = deg_u_est;
  return result;
}

}  // namespace cne
