#include "core/multir_ss.h"

#include "core/allocation.h"
#include "core/degree_estimation.h"
#include "graph/set_ops.h"
#include "ldp/comm_model.h"
#include "ldp/laplace_mechanism.h"
#include "util/logging.h"

namespace cne {

double SingleSourceEstimate(const BipartiteGraph& graph, LayeredVertex u,
                            const NoisyNeighborSet& noisy_w) {
  const double p = noisy_w.flip_probability();
  const double q = 1.0 - 2.0 * p;
  const auto neighbors = graph.Neighbors(u);
  // S1 = neighbors of u that are noisy neighbors of w; S2 = the rest.
  // The true list is small and the noisy row huge: the dispatcher probes
  // the bitmap directly, or gallops when w's release stayed sorted.
  const uint64_t s1 =
      IntersectionSize(SetView::Sorted(neighbors), noisy_w.View());
  const uint64_t s2 = neighbors.size() - s1;
  return static_cast<double>(s1) * (1.0 - p) / q -
         static_cast<double>(s2) * p / q;
}

MultiRSSEstimator::MultiRSSEstimator(double epsilon1_fraction)
    : epsilon1_fraction_(epsilon1_fraction) {
  CNE_CHECK(epsilon1_fraction > 0.0 && epsilon1_fraction < 1.0)
      << "epsilon1 fraction must lie in (0, 1)";
}

EstimateResult MultiRSSEstimator::Estimate(const BipartiteGraph& graph,
                                           const QueryPair& query,
                                           double epsilon, Rng& rng) const {
  const double epsilon1 = epsilon * epsilon1_fraction_;
  const double epsilon2 = epsilon - epsilon1;
  CommLedger ledger;

  // Round 1: w perturbs its neighbor list with ε1; u downloads the noisy
  // edges from the curator.
  const NoisyNeighborSet noisy_w =
      ApplyRandomizedResponse(graph, {query.layer, query.w}, epsilon1, rng);
  ledger.UploadEdges(noisy_w.Size());
  ledger.DownloadEdges(noisy_w.Size());

  // Round 2: u builds f_u locally and releases it with the Laplace
  // mechanism at sensitivity (1-p)/(1-2p).
  const double f_u =
      SingleSourceEstimate(graph, {query.layer, query.u}, noisy_w);
  const double released = LaplaceMechanism(
      f_u, SingleSourceSensitivity(epsilon1), epsilon2, rng);
  ledger.UploadScalars(1);

  EstimateResult result;
  result.estimate = released;
  result.rounds = 2;
  result.uploaded_bytes = ledger.UploadedBytes();
  result.downloaded_bytes = ledger.DownloadedBytes();
  result.epsilon1 = epsilon1;
  result.epsilon2 = epsilon2;
  result.alpha = 1.0;
  return result;
}

MultiRSSOptEstimator::MultiRSSOptEstimator(double epsilon0_fraction,
                                           bool public_degrees)
    : epsilon0_fraction_(epsilon0_fraction),
      public_degrees_(public_degrees) {
  CNE_CHECK(epsilon0_fraction > 0.0 && epsilon0_fraction < 1.0)
      << "epsilon0 fraction must lie in (0, 1)";
}

EstimateResult MultiRSSOptEstimator::Estimate(const BipartiteGraph& graph,
                                              const QueryPair& query,
                                              double epsilon,
                                              Rng& rng) const {
  CommLedger ledger;
  const LayeredVertex u{query.layer, query.u};
  const LayeredVertex w{query.layer, query.w};
  int rounds = 0;

  // Optional ε0 round: estimate deg(u) to drive the split optimization.
  double epsilon0 = 0.0;
  double deg_u_est;
  if (public_degrees_) {
    deg_u_est =
        CorrectDegreeEstimate(static_cast<double>(graph.Degree(u)), 1.0);
  } else {
    epsilon0 = epsilon * epsilon0_fraction_;
    const double noisy = EstimateDegree(graph, u, epsilon0, rng);
    const double avg =
        EstimateAverageDegree(graph, query.layer, epsilon0, rng);
    deg_u_est = CorrectDegreeEstimate(noisy, avg);
    ledger.UploadScalars(graph.NumVertices(query.layer));
    ++rounds;
  }

  const AllocationResult allocation =
      OptimizeSingleSource(epsilon - epsilon0, deg_u_est);

  // Round: w's randomized response, downloaded by u.
  const NoisyNeighborSet noisy_w =
      ApplyRandomizedResponse(graph, w, allocation.epsilon1, rng);
  ledger.UploadEdges(noisy_w.Size());
  ledger.DownloadEdges(noisy_w.Size());
  ++rounds;

  // Round: Laplace release of f_u.
  const double f_u = SingleSourceEstimate(graph, u, noisy_w);
  const double released =
      LaplaceMechanism(f_u, SingleSourceSensitivity(allocation.epsilon1),
                       allocation.epsilon2, rng);
  ledger.UploadScalars(1);
  ++rounds;

  EstimateResult result;
  result.estimate = released;
  result.rounds = rounds;
  result.uploaded_bytes = ledger.UploadedBytes();
  result.downloaded_bytes = ledger.DownloadedBytes();
  result.epsilon0 = epsilon0;
  result.epsilon1 = allocation.epsilon1;
  result.epsilon2 = allocation.epsilon2;
  result.alpha = 1.0;
  result.noisy_degree_u = deg_u_est;
  return result;
}

}  // namespace cne
