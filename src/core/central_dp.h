// CentralDP baseline: a trusted curator with access to the whole graph
// releases C2(u, w) + Lap(1/ε). The global sensitivity of a common-
// neighbor count under central edge DP is 1 (one edge changes the count by
// at most one). Not an edge-LDP protocol; included for the utility
// comparison in the paper's experiments.

#ifndef CNE_CORE_CENTRAL_DP_H_
#define CNE_CORE_CENTRAL_DP_H_

#include "core/estimator.h"

namespace cne {

class CentralDpEstimator : public CommonNeighborEstimator {
 public:
  std::string Name() const override { return "CentralDP"; }
  bool IsUnbiased() const override { return true; }
  bool IsLocal() const override { return false; }
  EstimateResult Estimate(const BipartiteGraph& graph, const QueryPair& query,
                          double epsilon, Rng& rng) const override;
};

}  // namespace cne

#endif  // CNE_CORE_CENTRAL_DP_H_
