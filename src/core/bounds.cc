#include "core/bounds.h"

#include <cmath>

#include "util/logging.h"

namespace cne {

double ChebyshevMultiple(double delta) {
  CNE_CHECK(delta > 0.0 && delta <= 1.0) << "delta must lie in (0, 1]";
  return 1.0 / std::sqrt(delta);
}

ConfidenceInterval ChebyshevInterval(double estimate, double variance,
                                     double confidence) {
  CNE_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence must lie in (0, 1)";
  CNE_CHECK(variance >= 0.0) << "variance must be non-negative";
  const double k = ChebyshevMultiple(1.0 - confidence);
  const double radius = k * std::sqrt(variance);
  return {estimate - radius, estimate + radius, confidence};
}

ConfidenceInterval LaplaceInterval(double estimate, double scale,
                                   double confidence) {
  CNE_CHECK(confidence > 0.0 && confidence < 1.0)
      << "confidence must lie in (0, 1)";
  CNE_CHECK(scale > 0.0) << "scale must be positive";
  // P(|Lap(b)| > t) = exp(-t/b); invert for the two-sided tail.
  const double radius = scale * std::log(1.0 / (1.0 - confidence));
  return {estimate - radius, estimate + radius, confidence};
}

}  // namespace cne
