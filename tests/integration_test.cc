// End-to-end integration: the full roster running over generated dataset
// analogs through the experiment harness, reproducing the qualitative
// claims of the paper's evaluation in miniature.

#include <memory>

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/multir_ds.h"
#include "core/multir_ss.h"
#include "core/naive.h"
#include "core/oner.h"
#include "eval/datasets.h"
#include "eval/experiment.h"
#include "eval/query_sampler.h"
#include "graph/generators.h"
#include "graph/subgraph.h"

namespace cne {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // A mid-size power-law graph comparable to the rmwiki analog.
    Rng rng(2024);
    graph_ = new BipartiteGraph(
        ChungLuPowerLaw(1200, 8100, 58000, 2.1, rng));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }

  static const BipartiteGraph* graph_;
};

const BipartiteGraph* IntegrationTest::graph_ = nullptr;

TEST_F(IntegrationTest, MultiRoundBeatsOneRoundBeatsNaive) {
  // The headline of Fig. 6(a), on uniform pairs at ε = 2.
  Rng rng(1);
  const auto pairs = SampleUniformPairs(*graph_, Layer::kUpper, 40, rng);
  ExperimentConfig config;
  config.epsilon = 2.0;
  const auto roster = MakeAllEstimators();
  const auto metrics = RunAllEstimators(*graph_, roster, pairs, config, rng);

  double mae_naive = 0, mae_oner = 0, mae_ss = 0, mae_ds = 0, mae_central = 0;
  for (const auto& m : metrics) {
    if (m.estimator == "Naive") mae_naive = m.mean_absolute_error;
    if (m.estimator == "OneR") mae_oner = m.mean_absolute_error;
    if (m.estimator == "MultiR-SS") mae_ss = m.mean_absolute_error;
    if (m.estimator == "MultiR-DS") mae_ds = m.mean_absolute_error;
    if (m.estimator == "CentralDP") mae_central = m.mean_absolute_error;
  }
  EXPECT_GT(mae_naive, 5 * mae_oner);    // naive overcounts massively
  EXPECT_GT(mae_oner, 3 * mae_ss);       // candidate-pool reduction
  EXPECT_LT(mae_ds, mae_oner);           // DS also beats one-round
  EXPECT_LT(mae_central, mae_ss);        // central model is the floor
}

TEST_F(IntegrationTest, ErrorDecreasesWithEpsilon) {
  // Fig. 7 shape for the one-round algorithms on a fixed workload.
  Rng rng(2);
  const auto pairs = SampleUniformPairs(*graph_, Layer::kUpper, 30, rng);
  OneREstimator oner;
  double previous = 1e300;
  for (double eps : {1.0, 2.0, 3.0}) {
    ExperimentConfig config;
    config.epsilon = eps;
    config.trials_per_pair = 3;
    Rng run_rng(static_cast<uint64_t>(eps * 10));
    const EstimatorMetrics m =
        RunEstimator(*graph_, oner, pairs, config, run_rng);
    EXPECT_LT(m.mean_absolute_error, previous) << "eps " << eps;
    previous = m.mean_absolute_error;
  }
}

TEST_F(IntegrationTest, MultiRoundErrorStableUnderVertexSampling) {
  // Fig. 11 shape: MultiR-SS error does not grow with |V|; OneR's does.
  MultiRSSEstimator ss;
  OneREstimator oner;
  ExperimentConfig config;
  config.epsilon = 2.0;
  config.trials_per_pair = 2;

  double ss_small = 0, ss_full = 0, oner_small = 0, oner_full = 0;
  {
    Rng sub_rng(3);
    const BipartiteGraph small =
        InducedSubgraphByVertexFraction(*graph_, 0.2, sub_rng);
    Rng rng(4);
    const auto pairs = SampleUniformPairs(small, Layer::kUpper, 30, rng);
    ss_small = RunEstimator(small, ss, pairs, config, rng)
                   .mean_absolute_error;
    oner_small = RunEstimator(small, oner, pairs, config, rng)
                     .mean_absolute_error;
  }
  {
    Rng rng(5);
    const auto pairs = SampleUniformPairs(*graph_, Layer::kUpper, 30, rng);
    ss_full = RunEstimator(*graph_, ss, pairs, config, rng)
                  .mean_absolute_error;
    oner_full = RunEstimator(*graph_, oner, pairs, config, rng)
                    .mean_absolute_error;
  }
  // OneR error grows markedly with the candidate pool (~sqrt(n1) in MAE);
  // MultiR-SS stays within a modest band.
  EXPECT_GT(oner_full, 1.5 * oner_small);
  EXPECT_LT(ss_full, 3.0 * ss_small + 3.0);
}

TEST_F(IntegrationTest, DSMoreRobustThanSSOnImbalancedPairs) {
  // Fig. 9 shape at high kappa.
  Rng rng(6);
  const auto pairs =
      SampleImbalancedPairs(*graph_, Layer::kUpper, 100.0, 25, rng);
  ASSERT_GT(pairs.size(), 10u);
  ExperimentConfig config;
  config.epsilon = 2.0;
  config.trials_per_pair = 4;
  MultiRSSEstimator ss;
  auto ds = MakeMultiRDS();
  Rng rng_ss(7), rng_ds(8);
  const double mae_ss =
      RunEstimator(*graph_, ss, pairs, config, rng_ss).mean_absolute_error;
  const double mae_ds =
      RunEstimator(*graph_, *ds, pairs, config, rng_ds).mean_absolute_error;
  EXPECT_LT(mae_ds, mae_ss);
}

TEST(IntegrationSmallDatasetTest, RegistryGraphRunsEndToEnd) {
  // Generate the smallest registry dataset and push it through the full
  // pipeline once.
  const auto spec = FindDataset("RM");
  ASSERT_TRUE(spec.has_value());
  const BipartiteGraph g = MakeDataset(*spec);
  Rng rng(9);
  const auto pairs = SampleUniformPairs(g, spec->query_layer, 5, rng);
  const auto roster = MakeAllEstimators();
  const auto metrics = RunAllEstimators(g, roster, pairs, {}, rng);
  ASSERT_EQ(metrics.size(), roster.size());
  for (const auto& m : metrics) {
    EXPECT_EQ(m.num_queries, 5u) << m.estimator;
  }
}

}  // namespace
}  // namespace cne
