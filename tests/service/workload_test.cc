#include "service/workload.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace cne {
namespace {

TEST(WorkloadTest, ParsesLayersCommentsAndBlanks) {
  std::istringstream in(
      "# comment\n"
      "% also a comment\n"
      "\n"
      "lower 0 1\n"
      "upper 3 4\n");
  const auto queries = ReadWorkloadStream(in);
  ASSERT_EQ(queries.size(), 2u);
  EXPECT_EQ(queries[0].layer, Layer::kLower);
  EXPECT_EQ(queries[0].u, 0u);
  EXPECT_EQ(queries[0].w, 1u);
  EXPECT_EQ(queries[1].layer, Layer::kUpper);
  EXPECT_EQ(queries[1].u, 3u);
  EXPECT_EQ(queries[1].w, 4u);
}

TEST(WorkloadTest, RoundTripsThroughTheTextFormat) {
  const std::vector<QueryPair> queries = {{Layer::kLower, 0, 7},
                                          {Layer::kUpper, 2, 5},
                                          {Layer::kLower, 9, 9}};
  std::ostringstream out;
  WriteWorkloadStream(queries, out);
  std::istringstream in(out.str());
  const auto parsed = ReadWorkloadStream(in);
  ASSERT_EQ(parsed.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(parsed[i].layer, queries[i].layer);
    EXPECT_EQ(parsed[i].u, queries[i].u);
    EXPECT_EQ(parsed[i].w, queries[i].w);
  }
}

TEST(WorkloadTest, RejectsMalformedLines) {
  for (const char* bad : {"middle 0 1\n", "lower 0\n", "lower -1 2\n",
                          "lower 0 99999999999\n"}) {
    std::istringstream in(bad);
    EXPECT_THROW(ReadWorkloadStream(in), std::runtime_error) << bad;
  }
}

TEST(WorkloadTest, HotSetWorkloadStaysInsideTheHotSet) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40, 8);
  Rng rng(3);
  const auto queries = MakeHotSetWorkload(g, Layer::kLower, 500, 6, rng);
  ASSERT_EQ(queries.size(), 500u);
  for (const QueryPair& q : queries) {
    EXPECT_EQ(q.layer, Layer::kLower);
    EXPECT_LT(q.u, 6u);
    EXPECT_LT(q.w, 6u);
    EXPECT_NE(q.u, q.w);
  }
}

TEST(WorkloadTest, HotSetClampsToLayerSize) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);  // 2 lower
  Rng rng(5);
  const auto queries = MakeHotSetWorkload(g, Layer::kLower, 10, 100, rng);
  for (const QueryPair& q : queries) {
    EXPECT_LT(q.u, 2u);
    EXPECT_LT(q.w, 2u);
  }
}

}  // namespace
}  // namespace cne
