// Crash-recovery against a REAL process death: fork/exec the actual
// cne_serve binary over a snapshot directory, SIGKILL it at an arbitrary
// point mid-workload, and recover the directory in-process. No simulated
// kill (scope exit, exception) models a SIGKILL faithfully — the process
// gets no destructors, no flushes, no atexit — so this is the harness
// that earns the "crash-safe" claim end to end, for all four protocols.
//
// The recovered service must land exactly on a sealed-batch boundary and
// then continue byte-identically with an uninterrupted reference run:
// same answers, same residual budgets, same views, no double charge, no
// re-randomized release.

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/graph_io.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/rng.h"

#ifndef CNE_SERVE_BIN
#define CNE_SERVE_BIN ""
#endif

namespace cne {
namespace {

constexpr size_t kBatch = 64;        // child's --checkpoint-every
constexpr size_t kQueries = 2048;    // 32 sealed batches

std::string ServeBinary() {
  const char* env = std::getenv("CNE_SERVE_BIN");
  return env != nullptr ? env : CNE_SERVE_BIN;
}

std::string FreshDir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("sigkill_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

ServiceOptions MakeOptions(ServiceAlgorithm algorithm,
                           const std::string& snapshot_dir) {
  // Must mirror the child's command line exactly: the snapshot config
  // check refuses recovery under different options.
  ServiceOptions options;
  options.algorithm = algorithm;
  options.epsilon = 2.0;
  options.lifetime_budget = 6.0;
  options.num_threads = 2;
  options.seed = 99;
  options.snapshot_dir = snapshot_dir;
  return options;
}

void ExpectSameAnswers(const ServiceReport& a, const ServiceReport& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].rejected, b.answers[i].rejected)
        << label << " query " << i;
    EXPECT_EQ(a.answers[i].estimate, b.answers[i].estimate)
        << label << " query " << i;
  }
}

void ExpectSameLedgers(const BudgetLedger& a, const BudgetLedger& b,
                       const std::string& label) {
  EXPECT_EQ(a.lifetime_budget(), b.lifetime_budget()) << label;
  const auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].vertex, sb[i].vertex) << label << " row " << i;
    EXPECT_EQ(sa[i].spent, sb[i].spent) << label << " row " << i;
  }
}

void ExpectSameViews(const BipartiteGraph& g, const NoisyViewStore& a,
                     const NoisyViewStore& b, const std::string& label) {
  uint64_t compared = 0;
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    for (VertexId id = 0; id < g.NumVertices(layer); ++id) {
      const LayeredVertex v{layer, id};
      if (!a.Contains(v) || !b.Contains(v)) continue;
      EXPECT_EQ(a.View(v).ToSortedVector(), b.View(v).ToSortedVector())
          << label << " " << LayerName(layer) << " vertex " << id;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u) << label;
}

// Spawns `cne_serve`, lets it run for `delay_ms`, SIGKILLs it, reaps it.
// Returns false if the child finished (exited) before the kill landed —
// still a valid trial: recovery then sees the complete final state.
bool RunAndKill(const std::vector<std::string>& args, int delay_ms) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: silence the tool's report and exec the real binary.
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      ::dup2(devnull, STDERR_FILENO);
      ::close(devnull);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    ::_exit(127);  // exec failed; the parent sees a fast clean exit
  }
  EXPECT_GT(pid, 0) << "fork failed";
  ::usleep(static_cast<useconds_t>(delay_ms) * 1000);
  ::kill(pid, SIGKILL);
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 127)
      << "child failed to exec " << args[0];
  return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

TEST(SigkillRecoveryTest, KilledServeProcessRecoversByteIdentically) {
  const std::string binary = ServeBinary();
  if (binary.empty() || !std::filesystem::exists(binary)) {
    GTEST_SKIP() << "cne_serve binary not available (CNE_SERVE_BIN)";
  }

  // The graph and workload go through files — the same files the child
  // reads — so both processes run over provably identical inputs.
  const std::string input_dir = FreshDir("inputs");
  const std::string graph_path = input_dir + "/graph.txt";
  WriteEdgeListFile(PlantedCommonNeighbors(3, 5, 2, 40, 8), graph_path);
  const BipartiteGraph g = ReadGraphFile(graph_path);

  const std::string workload_path = input_dir + "/workload.txt";
  {
    Rng rng(123);
    WriteWorkloadFile(
        MakeHotSetWorkload(g, Layer::kLower, kQueries, 8, rng),
        workload_path);
  }
  const std::vector<QueryPair> workload = ReadWorkloadFile(workload_path);
  ASSERT_EQ(workload.size(), kQueries);

  constexpr ServiceAlgorithm kAllAlgorithms[] = {
      ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
      ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS};
  // Two kill points per protocol: early (often before the first
  // checkpoint — WAL-only or even empty-directory recovery) and late
  // (snapshot + WAL tail, or occasionally a completed run, which is a
  // valid trial too). Whatever instant the SIGKILL lands at, recovery
  // must stop on a sealed-batch boundary.
  const int kDelaysMs[] = {15, 120};

  for (ServiceAlgorithm algorithm : kAllAlgorithms) {
    for (const int delay_ms : kDelaysMs) {
      const std::string label = std::string(ToString(algorithm)) + " @" +
                                std::to_string(delay_ms) + "ms";
      const std::string dir =
          FreshDir(std::string(ToString(algorithm)) + "_" +
                   std::to_string(delay_ms));

      const bool killed = RunAndKill(
          {binary, "--graph=" + graph_path, "--workload=" + workload_path,
           "--algorithm=" + std::string(ToString(algorithm)),
           "--epsilon=2.0", "--budget=6.0", "--threads=2", "--seed=99",
           "--snapshot-dir=" + dir,
           "--checkpoint-every=" + std::to_string(kBatch),
           "--metrics-level=counters"},
          delay_ms);

      // Recover in-process over the child's directory. This must never
      // throw, whatever instant the kill hit: mid-WAL-write (torn tail),
      // mid-checkpoint (tmp file), between checkpoint and WAL reset
      // (stale epoch), or before anything was written at all.
      QueryService recovered(g, MakeOptions(algorithm, dir));
      EXPECT_EQ(recovered.health(), ServiceHealth::kHealthy) << label;

      // Durability is all-or-nothing per sealed batch: the recovered
      // substream position sits exactly on a batch boundary.
      const uint64_t completed = recovered.next_noise_stream();
      ASSERT_EQ(completed % kBatch, 0u)
          << label << ": recovered mid-batch at stream " << completed;
      ASSERT_LE(completed, kQueries) << label;
      if (killed && completed == kQueries) {
        // The kill landed after the last seal — legal, but worth seeing
        // in the log when tuning the delays.
        std::fprintf(stderr, "note: %s: child sealed the whole workload\n",
                     label.c_str());
      }

      // The reference runs the same batch structure uninterrupted (and
      // ephemerally — persistence never changes answers); the recovered
      // service resumes from the boundary. Every remaining batch must
      // answer bit-identically.
      QueryService reference(g, MakeOptions(algorithm, ""));
      for (size_t begin = 0; begin < kQueries; begin += kBatch) {
        const std::vector<QueryPair> batch(
            workload.begin() + static_cast<ptrdiff_t>(begin),
            workload.begin() + static_cast<ptrdiff_t>(begin + kBatch));
        const ServiceReport ref = reference.Submit(batch);
        if (begin >= completed) {
          ExpectSameAnswers(ref, recovered.Submit(batch),
                            label + " batch at " + std::to_string(begin));
        }
      }
      ExpectSameLedgers(reference.ledger(), recovered.ledger(), label);
      EXPECT_EQ(recovered.next_noise_stream(), reference.next_noise_stream())
          << label;

      // A probe batch materializes views on both sides even when the
      // child had finished everything, then the stores must agree
      // view-for-view — zero re-randomized releases across the kill.
      std::vector<QueryPair> probe;
      {
        Rng rng(321);
        probe = MakeHotSetWorkload(g, Layer::kLower, 64, 8, rng);
      }
      ExpectSameAnswers(reference.Submit(probe), recovered.Submit(probe),
                        label + " probe");
      ExpectSameViews(g, reference.store(), recovered.store(), label);
    }
  }
}

}  // namespace
}  // namespace cne
