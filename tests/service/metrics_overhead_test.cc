// Overhead guard for the observability layer: submitting a 10⁵-scale
// workload with metrics_level=full must stay within a few percent of the
// same submission with metrics off. The instrumented pipeline records
// per-phase spans, sampled admission latencies, and chunk-sampled
// per-query post-process latencies — this test is the budget those
// choices must fit.

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/synthetic.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "util/rng.h"
#include "util/timer.h"

namespace cne {
namespace {

// The 10⁵-draw power-law graph the guard runs on: BX-like shape, the
// regime the scale harness benches. Built through the streamed builder
// into a per-process temp cache that the fixture removes.
BipartiteGraph BuildGuardGraph(std::filesystem::path* cache_dir) {
  *cache_dir = std::filesystem::temp_directory_path() /
               ("cne_metrics_overhead_" + std::to_string(::getpid()));
  SyntheticSpec spec;
  spec.num_upper = 4000;
  spec.num_lower = 10000;
  spec.num_edges = 100000;
  spec.exponent_upper = 2.1;
  spec.exponent_lower = 2.1;
  spec.seed = 107;
  return BuildSyntheticGraph(spec, cache_dir->string());
}

ServiceOptions GuardOptions(obs::MetricsLevel level) {
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 1.0;
  options.num_threads = 1;
  options.seed = 7;
  options.metrics_level = level;
  return options;
}

// Best-of-reps submission seconds for one pre-warmed service. Best-of
// rather than mean: timing noise under CI is one-sided (preemption,
// frequency scaling), and the guard compares two best cases.
double TimedRep(QueryService& service,
                const std::vector<QueryPair>& workload) {
  Timer timer;
  service.Submit(workload);
  return timer.Seconds();
}

TEST(MetricsOverheadTest, FullInstrumentationCostsUnderFivePercent) {
  std::filesystem::path cache_dir;
  const BipartiteGraph graph = BuildGuardGraph(&cache_dir);
  Rng workload_rng(7);
  const std::vector<QueryPair> workload =
      MakeHotSetWorkload(graph, Layer::kLower, 4000, 64, workload_rng);

  // Two pre-warmed services, timed in alternating reps, best-of each:
  // run-to-run noise on a loaded CI core exceeds the overhead budget
  // itself, and rep-level interleaving keeps slow stretches (preemption,
  // frequency drift) from landing entirely on one level. The warm
  // submits mean the timed reps never pay view materialization.
  //
  // A trace sink capturing every submit is installed for the whole
  // measurement: the <5% contract covers the full observability stack —
  // span histograms, exemplar reservoirs, AND the trace event ring.
  obs::TraceSink trace_sink;
  trace_sink.Install();
  QueryService off_service(graph, GuardOptions(obs::MetricsLevel::kOff));
  QueryService full_service(graph, GuardOptions(obs::MetricsLevel::kFull));
  off_service.Submit(workload);
  full_service.Submit(workload);

  // Up to three measurement blocks, keeping the smallest observed
  // overhead. Each block's statistic is the MEDIAN of per-rep paired
  // ratios, not a ratio of block minima: when ctest runs suites in
  // parallel on few cores, a preemption slice that lands on one level's
  // best rep skews a min-based ratio arbitrarily, while a slice spanning
  // a back-to-back off/full pair inflates both sides and leaves that
  // pair's ratio honest — and the median discards the few pairs it cuts
  // through. (Same statistic the intersect bench uses for dispatch_gap.)
  double off_best = 1e100;
  double full_best = 1e100;
  double overhead = 1.0;
  for (int attempt = 0; attempt < 3 && !(overhead < 0.05); ++attempt) {
    std::vector<double> ratios;
    ratios.reserve(24);
    for (int rep = 0; rep < 24; ++rep) {
      const double off_rep = TimedRep(off_service, workload);
      const double full_rep = TimedRep(full_service, workload);
      off_best = std::min(off_best, off_rep);
      full_best = std::min(full_best, full_rep);
      ratios.push_back(full_rep / off_rep);
    }
    std::nth_element(ratios.begin(), ratios.begin() + ratios.size() / 2,
                     ratios.end());
    const double block_overhead = ratios[ratios.size() / 2] - 1.0;
    overhead = std::min(overhead, block_overhead);
  }

  ASSERT_LT(off_best, 1e100);
  ASSERT_LT(full_best, 1e100);
  std::cout << "measured overhead: " << overhead * 100 << "% (best rep "
            << off_best * 1e6 << " us off, " << full_best * 1e6
            << " us full per " << workload.size() << "-query submit)\n";
  // <5% is the subsystem's contract (docs/ARCHITECTURE.md Observability).
  EXPECT_LT(overhead, 0.05)
      << "metrics_level=full costs " << overhead * 100 << "% ("
      << off_best * 1e6 << " us off vs " << full_best * 1e6
      << " us full per " << workload.size() << "-query submit)";
  // The sink really captured the full-level submits it was charged for.
  EXPECT_GT(trace_sink.EventsRetained() + trace_sink.EventsDropped(), 0u);
  trace_sink.Uninstall();
  std::filesystem::remove_all(cache_dir);
}

TEST(MetricsOverheadTest, FullLevelCarriesExemplarsAndBurnDown) {
  std::filesystem::path cache_dir;
  const BipartiteGraph graph = BuildGuardGraph(&cache_dir);
  Rng workload_rng(7);
  const std::vector<QueryPair> workload =
      MakeHotSetWorkload(graph, Layer::kLower, 4000, 64, workload_rng);

  QueryService service(graph, GuardOptions(obs::MetricsLevel::kFull));
  service.Submit(workload);
  const obs::MetricsSnapshot metrics = service.SnapshotMetrics();

  // Burn-down: the hot-set workload charges its released vertices.
  ASSERT_TRUE(metrics.budget.present);
  EXPECT_GT(metrics.budget.charged_vertices, 0u);
  EXPECT_GT(metrics.budget.total_spent, 0.0);
  EXPECT_GT(metrics.budget.spent_rr + metrics.budget.spent_laplace, 0.0);
  uint64_t binned = 0;
  for (uint64_t c : metrics.budget.residual_histogram) binned += c;
  EXPECT_EQ(binned, metrics.budget.charged_vertices);

  // Exemplars: the sampled post-process and release-build paths both saw
  // enough work at this scale to retain slowest samples with context.
  bool saw_post_process = false, saw_release_build = false;
  for (const obs::PhaseExemplars& pe : metrics.exemplars) {
    const bool is_post = pe.phase == "post_process";
    const bool is_build = pe.phase == "release_build";
    saw_post_process = saw_post_process || is_post;
    saw_release_build = saw_release_build || is_build;
    for (const obs::Exemplar& e : pe.exemplars) {
      EXPECT_GT(e.seconds, 0.0) << pe.phase;
      EXPECT_GT(e.submit, 0u) << pe.phase;
    }
  }
  EXPECT_TRUE(saw_post_process);
  EXPECT_TRUE(saw_release_build);
  std::filesystem::remove_all(cache_dir);
}

TEST(MetricsOverheadTest, OffLevelReportsNoMetrics) {
  Rng graph_rng(3);
  const BipartiteGraph graph = ErdosRenyiBipartite(100, 200, 2000, graph_rng);
  Rng workload_rng(7);
  const std::vector<QueryPair> workload =
      MakeHotSetWorkload(graph, Layer::kLower, 200, 16, workload_rng);

  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 1.0;
  options.num_threads = 1;
  options.seed = 7;
  options.metrics_level = obs::MetricsLevel::kOff;
  QueryService service(graph, options);
  service.Submit(workload);
  const obs::MetricsSnapshot metrics = service.SnapshotMetrics();
  EXPECT_TRUE(metrics.phases.empty());
  EXPECT_TRUE(metrics.counters.empty());
}

TEST(MetricsOverheadTest, FullLevelReportsEveryPhase) {
  Rng graph_rng(3);
  const BipartiteGraph graph = ErdosRenyiBipartite(100, 200, 2000, graph_rng);
  Rng workload_rng(7);
  const std::vector<QueryPair> workload =
      MakeHotSetWorkload(graph, Layer::kLower, 200, 16, workload_rng);

  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 1.0;
  options.num_threads = 1;
  options.seed = 7;
  QueryService service(graph, options);  // metrics_level defaults to full
  const ServiceReport report = service.Submit(workload);
  const obs::MetricsSnapshot metrics = service.SnapshotMetrics();

  for (const char* phase : {"admission", "wal_fsync", "release", "plan",
                            "execute", "post_process", "checkpoint",
                            "release_build"}) {
    ASSERT_NE(metrics.Phase(phase), nullptr) << phase;
  }
  EXPECT_GT(metrics.Phase("admission")->count, 0u);
  EXPECT_GT(metrics.Phase("execute")->count, 0u);
  EXPECT_EQ(metrics.Phase("checkpoint")->count, 0u);  // none yet
  EXPECT_EQ(metrics.CounterValue("queries_submitted"), workload.size());
  // Answers must be byte-identical across metrics levels — observability
  // never touches the noise or the estimates.
  ServiceOptions off = options;
  off.metrics_level = obs::MetricsLevel::kOff;
  QueryService service_off(graph, off);
  const ServiceReport report_off = service_off.Submit(workload);
  ASSERT_EQ(report.answers.size(), report_off.answers.size());
  for (size_t i = 0; i < report.answers.size(); ++i) {
    EXPECT_EQ(report.answers[i].estimate, report_off.answers[i].estimate);
    EXPECT_EQ(report.answers[i].rejected, report_off.answers[i].rejected);
  }
}

}  // namespace
}  // namespace cne
