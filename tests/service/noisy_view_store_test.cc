#include "service/noisy_view_store.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace cne {
namespace {

constexpr LayeredVertex kV0{Layer::kLower, 0};
constexpr LayeredVertex kV1{Layer::kLower, 1};

BipartiteGraph TestGraph() { return PlantedCommonNeighbors(3, 5, 2, 40, 8); }

TEST(NoisyViewStoreTest, GetMaterializesOnceAndCaches) {
  const BipartiteGraph g = TestGraph();
  BudgetLedger ledger(2.0);
  NoisyViewStore store(g, 2.0, Rng(1), ledger);

  const NoisyNeighborSet* first = store.Get(kV0);
  ASSERT_NE(first, nullptr);
  const NoisyNeighborSet* second = store.Get(kV0);
  // Same object: the release ran exactly once.
  EXPECT_EQ(first, second);

  const auto stats = store.stats();
  EXPECT_EQ(stats.releases, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_DOUBLE_EQ(ledger.Spent(kV0), 2.0);
}

TEST(NoisyViewStoreTest, RejectsWhenLedgerIsExhausted) {
  const BipartiteGraph g = TestGraph();
  BudgetLedger ledger(2.0);
  // The vertex already spent everything elsewhere.
  ASSERT_TRUE(ledger.TryCharge(kV0, 2.0));
  NoisyViewStore store(g, 2.0, Rng(1), ledger);
  EXPECT_EQ(store.Get(kV0), nullptr);
  EXPECT_EQ(store.Get(kV0), nullptr);  // still rejected, still no charge
  EXPECT_EQ(store.stats().rejections, 2u);
  EXPECT_EQ(store.stats().releases, 0u);
  // Other vertices are unaffected (parallel composition).
  EXPECT_NE(store.Get(kV1), nullptr);
}

TEST(NoisyViewStoreTest, ViewsAreIdenticalForAnyMaterializationPath) {
  // Lazy Get, prefetched MaterializeAuthorized, any thread count: vertex
  // noise comes from its own substream, so the bytes never change.
  const BipartiteGraph g = TestGraph();
  const std::vector<LayeredVertex> vertices = {
      {Layer::kLower, 0}, {Layer::kLower, 1}, {Layer::kLower, 2},
      {Layer::kLower, 3}, {Layer::kUpper, 0}, {Layer::kUpper, 4}};

  auto collect = [&](int threads, bool lazy) {
    BudgetLedger ledger(2.0);
    NoisyViewStore store(g, 2.0, Rng(99), ledger);
    std::vector<std::vector<VertexId>> members;
    if (lazy) {
      for (LayeredVertex v : vertices) {
        members.push_back(store.Get(v)->SortedMembers());
      }
    } else {
      ThreadPool pool(threads);
      for (LayeredVertex v : vertices) {
        EXPECT_EQ(store.Authorize(v),
                  NoisyViewStore::Admission::kAuthorized);
      }
      store.MaterializeAuthorized(pool);
      for (LayeredVertex v : vertices) {
        members.push_back(store.View(v).SortedMembers());
      }
    }
    return members;
  };

  const auto lazy = collect(1, /*lazy=*/true);
  EXPECT_EQ(lazy, collect(1, /*lazy=*/false));
  EXPECT_EQ(lazy, collect(4, /*lazy=*/false));
  EXPECT_EQ(lazy, collect(8, /*lazy=*/false));
}

TEST(NoisyViewStoreTest, AuthorizeChargesOnlyOnFirstTouch) {
  const BipartiteGraph g = TestGraph();
  BudgetLedger ledger(2.0);
  NoisyViewStore store(g, 2.0, Rng(5), ledger);
  EXPECT_EQ(store.Authorize(kV0), NoisyViewStore::Admission::kAuthorized);
  EXPECT_EQ(store.Authorize(kV0), NoisyViewStore::Admission::kCacheHit);
  EXPECT_DOUBLE_EQ(ledger.Spent(kV0), 2.0);
  EXPECT_TRUE(store.Contains(kV0));
  EXPECT_FALSE(store.Contains(kV1));
}

TEST(NoisyViewStoreTest, UploadedBytesMatchViewSizes) {
  const BipartiteGraph g = TestGraph();
  BudgetLedger ledger(2.0);
  NoisyViewStore store(g, 2.0, Rng(7), ledger);
  const NoisyNeighborSet* a = store.Get(kV0);
  const NoisyNeighborSet* b = store.Get(kV1);
  store.Get(kV0);  // cache hit: uploads nothing
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(store.stats().uploaded_edges, a->Size() + b->Size());
  EXPECT_DOUBLE_EQ(store.stats().UploadedBytes(),
                   4.0 * static_cast<double>(a->Size() + b->Size()));
}

TEST(NoisyViewStoreDeathTest, ViewOfUnmaterializedVertexDies) {
  const BipartiteGraph g = TestGraph();
  BudgetLedger ledger(2.0);
  NoisyViewStore store(g, 2.0, Rng(11), ledger);
  EXPECT_DEATH(store.View(kV0), "never materialized");
}

}  // namespace
}  // namespace cne
