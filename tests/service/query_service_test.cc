#include "service/query_service.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "service/workload.h"
#include "util/statistics.h"

namespace cne {
namespace {

// Lower layer: query vertices 0 and 1 (C2 = 3) plus 8 isolated extras,
// so hot-set workloads have ids 0..9 to draw from.
BipartiteGraph TestGraph() { return PlantedCommonNeighbors(3, 5, 2, 40, 8); }

std::vector<QueryPair> TestWorkload(const BipartiteGraph& g, size_t count) {
  Rng rng(12345);
  return MakeHotSetWorkload(g, Layer::kLower, count, 8, rng);
}

ServiceReport RunOnce(const BipartiteGraph& g, ServiceAlgorithm algorithm,
                      int threads, const std::vector<QueryPair>& workload) {
  ServiceOptions options;
  options.algorithm = algorithm;
  options.epsilon = 2.0;
  options.num_threads = threads;
  options.seed = 99;
  QueryService service(g, options);
  return service.Submit(workload);
}

// --- The headline property: answers are byte-identical for any thread
// --- count, for every algorithm, including which queries get rejected.

TEST(QueryServiceTest, AnswersAreIdenticalAcrossThreadCounts) {
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = TestWorkload(g, 300);
  for (ServiceAlgorithm algorithm :
       {ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
        ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS}) {
    const ServiceReport sequential = RunOnce(g, algorithm, 1, workload);
    for (int threads : {2, 8}) {
      const ServiceReport parallel = RunOnce(g, algorithm, threads, workload);
      ASSERT_EQ(parallel.answers.size(), sequential.answers.size());
      for (size_t i = 0; i < sequential.answers.size(); ++i) {
        EXPECT_EQ(parallel.answers[i].rejected,
                  sequential.answers[i].rejected)
            << ToString(algorithm) << " query " << i << " threads "
            << threads;
        // Bitwise equality, not approximate: the noise itself is shared.
        EXPECT_EQ(parallel.answers[i].estimate,
                  sequential.answers[i].estimate)
            << ToString(algorithm) << " query " << i << " threads "
            << threads;
      }
      EXPECT_EQ(parallel.store.releases, sequential.store.releases);
      EXPECT_EQ(parallel.rejected, sequential.rejected);
    }
  }
}

TEST(QueryServiceTest, SubmitInTwoBatchesMatchesOneBatch) {
  // Splitting a workload across Submit calls must not change any answer:
  // admission order, store state, and noise substreams all continue.
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = TestWorkload(g, 100);
  const ServiceReport whole =
      RunOnce(g, ServiceAlgorithm::kMultiRDS, 1, workload);

  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRDS;
  options.epsilon = 2.0;
  options.num_threads = 4;
  options.seed = 99;
  QueryService service(g, options);
  const std::vector<QueryPair> first(workload.begin(), workload.begin() + 37);
  const std::vector<QueryPair> second(workload.begin() + 37, workload.end());
  const ServiceReport a = service.Submit(first);
  const ServiceReport b = service.Submit(second);
  ASSERT_EQ(a.answers.size() + b.answers.size(), whole.answers.size());
  for (size_t i = 0; i < whole.answers.size(); ++i) {
    const ServiceAnswer& split =
        i < first.size() ? a.answers[i] : b.answers[i - first.size()];
    EXPECT_EQ(split.rejected, whole.answers[i].rejected) << "query " << i;
    EXPECT_EQ(split.estimate, whole.answers[i].estimate) << "query " << i;
  }
}

// --- Budget ledger properties.

TEST(QueryServiceTest, VertexIsNeverReleasedTwiceUnderOneBudget) {
  // Property test over many random workloads: however often a vertex is
  // queried, the store releases it exactly once and charges exactly ε.
  const BipartiteGraph g = TestGraph();
  for (uint64_t trial = 0; trial < 20; ++trial) {
    Rng rng(1000 + trial);
    const auto workload =
        MakeHotSetWorkload(g, Layer::kLower, 50, 5, rng);
    ServiceOptions options;
    options.algorithm = ServiceAlgorithm::kOneR;
    options.epsilon = 2.0;
    options.num_threads = 4;
    options.seed = trial;
    QueryService service(g, options);
    const ServiceReport report = service.Submit(workload);
    EXPECT_EQ(report.rejected, 0u);

    // Count distinct vertices in the workload.
    std::vector<bool> seen(g.NumLower(), false);
    uint64_t distinct = 0;
    for (const QueryPair& q : workload) {
      for (VertexId v : {q.u, q.w}) {
        if (!seen[v]) {
          seen[v] = true;
          ++distinct;
        }
      }
    }
    EXPECT_EQ(report.store.releases, distinct);
    EXPECT_EQ(report.budget_vertices_charged, distinct);
    for (const VertexBudget& vb : service.ledger().Snapshot()) {
      EXPECT_DOUBLE_EQ(vb.spent, 2.0);  // exactly one full-ε release
      EXPECT_NEAR(vb.remaining, 0.0, 1e-12);
    }
    // Re-submitting the same workload must release nothing new: every
    // lookup is a cache hit on the public views.
    const ServiceReport again = service.Submit(workload);
    EXPECT_EQ(again.store.releases, distinct);
    EXPECT_EQ(again.rejected, 0u);
  }
}

TEST(QueryServiceTest, OverBudgetQueriesAreRejectedDeterministically) {
  // MultiR-SS at ε = 2, split 1 + 1, lifetime budget 2: a vertex can
  // afford two Laplace sourcings if it is never RR-released, one if it
  // is, and an RR release is impossible once its budget is spent.
  const BipartiteGraph g = TestGraph();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRSS;
  options.epsilon = 2.0;
  options.num_threads = 2;
  options.seed = 5;
  QueryService service(g, options);
  const std::vector<QueryPair> workload = {
      {Layer::kLower, 0, 1},  // admit: RR(1)=1.0, Laplace(0)=1.0
      {Layer::kLower, 0, 2},  // admit: RR(2)=1.0, Laplace(0)=1.0 -> 0 spent
      {Layer::kLower, 0, 3},  // reject: vertex 0 has nothing left
      {Layer::kLower, 1, 0},  // reject: vertex 0 cannot afford its RR
      {Layer::kLower, 1, 2},  // admit: RR(2) cached, Laplace(1) -> 1 spent
      {Layer::kLower, 2, 1},  // admit: RR(1) cached, Laplace(2) -> 2 spent
      {Layer::kLower, 3, 4},  // admit: fresh pair
      {Layer::kLower, 1, 3},  // reject: vertex 1 has nothing left
  };
  const ServiceReport report = service.Submit(workload);
  const std::vector<bool> expected_rejected = {false, false, true, true,
                                               false, false, false, true};
  ASSERT_EQ(report.answers.size(), expected_rejected.size());
  for (size_t i = 0; i < expected_rejected.size(); ++i) {
    EXPECT_EQ(report.answers[i].rejected, expected_rejected[i])
        << "query " << i;
  }
  EXPECT_EQ(report.answered, 5u);
  EXPECT_EQ(report.rejected, 3u);
  // A rejected query charges nothing: vertex 3's budget reflects only its
  // admitted query (Laplace sourcing of q6... none; q6 charged RR of 4 and
  // Laplace of 3).
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 3}), 1.0);
}

TEST(QueryServiceTest, DuplicatePairsInOneSubmissionShareReleasesNotNoise) {
  const BipartiteGraph g = TestGraph();
  // OneR: a duplicated pair is pure post-processing on the same views —
  // identical answers, one release per distinct vertex, one charge each.
  const std::vector<QueryPair> workload = {{Layer::kLower, 0, 1},
                                           {Layer::kLower, 0, 1},
                                           {Layer::kLower, 0, 1}};
  const ServiceReport oner = RunOnce(g, ServiceAlgorithm::kOneR, 2, workload);
  EXPECT_EQ(oner.rejected, 0u);
  EXPECT_EQ(oner.store.releases, 2u);
  EXPECT_DOUBLE_EQ(oner.answers[0].estimate, oner.answers[1].estimate);
  EXPECT_DOUBLE_EQ(oner.answers[0].estimate, oner.answers[2].estimate);

  // MultiR-SS at ε = 2 (split 1 + 1): the duplicate costs u a fresh ε2
  // sourcing, so under the default lifetime budget of 2 the first two
  // instances fit (RR(1) = 1 once, Laplace(0) = 1 twice) and the third is
  // rejected — duplicates are real repeat queries, not free cache hits.
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRSS;
  options.epsilon = 2.0;
  options.seed = 99;
  QueryService service(g, options);
  const ServiceReport ss = service.Submit(workload);
  EXPECT_FALSE(ss.answers[0].rejected);
  EXPECT_FALSE(ss.answers[1].rejected);
  EXPECT_TRUE(ss.answers[2].rejected);
  // Fresh Laplace noise per admitted duplicate.
  EXPECT_NE(ss.answers[0].estimate, ss.answers[1].estimate);
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 0}), 2.0);
}

TEST(QueryServiceTest, SelfPairQueriesAreAnsweredOverOneView) {
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = {{Layer::kLower, 2, 2}};

  // Naive: |view ∩ view| is exactly the view's noisy degree.
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kNaive;
  options.epsilon = 2.0;
  options.seed = 7;
  QueryService naive(g, options);
  const ServiceReport report = naive.Submit(workload);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_EQ(report.store.releases, 1u);  // one vertex, one release
  EXPECT_DOUBLE_EQ(
      report.answers[0].estimate,
      static_cast<double>(naive.store().View({Layer::kLower, 2}).Size()));
  EXPECT_DOUBLE_EQ(naive.ledger().Spent({Layer::kLower, 2}), 2.0);
}

TEST(QueryServiceTest, SelfPairMergesChargesInAdmission) {
  // MultiR-DS self-pair: u = w, so one vertex owes ε1 + 2·ε2 at once.
  // Under the default lifetime budget (= ε) that merged charge cannot
  // fit; with a 3ε/2 budget it fits exactly. The merge must be atomic:
  // the rejected self-pair charges nothing at all.
  const BipartiteGraph g = TestGraph();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRDS;
  options.epsilon = 2.0;  // ε1 = ε2 = 1, self-pair needs 3
  options.seed = 13;
  {
    QueryService service(g, options);
    const ServiceReport report = service.Submit({{Layer::kLower, 2, 2}});
    EXPECT_EQ(report.rejected, 1u);
    EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 2}), 0.0);
    EXPECT_EQ(report.store.releases, 0u);
  }
  options.lifetime_budget = 3.0;
  {
    QueryService service(g, options);
    const ServiceReport report = service.Submit({{Layer::kLower, 2, 2}});
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 2}), 3.0);
  }
}

TEST(QueryServiceTest, RejectedQueryIsAdmittedAfterLedgerTopUp) {
  // A rejected query is not lost forever: raising the lifetime budget
  // (the operator weakening the whole-lifetime guarantee) lets the same
  // query be resubmitted and admitted, with charges picking up where the
  // ledger left off.
  const BipartiteGraph g = TestGraph();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRSS;
  options.epsilon = 2.0;
  options.seed = 5;
  QueryService service(g, options);

  const ServiceReport first = service.Submit({{Layer::kLower, 0, 1},
                                              {Layer::kLower, 0, 2},
                                              {Layer::kLower, 0, 3}});
  ASSERT_TRUE(first.answers[2].rejected);  // vertex 0 exhausted at 2.0
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 0}), 2.0);

  service.RaiseLifetimeBudget(4.0);
  const ServiceReport second = service.Submit({{Layer::kLower, 0, 3}});
  EXPECT_FALSE(second.answers[0].rejected);
  EXPECT_EQ(second.rejected, 0u);
  // The resubmission charged RR(3) = 1 and Laplace(0) = 1 on top.
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 0}), 3.0);
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 3}), 1.0);
}

TEST(QueryServiceTest, RaisedLifetimeBudgetAdmitsMoreQueries) {
  const BipartiteGraph g = TestGraph();
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kMultiRSS;
  options.epsilon = 2.0;
  options.lifetime_budget = 8.0;
  options.seed = 5;
  QueryService service(g, options);
  std::vector<QueryPair> workload;
  for (VertexId w = 1; w <= 6; ++w) workload.push_back({Layer::kLower, 0, w});
  const ServiceReport report = service.Submit(workload);
  // Vertex 0 sources ε2 = 1 per query: 8.0 of lifetime budget fits all 6.
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_DOUBLE_EQ(service.ledger().Spent({Layer::kLower, 0}), 6.0);
}

// --- Estimate semantics over the shared store.

TEST(QueryServiceTest, IdenticalQueriesShareTheAnswerUnderPostProcessing) {
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = {{Layer::kLower, 0, 1},
                                           {Layer::kLower, 0, 1}};
  const ServiceReport oner = RunOnce(g, ServiceAlgorithm::kOneR, 2, workload);
  // Pure post-processing: same views, same answer.
  EXPECT_DOUBLE_EQ(oner.answers[0].estimate, oner.answers[1].estimate);

  const ServiceReport ss =
      RunOnce(g, ServiceAlgorithm::kMultiRSS, 2, workload);
  // Each MultiR-SS query draws a fresh Laplace release from its own
  // substream: answers must differ even for identical queries.
  EXPECT_NE(ss.answers[0].estimate, ss.answers[1].estimate);
}

TEST(QueryServiceTest, OneRServiceIsUnbiased) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 3, 3, 40);
  const std::vector<QueryPair> workload = {{Layer::kLower, 0, 1}};
  RunningStats stats;
  for (uint64_t t = 0; t < 4000; ++t) {
    ServiceOptions options;
    options.epsilon = 1.5;
    options.seed = t;
    QueryService service(g, options);
    stats.Add(service.Submit(workload).answers[0].estimate);
  }
  EXPECT_NEAR(stats.Mean(), 4.0, 4.5 * stats.StdError());
}

TEST(QueryServiceTest, MultiRSSServiceIsUnbiased) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 3, 3, 40);
  const std::vector<QueryPair> workload = {{Layer::kLower, 0, 1}};
  RunningStats stats;
  for (uint64_t t = 0; t < 4000; ++t) {
    ServiceOptions options;
    options.algorithm = ServiceAlgorithm::kMultiRSS;
    options.epsilon = 2.0;
    options.seed = 70000 + t;
    QueryService service(g, options);
    stats.Add(service.Submit(workload).answers[0].estimate);
  }
  EXPECT_NEAR(stats.Mean(), 4.0, 4.5 * stats.StdError());
}

TEST(QueryServiceTest, MixedLayerSubmissionsShareOneStore) {
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = {{Layer::kLower, 0, 1},
                                           {Layer::kUpper, 0, 1},
                                           {Layer::kLower, 0, 1}};
  const ServiceReport report =
      RunOnce(g, ServiceAlgorithm::kOneR, 2, workload);
  EXPECT_EQ(report.rejected, 0u);
  // Layers have separate budgets and separate views: 4 releases.
  EXPECT_EQ(report.store.releases, 4u);
  EXPECT_DOUBLE_EQ(report.answers[0].estimate, report.answers[2].estimate);
}

TEST(QueryServiceTest, AlgorithmNamesRoundTrip) {
  for (ServiceAlgorithm algorithm :
       {ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
        ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS}) {
    const auto parsed = ParseServiceAlgorithm(ToString(algorithm));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, algorithm);
  }
  EXPECT_FALSE(ParseServiceAlgorithm("CentralDP").has_value());
}

TEST(QueryServiceDeathTest, OutOfRangeQueryDies) {
  const BipartiteGraph g = TestGraph();
  ServiceOptions options;
  QueryService service(g, options);
  EXPECT_DEATH(service.Submit({{Layer::kLower, 0, 10}}), "out of range");
}

}  // namespace
}  // namespace cne
