// The planner's two contracts: grouping is deterministic and shaped by
// endpoint sharing, and planned execution is byte-identical to the
// per-query path — for every algorithm, any thread count, and workloads
// that exercise duplicates, self-pairs, mixed roles, and rejections.

#include "service/workload_planner.h"

#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "service/query_service.h"
#include "service/workload.h"

namespace cne {
namespace {

BipartiteGraph TestGraph() { return PlantedCommonNeighbors(3, 5, 2, 40, 8); }

std::vector<PlannedQueryRef> MakeRefs(const std::vector<QueryPair>& queries) {
  std::vector<PlannedQueryRef> refs;
  for (size_t i = 0; i < queries.size(); ++i) {
    refs.push_back({queries[i], i, i});
  }
  return refs;
}

WorkloadPlan PlanWorkload(const std::vector<PlannedQueryRef>& refs) {
  static BipartiteGraph graph = TestGraph();
  WorkloadPlanner planner(graph);
  return planner.Plan(refs);
}

TEST(PlanWorkloadTest, OneVsManyCollapsesIntoASingleGroup) {
  std::vector<QueryPair> queries;
  for (VertexId w = 1; w <= 6; ++w) queries.push_back({Layer::kLower, 0, w});
  const auto refs = MakeRefs(queries);
  const WorkloadPlan plan = PlanWorkload(refs);
  ASSERT_EQ(plan.groups.size(), 1u);
  const QueryGroup& group = plan.groups.front();
  EXPECT_EQ(group.source, (LayeredVertex{Layer::kLower, 0}));
  EXPECT_EQ(group.Size(), 6u);
  EXPECT_EQ(group.num_source_as_u, 6u);
  EXPECT_DOUBLE_EQ(plan.AvgGroupSize(), 6.0);
  // Within a role, items keep submission order — here ascending
  // candidates, the shape a top-k front end produces.
  const auto items = plan.Items(group);
  for (size_t i = 1; i < items.size(); ++i) {
    EXPECT_LT(items[i - 1].candidate, items[i].candidate);
  }
}

TEST(PlanWorkloadTest, SharedEndpointWinsEitherRole) {
  // Vertex 0 appears three times, once as u and twice as w: all three
  // queries join its group, with the roles recorded per item.
  const std::vector<QueryPair> queries = {{Layer::kLower, 0, 1},
                                          {Layer::kLower, 2, 0},
                                          {Layer::kLower, 3, 0}};
  const WorkloadPlan plan = PlanWorkload(MakeRefs(queries));
  ASSERT_EQ(plan.groups.size(), 1u);
  const QueryGroup& group = plan.groups.front();
  EXPECT_EQ(group.source, (LayeredVertex{Layer::kLower, 0}));
  EXPECT_EQ(group.num_source_as_u, 1u);  // only (0, 1) has the source as u
  EXPECT_EQ(group.Size(), 3u);
  // The role partition puts the source-as-u item first.
  EXPECT_TRUE(plan.Items(group)[0].source_is_u);
  EXPECT_FALSE(plan.Items(group)[1].source_is_u);
}

TEST(PlanWorkloadTest, LargestGroupComesFirstDeterministically) {
  const std::vector<QueryPair> queries = {
      {Layer::kLower, 7, 6},  // singleton group
      {Layer::kLower, 2, 1}, {Layer::kLower, 2, 3}, {Layer::kLower, 2, 4},
      {Layer::kLower, 5, 1},  // 1 appears twice, 5 once -> group of 1
  };
  const WorkloadPlan plan = PlanWorkload(MakeRefs(queries));
  ASSERT_EQ(plan.groups.size(), 3u);
  EXPECT_EQ(plan.groups[0].source, (LayeredVertex{Layer::kLower, 2}));
  EXPECT_EQ(plan.groups[0].Size(), 3u);
  // Equal-size groups tie-break on source id: vertex 1 before vertex 7.
  EXPECT_EQ(plan.groups[1].source, (LayeredVertex{Layer::kLower, 1}));
  EXPECT_EQ(plan.groups[2].source, (LayeredVertex{Layer::kLower, 7}));
  EXPECT_EQ(plan.num_queries, queries.size());
}

TEST(PlanWorkloadTest, SelfPairStaysWithU) {
  const std::vector<QueryPair> queries = {{Layer::kLower, 4, 4}};
  const WorkloadPlan plan = PlanWorkload(MakeRefs(queries));
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].source, (LayeredVertex{Layer::kLower, 4}));
  EXPECT_TRUE(plan.Items(plan.groups[0])[0].source_is_u);
  EXPECT_EQ(plan.Items(plan.groups[0])[0].candidate, 4u);
}

TEST(PlanWorkloadTest, ScratchResetsBetweenSubmissions) {
  const BipartiteGraph g = TestGraph();
  WorkloadPlanner planner(g);
  const WorkloadPlan first = planner.Plan(
      MakeRefs({{Layer::kLower, 0, 1}, {Layer::kLower, 0, 2}}));
  ASSERT_EQ(first.groups.size(), 1u);
  EXPECT_EQ(first.groups[0].source, (LayeredVertex{Layer::kLower, 0}));
  // The second submission must not inherit the first one's frequencies:
  // vertex 2 is the shared endpoint now, vertex 0 is absent.
  const WorkloadPlan second = planner.Plan(
      MakeRefs({{Layer::kLower, 1, 2}, {Layer::kLower, 3, 2}}));
  ASSERT_EQ(second.groups.size(), 1u);
  EXPECT_EQ(second.groups[0].source, (LayeredVertex{Layer::kLower, 2}));
  EXPECT_EQ(second.groups[0].num_source_as_u, 0u);
}

// --- The acceptance property: planner on ≡ planner off, bit for bit. ---

std::vector<QueryPair> AdversarialWorkload(const BipartiteGraph& g) {
  // Hot-set reuse plus duplicates, both orientations, and self-pairs;
  // with the MultiR budgets this also produces rejections mid-stream.
  Rng rng(2024);
  std::vector<QueryPair> queries =
      MakeHotSetWorkload(g, Layer::kLower, 120, 6, rng);
  queries.push_back({Layer::kLower, 0, 1});
  queries.push_back({Layer::kLower, 0, 1});  // duplicate
  queries.push_back({Layer::kLower, 1, 0});  // reversed orientation
  queries.push_back({Layer::kLower, 3, 3});  // self-pair
  queries.push_back({Layer::kUpper, 0, 1});  // other layer
  return queries;
}

TEST(PlannedExecutionTest, ByteIdenticalToPerQueryPathForAllAlgorithms) {
  const BipartiteGraph g = TestGraph();
  const std::vector<QueryPair> workload = AdversarialWorkload(g);
  for (ServiceAlgorithm algorithm :
       {ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
        ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS}) {
    ServiceOptions base;
    base.algorithm = algorithm;
    base.epsilon = 2.0;
    base.lifetime_budget = 6.0;
    base.seed = 31;

    ServiceOptions unplanned = base;
    unplanned.enable_planner = false;
    unplanned.num_threads = 1;
    QueryService reference(g, unplanned);
    const ServiceReport expected = reference.Submit(workload);
    EXPECT_EQ(expected.groups_formed, 0u);

    for (int threads : {1, 2, 8}) {
      ServiceOptions planned = base;
      planned.enable_planner = true;
      planned.num_threads = threads;
      QueryService service(g, planned);
      const ServiceReport report = service.Submit(workload);
      ASSERT_EQ(report.answers.size(), expected.answers.size());
      for (size_t i = 0; i < expected.answers.size(); ++i) {
        EXPECT_EQ(report.answers[i].rejected, expected.answers[i].rejected)
            << ToString(algorithm) << " query " << i << " threads "
            << threads;
        // Bitwise equality: counts are exact and the noise substreams are
        // assigned at admission, so execution shape cannot leak in.
        EXPECT_EQ(report.answers[i].estimate, expected.answers[i].estimate)
            << ToString(algorithm) << " query " << i << " threads "
            << threads;
      }
      EXPECT_EQ(report.answered, expected.answered);
      EXPECT_EQ(report.rejected, expected.rejected);
      EXPECT_GT(report.groups_formed, 0u);
      EXPECT_GE(report.avg_group_size, 1.0);
    }
  }
}

TEST(PlannedExecutionTest, PlannerAccountingIsReported) {
  const BipartiteGraph g = TestGraph();
  std::vector<QueryPair> queries;
  for (VertexId w = 1; w <= 6; ++w) queries.push_back({Layer::kLower, 0, w});
  ServiceOptions options;
  options.algorithm = ServiceAlgorithm::kOneR;
  options.epsilon = 1.0;
  QueryService service(g, options);
  const ServiceReport report = service.Submit(queries);
  EXPECT_EQ(report.groups_formed, 1u);
  EXPECT_DOUBLE_EQ(report.avg_group_size, 6.0);
  EXPECT_GE(report.planner_seconds, 0.0);
  EXPECT_EQ(report.rejected, 0u);
}

}  // namespace
}  // namespace cne
