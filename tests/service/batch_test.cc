#include "service/batch.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/statistics.h"

namespace cne {
namespace {

std::vector<QueryPair> StarQueries(VertexId hub_count) {
  // Pairs (0, 1), (0, 2), ..., (0, hub_count): vertex 0 joins every pair.
  std::vector<QueryPair> queries;
  for (VertexId w = 1; w <= hub_count; ++w) {
    queries.push_back({Layer::kLower, 0, w});
  }
  return queries;
}

TEST(BatchOneRTest, OneReleasePerDistinctVertex) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40, 8);
  Rng rng(1);
  const BatchResult r = BatchOneR(g, StarQueries(8), 2.0, rng);
  EXPECT_EQ(r.answers.size(), 8u);
  // Vertices involved: hub 0 plus 8 partners.
  EXPECT_EQ(r.vertices_released, 9u);
  EXPECT_GT(r.uploaded_bytes, 0.0);
  // 16 vertex lookups (two per query), 9 of which released: the hub's 7
  // repeats are cache hits.
  EXPECT_EQ(r.cache_hits, 7u);
  EXPECT_DOUBLE_EQ(r.cache_hit_rate, 7.0 / 16.0);
}

TEST(BatchOneRTest, ResidualBudgetAccountsEveryReleasedVertex) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40, 8);
  Rng rng(9);
  const double epsilon = 1.7;
  const BatchResult r = BatchOneR(g, StarQueries(4), epsilon, rng);
  ASSERT_EQ(r.residual_budget.size(), 5u);  // hub + 4 partners
  for (const VertexBudget& vb : r.residual_budget) {
    // Each vertex spent its full lifetime budget on the one release —
    // the ledger would block any second release.
    EXPECT_DOUBLE_EQ(vb.spent, epsilon);
    EXPECT_NEAR(vb.remaining, 0.0, 1e-12);
  }
  // Snapshot is sorted by vertex id (all on the same layer here).
  for (size_t i = 1; i < r.residual_budget.size(); ++i) {
    EXPECT_LT(r.residual_budget[i - 1].vertex.id,
              r.residual_budget[i].vertex.id);
  }
}

TEST(BatchOneRTest, UnbiasedPerQuery) {
  const BipartiteGraph g = PlantedCommonNeighbors(4, 3, 3, 40);
  const std::vector<QueryPair> queries = {{Layer::kLower, 0, 1}};
  Rng rng(2);
  RunningStats stats;
  for (int t = 0; t < 20000; ++t) {
    stats.Add(BatchOneR(g, queries, 1.5, rng).answers[0].estimate);
  }
  EXPECT_NEAR(stats.Mean(), 4.0, 4.5 * stats.StdError());
}

TEST(BatchOneRTest, SharedReleaseIsConsistentAcrossQueries) {
  // With a shared noisy graph, identical queries in one batch must get
  // identical answers (pure post-processing on the same sets).
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  const std::vector<QueryPair> queries = {{Layer::kLower, 0, 1},
                                          {Layer::kLower, 0, 1}};
  Rng rng(3);
  const BatchResult r = BatchOneR(g, queries, 2.0, rng);
  EXPECT_DOUBLE_EQ(r.answers[0].estimate, r.answers[1].estimate);
}

TEST(BatchNaiveTest, MatchesIntersectionSemantics) {
  // With a huge budget the noisy sets equal the true neighborhoods, so
  // the naive batch returns the exact counts.
  const BipartiteGraph g = PlantedCommonNeighbors(5, 2, 2, 20, 3);
  const std::vector<QueryPair> queries = {{Layer::kLower, 0, 1},
                                          {Layer::kLower, 0, 2}};
  Rng rng(4);
  const BatchResult r = BatchNaive(g, queries, 50.0, rng);
  EXPECT_DOUBLE_EQ(r.answers[0].estimate, 5.0);
  EXPECT_DOUBLE_EQ(r.answers[1].estimate, 0.0);
}

TEST(BatchTest, UploadGrowsWithDistinctVerticesNotQueries) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 500, 20);
  Rng rng_a(5), rng_b(5);
  // Same distinct vertex set {0..5}; different numbers of queries.
  std::vector<QueryPair> few, many;
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId w = u + 1; w < 6; ++w) {
      many.push_back({Layer::kLower, u, w});
      if (w == u + 1) few.push_back({Layer::kLower, u, w});
    }
  }
  const BatchResult a = BatchOneR(g, few, 2.0, rng_a);
  const BatchResult b = BatchOneR(g, many, 2.0, rng_b);
  EXPECT_EQ(a.vertices_released, 6u);
  EXPECT_EQ(b.vertices_released, 6u);
  EXPECT_DOUBLE_EQ(a.uploaded_bytes, b.uploaded_bytes);
  EXPECT_GT(b.answers.size(), a.answers.size());
}

TEST(BatchDeathTest, RejectsEmptyAndMixedLayerBatches) {
  const BipartiteGraph g = PlantedCommonNeighbors(3, 5, 2, 40);
  Rng rng(6);
  EXPECT_DEATH(BatchOneR(g, {}, 2.0, rng), "empty batch");
  const std::vector<QueryPair> mixed = {{Layer::kLower, 0, 1},
                                        {Layer::kUpper, 0, 1}};
  EXPECT_DEATH(BatchOneR(g, mixed, 2.0, rng), "mixes");
}

}  // namespace
}  // namespace cne
