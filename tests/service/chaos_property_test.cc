// Fault-hardened serving under deterministic fault injection
// (util/failpoint.h): every injected WAL, snapshot, or execution failure
// must leave the service in a state indistinguishable from one that never
// attempted the failed operation — zero budget charged, zero noise drawn,
// answers either correct or explicitly rejected with a typed reason.
//
// Two layers of coverage:
//   * targeted unit tests, one per fault site, pinning the exact health
//     transition, rollback, heal, and restart behavior; and
//   * a chaos property test driving hundreds of randomized fault
//     schedules against an uninterrupted oracle service.
//
// Everything here needs the failpoint framework compiled in; under
// -DCNE_FAILPOINTS=OFF the whole file reduces to one skip marker.

#include <cstdint>
#include <filesystem>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "store/snapshot_format.h"
#include "util/binary_io.h"
#include "util/failpoint.h"
#include "util/rng.h"

namespace cne {
namespace {

#if CNE_FAILPOINTS_ENABLED

BipartiteGraph TestGraph() { return PlantedCommonNeighbors(3, 5, 2, 40, 8); }

std::string FreshDir(const std::string& name) {
  const auto dir =
      std::filesystem::path(::testing::TempDir()) / ("chaos_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

ServiceOptions MakeOptions(ServiceAlgorithm algorithm,
                           const std::string& snapshot_dir = "") {
  ServiceOptions options;
  options.algorithm = algorithm;
  options.epsilon = 2.0;
  options.lifetime_budget = 6.0;
  options.num_threads = 2;
  options.seed = 99;
  options.snapshot_dir = snapshot_dir;
  options.checkpoint_backoff_ms = 0.0;  // injected faults need no wall clock
  return options;
}

std::vector<QueryPair> Workload(const BipartiteGraph& g, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  return MakeHotSetWorkload(g, Layer::kLower, count, 8, rng);
}

void ExpectSameAnswers(const ServiceReport& a, const ServiceReport& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].rejected, b.answers[i].rejected)
        << label << " query " << i;
    // Bitwise equality: shared noise substreams, not statistical likeness.
    EXPECT_EQ(a.answers[i].estimate, b.answers[i].estimate)
        << label << " query " << i;
  }
}

void ExpectSameLedgers(const BudgetLedger& a, const BudgetLedger& b,
                       const std::string& label) {
  EXPECT_EQ(a.lifetime_budget(), b.lifetime_budget()) << label;
  const auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].vertex, sb[i].vertex) << label << " row " << i;
    EXPECT_EQ(sa[i].spent, sb[i].spent) << label << " row " << i;
  }
}

void ExpectSameViews(const BipartiteGraph& g, const NoisyViewStore& a,
                     const NoisyViewStore& b, const std::string& label) {
  uint64_t compared = 0;
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    for (VertexId id = 0; id < g.NumVertices(layer); ++id) {
      const LayeredVertex v{layer, id};
      if (!a.Contains(v) || !b.Contains(v)) continue;
      EXPECT_EQ(a.View(v).ToSortedVector(), b.View(v).ToSortedVector())
          << label << " " << LayerName(layer) << " vertex " << id;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u) << label;
}

void ExpectAllRejectedWith(const ServiceReport& report, RejectReason reason,
                           const std::string& label) {
  for (size_t i = 0; i < report.answers.size(); ++i) {
    EXPECT_TRUE(report.answers[i].rejected) << label << " query " << i;
    EXPECT_EQ(report.answers[i].reason, reason) << label << " query " << i;
    EXPECT_EQ(report.answers[i].estimate, 0.0) << label << " query " << i;
  }
}

constexpr ServiceAlgorithm kAllAlgorithms[] = {
    ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
    ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS};

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::Clear(); }
};

// --- One test per fault site: the exact contract at each failure.

TEST_F(ChaosTest, WalAppendFailureRejectsBatchExactly) {
  // An append that fails before any byte reaches the file is the clean
  // case: disk and memory both roll back to the pre-batch state, so a
  // restart and an in-process retry agree exactly.
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 1);
  const auto w2 = Workload(g, 50, 2);

  for (ServiceAlgorithm algorithm : kAllAlgorithms) {
    const std::string label = ToString(algorithm);
    const std::string dir = FreshDir("append_" + label);
    QueryService reference(g, MakeOptions(algorithm));
    reference.Submit(w1);

    {
      QueryService service(g, MakeOptions(algorithm, dir));
      service.Submit(w1);
      const uint64_t streams_before = service.next_noise_stream();

      fail::Configure("wal.append=err:ENOSPC@1");
      const ServiceReport rejected = service.Submit(w2);
      fail::Clear();

      EXPECT_FALSE(rejected.sealed) << label;
      EXPECT_EQ(rejected.health, ServiceHealth::kDegradedReadOnly) << label;
      EXPECT_EQ(service.health(), ServiceHealth::kDegradedReadOnly) << label;
      ExpectAllRejectedWith(rejected, RejectReason::kDurability, label);
      // The rollback is exact: no charge kept, no substream consumed.
      EXPECT_EQ(service.next_noise_stream(), streams_before) << label;
      ExpectSameLedgers(reference.ledger(), service.ledger(), label);
      const obs::MetricsSnapshot counters = service.SnapshotMetrics();
      EXPECT_EQ(counters.CounterValue("wal_failures"), 1u) << label;
      EXPECT_EQ(counters.CounterValue("submit_rollbacks"), 1u) << label;
      EXPECT_EQ(counters.CounterValue("queries_rejected_unavailable"),
                w2.size())
          << label;
    }  // kill the degraded service without healing it

    // Nothing of w2 ever reached the journal, so recovery lands on w1's
    // state and the client's resubmission matches the uninterrupted run.
    QueryService restored(g, MakeOptions(algorithm, dir));
    EXPECT_EQ(restored.health(), ServiceHealth::kHealthy) << label;
    ExpectSameLedgers(reference.ledger(), restored.ledger(), label);
    ExpectSameAnswers(reference.Submit(w2), restored.Submit(w2), label);
    ExpectSameLedgers(reference.ledger(), restored.ledger(),
                      label + " after w2");
    ExpectSameViews(g, reference.store(), restored.store(), label);
  }
}

TEST_F(ChaosTest, WalFsyncFailureRollsBackAndHeals) {
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 3);
  const auto w2 = Workload(g, 50, 4);
  const std::string dir = FreshDir("fsync_heal");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kMultiRDS));
  reference.Submit(w1);

  QueryService service(g, MakeOptions(ServiceAlgorithm::kMultiRDS, dir));
  service.Submit(w1);
  const uint64_t streams_before = service.next_noise_stream();

  fail::Configure("wal.fsync=err:EIO");
  const ServiceReport rejected = service.Submit(w2);
  fail::Clear();

  ExpectAllRejectedWith(rejected, RejectReason::kDurability, "fsync");
  EXPECT_EQ(service.health(), ServiceHealth::kDegradedReadOnly);
  EXPECT_EQ(service.next_noise_stream(), streams_before);
  ExpectSameLedgers(reference.ledger(), service.ledger(), "fsync rollback");

  // A successful checkpoint re-establishes durability — and, crucially,
  // starts a fresh WAL epoch that discards whatever bytes the failed
  // fsync may or may not have left behind (an fsync error leaves the
  // file contents ambiguous; the new epoch makes the question moot).
  service.Checkpoint();
  EXPECT_EQ(service.health(), ServiceHealth::kHealthy);

  const ServiceReport healed = service.Submit(w2);
  EXPECT_TRUE(healed.sealed);
  ExpectSameAnswers(reference.Submit(w2), healed, "healed w2");
  ExpectSameLedgers(reference.ledger(), service.ledger(), "healed");
  EXPECT_EQ(service.SnapshotMetrics().CounterValue("health_transitions"), 2u);
}

TEST_F(ChaosTest, ReadOnlyModeAnswersCachedViewsAndRefusesNewCharges) {
  // Degraded mode is not an outage: answers over already-released views
  // are post-processing of public data — no new charge, no new noise —
  // and keep flowing. Only queries needing a fresh release are refused.
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 80, 5);
  const std::string dir = FreshDir("readonly");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kOneR));
  reference.Submit(w1);

  QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  service.Submit(w1);

  fail::Configure("wal.fsync=err");
  service.Submit(Workload(g, 10, 6));  // rejected wholesale; degrades
  fail::Clear();
  ASSERT_EQ(service.health(), ServiceHealth::kDegradedReadOnly);

  // Repeating the released workload answers identically to the healthy
  // reference repeating it — same views, zero new releases.
  const ServiceReport degraded = service.Submit(w1);
  const ServiceReport ref_repeat = reference.Submit(w1);
  EXPECT_FALSE(degraded.sealed);
  EXPECT_EQ(degraded.health, ServiceHealth::kDegradedReadOnly);
  EXPECT_EQ(degraded.rejected, 0u);
  ExpectSameAnswers(ref_repeat, degraded, "degraded repeat");

  // A pair of never-released vertices needs two fresh charges: refused
  // with the read-only reason, and nothing is charged for the attempt.
  const VertexId last = g.NumVertices(Layer::kLower) - 1;
  const std::vector<QueryPair> cold = {{Layer::kLower, last, last - 1}};
  const ServiceReport refused = service.Submit(cold);
  ExpectAllRejectedWith(refused, RejectReason::kReadOnly, "cold query");
  EXPECT_EQ(refused.rejected_unavailable, 1u);
  ExpectSameLedgers(reference.ledger(), service.ledger(), "readonly");
}

TEST_F(ChaosTest, CheckpointRetriesQuarantinesAndKeepsLastGoodSnapshot) {
  const BipartiteGraph g = TestGraph();
  const std::string dir = FreshDir("ckpt_retry");
  ServiceOptions options = MakeOptions(ServiceAlgorithm::kMultiRSS, dir);
  options.checkpoint_attempts = 3;
  QueryService service(g, options);
  service.Submit(Workload(g, 60, 7));

  // Transient disk-full on the first attempt: the retry succeeds, the
  // service never leaves healthy, and the failed attempt's temp file is
  // quarantined for inspection instead of silently unlinked.
  fail::Configure("snapshot.write=err:ENOSPC@1");
  service.Checkpoint();
  fail::Clear();
  EXPECT_EQ(service.health(), ServiceHealth::kHealthy);
  const std::string snapshot_path =
      (std::filesystem::path(dir) / kSnapshotFileName).string();
  EXPECT_TRUE(FileExists(snapshot_path));
  EXPECT_TRUE(FileExists(snapshot_path + ".tmp.quarantine"));
  obs::MetricsSnapshot metrics = service.SnapshotMetrics();
  EXPECT_EQ(metrics.CounterValue("checkpoint_failures"), 1u);
  EXPECT_EQ(metrics.CounterValue("checkpoint_retries"), 1u);

  // A persistent failure exhausts the attempts and rethrows — but the
  // last good snapshot is untouched (atomic rename-on-commit), health
  // stands, and journaling continues over the existing WAL epoch.
  const auto good_snapshot = ReadFileBytes(snapshot_path);
  fail::Configure("snapshot.fsync=err:EIO");
  EXPECT_THROW(service.Checkpoint(), std::runtime_error);
  fail::Clear();
  EXPECT_EQ(service.health(), ServiceHealth::kHealthy);
  EXPECT_EQ(ReadFileBytes(snapshot_path), good_snapshot);
  metrics = service.SnapshotMetrics();
  EXPECT_EQ(metrics.CounterValue("checkpoint_failures"), 4u);
  EXPECT_EQ(metrics.CounterValue("checkpoint_retries"), 3u);

  const ServiceReport after = service.Submit(Workload(g, 40, 8));
  EXPECT_TRUE(after.sealed);
  EXPECT_EQ(after.health, ServiceHealth::kHealthy);
}

TEST_F(ChaosTest, WalResetFailureAfterCheckpointDegrades) {
  // The nastiest ordering: the snapshot committed, then the fresh-epoch
  // WAL could not be created. Appending to the old-epoch journal would
  // write records recovery discards as stale — silent budget loss — so
  // the service must degrade instead.
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 9);
  const auto w2 = Workload(g, 50, 10);
  const std::string dir = FreshDir("walreset");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kOneR));
  reference.Submit(w1);

  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
    service.Submit(w1);
    fail::Configure("walreset.write=err:EIO");
    EXPECT_THROW(service.Checkpoint(), std::runtime_error);
    fail::Clear();
    EXPECT_EQ(service.health(), ServiceHealth::kDegradedReadOnly);
    EXPECT_TRUE(FileExists(
        (std::filesystem::path(dir) / kSnapshotFileName).string()));

    // Cached answers keep flowing (unsealed), and a later successful
    // checkpoint heals in place.
    const ServiceReport degraded = service.Submit(w1);
    EXPECT_FALSE(degraded.sealed);
    EXPECT_EQ(degraded.rejected, 0u);
    service.Checkpoint();
    EXPECT_EQ(service.health(), ServiceHealth::kHealthy);
    ExpectSameAnswers(reference.Submit(w2), service.Submit(w2), "healed w2");
  }

  // The snapshot that committed just before the failure (plus the healed
  // epoch's journal) restores the exact state.
  QueryService restored(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  ExpectSameLedgers(reference.ledger(), restored.ledger(), "walreset");
}

TEST_F(ChaosTest, FailedServiceRefusesEverythingUntilRestart) {
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 11);
  const auto w2 = Workload(g, 50, 12);
  const auto w3 = Workload(g, 70, 13);
  const std::string dir = FreshDir("failed");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kMultiRSS));
  reference.Submit(w1);
  reference.Submit(w2);

  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kMultiRSS, dir));
    service.Submit(w1);
    fail::Configure("service.execute=err");
    EXPECT_THROW(service.Submit(w2), std::runtime_error);
    fail::Clear();
    ASSERT_EQ(service.health(), ServiceHealth::kFailed);

    // Everything is refused without throwing again: submits answer with
    // the typed reason, maintenance operations fail loudly.
    const ServiceReport refused = service.Submit(w3);
    ExpectAllRejectedWith(refused, RejectReason::kServiceFailed, "failed");
    EXPECT_FALSE(refused.sealed);
    EXPECT_THROW(service.Checkpoint(), std::runtime_error);
    EXPECT_THROW(service.RaiseLifetimeBudget(12.0), std::runtime_error);
  }  // restart is the only exit from kFailed

  // The fault fired *after* the seal, so w2's admissions are durable:
  // recovery must replay them, exactly as the reference ran them.
  QueryService restored(g, MakeOptions(ServiceAlgorithm::kMultiRSS, dir));
  EXPECT_EQ(restored.health(), ServiceHealth::kHealthy);
  ExpectSameLedgers(reference.ledger(), restored.ledger(), "restored");
  ExpectSameAnswers(reference.Submit(w3), restored.Submit(w3), "w3");
  ExpectSameViews(g, reference.store(), restored.store(), "restored");
}

TEST_F(ChaosTest, RaiseBudgetFailureDegradesWithoutApplying) {
  const BipartiteGraph g = TestGraph();
  const std::string dir = FreshDir("raise");
  ServiceOptions options = MakeOptions(ServiceAlgorithm::kMultiRSS, dir);
  options.lifetime_budget = 2.0;
  QueryService service(g, options);
  const std::vector<QueryPair> exhausting = {{Layer::kLower, 0, 1},
                                             {Layer::kLower, 0, 2},
                                             {Layer::kLower, 0, 3}};
  ASSERT_TRUE(service.Submit(exhausting).answers[2].rejected);

  // The raise journals ahead of applying; if the journal write fails the
  // ledger must still hold the old bound (a raise the journal never saw
  // would silently un-raise itself at the next recovery).
  fail::Configure("wal.fsync=err");
  EXPECT_THROW(service.RaiseLifetimeBudget(5.0), std::runtime_error);
  fail::Clear();
  EXPECT_EQ(service.health(), ServiceHealth::kDegradedReadOnly);
  EXPECT_EQ(service.ledger().lifetime_budget(), 2.0);
  EXPECT_THROW(service.RaiseLifetimeBudget(5.0), std::runtime_error);

  service.Checkpoint();  // heal, then the raise goes through
  service.RaiseLifetimeBudget(5.0);
  EXPECT_EQ(service.ledger().lifetime_budget(), 5.0);
  const ServiceReport retry = service.Submit({{Layer::kLower, 0, 3}});
  EXPECT_EQ(retry.rejected, 0u);
}

// --- The chaos property: randomized fault schedules vs an uninterrupted
// --- oracle. Invariant: after clearing faults (healing or restarting as
// --- the health state demands), the service's answers, ledger, views,
// --- and noise-substream position all match a service that never saw a
// --- fault — i.e. every failure path either committed exactly or rolled
// --- back exactly, with nothing in between.

TEST_F(ChaosTest, RandomFaultSchedulesNeverDesyncServiceFromOracle) {
  const BipartiteGraph g = TestGraph();
  constexpr uint64_t kTrials = 200;

  // Faults armed before each Submit. Entries that cannot fire during a
  // submit (snapshot.*) are still schedule noise worth keeping: arming a
  // site that never evaluates must be harmless.
  const char* kSubmitFaults[] = {
      "",
      "",  // twice: fault-free batches keep both services advancing
      "wal.fsync=err:EIO",
      "wal.fsync=err:EIO@50%",
      "wal.append=err:ENOSPC@1",
      "wal.append=short:5",  // short writes retry: must still seal
      "service.execute=err",
      "snapshot.write=err:ENOSPC",
  };
  // Faults armed before an interleaved Checkpoint. With three attempts,
  // @1 snapshot faults heal themselves via retry; the walreset fault
  // degrades and is healed by a follow-up clean checkpoint.
  const char* kCheckpointFaults[] = {
      "",
      "snapshot.write=err:ENOSPC@1",
      "snapshot.fsync=err:EIO@1",
      "walreset.write=err:EIO@1",
  };

  for (uint64_t trial = 0; trial < kTrials; ++trial) {
    const ServiceAlgorithm algorithm =
        kAllAlgorithms[trial % std::size(kAllAlgorithms)];
    const std::string label = std::string(ToString(algorithm)) + " trial " +
                              std::to_string(trial);
    const std::string dir = FreshDir("prop_" + std::to_string(trial));
    Rng schedule(7000 + trial);

    QueryService oracle(g, MakeOptions(algorithm));
    ServiceOptions options = MakeOptions(algorithm, dir);
    options.checkpoint_attempts = 3;
    auto service = std::make_unique<QueryService>(g, options);

    for (uint64_t b = 0; b < 3; ++b) {
      const auto batch = Workload(g, 24 + 8 * b, 1000 * trial + b);
      const char* spec =
          kSubmitFaults[schedule.UniformInt(std::size(kSubmitFaults))];
      fail::Configure(spec, /*seed=*/trial);
      bool threw = false;
      ServiceReport report;
      try {
        report = service->Submit(batch);
      } catch (const std::runtime_error&) {
        threw = true;  // service.execute: post-seal, so the batch stands
      }
      fail::Clear();

      if (threw) {
        // The seal preceded the fault: the batch is durable and the
        // oracle must run it. In-memory state is untrusted — restart.
        EXPECT_EQ(service->health(), ServiceHealth::kFailed) << label;
        oracle.Submit(batch);
        service.reset();
        service = std::make_unique<QueryService>(g, options);
        EXPECT_EQ(service->health(), ServiceHealth::kHealthy) << label;
      } else if (report.sealed || !service->persistent()) {
        oracle.Submit(batch);
      } else {
        // Rolled back wholesale: the oracle never sees the batch, and
        // both sides must agree that it left no trace.
        ExpectAllRejectedWith(report, RejectReason::kDurability, label);
      }
      if (service->health() == ServiceHealth::kDegradedReadOnly) {
        service->Checkpoint();  // faults are cleared: the heal must land
        EXPECT_EQ(service->health(), ServiceHealth::kHealthy) << label;
      }

      if (schedule.Bernoulli(0.5)) {
        const char* cp = kCheckpointFaults[schedule.UniformInt(
            std::size(kCheckpointFaults))];
        fail::Configure(cp, /*seed=*/trial);
        try {
          service->Checkpoint();
        } catch (const std::runtime_error&) {
          // Retries exhausted or the WAL reset failed; handled below.
        }
        fail::Clear();
        if (service->health() == ServiceHealth::kDegradedReadOnly) {
          service->Checkpoint();
          EXPECT_EQ(service->health(), ServiceHealth::kHealthy) << label;
        }
      }

      EXPECT_EQ(service->next_noise_stream(), oracle.next_noise_stream())
          << label << " batch " << b;
    }

    // Final verdict: a probe workload must answer bit-identically, and
    // ledger + views + substream position must match the oracle.
    const auto probe = Workload(g, 40, 9000 + trial);
    ExpectSameAnswers(oracle.Submit(probe), service->Submit(probe), label);
    ExpectSameLedgers(oracle.ledger(), service->ledger(), label);
    ExpectSameViews(g, oracle.store(), service->store(), label);
    EXPECT_EQ(service->next_noise_stream(), oracle.next_noise_stream())
        << label;

    // And the on-disk state agrees too: reopen and compare the ledger.
    service.reset();
    QueryService restored(g, options);
    ExpectSameLedgers(oracle.ledger(), restored.ledger(), label + " restart");
    EXPECT_EQ(restored.next_noise_stream(), oracle.next_noise_stream())
        << label << " restart";
  }
}

#else  // !CNE_FAILPOINTS_ENABLED

TEST(ChaosTest, SkippedWithoutFailpoints) {
  GTEST_SKIP() << "built with -DCNE_FAILPOINTS=OFF; fault-injection "
                  "coverage runs in the default configuration";
}

#endif  // CNE_FAILPOINTS_ENABLED

}  // namespace
}  // namespace cne
