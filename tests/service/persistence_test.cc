// Budget safety across restarts — the acceptance property of the
// persistence subsystem: a QueryService checkpointed mid-workload,
// destroyed, and restored from snapshot + WAL produces byte-identical
// answers and residual budgets to an uninterrupted run, for all four
// protocols, with zero views re-randomized and no budget charge applied
// twice. Includes the simulated torn-final-WAL-record crash, which must
// be detected and dropped, never half-applied.

#include <filesystem>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/synthetic.h"
#include "service/query_service.h"
#include "service/workload.h"
#include "store/budget_wal.h"
#include "store/snapshot_format.h"
#include "util/binary_io.h"

namespace cne {
namespace {

BipartiteGraph TestGraph() { return PlantedCommonNeighbors(3, 5, 2, 40, 8); }

// A fresh directory per call so tests never see each other's state.
std::string FreshDir(const std::string& name) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   ("persistence_" + name);
  std::filesystem::remove_all(dir);
  return dir.string();
}

ServiceOptions MakeOptions(ServiceAlgorithm algorithm,
                           const std::string& snapshot_dir = "") {
  ServiceOptions options;
  options.algorithm = algorithm;
  options.epsilon = 2.0;
  options.lifetime_budget = 6.0;  // room for several MultiR sourcings
  options.num_threads = 2;
  options.seed = 99;
  options.snapshot_dir = snapshot_dir;
  return options;
}

std::vector<QueryPair> Workload(const BipartiteGraph& g, size_t count,
                                uint64_t seed) {
  Rng rng(seed);
  return MakeHotSetWorkload(g, Layer::kLower, count, 8, rng);
}

void ExpectSameAnswers(const ServiceReport& a, const ServiceReport& b,
                       const std::string& label) {
  ASSERT_EQ(a.answers.size(), b.answers.size()) << label;
  for (size_t i = 0; i < a.answers.size(); ++i) {
    EXPECT_EQ(a.answers[i].rejected, b.answers[i].rejected)
        << label << " query " << i;
    // Bitwise equality: restored noise substreams and views are shared,
    // not merely statistically alike.
    EXPECT_EQ(a.answers[i].estimate, b.answers[i].estimate)
        << label << " query " << i;
  }
}

void ExpectSameLedgers(const BudgetLedger& a, const BudgetLedger& b,
                       const std::string& label) {
  EXPECT_EQ(a.lifetime_budget(), b.lifetime_budget()) << label;
  const auto sa = a.Snapshot();
  const auto sb = b.Snapshot();
  ASSERT_EQ(sa.size(), sb.size()) << label;
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].vertex, sb[i].vertex) << label << " row " << i;
    // Exact doubles: a restored ledger that is only approximately equal
    // would eventually admit a query the uninterrupted service rejects.
    EXPECT_EQ(sa[i].spent, sb[i].spent) << label << " row " << i;
  }
}

// Every view present in both stores must hold identical bytes — a
// re-randomized view would be a second release of the same neighbor list.
void ExpectSameViews(const BipartiteGraph& g, const NoisyViewStore& a,
                     const NoisyViewStore& b, const std::string& label) {
  uint64_t compared = 0;
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    for (VertexId id = 0; id < g.NumVertices(layer); ++id) {
      const LayeredVertex v{layer, id};
      if (!a.Contains(v) || !b.Contains(v)) continue;
      const NoisyNeighborSet& va = a.View(v);
      const NoisyNeighborSet& vb = b.View(v);
      EXPECT_EQ(va.IsBitmap(), vb.IsBitmap()) << label;
      EXPECT_EQ(va.ToSortedVector(), vb.ToSortedVector())
          << label << " " << LayerName(layer) << " vertex " << id;
      ++compared;
    }
  }
  EXPECT_GT(compared, 0u) << label;
}

constexpr ServiceAlgorithm kAllAlgorithms[] = {
    ServiceAlgorithm::kNaive, ServiceAlgorithm::kOneR,
    ServiceAlgorithm::kMultiRSS, ServiceAlgorithm::kMultiRDS};

// --- The acceptance criterion: checkpoint mid-workload, kill, restore,
// --- and the service is indistinguishable from one that never died.

TEST(PersistenceTest, KillRestoreRoundTripIsByteIdenticalForAllProtocols) {
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 100, 1);
  const auto w2 = Workload(g, 80, 2);
  const auto w3 = Workload(g, 120, 3);

  for (ServiceAlgorithm algorithm : kAllAlgorithms) {
    const std::string label = ToString(algorithm);
    const std::string dir = FreshDir("roundtrip_" + label);

    // The uninterrupted reference run.
    QueryService reference(g, MakeOptions(algorithm));
    reference.Submit(w1);
    reference.Submit(w2);

    {
      QueryService service(g, MakeOptions(algorithm, dir));
      service.Submit(w1);
      service.Checkpoint();         // snapshot holds w1's state
      service.Submit(w2);           // w2 lives only in the WAL
    }                               // kill: no final checkpoint

    QueryService restored(g, MakeOptions(algorithm, dir));
    EXPECT_TRUE(restored.recovery().snapshot_loaded) << label;
    EXPECT_GT(restored.recovery().wal_replay_records, 0u) << label;
    EXPECT_FALSE(restored.recovery().wal_torn_tail) << label;
    ExpectSameLedgers(reference.ledger(), restored.ledger(), label);

    const ServiceReport ref3 = reference.Submit(w3);
    const ServiceReport got3 = restored.Submit(w3);
    ExpectSameAnswers(ref3, got3, label);
    ExpectSameLedgers(reference.ledger(), restored.ledger(),
                      label + " after w3");
    // Zero re-randomized views: every view both services hold is
    // bit-for-bit the view released before the crash.
    ExpectSameViews(g, reference.store(), restored.store(), label);
    EXPECT_EQ(ref3.store.releases, got3.store.releases) << label;
  }
}

TEST(PersistenceTest, RestartWithoutCheckpointReplaysTheWholeWal) {
  // No checkpoint at all: recovery rebuilds everything from the journal
  // of a fresh-epoch WAL (first-run crash coverage).
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 4);
  const auto w2 = Workload(g, 60, 5);
  const std::string dir = FreshDir("wal_only");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kMultiRDS));
  reference.Submit(w1);

  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kMultiRDS, dir));
    service.Submit(w1);
  }
  QueryService restored(g, MakeOptions(ServiceAlgorithm::kMultiRDS, dir));
  EXPECT_FALSE(restored.recovery().snapshot_loaded);
  EXPECT_GT(restored.recovery().wal_replay_records, 0u);
  ExpectSameLedgers(reference.ledger(), restored.ledger(), "wal-only");
  ExpectSameAnswers(reference.Submit(w2), restored.Submit(w2), "wal-only");
}

// --- Crash-mid-submit: the torn final record is detected and dropped,
// --- and the state rolls back to the last sealed batch.

TEST(PersistenceTest, TornFinalWalRecordIsDetectedAndDropped) {
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 70, 6);
  const auto w2 = Workload(g, 50, 7);
  const std::string dir = FreshDir("torn");

  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kMultiRSS, dir));
    service.Submit(w1);
    service.Checkpoint();
    service.Submit(w2);
  }
  // Simulate a crash that tears w2's seal record mid-fsync: shave bytes
  // off the end of the journal.
  const std::string wal_path =
      (std::filesystem::path(dir) / kWalFileName).string();
  const auto size = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, size - 3);

  {
    QueryService restored(g, MakeOptions(ServiceAlgorithm::kMultiRSS, dir));
    EXPECT_TRUE(restored.recovery().wal_torn_tail);
    EXPECT_GT(restored.recovery().wal_dropped_bytes, 0u);
    // The seal never committed, so the *whole* w2 batch rolls back: the
    // restored service is the service as of the checkpoint.
    EXPECT_EQ(restored.recovery().wal_replay_records, 0u);
    QueryService reference(g, MakeOptions(ServiceAlgorithm::kMultiRSS));
    reference.Submit(w1);
    ExpectSameLedgers(reference.ledger(), restored.ledger(), "torn");

    // Re-running w2 — the resubmission a client whose submit never
    // returned would issue — matches the uninterrupted run exactly.
    ExpectSameAnswers(reference.Submit(w2), restored.Submit(w2), "torn w2");
    ExpectSameLedgers(reference.ledger(), restored.ledger(),
                      "torn after w2");
  }  // release the directory lock before reopening

  // And the once-torn WAL was compacted: a second restart is clean.
  QueryService again(g, MakeOptions(ServiceAlgorithm::kMultiRSS, dir));
  EXPECT_FALSE(again.recovery().wal_torn_tail);
}

// --- Property test: across random kill points, no charge is applied
// --- twice and no view is re-randomized.

TEST(PersistenceTest, NoDoubleChargeNoReleaseAcrossRandomKillPoints) {
  const BipartiteGraph g = TestGraph();
  for (uint64_t trial = 0; trial < 8; ++trial) {
    const ServiceAlgorithm algorithm =
        kAllAlgorithms[trial % std::size(kAllAlgorithms)];
    const std::string label =
        std::string(ToString(algorithm)) + " trial " + std::to_string(trial);
    const std::string dir = FreshDir("prop_" + std::to_string(trial));
    std::vector<std::vector<QueryPair>> batches;
    for (uint64_t b = 0; b < 3; ++b) {
      batches.push_back(Workload(g, 40 + 10 * b, 100 * trial + b));
    }
    const size_t checkpoint_after = trial % (batches.size() + 1);

    QueryService reference(g, MakeOptions(algorithm));
    {
      QueryService service(g, MakeOptions(algorithm, dir));
      if (checkpoint_after == 0) service.Checkpoint();
      for (size_t b = 0; b < batches.size(); ++b) {
        ExpectSameAnswers(reference.Submit(batches[b]),
                          service.Submit(batches[b]), label);
        if (checkpoint_after == b + 1) service.Checkpoint();
      }
    }  // kill

    QueryService restored(g, MakeOptions(algorithm, dir));
    ExpectSameLedgers(reference.ledger(), restored.ledger(), label);
    // The lifetime bound itself: nothing ever exceeds the budget.
    for (const VertexBudget& row : restored.ledger().Snapshot()) {
      EXPECT_LE(row.spent, restored.ledger().lifetime_budget() + 1e-9)
          << label;
    }
    const auto probe = Workload(g, 50, 999 + trial);
    const ServiceReport ref = reference.Submit(probe);
    const ServiceReport got = restored.Submit(probe);
    ExpectSameAnswers(ref, got, label);
    EXPECT_EQ(ref.store.releases, got.store.releases) << label;
    ExpectSameViews(g, reference.store(), restored.store(), label);
  }
}

// --- Operational paths.

TEST(PersistenceTest, RaiseLifetimeBudgetSurvivesTheCrash) {
  const BipartiteGraph g = TestGraph();
  ServiceOptions options = MakeOptions(ServiceAlgorithm::kMultiRSS);
  options.lifetime_budget = 2.0;  // tight: vertex 0 exhausts fast
  const std::string dir = FreshDir("raise");

  const std::vector<QueryPair> exhausting = {{Layer::kLower, 0, 1},
                                             {Layer::kLower, 0, 2},
                                             {Layer::kLower, 0, 3}};
  QueryService reference(g, options);
  ASSERT_TRUE(reference.Submit(exhausting).answers[2].rejected);
  reference.RaiseLifetimeBudget(5.0);

  {
    options.snapshot_dir = dir;
    QueryService service(g, options);
    service.Submit(exhausting);
    service.RaiseLifetimeBudget(5.0);
  }  // kill right after the raise — it must already be durable

  QueryService restored(g, options);
  EXPECT_EQ(restored.ledger().lifetime_budget(), 5.0);
  const std::vector<QueryPair> retry = {{Layer::kLower, 0, 3}};
  ExpectSameAnswers(reference.Submit(retry), restored.Submit(retry),
                    "post-raise retry");
}

TEST(PersistenceTest, CheckpointAfterRestoreKeepsPendingViews) {
  // A WAL-replayed view authorization is still pending (unmaterialized)
  // when an operator checkpoints immediately after recovery; the pending
  // mark must flow through the snapshot and materialize later.
  const BipartiteGraph g = TestGraph();
  const auto w1 = Workload(g, 60, 8);
  const auto w2 = Workload(g, 60, 9);
  const std::string dir = FreshDir("pending");

  QueryService reference(g, MakeOptions(ServiceAlgorithm::kOneR));
  reference.Submit(w1);

  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
    service.Submit(w1);
  }
  {
    QueryService restored(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
    restored.Checkpoint();  // pending views from WAL replay, no submit
  }
  QueryService final_service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  EXPECT_TRUE(final_service.recovery().snapshot_loaded);
  EXPECT_EQ(final_service.recovery().wal_replay_records, 0u);
  ExpectSameAnswers(reference.Submit(w2), final_service.Submit(w2),
                    "pending");
  ExpectSameViews(g, reference.store(), final_service.store(), "pending");
}

TEST(PersistenceTest, FreshDirectoryBehavesLikeAnEphemeralService) {
  const BipartiteGraph g = TestGraph();
  const auto w = Workload(g, 80, 10);
  const std::string dir = FreshDir("fresh");

  QueryService persistent(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  EXPECT_FALSE(persistent.recovery().snapshot_loaded);
  EXPECT_EQ(persistent.recovery().wal_replay_records, 0u);
  QueryService ephemeral(g, MakeOptions(ServiceAlgorithm::kOneR));
  ExpectSameAnswers(ephemeral.Submit(w), persistent.Submit(w), "fresh");
  EXPECT_TRUE(FileExists(
      (std::filesystem::path(dir) / kWalFileName).string()));
}

TEST(PersistenceTest, MismatchedOptionsOrGraphAreRefused) {
  const BipartiteGraph g = TestGraph();
  const std::string dir = FreshDir("mismatch");
  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
    service.Submit(Workload(g, 40, 11));
    service.Checkpoint();
  }

  ServiceOptions wrong_seed = MakeOptions(ServiceAlgorithm::kOneR, dir);
  wrong_seed.seed = 100;  // different seed ⇒ different view randomness
  EXPECT_THROW(QueryService(g, wrong_seed), std::runtime_error);

  ServiceOptions wrong_epsilon = MakeOptions(ServiceAlgorithm::kOneR, dir);
  wrong_epsilon.epsilon = 1.0;
  EXPECT_THROW(QueryService(g, wrong_epsilon), std::runtime_error);

  ServiceOptions wrong_algorithm =
      MakeOptions(ServiceAlgorithm::kMultiRDS, dir);
  EXPECT_THROW(QueryService(g, wrong_algorithm), std::runtime_error);

  const BipartiteGraph other = PlantedCommonNeighbors(4, 4, 4, 10, 8);
  EXPECT_THROW(
      QueryService(other, MakeOptions(ServiceAlgorithm::kOneR, dir)),
      std::runtime_error);

  // The matching configuration still restores fine.
  QueryService ok(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  EXPECT_TRUE(ok.recovery().snapshot_loaded);
}

TEST(PersistenceTest, SecondServiceOnTheSameDirectoryIsRefused) {
  // Two services interleaving one journal would sum their charges on
  // replay; the directory flock turns the operator error into a loud
  // failure at open.
  const BipartiteGraph g = TestGraph();
  const std::string dir = FreshDir("lock");
  QueryService first(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
  EXPECT_THROW(QueryService(g, MakeOptions(ServiceAlgorithm::kOneR, dir)),
               std::runtime_error);
}

TEST(PersistenceTest, MissingWalNextToSnapshotIsRefused) {
  // Losing the journal loses every committed post-checkpoint charge and
  // rolls the noise-stream counter back onto already-released draws;
  // recovery must refuse rather than silently start a clean epoch.
  const BipartiteGraph g = TestGraph();
  const std::string dir = FreshDir("missing_wal");
  {
    QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR, dir));
    service.Submit(Workload(g, 40, 12));
    service.Checkpoint();
  }
  std::filesystem::remove(std::filesystem::path(dir) / kWalFileName);
  EXPECT_THROW(QueryService(g, MakeOptions(ServiceAlgorithm::kOneR, dir)),
               std::runtime_error);
}

// --- Scale: kill-restore on a generated 10⁵-edge power-law graph whose
// --- snapshot spans multiple CSR blocks per direction and whose view
// --- population mixes sorted and bitmap representations.

TEST(PersistenceTest, KillRestoreOnGeneratedScaleGraph) {
  SyntheticSpec spec;
  spec.num_upper = 5000;
  spec.num_lower = 20000;
  spec.num_edges = 120000;  // ~1.1e5 distinct: > 65536 ids per direction
  spec.seed = 21;
  const std::string cache_dir = FreshDir("scale_cache");
  const BipartiteGraph g = BuildSyntheticGraph(spec, cache_dir);
  ASSERT_GT(g.NumEdges(), uint64_t{kDefaultCsrBlockEdges});

  // ε1 = 6 puts the RR flip probability (~0.0025) under the 1/128 bitmap
  // density threshold, so hub views go bitmap via their d/n term while
  // typical power-law vertices (average degree ~6 on a 5000-id domain)
  // stay sorted — the mixed regime the views section must round-trip.
  ServiceOptions options = MakeOptions(ServiceAlgorithm::kMultiRSS);
  options.epsilon = 12.0;
  options.lifetime_budget = 24.0;
  // A wide hot set reaches past the hubs: the generator assigns weights
  // by id, so low ids are hubs (bitmap via d/n) and the hot set must
  // stretch to ranks whose degree sits below the threshold's ~26-edge
  // crossover on the 5000-id domain for sorted views to appear at all.
  Rng workload_rng(31);
  const auto w1 =
      MakeHotSetWorkload(g, Layer::kLower, 120, 1024, workload_rng);
  const auto w2 =
      MakeHotSetWorkload(g, Layer::kLower, 100, 1024, workload_rng);
  const auto w3 =
      MakeHotSetWorkload(g, Layer::kLower, 120, 1024, workload_rng);

  QueryService reference(g, options);
  reference.Submit(w1);
  reference.Submit(w2);

  const std::string dir = FreshDir("scale_roundtrip");
  {
    ServiceOptions persistent = options;
    persistent.snapshot_dir = dir;
    QueryService service(g, persistent);
    service.Submit(w1);
    service.Checkpoint();
    service.Submit(w2);  // w2 lives only in the WAL
  }  // kill

  // The checkpoint's graph section really is multi-block CSR.
  const SnapshotReader snapshot(
      (std::filesystem::path(dir) / kSnapshotFileName).string());
  ByteReader graph_section = snapshot.Section(SectionId::kGraph);
  const GraphSectionSummary summary = SummarizeGraphSection(graph_section);
  EXPECT_EQ(summary.num_edges, g.NumEdges());
  EXPECT_GE(summary.num_blocks, 4u);  // >= 2 blocks per direction

  ServiceOptions restored_options = options;
  restored_options.snapshot_dir = dir;
  QueryService restored(g, restored_options);
  EXPECT_TRUE(restored.recovery().snapshot_loaded);
  EXPECT_GT(restored.recovery().wal_replay_records, 0u);
  ExpectSameLedgers(reference.ledger(), restored.ledger(), "scale");

  ExpectSameAnswers(reference.Submit(w3), restored.Submit(w3), "scale w3");
  ExpectSameViews(g, reference.store(), restored.store(), "scale");

  // Both representations must be present among the materialized views —
  // otherwise the test never exercised the bitmap (or sorted) record path.
  uint64_t bitmap_views = 0, sorted_views = 0;
  for (Layer layer : {Layer::kUpper, Layer::kLower}) {
    for (VertexId id = 0; id < g.NumVertices(layer); ++id) {
      const LayeredVertex v{layer, id};
      if (!restored.store().Contains(v) || !reference.store().Contains(v)) {
        continue;
      }
      (restored.store().View(v).IsBitmap() ? bitmap_views : sorted_views)++;
    }
  }
  EXPECT_GT(bitmap_views, 0u) << "no hub crossed the bitmap threshold";
  EXPECT_GT(sorted_views, 0u) << "no view stayed sorted";
}

TEST(PersistenceDeathTest, CheckpointWithoutSnapshotDirIsFatal) {
  const BipartiteGraph g = TestGraph();
  QueryService service(g, MakeOptions(ServiceAlgorithm::kOneR));
  EXPECT_DEATH(service.Checkpoint(), "snapshot_dir");
}

}  // namespace
}  // namespace cne
