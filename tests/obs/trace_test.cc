#include "obs/trace.h"

#include <chrono>
#include <stdexcept>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace cne::obs {
namespace {

TEST(TraceSpanTest, NullHistogramIsNoOp) {
  // Must not crash, touch thread-locals, or record anywhere.
  const TraceSpan span(nullptr);
  {
    const TraceSpan nested(nullptr);
  }
}

TEST(TraceSpanTest, RecordsOneSamplePerSpan) {
  LatencyHistogram histogram;
  for (int i = 0; i < 5; ++i) {
    const TraceSpan span(&histogram);
  }
  EXPECT_EQ(histogram.Snapshot().count, 5u);
}

TEST(TraceSpanTest, ExclusiveTimeExcludesNestedSpans) {
  LatencyHistogram outer_hist, inner_hist;
  {
    const TraceSpan outer(&outer_hist);
    {
      const TraceSpan inner(&inner_hist);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  const HistogramSnapshot outer_snap = outer_hist.Snapshot();
  const HistogramSnapshot inner_snap = inner_hist.Snapshot();
  ASSERT_EQ(outer_snap.count, 1u);
  ASSERT_EQ(inner_snap.count, 1u);
  // The inner span holds the 20 ms sleep; the outer span's *exclusive*
  // time is just span bookkeeping and must come in far under it.
  EXPECT_GE(inner_snap.QuantileNanos(0.5), 15e6);
  EXPECT_LT(outer_snap.QuantileNanos(0.5), inner_snap.QuantileNanos(0.5) / 2);
}

TEST(TraceSpanTest, NestedExclusiveTimesAttributeToEachLevel) {
  LatencyHistogram a_hist, b_hist, c_hist;
  {
    const TraceSpan a(&a_hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    {
      const TraceSpan b(&b_hist);
      {
        const TraceSpan c(&c_hist);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  }
  // a's exclusive time covers its own 5 ms sleep but not b/c's 10 ms;
  // b's exclusive time excludes c's sleep entirely (b itself only does
  // span bookkeeping, so it stays far under c's sleep).
  EXPECT_GE(a_hist.Snapshot().QuantileNanos(0.5), 3e6);
  EXPECT_LT(b_hist.Snapshot().QuantileNanos(0.5), 5e6);
  EXPECT_GE(c_hist.Snapshot().QuantileNanos(0.5), 8e6);
}

TEST(TraceSpanTest, SiblingsDoNotInheritChildTime) {
  LatencyHistogram parent_hist, child_hist;
  {
    const TraceSpan parent(&parent_hist);
    {
      const TraceSpan child(&child_hist);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    {
      const TraceSpan child(&child_hist);
    }
  }
  const HistogramSnapshot child_snap = child_hist.Snapshot();
  EXPECT_EQ(child_snap.count, 2u);
  // The second child span is near-instant: its p-low must be far below
  // the sleeping first span.
  EXPECT_LT(child_snap.QuantileNanos(0.0), 5e6);
  EXPECT_GE(child_snap.QuantileNanos(1.0), 8e6);
}

TEST(TraceSpanTest, ExceptionUnwindRecordsAndRestoresTheStack) {
  // A span destroyed by stack unwinding must record exactly like a normal
  // exit and must pop itself from the thread-local span stack — a stale
  // parent pointer would corrupt every later span on this thread.
  LatencyHistogram outer_hist, inner_hist;
  try {
    const TraceSpan outer(&outer_hist);
    const TraceSpan inner(&inner_hist);
    throw std::runtime_error("unwind");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(outer_hist.Snapshot().count, 1u);
  EXPECT_EQ(inner_hist.Snapshot().count, 1u);

  // The stack is clean: a fresh root span sleeps alone, and a would-be
  // leaked parent from the unwound pair cannot absorb its time as child
  // time (which would drive the root's exclusive time toward zero).
  LatencyHistogram fresh_hist;
  {
    const TraceSpan fresh(&fresh_hist);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(fresh_hist.Snapshot().QuantileNanos(0.5), 8e6);
}

TEST(TraceSpanTest, ExceptionUnwindDoesNotLeakNestingAcrossSubmits) {
  // Simulates the service pattern: submit #1 dies mid-phase, submit #2
  // runs the same phases. The second submit's parent/child exclusive
  // accounting must be unaffected by the first one's unwind.
  LatencyHistogram parent_hist, child_hist;
  try {
    const TraceSpan parent(&parent_hist);
    const TraceSpan child(&child_hist);
    throw std::runtime_error("submit failed");
  } catch (const std::runtime_error&) {
  }
  {
    const TraceSpan parent(&parent_hist);
    {
      const TraceSpan child(&child_hist);
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  const HistogramSnapshot parent_snap = parent_hist.Snapshot();
  const HistogramSnapshot child_snap = child_hist.Snapshot();
  EXPECT_EQ(parent_snap.count, 2u);
  EXPECT_EQ(child_snap.count, 2u);
  // The second parent's exclusive time excludes its child's 10 ms sleep.
  EXPECT_LT(parent_snap.QuantileNanos(1.0), 5e6);
  EXPECT_GE(child_snap.QuantileNanos(1.0), 8e6);
}

TEST(SampledRecorderTest, DisabledRecorderNeverSamples) {
  SampledRecorder recorder(nullptr);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(recorder.ShouldSample());
  }
  recorder.Record(123);  // must be a no-op, not a crash
}

TEST(SampledRecorderTest, SamplesDeterministicallyOneInEight) {
  LatencyHistogram histogram;
  SampledRecorder recorder(&histogram);
  int sampled = 0;
  for (int i = 0; i < 64; ++i) {
    if (recorder.ShouldSample()) {
      ++sampled;
      EXPECT_EQ(i % 8, 0) << "sample at tick " << i;
      recorder.Record(100);
    }
  }
  EXPECT_EQ(sampled, 8);
  EXPECT_EQ(histogram.Snapshot().count, 8u);
}

TEST(SampledRecorderTest, ShiftZeroSamplesEveryCall) {
  LatencyHistogram histogram;
  SampledRecorder recorder(&histogram, /*shift=*/0);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(recorder.ShouldSample());
    recorder.Record(1);
  }
  EXPECT_EQ(histogram.Snapshot().count, 10u);
}

TEST(NowNanosTest, IsMonotonic) {
  const uint64_t a = NowNanos();
  const uint64_t b = NowNanos();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace cne::obs
