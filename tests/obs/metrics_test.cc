#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/json.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace cne::obs {
namespace {

// The histogram's documented worst-case relative quantile error: bucket
// midpoints are within 1/(2 * kSubBuckets) ≈ 1.6% of any bucketed value.
constexpr double kQuantileTolerance = 0.02;

// Ground truth: the order statistic the histogram targets (q * (count-1),
// same convention as HistogramSnapshot::QuantileNanos).
double ExactQuantile(std::vector<uint64_t> values, double q) {
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(values.size() - 1));
  return static_cast<double>(values[index]);
}

void ExpectQuantilesWithinTolerance(const std::vector<uint64_t>& values) {
  LatencyHistogram histogram;
  for (uint64_t v : values) histogram.Record(v);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ExactQuantile(values, q);
    const double approx = snapshot.QuantileNanos(q);
    // Unit buckets (v < 64) are exact; everything else is within the
    // bucket-midpoint tolerance.
    const double tolerance = exact < 64 ? 0.5 : kQuantileTolerance * exact;
    EXPECT_NEAR(approx, exact, tolerance) << "q=" << q;
  }
}

TEST(LatencyHistogramTest, UnitBucketsAreExact) {
  // Values below 2 * kSubBuckets land in per-value buckets: index == value
  // and the bucket spans exactly [v, v+1).
  for (uint64_t v = 0; v < 2 * LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketBoundsBracketEveryValue) {
  // For a spread of magnitudes (including every power of two and its
  // neighbors), the value must fall inside its bucket's [lower, upper).
  std::vector<uint64_t> probes;
  for (int e = 0; e < 63; ++e) {
    const uint64_t p = 1ull << e;
    probes.push_back(p - 1);
    probes.push_back(p);
    probes.push_back(p + 1);
    probes.push_back(p + p / 3);
  }
  for (uint64_t v : probes) {
    const size_t index = LatencyHistogram::BucketIndex(v);
    ASSERT_LT(index, LatencyHistogram::kNumBuckets);
    if (index + 1 < LatencyHistogram::kNumBuckets) {
      EXPECT_GE(v, LatencyHistogram::BucketLowerBound(index)) << "v=" << v;
      EXPECT_LT(v, LatencyHistogram::BucketLowerBound(index + 1))
          << "v=" << v;
    } else {
      // Top bucket: clamp region, lower bound still must not exceed v.
      EXPECT_GE(v, LatencyHistogram::BucketLowerBound(index)) << "v=" << v;
    }
  }
}

TEST(LatencyHistogramTest, BucketIndexIsMonotone) {
  size_t last = 0;
  for (int e = 5; e < 42; ++e) {
    for (uint64_t m = 0; m < 8; ++m) {
      const uint64_t v = (1ull << e) + m * (1ull << (e - 3));
      const size_t index = LatencyHistogram::BucketIndex(v);
      EXPECT_GE(index, last) << "v=" << v;
      last = index;
    }
  }
}

TEST(LatencyHistogramTest, RelativeBucketWidthAtMostTwoPercent) {
  // Above the unit-bucket region, (upper - lower) / lower <= 1/32.
  for (size_t i = 2 * LatencyHistogram::kSubBuckets;
       i + 1 < LatencyHistogram::kNumBuckets; ++i) {
    const double lower =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i));
    const double upper =
        static_cast<double>(LatencyHistogram::BucketLowerBound(i + 1));
    EXPECT_LE((upper - lower) / lower,
              1.0 / static_cast<double>(LatencyHistogram::kSubBuckets) + 1e-12)
        << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, QuantilesWithinTolerance_Uniform) {
  Rng rng(11);
  std::vector<uint64_t> values;
  values.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    values.push_back(1 + rng.NextU64() % 10000000);
  }
  ExpectQuantilesWithinTolerance(values);
}

TEST(LatencyHistogramTest, QuantilesWithinTolerance_SingleBucket) {
  // Every value identical: all quantiles must come back within the
  // bucket's tolerance of that one value.
  ExpectQuantilesWithinTolerance(std::vector<uint64_t>(5000, 123456));
}

TEST(LatencyHistogramTest, QuantilesWithinTolerance_PowerLaw) {
  // Heavy-tailed latencies: most records fast, a long slow tail — the
  // regime p999 extraction exists for.
  Rng rng(13);
  std::vector<uint64_t> values;
  values.reserve(100000);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextDouble();
    values.push_back(
        100 + static_cast<uint64_t>(std::pow(2.0, 22.0 * u * u)));
  }
  ExpectQuantilesWithinTolerance(values);
}

TEST(LatencyHistogramTest, MaxNanosBoundsLargestValue) {
  LatencyHistogram histogram;
  histogram.Record(1000000);
  histogram.Record(50);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_GE(snapshot.MaxNanos(), 1000000u);
  EXPECT_LE(static_cast<double>(snapshot.MaxNanos()),
            1000000.0 * (1.0 + kQuantileTolerance * 2));
}

TEST(HistogramSnapshotTest, EmptyIsZero) {
  LatencyHistogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.QuantileNanos(0.5), 0.0);
  EXPECT_EQ(snapshot.MeanNanos(), 0.0);
  EXPECT_EQ(snapshot.MaxNanos(), 0u);
}

TEST(HistogramSnapshotTest, MergeIsAssociativeAndDeterministic) {
  Rng rng(17);
  LatencyHistogram ha, hb, hc;
  for (int i = 0; i < 3000; ++i) ha.Record(1 + rng.NextU64() % 1000);
  for (int i = 0; i < 2000; ++i) hb.Record(1000 + rng.NextU64() % 100000);
  for (int i = 0; i < 1000; ++i) hc.Record(rng.NextU64() % 64);

  const HistogramSnapshot a = ha.Snapshot();
  const HistogramSnapshot b = hb.Snapshot();
  const HistogramSnapshot c = hc.Snapshot();

  HistogramSnapshot left = a;   // (a + b) + c
  left.Merge(b);
  left.Merge(c);
  HistogramSnapshot bc = b;     // a + (b + c)
  bc.Merge(c);
  HistogramSnapshot right = a;
  right.Merge(bc);

  EXPECT_EQ(left.count, 6000u);
  EXPECT_EQ(left.count, right.count);
  EXPECT_EQ(left.sum_nanos, right.sum_nanos);
  EXPECT_EQ(left.buckets, right.buckets);
  EXPECT_EQ(left.QuantileNanos(0.99), right.QuantileNanos(0.99));
}

TEST(LatencyHistogramTest, ConcurrentRecordersLoseNothing) {
  LatencyHistogram histogram;
  ThreadPool pool(4);
  const size_t n = 200000;
  pool.ParallelFor(n, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      histogram.Record(1 + (i % 1000));
    }
  });
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, n);
  uint64_t want_sum = 0;
  for (size_t i = 0; i < n; ++i) want_sum += 1 + (i % 1000);
  EXPECT_EQ(snapshot.sum_nanos, want_sum);
}

TEST(MetricsRegistryTest, HandlesAreStableAndNamed) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("queries");
  EXPECT_EQ(registry.GetCounter("queries"), c);
  c->Add(3);
  registry.GetGauge("threads")->Set(8);
  registry.GetHistogram("admission")->Record(500);

  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterValue("queries"), 3u);
  EXPECT_EQ(snapshot.CounterValue("absent"), 0u);
  ASSERT_NE(snapshot.Phase("admission"), nullptr);
  EXPECT_EQ(snapshot.Phase("admission")->count, 1u);
  EXPECT_EQ(snapshot.Phase("absent"), nullptr);
}

TEST(MetricsSnapshotTest, ToJsonRoundTripsThroughParser) {
  MetricsRegistry registry;
  registry.GetCounter("queries_submitted")->Add(42);
  registry.GetGauge("threads")->Set(4);
  LatencyHistogram* h = registry.GetHistogram("execute");
  for (uint64_t v = 1; v <= 100; ++v) h->Record(v * 1000);
  registry.GetHistogram("idle");  // zero-count phases must still appear

  const MetricsSnapshot snapshot = registry.Snapshot();
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(snapshot.ToJson(), &doc, &error)) << error;
  EXPECT_EQ(doc["metrics_version"].AsDouble(), MetricsSnapshot::kVersion);
  EXPECT_EQ(doc["counters"]["queries_submitted"].AsDouble(), 42.0);
  EXPECT_EQ(doc["gauges"]["threads"].AsDouble(), 4.0);
  ASSERT_EQ(doc["phases"].AsArray().size(), 2u);
  bool saw_execute = false, saw_idle = false;
  for (const JsonValue& phase : doc["phases"].AsArray()) {
    if (phase["name"].AsString() == "execute") {
      saw_execute = true;
      EXPECT_EQ(phase["count"].AsDouble(), 100.0);
      EXPECT_GT(phase["p99_seconds"].AsDouble(), 0.0);
      EXPECT_GE(phase["p999_seconds"].AsDouble(),
                phase["p50_seconds"].AsDouble());
    }
    if (phase["name"].AsString() == "idle") {
      saw_idle = true;
      EXPECT_EQ(phase["count"].AsDouble(), 0.0);
    }
  }
  EXPECT_TRUE(saw_execute);
  EXPECT_TRUE(saw_idle);
}

TEST(ExemplarReservoirTest, KeepsTheKSlowestSamples) {
  ExemplarReservoir reservoir;
  // Below capacity everything is accepted.
  EXPECT_TRUE(reservoir.WouldAccept(1));
  for (uint64_t nanos : {100u, 400u, 200u, 300u}) {
    Exemplar e;
    e.seconds = static_cast<double>(nanos) * 1e-9;
    e.submit = nanos;
    reservoir.Offer(nanos, e);
  }
  // Full: the floor is the smallest kept latency (100 ns).
  EXPECT_FALSE(reservoir.WouldAccept(50));
  EXPECT_FALSE(reservoir.WouldAccept(100));
  EXPECT_TRUE(reservoir.WouldAccept(150));

  Exemplar slow;
  slow.seconds = 500e-9;
  slow.submit = 500;
  reservoir.Offer(500, slow);

  const std::vector<Exemplar> kept = reservoir.Snapshot();
  ASSERT_EQ(kept.size(), ExemplarReservoir::kCapacity);
  // Sorted slowest-first; the 100 ns sample was displaced.
  EXPECT_EQ(kept.front().submit, 500u);
  EXPECT_EQ(kept.back().submit, 200u);
  for (size_t i = 1; i < kept.size(); ++i) {
    EXPECT_GE(kept[i - 1].seconds, kept[i].seconds);
  }
}

TEST(ExemplarReservoirTest, RegistryHandlesAreStableAndSnapshotSkipsEmpty) {
  MetricsRegistry registry;
  ExemplarReservoir* r = registry.GetExemplars("admission");
  EXPECT_EQ(registry.GetExemplars("admission"), r);
  registry.GetExemplars("post_process");  // stays empty

  Exemplar e;
  e.seconds = 1e-3;
  e.submit = 7;
  r->Offer(1000000, e);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.exemplars.size(), 1u);
  EXPECT_EQ(snapshot.exemplars[0].phase, "admission");
  ASSERT_EQ(snapshot.exemplars[0].exemplars.size(), 1u);
  EXPECT_EQ(snapshot.exemplars[0].exemplars[0].submit, 7u);
}

TEST(MetricsSnapshotTest, JsonCarriesExemplarsWithContext) {
  MetricsRegistry registry;
  ExemplarReservoir* r = registry.GetExemplars("post_process");
  Exemplar e;
  e.seconds = 2.5e-3;
  e.submit = 11;
  e.has_query = true;
  e.layer = 1;
  e.u = 3;
  e.w = 9;
  e.kernel = "merge";
  e.repr_u = "sorted";
  e.size_u = 128;
  e.repr_w = "bitmap";
  e.size_w = 4096;
  e.simd = "avx2";
  r->Offer(2500000, e);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(registry.Snapshot().ToJson(), &doc, &error))
      << error;
  const JsonValue& list = doc["exemplars"]["post_process"];
  ASSERT_EQ(list.AsArray().size(), 1u);
  const JsonValue& out = list.AsArray()[0];
  EXPECT_NEAR(out["seconds"].AsDouble(), 2.5e-3, 1e-9);
  EXPECT_EQ(out["submit"].AsDouble(), 11.0);
  EXPECT_EQ(out["layer"].AsDouble(), 1.0);
  EXPECT_EQ(out["u"].AsDouble(), 3.0);
  EXPECT_EQ(out["w"].AsDouble(), 9.0);
  EXPECT_EQ(out["kernel"].AsString(), "merge");
  EXPECT_EQ(out["repr_u"].AsString(), "sorted");
  EXPECT_EQ(out["size_u"].AsDouble(), 128.0);
  EXPECT_EQ(out["repr_w"].AsString(), "bitmap");
  EXPECT_EQ(out["size_w"].AsDouble(), 4096.0);
  EXPECT_EQ(out["simd"].AsString(), "avx2");
}

TEST(MetricsSnapshotTest, JsonCarriesBudgetBurnDownWhenPresent) {
  MetricsRegistry registry;
  MetricsSnapshot snapshot = registry.Snapshot();
  // Absent by default: no "budget" key at all.
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(JsonValue::Parse(snapshot.ToJson(), &doc, &error)) << error;
  EXPECT_EQ(doc.Find("budget"), nullptr);

  snapshot.budget.present = true;
  snapshot.budget.lifetime_budget = 2.0;
  snapshot.budget.charged_vertices = 10;
  snapshot.budget.exhausted_vertices = 3;
  snapshot.budget.total_spent = 14.5;
  snapshot.budget.min_remaining = 0.0;
  snapshot.budget.sum_remaining = 5.5;
  snapshot.budget.spent_rr = 10.0;
  snapshot.budget.spent_laplace = 4.5;
  snapshot.budget.residual_histogram = {3, 0, 2, 5};
  snapshot.budget.projected_submits_to_exhaustion = 1.5;
  ASSERT_TRUE(JsonValue::Parse(snapshot.ToJson(), &doc, &error)) << error;
  const JsonValue& budget = doc["budget"];
  EXPECT_EQ(budget["lifetime_budget"].AsDouble(), 2.0);
  EXPECT_EQ(budget["charged_vertices"].AsDouble(), 10.0);
  EXPECT_EQ(budget["exhausted_vertices"].AsDouble(), 3.0);
  EXPECT_NEAR(budget["total_spent"].AsDouble(), 14.5, 1e-12);
  EXPECT_NEAR(budget["sum_remaining"].AsDouble(), 5.5, 1e-12);
  EXPECT_NEAR(budget["spent_rr"].AsDouble(), 10.0, 1e-12);
  EXPECT_NEAR(budget["spent_laplace"].AsDouble(), 4.5, 1e-12);
  EXPECT_NEAR(budget["projected_submits_to_exhaustion"].AsDouble(), 1.5,
              1e-12);
  ASSERT_EQ(budget["residual_histogram"].AsArray().size(), 4u);
  EXPECT_EQ(budget["residual_histogram"].AsArray()[3].AsDouble(), 5.0);
}

TEST(MetricsLevelTest, ParseAndName) {
  EXPECT_EQ(ParseMetricsLevel("off"), MetricsLevel::kOff);
  EXPECT_EQ(ParseMetricsLevel("counters"), MetricsLevel::kCounters);
  EXPECT_EQ(ParseMetricsLevel("full"), MetricsLevel::kFull);
  EXPECT_EQ(ParseMetricsLevel("bogus"), MetricsLevel::kFull);
  EXPECT_STREQ(MetricsLevelName(MetricsLevel::kOff), "off");
  EXPECT_STREQ(MetricsLevelName(MetricsLevel::kFull), "full");
}

}  // namespace
}  // namespace cne::obs
